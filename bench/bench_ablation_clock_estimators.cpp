// Ablation for Section 2.2: the paper's RMS-of-slope-segments estimator
// against the two alternatives it discusses — the overall (last-pair)
// slope and the piecewise per-segment mapping — under read jitter,
// descheduling outliers, and a temperature-style rate change.
//
// Prints reconstruction error tables; the microbenchmarks compare
// estimator costs.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "clock/clock_model.h"
#include "clock/sync.h"
#include "support/rng.h"

namespace {

using namespace ute;

std::vector<TimestampPair> samplePairs(const LocalClockModel& clock, int n,
                                       Tick periodNs, Rng& rng,
                                       double outlierChance = 0.0) {
  std::vector<TimestampPair> pairs;
  for (int i = 0; i < n; ++i) {
    const Tick t = static_cast<Tick>(i + 1) * periodNs;
    TimestampPair p{t, clock.read(t, rng.unit())};
    if (outlierChance > 0 && rng.chance(outlierChance)) {
      p.local += 500 * kUs;  // daemon descheduled between the two reads
    }
    pairs.push_back(p);
  }
  return pairs;
}

/// Max |reconstructed - true| over the run, in ns.
double reconstructionError(const ClockMap& map, const LocalClockModel& clock,
                           Tick span) {
  double worst = 0;
  for (Tick t = span / 20; t <= span; t += span / 20) {
    const Tick mapped = map.toGlobal(clock.read(t));
    worst = std::max(worst, std::abs(static_cast<double>(mapped) -
                                     static_cast<double>(t)));
  }
  return worst;
}

void printAblation() {
  std::printf("=== Ablation (Section 2.2): clock ratio estimators ===\n");
  std::printf("max reconstruction error (us) over a 140 s trace, 2 s "
              "sample period, 2 us read jitter\n");
  std::printf("%-28s %12s %12s %12s\n", "scenario", "rms-segments",
              "last-pair", "piecewise");

  struct Scenario {
    const char* name;
    double outlierChance;
    bool filter;
  };
  const Scenario scenarios[] = {
      {"clean", 0.0, false},
      {"5% outliers, unfiltered", 0.05, false},
      {"5% outliers, filtered", 0.05, true},
  };
  for (const Scenario& sc : scenarios) {
    LocalClockModel::Params p;
    p.driftPpm = 22.0;
    p.offsetNs = 300 * kUs;
    p.jitterNs = 2 * kUs;
    const LocalClockModel clock(p);
    Rng rng(99);
    auto pairs = samplePairs(clock, 70, 2 * kSec, rng, sc.outlierChance);
    if (sc.filter) pairs = filterOutlierPairs(pairs);

    std::printf("%-28s", sc.name);
    for (const SyncMethod method :
         {SyncMethod::kRmsSegments, SyncMethod::kLastPair,
          SyncMethod::kPiecewise}) {
      const ClockMap map(pairs, method);
      std::printf(" %12.2f",
                  reconstructionError(map, clock, 140 * kSec) / 1e3);
    }
    std::printf("\n");
  }

  // A rate change halfway (temperature drift): piecewise adapts.
  std::printf("%-28s", "rate change at t=70s");
  std::vector<TimestampPair> pairs;
  Tick local = 400 * kUs;
  for (int i = 0; i <= 70; ++i) {
    pairs.push_back({static_cast<Tick>(i) * 2 * kSec, local});
    // +44 us per 2 s sample before the change, -28 us after.
    const TickDelta slopeUs = i < 35 ? 44 : -28;
    local = static_cast<Tick>(static_cast<TickDelta>(local) +
                              2 * static_cast<TickDelta>(kSec) +
                              slopeUs * static_cast<TickDelta>(kUs));
  }
  for (const SyncMethod method :
       {SyncMethod::kRmsSegments, SyncMethod::kLastPair,
        SyncMethod::kPiecewise}) {
    const ClockMap map(pairs, method);
    // Evaluate against the piecewise ground truth embedded in the pairs.
    double worst = 0;
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      const Tick mapped = map.toGlobal(pairs[i].local);
      worst = std::max(worst, std::abs(static_cast<double>(mapped) -
                                       static_cast<double>(pairs[i].global)));
    }
    std::printf(" %12.2f", worst / 1e3);
  }
  std::printf("\n\n");
}

const std::vector<TimestampPair>& benchPairs() {
  static const std::vector<TimestampPair> pairs = [] {
    LocalClockModel::Params p;
    p.driftPpm = 22.0;
    p.jitterNs = 2 * kUs;
    const LocalClockModel clock(p);
    Rng rng(5);
    return samplePairs(clock, 1000, kSec, rng);
  }();
  return pairs;
}

void BM_RatioRmsSegments(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ratioRmsSegments(benchPairs()));
  }
}
BENCHMARK(BM_RatioRmsSegments);

void BM_RatioLastPair(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ratioLastPair(benchPairs()));
  }
}
BENCHMARK(BM_RatioLastPair);

void BM_BuildPiecewiseMap(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClockMap(benchPairs(), SyncMethod::kPiecewise));
  }
}
BENCHMARK(BM_BuildPiecewiseMap);

void BM_ToGlobalUniform(benchmark::State& state) {
  const ClockMap map(benchPairs(), SyncMethod::kRmsSegments);
  Tick t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.toGlobal(t += 12345));
  }
}
BENCHMARK(BM_ToGlobalUniform);

void BM_ToGlobalPiecewise(benchmark::State& state) {
  const ClockMap map(benchPairs(), SyncMethod::kPiecewise);
  Tick t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.toGlobal(t += 12345));
  }
}
BENCHMARK(BM_ToGlobalPiecewise);

void BM_FilterOutliers(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(filterOutlierPairs(benchPairs()));
  }
}
BENCHMARK(BM_FilterOutliers);

}  // namespace

int main(int argc, char** argv) {
  printAblation();
  return ute::benchutil::runBenchmarks(argc, argv);
}
