// Ablation for Sections 2.3/4.0: the frame size trades file overhead
// (directory entries, restated pseudo-intervals) against the cost of
// loading the single frame a viewer displays. Prints a sweep over target
// frame sizes and benchmarks time-based frame lookup.
#include <cstdio>

#include "bench_util.h"
#include "interval/file_reader.h"
#include "interval/standard_profile.h"
#include "merge/merger.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

std::string gDir;
std::vector<std::string> gInputs;
std::string gLookupFile;

void printAblation() {
  // One mid-size test-program run feeds every sweep point.
  TestProgramOptions workload;
  workload.iterations = 1500;
  PipelineOptions options;
  options.dir = gDir;
  options.name = "base";
  options.writeSlog = false;
  const PipelineResult run = runPipeline(testProgram(workload), options);
  gInputs = run.intervalFiles;

  const Profile profile = makeStandardProfile();
  std::printf("=== Ablation (Sections 2.3/4.0): frame size sweep ===\n");
  std::printf("%12s %10s %12s %10s %14s %14s\n", "frame bytes", "frames",
              "file bytes", "pseudo", "locate us", "read-frame us");
  for (std::size_t frameBytes : {4096ul, 16384ul, 65536ul, 262144ul}) {
    MergeOptions merge;
    merge.targetFrameBytes = frameBytes;
    const std::string out =
        gDir + "/sweep_" + std::to_string(frameBytes) + ".uti";
    IntervalMerger merger(gInputs, profile, merge);
    const MergeResult result = merger.mergeTo(out);

    IntervalFileReader reader(out);
    std::uint64_t frames = 0;
    for (FrameDirectory dir = reader.firstDirectory(); !dir.frames.empty();
         dir = reader.readDirectory(dir.nextOffset)) {
      frames += dir.frames.size();
      if (dir.nextOffset == 0) break;
    }
    const Tick middle =
        reader.header().minStart +
        (reader.header().maxEnd - reader.header().minStart) / 2;
    // Average the locate + read costs.
    const auto t0 = benchutil::now();
    for (int i = 0; i < 50; ++i) {
      benchmark::DoNotOptimize(reader.frameContaining(middle));
    }
    const double locateUs = benchutil::secondsSince(t0) / 50 * 1e6;
    const auto frame = reader.frameContaining(middle);
    const auto t1 = benchutil::now();
    for (int i = 0; i < 50; ++i) {
      benchmark::DoNotOptimize(reader.readFrame(*frame));
    }
    const double readUs = benchutil::secondsSince(t1) / 50 * 1e6;

    FileReader f(out);
    std::printf("%12zu %10llu %12llu %10llu %14.2f %14.2f\n", frameBytes,
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(f.size()),
                static_cast<unsigned long long>(result.pseudoRecords),
                locateUs, readUs);
    if (frameBytes == 16384ul) gLookupFile = out;
  }
  std::printf("(small frames: cheap display, more pseudo-record overhead; "
              "large frames: the reverse)\n\n");
}

void BM_FrameContaining(benchmark::State& state) {
  IntervalFileReader reader(gLookupFile);
  const Tick middle =
      reader.header().minStart +
      (reader.header().maxEnd - reader.header().minStart) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.frameContaining(middle));
  }
}
BENCHMARK(BM_FrameContaining)->Unit(benchmark::kMicrosecond);

void BM_SequentialScan(benchmark::State& state) {
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalFileReader reader(gLookupFile);
    auto stream = reader.records();
    RecordView view;
    while (stream.next(view)) ++records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SequentialScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  gDir = ute::makeScratchDir("bench_frame_sweep");
  printAblation();
  return ute::benchutil::runBenchmarks(argc, argv);
}
