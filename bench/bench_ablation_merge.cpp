// Ablation for Section 3.1's merge data structure: the balanced
// (tournament/loser) tree holding one node per input interval file vs a
// naive O(k) linear scan per output record. Prints a table of merge
// times across input-file counts and benchmarks both paths.
#include <cstdio>

#include "bench_util.h"
#include "interval/file_writer.h"
#include "interval/standard_profile.h"
#include "merge/merger.h"
#include "support/rng.h"

namespace {

using namespace ute;

std::string gDir;

std::string writeInputFile(NodeId node, int records, std::uint64_t seed) {
  IntervalFileOptions options;
  options.profileVersion = kStandardProfileVersion;
  options.fieldSelectionMask = kNodeFileMask;
  std::vector<ThreadEntry> threads = {
      {node, 1000 + node, 10000 + node, node, 0, ThreadType::kMpi}};
  const std::string path =
      gDir + "/in" + std::to_string(node) + ".uti";
  IntervalFileWriter w(path, options, threads);
  Rng rng(seed);
  Tick t = 0;
  // Two clock pairs make the file merge-adjustable (identity-ish).
  ByteWriter cs0;
  cs0.u64(0);
  w.addRecord(encodeRecordBody(
                  makeIntervalType(kClockSyncState, Bebits::kComplete), 0, 0,
                  0, node, 0, cs0.view())
                  .view());
  for (int i = 0; i < records; ++i) {
    // Step >= max duration keeps the required end-time ordering.
    t += 2000 + rng.below(4000);
    w.addRecord(encodeRecordBody(
                    makeIntervalType(kRunningState, Bebits::kComplete), t,
                    rng.below(2000), 0, node, 0)
                    .view());
  }
  ByteWriter cs1;
  cs1.u64(t + 5000);
  w.addRecord(encodeRecordBody(
                  makeIntervalType(kClockSyncState, Bebits::kComplete),
                  t + 5000, 0, 0, node, 0, cs1.view())
                  .view());
  w.close();
  return path;
}

std::vector<std::string> inputsFor(int k, int recordsEach) {
  std::vector<std::string> paths;
  for (int i = 0; i < k; ++i) {
    paths.push_back(writeInputFile(i, recordsEach,
                                   static_cast<std::uint64_t>(i) + 1));
  }
  return paths;
}

void printAblation() {
  const Profile profile = makeStandardProfile();
  std::printf("=== Ablation (Section 3.1): tournament-tree vs naive merge "
              "===\n");
  std::printf("%6s %12s %12s %12s %8s\n", "k", "records", "tree ms",
              "naive ms", "speedup");
  for (int k : {2, 4, 8, 16, 32, 64}) {
    const int recordsEach = 200000 / k;
    const auto inputs = inputsFor(k, recordsEach);
    double treeMs = 0;
    double naiveMs = 0;
    for (int mode = 0; mode < 2; ++mode) {
      MergeOptions options;
      options.useNaiveMerge = mode == 1;
      const auto t0 = benchutil::now();
      IntervalMerger merger(inputs, profile, options);
      merger.mergeTo(gDir + "/out.uti");
      (mode == 0 ? treeMs : naiveMs) = benchutil::secondsSince(t0) * 1e3;
    }
    std::printf("%6d %12d %12.2f %12.2f %8.2f\n", k, k * recordsEach,
                treeMs, naiveMs, naiveMs / treeMs);
  }
  std::printf("(the tree's O(log k) selection wins as k grows)\n\n");
}

void BM_Merge(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  const int k = static_cast<int>(state.range(0));
  const bool naive = state.range(1) != 0;
  const auto inputs = inputsFor(k, 100000 / k);
  std::uint64_t records = 0;
  for (auto _ : state) {
    MergeOptions options;
    options.useNaiveMerge = naive;
    IntervalMerger merger(inputs, profile, options);
    records += merger.mergeTo(gDir + "/bm_out.uti").recordsOut;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetLabel(naive ? "naive" : "tree");
}
BENCHMARK(BM_Merge)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  gDir = ute::makeScratchDir("bench_merge_ablation");
  printAblation();
  return ute::benchutil::runBenchmarks(argc, argv);
}
