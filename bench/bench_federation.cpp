// Federation front-door overhead (docs/FEDERATION.md): queries/sec and
// p99 latency for window queries through a uterouter, swept over the
// backend fleet size (1 -> 8) with the router's hot-set reply cache off
// and on, plus the AggregateMetrics fan-out latency per fleet size.
// Written to BENCH_federation.json, then microbenchmarks for the proxy
// round trip itself (cold relay vs. hot-set hit vs. direct backend).
//
// Caveat (recorded in the JSON too): this runs in a 1-CPU container, so
// the client, the router's connection threads, and every backend
// time-slice one core. Queries/s is a floor — the interesting signal is
// the *ratio* between cache off/on and the per-hop overhead, which are
// core-count independent.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fed/router_server.h"
#include "interval/standard_profile.h"
#include "server/client.h"
#include "server/server.h"
#include "slog/slog_writer.h"
#include "trace/events.h"

namespace {

using namespace ute;

constexpr int kRecordsPerTrace = 600;
constexpr int kSweepQueries = 400;

// makeScratchDir wipes on reuse within one process — create it once.
const std::string& scratchDir() {
  static const std::string dir = makeScratchDir("bench_federation");
  return dir;
}

std::string scratchSlog(int index) {
  const std::string path =
      (std::filesystem::path(scratchDir()) /
       ("backend" + std::to_string(index) + ".slog"))
          .string();
  const Profile profile = makeStandardProfile();
  SlogOptions options;
  options.recordsPerFrame = 64;
  SlogWriter w(path, options, profile,
               {{0, 1000, 10000, 0, 0, ThreadType::kMpi},
                {1, 1001, 10001, 1, 0, ThreadType::kMpi}},
               {{2, "compute"}});
  for (int i = 0; i < kRecordsPerTrace; ++i) {
    const Tick start = static_cast<Tick>(i) * kMs;
    ByteWriter extra;
    extra.u64(start);
    w.addRecord(RecordView::parse(
        encodeRecordBody(makeIntervalType(kRunningState, Bebits::kComplete),
                         start, kMs / 2, 0, (i + index) % 2, 0, extra.view())
            .view()));
  }
  w.close();
  return path;
}

/// One live fleet: N backends, each serving one trace, plus a router.
struct Fleet {
  std::vector<std::unique_ptr<TraceServer>> backends;
  std::unique_ptr<RouterService> service;
  std::unique_ptr<RouterServer> router;
  std::vector<std::uint32_t> globalIds;

  Fleet(const std::vector<std::string>& paths, int count, bool cache) {
    RouterOptions options;
    for (int i = 0; i < count; ++i) {
      backends.push_back(std::make_unique<TraceServer>(
          std::vector<std::string>{paths[static_cast<std::size_t>(i)]}));
      BackendSpec spec;
      spec.name = "b";
      spec.name += std::to_string(i);
      spec.host = "127.0.0.1";
      spec.port = backends.back()->port();
      options.backends.push_back(spec);
    }
    options.healthIntervalMs = 0;  // no background probes during timing
    options.cacheBytes = cache ? (32u << 20) : 0;
    service = std::make_unique<RouterService>(options);
    router = std::make_unique<RouterServer>(*service, 0);
    TraceClient client("127.0.0.1", router->port());
    for (const FedTraceEntry& e : client.listTraces()) {
      globalIds.push_back(e.globalId);
    }
  }

  ~Fleet() {
    if (router) router->stop();
    if (service) service->stop();
  }
};

/// Deterministic window mix round-robining across the fleet's traces.
WindowQuery windowFor(int i) {
  WindowQuery q;
  q.t0 = static_cast<Tick>((i * 37) % 400) * kMs;
  q.t1 = q.t0 + static_cast<Tick>(20 + (i * 11) % 80) * kMs;
  return q;
}

struct SweepPoint {
  int backends = 0;
  bool cache = false;
  double queriesPerSec = 0;
  double p99Us = 0;
  double hitRate = 0;
  double aggregateMs = 0;
};

SweepPoint measure(const std::vector<std::string>& paths, int count,
                   bool cache) {
  Fleet fleet(paths, count, cache);
  TraceClient client("127.0.0.1", fleet.router->port());

  // Prime: touch every trace once so connect/hello and backend frame
  // decodes are out of the timed loop.
  for (std::uint32_t id : fleet.globalIds) {
    client.window(id, windowFor(0));
  }

  std::vector<double> us;
  us.reserve(kSweepQueries);
  const auto total0 = benchutil::now();
  for (int i = 0; i < kSweepQueries; ++i) {
    const std::uint32_t id =
        fleet.globalIds[static_cast<std::size_t>(i) % fleet.globalIds.size()];
    const auto t0 = benchutil::now();
    benchmark::DoNotOptimize(client.window(id, windowFor(i % 8)));
    us.push_back(benchutil::secondsSince(t0) * 1e6);
  }
  const double totalSeconds = benchutil::secondsSince(total0);
  std::sort(us.begin(), us.end());

  SweepPoint point;
  point.backends = count;
  point.cache = cache;
  point.queriesPerSec = static_cast<double>(us.size()) / totalSeconds;
  point.p99Us = us[static_cast<std::size_t>(
      static_cast<double>(us.size() - 1) * 0.99)];
  const CacheStats stats = fleet.service->cacheStats();
  const double lookups = static_cast<double>(stats.hits + stats.misses);
  point.hitRate =
      lookups > 0 ? 100.0 * static_cast<double>(stats.hits) / lookups : 0;

  const auto agg0 = benchutil::now();
  benchmark::DoNotOptimize(client.aggregateMetrics("", 60));
  point.aggregateMs = benchutil::secondsSince(agg0) * 1e3;
  return point;
}

void printArtifact() {
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) paths.push_back(scratchSlog(i));

  std::printf("=== Federation router: fleet size vs proxy throughput ===\n");
  std::printf("(%d window queries round-robin over the fleet; %d records "
              "per trace)\n",
              kSweepQueries, kRecordsPerTrace);
  std::printf("%9s %7s %10s %10s %7s %13s\n", "backends", "cache", "q/s",
              "p99", "hit%", "aggregate ms");
  std::vector<SweepPoint> points;
  for (const int count : {1, 2, 4, 8}) {
    for (const bool cache : {false, true}) {
      points.push_back(measure(paths, count, cache));
      const SweepPoint& p = points.back();
      std::printf("%9d %7s %10.0f %8.1fus %6.1f%% %12.2f\n", p.backends,
                  p.cache ? "on" : "off", p.queriesPerSec, p.p99Us,
                  p.hitRate, p.aggregateMs);
    }
  }
  std::printf("(1-CPU container: client, router, and backends time-slice "
              "one core — compare cache off/on ratios, not absolutes)\n");

  std::FILE* json = std::fopen("BENCH_federation.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_federation.json\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"workload\": \"%d window queries round-robin over "
               "1..8 single-trace backends through uterouter\",\n"
               "  \"caveat\": \"1-CPU container: client, router connection "
               "threads, and every backend time-slice one core; "
               "queries/s is a floor and the cache off/on ratio is the "
               "portable signal\",\n  \"sweep\": [\n",
               kSweepQueries);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(json,
                 "    {\"backends\": %d, \"router_cache\": %s, "
                 "\"queries_per_second\": %.0f, \"p99_us\": %.1f, "
                 "\"cache_hit_rate\": %.1f, \"aggregate_ms\": %.2f}%s\n",
                 p.backends, p.cache ? "true" : "false", p.queriesPerSec,
                 p.p99Us, p.hitRate, p.aggregateMs,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_federation.json\n\n");
}

// --- microbenchmarks --------------------------------------------------------

std::vector<std::string>& benchPaths() {
  static std::vector<std::string> paths = {scratchSlog(100)};
  return paths;
}

void BM_DirectWindowRoundTrip(benchmark::State& state) {
  TraceServer server({benchPaths()[0]});
  TraceClient client("127.0.0.1", server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.window(0, windowFor(3)));
  }
  server.stop();
}
BENCHMARK(BM_DirectWindowRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_RouterWindowRelay(benchmark::State& state) {
  Fleet fleet(benchPaths(), 1, /*cache=*/false);
  TraceClient client("127.0.0.1", fleet.router->port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.window(fleet.globalIds[0], windowFor(3)));
  }
}
BENCHMARK(BM_RouterWindowRelay)->Unit(benchmark::kMicrosecond);

void BM_RouterWindowHotSetHit(benchmark::State& state) {
  Fleet fleet(benchPaths(), 1, /*cache=*/true);
  TraceClient client("127.0.0.1", fleet.router->port());
  client.window(fleet.globalIds[0], windowFor(3));  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.window(fleet.globalIds[0], windowFor(3)));
  }
}
BENCHMARK(BM_RouterWindowHotSetHit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  return ute::benchutil::runBenchmarks(argc, argv);
}
