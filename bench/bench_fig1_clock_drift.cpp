// Figure 1: accumulated timestamp discrepancies among 4 local clocks over
// roughly 140 seconds.
//
// Prints the discrepancy series as CSV (one row per second of reference
// elapsed time) — the data behind the figure: near-linear growth with
// slopes of both signs, reaching milliseconds. The microbenchmarks then
// measure the cost of clock reads and of the full study.
#include <cstdio>

#include "bench_util.h"
#include "clock/drift_study.h"

namespace {

using namespace ute;

void printFigure1() {
  DriftStudyConfig config = figure1Config();
  const DriftStudyResult result = runDriftStudy(config);
  std::printf("=== Figure 1: accumulated timestamp discrepancies (4 local "
              "clocks, reference = clock %d) ===\n",
              result.referenceClock);
  const std::string csv = driftStudyCsv(result);
  // Print every 10th sample to keep the series readable; the final row
  // carries the headline numbers.
  std::size_t line = 0;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t next = csv.find('\n', pos);
    if (line == 0 || line % 10 == 0 || next + 1 >= csv.size()) {
      std::printf("%s\n", csv.substr(pos, next - pos).c_str());
    }
    pos = next + 1;
    ++line;
  }
  // Shape check mirrored from the figure: growth to milliseconds with
  // both signs.
  const DriftSeries& fast = result.series[0];   // +22 ppm
  const DriftSeries& slow = result.series[1];   // -14 ppm
  std::printf("final discrepancies: clock1 %+0.3f ms, clock2 %+0.3f ms, "
              "clock3 %+0.3f ms over %.0f s\n\n",
              static_cast<double>(fast.discrepancyNs.back()) / 1e6,
              static_cast<double>(slow.discrepancyNs.back()) / 1e6,
              static_cast<double>(result.series[2].discrepancyNs.back()) /
                  1e6,
              static_cast<double>(fast.referenceElapsedNs.back()) / 1e9);
}

void BM_LocalClockRead(benchmark::State& state) {
  LocalClockModel::Params p;
  p.driftPpm = 22.0;
  p.offsetNs = 12345;
  const LocalClockModel clock(p);
  Tick t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(clock.read(t));
  }
}
BENCHMARK(BM_LocalClockRead);

void BM_DriftStudy140s(benchmark::State& state) {
  const DriftStudyConfig config = figure1Config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runDriftStudy(config));
  }
}
BENCHMARK(BM_DriftStudy140s);

}  // namespace

int main(int argc, char** argv) {
  printFigure1();
  return ute::benchutil::runBenchmarks(argc, argv);
}
