// Figure 6: the statistics viewer's pre-defined table — per-node sum of
// interesting (non-Running) interval durations over 50 equal time bins —
// on the FLASH-like phased workload. The printed heatmap shows the three
// busy time ranges the paper's figure identifies. Microbenchmarks cover
// the statistics engine's record throughput.
#include <cstdio>

#include "bench_util.h"
#include "interval/standard_profile.h"
#include "stats/engine.h"
#include "stats/parser.h"
#include "viz/stats_viewer.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

std::string gMergedFile;

void printFigure6() {
  PipelineOptions options;
  options.dir = makeScratchDir("bench_fig6");
  options.name = "flash";
  options.writeSlog = false;
  const PipelineResult run = runPipeline(flash(FlashOptions{}), options);
  gMergedFile = run.mergedFile;

  const Profile profile = makeStandardProfile();
  IntervalFileReader merged(run.mergedFile);
  StatsEngine engine(profile);
  const auto tables = engine.runProgram(predefinedTablesProgram(), merged);

  std::printf("=== Figure 6: statistics visualization (sum of interesting "
              "durations per node x 50 time bins) ===\n");
  for (const StatsTable& t : tables) {
    if (t.name != "interesting_by_node_bin") continue;
    std::printf("%s\n",
                renderStatsHeatmapAscii(t, "bin", "node", "sum(duration)")
                    .c_str());
  }
  std::printf("\n");
}

void BM_PredefinedTables(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  StatsEngine engine(profile);
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalFileReader merged(gMergedFile);
    records += merged.header().totalRecords;
    benchmark::DoNotOptimize(
        engine.runProgram(predefinedTablesProgram(), merged));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_PredefinedTables)->Unit(benchmark::kMillisecond);

void BM_SingleTable(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  StatsEngine engine(profile);
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalFileReader merged(gMergedFile);
    records += merged.header().totalRecords;
    benchmark::DoNotOptimize(engine.runProgram(
        "table name=t condition=(state != \"Running\") "
        "x=(\"node\", node) x=(\"bin\", timebin(50)) "
        "y=(\"sum\", dura, sum)",
        merged));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SingleTable)->Unit(benchmark::kMillisecond);

void BM_ParseProgram(benchmark::State& state) {
  const std::string program = predefinedTablesProgram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parseStatsProgram(program));
  }
}
BENCHMARK(BM_ParseProgram);

}  // namespace

int main(int argc, char** argv) {
  printFigure6();
  return ute::benchutil::runBenchmarks(argc, argv);
}
