// Figure 7: preview + frame display, and the scalability property behind
// it — "Scalability in the time it takes to display this frame
// (independence from the size of the SLOG file) comes from the
// combination of this preview and the frame index".
//
// Prints the preview histogram for the FLASH-like run, then a table of
// frame-locate-and-display times against SLOG files whose sizes span two
// orders of magnitude: the display time stays flat while the file grows.
#include <cstdio>

#include "bench_util.h"
#include "slog/slog_reader.h"
#include "viz/ascii_render.h"
#include "viz/timeline_model.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

struct SizedSlog {
  std::uint64_t fileBytes = 0;
  std::string path;
};

std::vector<SizedSlog> gSlogs;
std::string gFlashSlog;

std::string buildSlogOfSize(const std::string& dir, std::uint32_t iterations) {
  TestProgramOptions workload;
  workload.iterations = iterations;
  PipelineOptions options;
  options.dir = dir;
  options.name = "s" + std::to_string(iterations);
  options.slog.recordsPerFrame = 2048;
  return runPipeline(testProgram(workload), options).slogFile;
}

void printFigure7() {
  const std::string dir = makeScratchDir("bench_fig7");

  // The preview itself, on the FLASH-like phased run.
  {
    PipelineOptions options;
    options.dir = dir;
    options.name = "flash";
    options.slog.recordsPerFrame = 512;
    const PipelineResult run = runPipeline(flash(FlashOptions{}), options);
    gFlashSlog = run.slogFile;
    SlogReader slog(run.slogFile);
    std::printf("=== Figure 7 (preview window): whole-run state histogram "
                "===\n%s\n",
                renderPreviewAscii(slog.preview(), slog.states(), 72)
                    .c_str());
  }

  // The scalability claim: locate + load + build one frame's view, as
  // the file size grows ~30x.
  std::printf("=== Figure 7 (frame display scalability) ===\n");
  std::printf("%14s %10s %10s %16s\n", "slog bytes", "frames",
              "records", "frame display ms");
  for (std::uint32_t iterations : {300u, 1200u, 4800u, 9600u}) {
    const std::string path = buildSlogOfSize(dir, iterations);
    SlogReader slog(path);
    const Tick middle =
        slog.totalStart() + (slog.totalEnd() - slog.totalStart()) / 2;
    // Warm: one untimed pass, then average 20 timed displays.
    const auto display = [&] {
      const auto idx = slog.frameIndexFor(middle);
      benchmark::DoNotOptimize(buildSlogFrameView(slog, *idx));
    };
    display();
    const auto t0 = benchutil::now();
    for (int i = 0; i < 20; ++i) display();
    const double ms = benchutil::secondsSince(t0) / 20.0 * 1e3;

    std::uint64_t records = 0;
    for (const auto& e : slog.frameIndex()) records += e.records;
    FileReader f(path);
    std::printf("%14llu %10zu %10llu %16.3f\n",
                static_cast<unsigned long long>(f.size()),
                slog.frameIndex().size(),
                static_cast<unsigned long long>(records), ms);
    gSlogs.push_back({f.size(), path});
  }
  std::printf("(display time stays flat while the file grows — the frame "
              "index + pseudo-intervals at work)\n\n");
}

void BM_FrameLocateAndDisplay(benchmark::State& state) {
  const SizedSlog& sized = gSlogs[static_cast<std::size_t>(state.range(0))];
  SlogReader slog(sized.path);
  const Tick middle =
      slog.totalStart() + (slog.totalEnd() - slog.totalStart()) / 2;
  for (auto _ : state) {
    const auto idx = slog.frameIndexFor(middle);
    benchmark::DoNotOptimize(buildSlogFrameView(slog, *idx));
  }
  state.counters["file_bytes"] = static_cast<double>(sized.fileBytes);
}
BENCHMARK(BM_FrameLocateAndDisplay)->DenseRange(0, 3)->Unit(
    benchmark::kMicrosecond);

void BM_PreviewRebin(benchmark::State& state) {
  SlogReader slog(gFlashSlog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rebinPreview(slog.preview(), 50));
  }
}
BENCHMARK(BM_PreviewRebin);

}  // namespace

int main(int argc, char** argv) {
  printFigure7();
  return ute::benchutil::runBenchmarks(argc, argv);
}
