// Figure 8: thread-activity view of the ASCI sPPM benchmark shape —
// 4 nodes, each an 8-way SMP, four threads per MPI process, one of which
// makes MPI calls; one thread is idle. Prints the view and benchmarks
// building + rendering it.
#include <cstdio>

#include "bench_util.h"
#include "interval/standard_profile.h"
#include "viz/ascii_render.h"
#include "viz/svg_render.h"
#include "viz/timeline_model.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

std::string gMergedFile;

void printFigure8() {
  SppmOptions workload;
  workload.timesteps = 30;
  PipelineOptions options;
  options.dir = makeScratchDir("bench_fig8");
  options.name = "sppm";
  const PipelineResult run = runPipeline(sppm(workload), options);
  gMergedFile = run.mergedFile;

  const Profile profile = makeStandardProfile();
  IntervalFileReader merged(run.mergedFile);
  ViewOptions view;
  view.kind = ViewKind::kThreadActivity;
  view.connectPieces = true;
  const TimeSpaceModel model = buildView(merged, profile, view);
  std::printf("=== Figure 8: thread-activity view of sPPM (4 nodes x 8-way "
              "SMP, 4 threads/process, 1 MPI thread) ===\n%s\n",
              renderAscii(model).c_str());
}

void BM_BuildThreadActivityView(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  ViewOptions view;
  view.kind = ViewKind::kThreadActivity;
  view.connectPieces = state.range(0) != 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalFileReader merged(gMergedFile);
    records += merged.header().totalRecords;
    benchmark::DoNotOptimize(buildView(merged, profile, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetLabel(view.connectPieces ? "connected" : "pieces");
}
BENCHMARK(BM_BuildThreadActivityView)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

void BM_RenderSvg(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  IntervalFileReader merged(gMergedFile);
  ViewOptions view;
  view.kind = ViewKind::kThreadActivity;
  const TimeSpaceModel model = buildView(merged, profile, view);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderSvg(model));
  }
}
BENCHMARK(BM_RenderSvg)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printFigure8();
  return ute::benchutil::runBenchmarks(argc, argv);
}
