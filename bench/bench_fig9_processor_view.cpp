// Figure 9: processor-activity view of the same sPPM run — up to eight
// timelines per node, CPUs mostly idle, MPI threads jumping from one CPU
// to another on the same node. Prints the view plus the migration and
// utilization numbers behind the paper's observations.
#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "interval/standard_profile.h"
#include "viz/ascii_render.h"
#include "viz/timeline_model.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

std::string gMergedFile;
constexpr int kNodes = 4;
constexpr int kCpus = 8;

void printFigure9() {
  SppmOptions workload;
  workload.timesteps = 30;
  PipelineOptions options;
  options.dir = makeScratchDir("bench_fig9");
  options.name = "sppm";
  const PipelineResult run = runPipeline(sppm(workload), options);
  gMergedFile = run.mergedFile;

  const Profile profile = makeStandardProfile();
  ViewOptions view;
  view.kind = ViewKind::kProcessorActivity;
  for (int n = 0; n < kNodes; ++n) view.cpuCountHint[n] = kCpus;
  IntervalFileReader merged(run.mergedFile);
  const TimeSpaceModel model = buildView(merged, profile, view);
  std::printf("=== Figure 9: processor-activity view of sPPM ===\n%s\n",
              renderAscii(model).c_str());

  // The paper's two observations, quantified.
  double busy = 0;
  for (const VizTimeline& row : model.rows) {
    for (const VizSegment& s : row.segments) {
      busy += static_cast<double>(s.end - s.start);
    }
  }
  const double capacity =
      static_cast<double>(model.maxTime - model.minTime) * kNodes * kCpus;
  std::printf("CPU utilization: %.1f%% of %d processors (\"the CPUs are "
              "mostly idle\")\n", 100.0 * busy / capacity, kNodes * kCpus);

  IntervalFileReader merged2(run.mergedFile);
  ViewOptions tp;
  tp.kind = ViewKind::kThreadProcessor;
  const TimeSpaceModel migration = buildView(merged2, profile, tp);
  for (const VizTimeline& row : migration.rows) {
    if (row.id != 0) continue;  // the MPI thread of each process
    std::set<std::uint32_t> cpus;
    for (const VizSegment& s : row.segments) cpus.insert(s.colorKey);
    std::printf("MPI thread %s ran on %zu distinct CPUs\n",
                row.label.c_str(), cpus.size());
  }
  std::printf("\n");
}

void BM_BuildProcessorActivityView(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  ViewOptions view;
  view.kind = ViewKind::kProcessorActivity;
  for (int n = 0; n < kNodes; ++n) view.cpuCountHint[n] = kCpus;
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalFileReader merged(gMergedFile);
    records += merged.header().totalRecords;
    benchmark::DoNotOptimize(buildView(merged, profile, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_BuildProcessorActivityView)->Unit(benchmark::kMillisecond);

void BM_BuildThreadProcessorView(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  ViewOptions view;
  view.kind = ViewKind::kThreadProcessor;
  for (auto _ : state) {
    IntervalFileReader merged(gMergedFile);
    benchmark::DoNotOptimize(buildView(merged, profile, view));
  }
}
BENCHMARK(BM_BuildThreadProcessorView)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printFigure9();
  return ute::benchutil::runBenchmarks(argc, argv);
}
