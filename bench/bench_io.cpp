// I/O layer benchmarks for the zero-copy byte-source work: cold and warm
// frame reads plus a whole-file scan sweep across the three read
// strategies (mmap, plain stdio readAt, stdio fetch through the
// BufferPool), written to BENCH_io.json. Also counts heap allocations on
// the warm server frame path — the zero-copy contract says a cache hit
// hands out the shared decoded frame without allocating anything — and
// checks that the mmap full scan is at least as fast as the stdio
// baseline. Then google-benchmark microbenchmarks of the same paths.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#include "bench_util.h"
#include "server/trace_service.h"
#include "slog/slog_reader.h"
#include "support/byte_source.h"
#include "support/text.h"
#include "workloads/workloads.h"

// Global allocation counters so the warm-path probe can assert "zero
// allocations per request" instead of guessing. Counting is switched on
// only around the measured loop, so fixture setup stays free.
namespace {
std::atomic<bool> gCountAllocs{false};
std::atomic<std::uint64_t> gAllocCalls{0};
std::atomic<std::uint64_t> gAllocBytes{0};
}  // namespace

void* operator new(std::size_t n) {
  if (gCountAllocs.load(std::memory_order_relaxed)) {
    gAllocCalls.fetch_add(1, std::memory_order_relaxed);
    gAllocBytes.fetch_add(n, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

// GCC flags free() here because it cannot see that the replacement
// operator new above allocates with malloc; the pairing is correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace ute;

std::string gSlog;      // columnar v2 (the default encoding)
std::string gSlogV1;    // the same trace written row-major v1
std::uint64_t gSlogBytes = 0;

double mbPerSec(std::uint64_t bytes, double seconds) {
  return seconds == 0 ? 0 : static_cast<double>(bytes) / 1e6 / seconds;
}

/// Reads every frame once; returns the decoded interval count (a simple
/// checksum keeping the work honest).
std::uint64_t readAllFrames(const SlogReader& reader) {
  std::uint64_t intervals = 0;
  for (std::size_t f = 0; f < reader.frameIndex().size(); ++f) {
    intervals += reader.readFrame(f)->intervals.size();
  }
  return intervals;
}

/// Full decode counting every record (intervals + arrows) — the unit the
/// encoding sweep's records/s figure is in.
std::uint64_t decodeAllRecords(const SlogReader& reader) {
  std::uint64_t records = 0;
  for (std::size_t f = 0; f < reader.frameIndex().size(); ++f) {
    const SlogFramePtr frame = reader.readFrame(f);
    records += frame->intervals.size() + frame->arrows.size();
  }
  return records;
}

/// Sum of the index's encoded frame payload sizes (header, thread table,
/// index, state table and preview excluded — the part the encoding
/// actually changes).
std::uint64_t totalFrameBytes(const SlogReader& reader) {
  std::uint64_t bytes = 0;
  for (const SlogFrameIndexEntry& e : reader.frameIndex()) {
    bytes += e.sizeBytes;
  }
  return bytes;
}

/// XOR-folds the whole file through the given scan strategy. The source
/// is constructed by the caller and reused across scans, the way every
/// real reader holds one ByteSource for its lifetime — so the mmap path
/// pays its page faults once, not per scan.
enum class Scan { kMmap, kStdio, kPool };

std::uint64_t fold(std::span<const std::uint8_t> bytes, std::uint64_t acc) {
  // Word-wise so the scan runs at memory speed; a byte loop would hide
  // the copy cost the strategies differ in.
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    acc ^= w;
  }
  for (; i < bytes.size(); ++i) acc ^= bytes[i];
  return acc;
}

std::uint64_t fullScan(Scan scan, const ByteSource& source) {
  constexpr std::size_t kChunk = 256 * 1024;
  std::uint64_t acc = 0;
  switch (scan) {
    case Scan::kMmap: {
      acc = fold(source.whole().bytes(), acc);
      break;
    }
    case Scan::kStdio: {
      // Baseline: one reused buffer, plain copying reads.
      std::vector<std::uint8_t> buf(kChunk);
      std::uint64_t offset = 0;
      for (;;) {
        const std::size_t got = source.readAt(offset, buf);
        if (got == 0) break;
        acc = fold(std::span(buf.data(), got), acc);
        offset += got;
      }
      break;
    }
    case Scan::kPool: {
      // fetch() path: every chunk is a pooled FrameBuf, the way frame
      // reads travel on the non-mmap path.
      for (std::uint64_t offset = 0; offset < source.size();
           offset += kChunk) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kChunk, source.size() - offset));
        acc = fold(source.fetch(offset, n).bytes(), acc);
      }
      break;
    }
  }
  return acc;
}

ByteSource::Mode scanMode(Scan scan) {
  return scan == Scan::kMmap ? ByteSource::Mode::kMmap
                             : ByteSource::Mode::kStream;
}

struct FrameReadPoint {
  const char* mode;
  double coldSeconds = 0;
  double warmSeconds = 0;
  std::uint64_t intervals = 0;
};

struct ScanPoint {
  const char* strategy;
  double seconds = 0;
};

void printSweep() {
  TestProgramOptions workload;
  workload.iterations = 1200;
  workload.nodes = 4;
  PipelineOptions options;
  options.dir = makeScratchDir("bench_io");
  options.name = "io";
  options.slog.recordsPerFrame = 256;
  const PipelineResult run = runPipeline(testProgram(workload), options);
  gSlog = run.slogFile;
  {
    const ByteSource probe(gSlog);
    gSlogBytes = probe.size();
  }

  // The same simulated trace written row-major (v1) — the encoding sweep
  // compares bytes/record and decode speed against the columnar default.
  PipelineOptions v1Options = options;
  v1Options.name = "io_v1";
  v1Options.slog.formatVersion = 1;
  gSlogV1 = runPipeline(testProgram(workload), v1Options).slogFile;

  std::printf("=== I/O: frame encoding, row v1 vs columnar v2 ===\n");
  std::printf("%10s %14s %10s %12s %16s\n", "encoding", "frame bytes",
              "records", "bytes/rec", "decode rec/s");
  struct EncodingPoint {
    const char* encoding;
    std::uint64_t frameBytes = 0;
    std::uint64_t records = 0;
    double decodeSeconds = 0;
  };
  std::vector<EncodingPoint> encodings;
  std::uint64_t checksum = 0;
  for (const auto& [name, path] :
       {std::pair<const char*, const std::string*>{"row-v1", &gSlogV1},
        {"columnar-v2", &gSlog}}) {
    const SlogReader reader(*path);
    EncodingPoint p;
    p.encoding = name;
    p.frameBytes = totalFrameBytes(reader);
    p.records = decodeAllRecords(reader);  // warm: page cache + checksum
    // Best of five full decodes, so the records/s figure is the decode
    // loop, not a scheduler hiccup.
    p.decodeSeconds = 1e9;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = benchutil::now();
      const std::uint64_t got = decodeAllRecords(reader);
      p.decodeSeconds = std::min(p.decodeSeconds, benchutil::secondsSince(t0));
      if (got != p.records) {
        std::fprintf(stderr, "decode repeated differently!\n");
        std::exit(1);
      }
    }
    if (encodings.empty()) {
      checksum = p.records;
    } else if (p.records != checksum) {
      std::fprintf(stderr, "v1 and v2 decoded different record counts!\n");
      std::exit(1);
    }
    std::printf("%10s %14s %10s %12.2f %16s\n", p.encoding,
                withCommas(p.frameBytes).c_str(),
                withCommas(p.records).c_str(),
                static_cast<double>(p.frameBytes) /
                    static_cast<double>(p.records),
                withCommas(static_cast<std::uint64_t>(
                               static_cast<double>(p.records) /
                               p.decodeSeconds))
                    .c_str());
    encodings.push_back(p);
  }
  const double v2Ratio =
      static_cast<double>(encodings[1].frameBytes) /
      static_cast<double>(encodings[0].frameBytes);
  std::printf("v2/v1 bytes per record: %.3fx %s\n\n", v2Ratio,
              v2Ratio <= 0.6 ? "(<= 0.6x, as required)"
                             : "(V2 LARGER THAN THE 0.6x BOUND)");

  std::printf("=== I/O: frame reads, mmap vs stdio fallback ===\n");
  std::printf("(%s byte SLOG)\n", withCommas(gSlogBytes).c_str());
  std::printf("%8s %12s %12s %14s\n", "mode", "cold (s)", "warm (s)",
              "warm MB/s");
  std::vector<FrameReadPoint> frameReads;
  for (const auto& [name, mode] :
       {std::pair<const char*, ByteSource::Mode>{"mmap",
                                                 ByteSource::Mode::kMmap},
        {"stdio", ByteSource::Mode::kStream}}) {
    FrameReadPoint p;
    p.mode = name;
    const auto t0 = benchutil::now();
    const SlogReader reader(gSlog, mode);
    p.intervals = readAllFrames(reader);
    p.coldSeconds = benchutil::secondsSince(t0);
    const auto t1 = benchutil::now();
    const std::uint64_t warmIntervals = readAllFrames(reader);
    p.warmSeconds = benchutil::secondsSince(t1);
    if (warmIntervals != p.intervals) {
      std::fprintf(stderr, "warm re-read decoded differently!\n");
      std::exit(1);
    }
    std::printf("%8s %12.4f %12.4f %14.1f\n", p.mode, p.coldSeconds,
                p.warmSeconds, mbPerSec(gSlogBytes, p.warmSeconds));
    frameReads.push_back(p);
  }
  if (frameReads[0].intervals != frameReads[1].intervals) {
    std::fprintf(stderr, "mmap and stdio decoded different intervals!\n");
    std::exit(1);
  }

  std::printf("\n=== I/O: full-scan throughput ===\n");
  std::printf("%8s %12s %14s\n", "path", "seconds", "MB/s");
  std::vector<ScanPoint> scans;
  std::uint64_t reference = 0;
  for (const auto& [name, scan] :
       {std::pair<const char*, Scan>{"mmap", Scan::kMmap},
        {"stdio", Scan::kStdio},
        {"pool", Scan::kPool}}) {
    const ByteSource source(gSlog, scanMode(scan));
    std::uint64_t acc = fullScan(scan, source);  // warm: faults + cache
    // Best of five so one scheduler hiccup doesn't decide the winner.
    double best = 1e9;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = benchutil::now();
      acc = fullScan(scan, source);
      best = std::min(best, benchutil::secondsSince(t0));
    }
    ScanPoint p;
    p.strategy = name;
    p.seconds = best;
    if (scan == Scan::kMmap) {
      reference = acc;
    } else if (acc != reference) {
      std::fprintf(stderr, "scan strategies disagree on file bytes!\n");
      std::exit(1);
    }
    std::printf("%8s %12.4f %14.1f\n", p.strategy, p.seconds,
                mbPerSec(gSlogBytes, p.seconds));
    scans.push_back(p);
  }
  const bool mmapNotSlower = scans[0].seconds <= scans[1].seconds;
  std::printf("mmap vs stdio: %.2fx %s\n",
              scans[0].seconds == 0
                  ? 0.0
                  : scans[1].seconds / scans[0].seconds,
              mmapNotSlower ? "(mmap >= stdio, as required)"
                            : "(MMAP SLOWER THAN STDIO)");

  // Warm server path: after the cache holds every frame, a frame request
  // is a shard lookup plus a shared_ptr copy — zero heap allocations.
  std::printf("\n=== I/O: warm server frame path, allocation count ===\n");
  TraceService service({gSlog});
  const std::size_t frames = service.trace(0).frameIndex().size();
  for (std::size_t f = 0; f < frames; ++f) service.frame(0, f);  // warm
  constexpr int kRequests = 2000;
  gAllocCalls = 0;
  gAllocBytes = 0;
  gCountAllocs = true;
  for (int i = 0; i < kRequests; ++i) {
    const FrameCache::FramePtr frame =
        service.frame(0, static_cast<std::size_t>(i) % frames);
    benchmark::DoNotOptimize(frame);
  }
  gCountAllocs = false;
  const std::uint64_t allocs = gAllocCalls.load();
  const std::uint64_t allocBytes = gAllocBytes.load();
  std::printf("%d warm frame requests: %llu allocations (%llu bytes) — %s\n",
              kRequests, static_cast<unsigned long long>(allocs),
              static_cast<unsigned long long>(allocBytes),
              allocs == 0 ? "zero-copy holds" : "COPIES ON THE WARM PATH");

  std::FILE* json = std::fopen("BENCH_io.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_io.json\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"workload\": \"test program, 4 nodes\",\n"
               "  \"caveat\": \"1-CPU container: decode rates are "
               "single-core figures\",\n"
               "  \"slog_bytes\": %llu,\n  \"encoding_sweep\": [\n",
               static_cast<unsigned long long>(gSlogBytes));
  for (std::size_t i = 0; i < encodings.size(); ++i) {
    const EncodingPoint& p = encodings[i];
    std::fprintf(json,
                 "    {\"encoding\": \"%s\", \"frame_bytes\": %llu, "
                 "\"records\": %llu, \"bytes_per_record\": %.3f, "
                 "\"decode_records_per_second\": %.1f}%s\n",
                 p.encoding, static_cast<unsigned long long>(p.frameBytes),
                 static_cast<unsigned long long>(p.records),
                 static_cast<double>(p.frameBytes) /
                     static_cast<double>(p.records),
                 static_cast<double>(p.records) / p.decodeSeconds,
                 i + 1 < encodings.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"v2_over_v1_bytes_per_record\": %.4f,\n"
               "  \"v2_within_0_6x_of_v1\": %s,\n"
               "  \"vectorization_note\": \"columnar decode and the metrics "
               "kernels are width-agnostic per-field loops (src/slog/"
               "kernels.h, slog_codec.cpp transpose passes) written so the "
               "compiler autovectorizes them; no intrinsics\",\n"
               "  \"frame_reads\": [\n",
               v2Ratio, v2Ratio <= 0.6 ? "true" : "false");
  for (std::size_t i = 0; i < frameReads.size(); ++i) {
    const FrameReadPoint& p = frameReads[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"cold_seconds\": %.6f, "
                 "\"warm_seconds\": %.6f, \"warm_mb_per_second\": %.1f}%s\n",
                 p.mode, p.coldSeconds, p.warmSeconds,
                 mbPerSec(gSlogBytes, p.warmSeconds),
                 i + 1 < frameReads.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"full_scan\": [\n");
  for (std::size_t i = 0; i < scans.size(); ++i) {
    const ScanPoint& p = scans[i];
    std::fprintf(json,
                 "    {\"strategy\": \"%s\", \"seconds\": %.6f, "
                 "\"mb_per_second\": %.1f}%s\n",
                 p.strategy, p.seconds, mbPerSec(gSlogBytes, p.seconds),
                 i + 1 < scans.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"mmap_not_slower_than_stdio\": %s,\n"
               "  \"warm_server_path\": {\"requests\": %d, "
               "\"allocations\": %llu, \"allocated_bytes\": %llu}\n}\n",
               mmapNotSlower ? "true" : "false", kRequests,
               static_cast<unsigned long long>(allocs),
               static_cast<unsigned long long>(allocBytes));
  std::fclose(json);
  std::printf("wrote BENCH_io.json\n\n");
}

void BM_DecodeByEncoding(benchmark::State& state) {
  // Arg 0 = row v1, Arg 1 = columnar v2 — the same trace either way.
  const SlogReader reader(state.range(0) == 0 ? gSlogV1 : gSlog);
  decodeAllRecords(reader);  // page cache warm-up
  std::uint64_t records = 0;
  for (auto _ : state) {
    records += decodeAllRecords(reader);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_DecodeByEncoding)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_FrameReadWarm(benchmark::State& state) {
  const SlogReader reader(
      gSlog, state.range(0) == 0 ? ByteSource::Mode::kMmap
                                 : ByteSource::Mode::kStream);
  readAllFrames(reader);  // decode once so the page cache is hot
  for (auto _ : state) {
    benchmark::DoNotOptimize(readAllFrames(reader));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * gSlogBytes));
}
BENCHMARK(BM_FrameReadWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FullScan(benchmark::State& state) {
  const Scan scan = static_cast<Scan>(state.range(0));
  const ByteSource source(gSlog, scanMode(scan));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fullScan(scan, source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * gSlogBytes));
}
BENCHMARK(BM_FullScan)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_WarmServerFrame(benchmark::State& state) {
  TraceService service({gSlog});
  const std::size_t frames = service.trace(0).frameIndex().size();
  for (std::size_t f = 0; f < frames; ++f) service.frame(0, f);
  std::size_t f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.frame(0, f));
    f = (f + 1) % frames;
  }
}
BENCHMARK(BM_WarmServerFrame);

}  // namespace

int main(int argc, char** argv) {
  printSweep();
  return ute::benchutil::runBenchmarks(argc, argv);
}
