// Metrics-engine throughput: records/s of the streaming computeMetrics()
// pass, swept over the bin count {240, 1000, 10000} and the worker count
// {1, hardware}. Also reports the encoded .utm size per point (the store
// grows linearly with bins x tasks, independent of trace size) and
// checks that every parallel run is byte-identical to the sequential
// reference. Writes the sweep to BENCH_metrics.json, then runs
// microbenchmarks of the scan and the encode/decode round trip.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "slog/slog_reader.h"
#include "support/text.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

std::string gSlog;    // columnar v2 (the default encoding)
std::string gSlogV1;  // the same trace written row-major v1
std::uint64_t gRecords = 0;

struct SweepPoint {
  std::uint32_t bins = 0;
  int jobs = 0;
  double seconds = 0;
  std::size_t utmBytes = 0;
  bool identical = true;
};

void printSweep() {
  TestProgramOptions workload;
  workload.iterations = 1200;
  workload.nodes = 4;
  PipelineOptions options;
  options.dir = makeScratchDir("bench_metrics");
  options.name = "metrics";
  options.slog.recordsPerFrame = 256;  // plenty of frames to scan
  const PipelineResult run = runPipeline(testProgram(workload), options);
  gSlog = run.slogFile;
  gRecords = run.merge.recordsOut;

  PipelineOptions v1Options = options;
  v1Options.name = "metrics_v1";
  v1Options.slog.formatVersion = 1;
  gSlogV1 = runPipeline(testProgram(workload), v1Options).slogFile;

  // Encoding sweep: the metrics scan over the same trace stored row v1
  // vs columnar v2 — the .utm bytes must be identical either way (the
  // encoding may change speed, never results).
  std::printf("=== Metrics engine: encoding sweep (240 bins, 1 job) ===\n");
  std::printf("%12s %10s %14s %10s\n", "encoding", "seconds", "records/s",
              "identical");
  struct EncodingPoint {
    const char* encoding;
    double seconds = 0;
    bool identical = true;
  };
  std::vector<EncodingPoint> encodingPoints;
  std::vector<std::uint8_t> utmReference;
  for (const auto& [name, path] :
       {std::pair<const char*, const std::string*>{"row-v1", &gSlogV1},
        {"columnar-v2", &gSlog}}) {
    SlogReader encReader(*path);
    MetricsOptions metricsOptions;
    metricsOptions.bins = 240;
    computeMetrics(encReader, metricsOptions);  // warm the page cache
    EncodingPoint p;
    p.encoding = name;
    p.seconds = 1e9;
    std::vector<std::uint8_t> utm;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = benchutil::now();
      const MetricsStore store = computeMetrics(encReader, metricsOptions);
      p.seconds = std::min(p.seconds, benchutil::secondsSince(t0));
      utm = store.encode();
    }
    if (utmReference.empty()) {
      utmReference = utm;
    } else {
      p.identical = utm == utmReference;
    }
    std::printf("%12s %10.4f %14s %10s\n", p.encoding, p.seconds,
                withCommas(p.seconds == 0
                               ? 0
                               : static_cast<std::uint64_t>(
                                     static_cast<double>(gRecords) /
                                     p.seconds))
                    .c_str(),
                p.identical ? "yes" : "NO");
    encodingPoints.push_back(p);
  }
  std::printf("\n");

  // At least 4 workers even on small machines, so the parallel path and
  // its byte-identity check always run.
  const int hw = std::max(4, static_cast<int>(effectiveJobs(0)));
  SlogReader reader(gSlog);

  std::printf("=== Metrics engine: bins x jobs sweep ===\n");
  std::printf("(%s merged records, %zu frames)\n",
              withCommas(gRecords).c_str(), reader.frameIndex().size());
  std::printf("%8s %6s %10s %14s %10s %10s\n", "bins", "jobs", "seconds",
              "records/s", ".utm size", "identical");

  std::vector<SweepPoint> points;
  for (const std::uint32_t bins : {240u, 1000u, 10000u}) {
    std::vector<std::uint8_t> reference;
    for (const int jobs : {1, hw}) {
      MetricsOptions metricsOptions;
      metricsOptions.bins = bins;
      metricsOptions.jobs = jobs;
      const auto t0 = benchutil::now();
      const MetricsStore store = computeMetrics(reader, metricsOptions);
      SweepPoint p;
      p.bins = bins;
      p.jobs = jobs;
      p.seconds = benchutil::secondsSince(t0);
      const std::vector<std::uint8_t> utm = store.encode();
      p.utmBytes = utm.size();
      if (jobs == 1) {
        reference = utm;
      } else {
        p.identical = utm == reference;
      }
      std::printf("%8u %6d %10.4f %14s %9.1fK %10s\n", p.bins, p.jobs,
                  p.seconds,
                  withCommas(p.seconds == 0
                                 ? 0
                                 : static_cast<std::uint64_t>(
                                       static_cast<double>(gRecords) /
                                       p.seconds))
                      .c_str(),
                  static_cast<double>(p.utmBytes) / 1024,
                  p.identical ? "yes" : "NO");
      points.push_back(p);
    }
  }
  std::printf("\n");

  std::FILE* json = std::fopen("BENCH_metrics.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_metrics.json\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"workload\": \"test program, 4 nodes\",\n"
               "  \"caveat\": \"1-CPU container: records/s figures are "
               "single-core\",\n"
               "  \"records\": %llu,\n  \"encoding_points\": [\n",
               static_cast<unsigned long long>(gRecords));
  for (std::size_t i = 0; i < encodingPoints.size(); ++i) {
    const EncodingPoint& p = encodingPoints[i];
    std::fprintf(json,
                 "    {\"encoding\": \"%s\", \"bins\": 240, \"jobs\": 1, "
                 "\"seconds\": %.6f, \"records_per_second\": %.1f, "
                 "\"utm_identical_across_encodings\": %s}%s\n",
                 p.encoding, p.seconds,
                 p.seconds == 0 ? 0.0
                                : static_cast<double>(gRecords) / p.seconds,
                 p.identical ? "true" : "false",
                 i + 1 < encodingPoints.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"bins\": %u, \"jobs\": %d, \"seconds\": %.6f, "
        "\"records_per_second\": %.1f, \"utm_bytes\": %zu, "
        "\"identical_to_jobs1\": %s}%s\n",
        p.bins, p.jobs, p.seconds,
        p.seconds == 0 ? 0.0 : static_cast<double>(gRecords) / p.seconds,
        p.utmBytes, p.identical ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_metrics.json\n\n");
}

void BM_ComputeMetrics(benchmark::State& state) {
  SlogReader reader(gSlog);
  MetricsOptions options;
  options.bins = 240;
  options.jobs = static_cast<int>(state.range(0));
  std::uint64_t records = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeMetrics(reader, options));
    records += gRecords;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ComputeMetrics)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_EncodeDecodeUtm(benchmark::State& state) {
  SlogReader reader(gSlog);
  MetricsOptions options;
  options.bins = static_cast<std::uint32_t>(state.range(0));
  const MetricsStore store = computeMetrics(reader, options);
  for (auto _ : state) {
    const std::vector<std::uint8_t> bytes = store.encode();
    benchmark::DoNotOptimize(MetricsStore::decode(bytes));
  }
}
BENCHMARK(BM_EncodeDecodeUtm)->Arg(240)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printSweep();
  return ute::benchutil::runBenchmarks(argc, argv);
}
