// Reactor concurrency sweep: closed-loop request/response round trips
// over 100 -> 10,000 concurrent connections against one Reactor with an
// inline echo-style handler, written to BENCH_server.json (p50/p99
// latency + throughput per point). The client side is its own epoll
// harness in this file — bench/ is deliberately outside the utelint
// reactor-containment rule, which confines epoll/eventfd in src/ and
// tools/ to src/server/reactor.*.
//
// Caveat (recorded in the JSON too): this runs in a 1-CPU container, so
// the client harness and the reactor time-slice one core and absolute
// requests/s is a floor. The portable signal is structural: one reactor
// thread where thread-per-connection would need N, ~constant syscalls
// per request as N grows (buffered reads parse many pipelined frames per
// recv), zero cross-thread handoffs for inline completions, and one
// shared reply buffer feeding every connection's outbox.
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "server/reactor.h"
#include "support/bytes.h"

namespace {

using namespace ute;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRequestBytes = 16;
constexpr std::size_t kReplyBytes = 256;
constexpr int kTargetRequests = 40'000;  ///< per sweep point, over all conns

/// Inline service: every request is answered on the reactor thread with
/// the same immutable shared buffer — the no-copy fan-out path.
class SharedReplyHandler : public Reactor::Handler {
 public:
  SharedReplyHandler()
      : reply_(std::make_shared<const std::vector<std::uint8_t>>(
            kReplyBytes, std::uint8_t{0x42})) {}

  void onRequest(Reactor::Request req, std::vector<std::uint8_t>) override {
    req.reactor->complete(req, reply_);
  }


 private:
  Reactor::SharedReply reply_;
};

/// One closed-loop client connection: write the fixed request, read the
/// fixed-size reply, repeat. At most one request outstanding.
struct ClientConn {
  int fd = -1;
  std::uint32_t mask = 0;       ///< currently registered epoll events
  std::size_t sent = 0;         ///< request bytes written this round
  std::size_t received = 0;     ///< reply bytes read this round
  int roundsLeft = 0;
  bool priming = false;         ///< first (untimed) round
  Clock::time_point sentAt{};
};

struct SweepPoint {
  int connections = 0;
  int totalRequests = 0;
  double seconds = 0;
  double requestsPerSec = 0;
  double p50Us = 0;
  double p99Us = 0;
  Reactor::Stats stats;
};

/// Raises RLIMIT_NOFILE toward its hard cap; returns the resulting soft
/// limit (client + server fds live in this one process).
std::size_t raiseFdLimit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  lim.rlim_cur = lim.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &lim);
  ::getrlimit(RLIMIT_NOFILE, &lim);
  return static_cast<std::size_t>(lim.rlim_cur);
}

class ClientHarness {
 public:
  explicit ClientHarness(std::uint16_t port) : port_(port) {
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    ByteWriter request;
    request.u32(kRequestBytes);
    request.bytes(std::vector<std::uint8_t>(kRequestBytes, 0x51));
    request_.assign(request.view().begin(), request.view().end());
  }

  ~ClientHarness() {
    for (ClientConn& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (epollFd_ >= 0) ::close(epollFd_);
  }

  bool connectAll(int count) {
    conns_.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      ClientConn& c = conns_[static_cast<std::size_t>(i)];
      c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (c.fd < 0) return false;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port_);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(c.fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof addr) != 0) {
        return false;
      }
      const int one = 1;
      ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const int flags = ::fcntl(c.fd, F_GETFL, 0);
      ::fcntl(c.fd, F_SETFL, flags | O_NONBLOCK);
      epoll_event ev{};
      ev.events = 0;
      ev.data.u64 = static_cast<std::uint64_t>(i);
      if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, c.fd, &ev) != 0) return false;
    }
    return true;
  }

  /// Runs `rounds` timed round trips per connection (plus one untimed
  /// priming round) and fills `latenciesUs`.
  bool run(int rounds, std::vector<double>& latenciesUs) {
    remaining_ = 0;
    latencies_ = &latenciesUs;
    for (ClientConn& c : conns_) {
      c.roundsLeft = rounds;
      c.priming = true;
      remaining_ += rounds + 1;
      startRequest(c);
    }
    epoll_event events[512];
    while (remaining_ > 0) {
      const int n = ::epoll_wait(epollFd_, events, 512, 10'000);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // stalled for 10s: something is wrong
      for (int i = 0; i < n; ++i) {
        ClientConn& c = conns_[events[i].data.u64];
        if ((events[i].events & EPOLLOUT) != 0 && !writeSome(c)) return false;
        if ((events[i].events & EPOLLIN) != 0 && !readSome(c)) return false;
      }
    }
    return true;
  }

 private:
  void setMask(ClientConn& c, std::uint32_t mask) {
    if (c.mask == mask) return;
    c.mask = mask;
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = static_cast<std::uint64_t>(&c - conns_.data());
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void startRequest(ClientConn& c) {
    c.sent = 0;
    c.received = 0;
    c.sentAt = Clock::now();
    writeSome(c);
  }

  bool writeSome(ClientConn& c) {
    while (c.sent < request_.size()) {
      const ssize_t n = ::send(c.fd, request_.data() + c.sent,
                               request_.size() - c.sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          setMask(c, EPOLLOUT);
          return true;
        }
        return false;
      }
      c.sent += static_cast<std::size_t>(n);
    }
    setMask(c, EPOLLIN);
    return true;
  }

  bool readSome(ClientConn& c) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      if (n == 0) return false;  // server closed mid-bench
      c.received += static_cast<std::size_t>(n);
      if (c.received < 4 + kReplyBytes) continue;
      // Closed loop: exactly one reply can be in flight.
      if (!c.priming) {
        latencies_->push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - c.sentAt)
                .count());
      }
      c.priming = false;
      --remaining_;
      if (c.roundsLeft > 0) {
        --c.roundsLeft;
        startRequest(c);
      } else {
        setMask(c, 0);  // done; stay connected so concurrency holds
      }
      return true;
    }
  }

  std::uint16_t port_;
  int epollFd_ = -1;
  std::vector<std::uint8_t> request_;
  std::vector<ClientConn> conns_;
  std::vector<double>* latencies_ = nullptr;
  long remaining_ = 0;
};

bool measure(int connections, SweepPoint& point) {
  SharedReplyHandler handler;
  ReactorOptions options;
  options.maxConnections = static_cast<std::size_t>(connections) + 8;
  Reactor reactor(0, handler, options);

  ClientHarness harness(reactor.port());
  if (!harness.connectAll(connections)) {
    std::fprintf(stderr, "connect storm failed at %d connections\n",
                 connections);
    return false;
  }
  const int rounds = std::max(4, kTargetRequests / connections);
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(connections) *
             static_cast<std::size_t>(rounds));
  const auto t0 = Clock::now();
  if (!harness.run(rounds, us)) {
    std::fprintf(stderr, "bench loop failed at %d connections\n", connections);
    return false;
  }
  point.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  std::sort(us.begin(), us.end());
  point.connections = connections;
  point.totalRequests = static_cast<int>(us.size());
  point.requestsPerSec = static_cast<double>(us.size()) / point.seconds;
  point.p50Us = us[us.size() / 2];
  point.p99Us = us[static_cast<std::size_t>(
      static_cast<double>(us.size() - 1) * 0.99)];
  point.stats = reactor.stats();
  reactor.shutdown();
  return true;
}

double syscallsPerRequest(const Reactor::Stats& s) {
  if (s.requests == 0) return 0;
  return static_cast<double>(s.recvCalls + s.sendCalls + s.epollWaits) /
         static_cast<double>(s.requests);
}

void writeJson(const std::vector<SweepPoint>& points) {
  std::FILE* json = std::fopen("BENCH_server.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return;
  }
  std::fprintf(
      json,
      "{\n  \"workload\": \"closed-loop %zu-byte request / %zu-byte shared "
      "reply round trips, one reactor thread, inline completions\",\n"
      "  \"caveat\": \"1-CPU container: the client epoll harness and the "
      "reactor time-slice one core, so requests/s is a floor; the portable "
      "signals are structural — syscalls per request staying ~constant as "
      "connections grow, 1 thread instead of thread-per-connection, and one "
      "shared reply buffer behind every connection's outbox\",\n"
      "  \"sweep\": [\n",
      kRequestBytes, kReplyBytes);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"connections\": %d, \"requests\": %d, "
        "\"requests_per_second\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"reactor_threads\": 1, \"thread_per_connection_equivalent\": %d, "
        "\"recv_calls\": %llu, \"send_calls\": %llu, \"epoll_waits\": %llu, "
        "\"syscalls_per_request\": %.2f, \"eventfd_wakeups\": %llu, "
        "\"read_pauses\": %llu, \"partial_writes\": %llu, "
        "\"shared_reply_payload_bytes\": %llu, "
        "\"unique_reply_buffer_bytes\": %zu}%s\n",
        p.connections, p.totalRequests, p.requestsPerSec, p.p50Us, p.p99Us,
        p.connections,
        static_cast<unsigned long long>(p.stats.recvCalls),
        static_cast<unsigned long long>(p.stats.sendCalls),
        static_cast<unsigned long long>(p.stats.epollWaits),
        syscallsPerRequest(p.stats),
        static_cast<unsigned long long>(p.stats.eventfdWakeups),
        static_cast<unsigned long long>(p.stats.readPauses),
        static_cast<unsigned long long>(p.stats.partialWrites),
        static_cast<unsigned long long>(p.stats.responses * kReplyBytes),
        kReplyBytes, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_server.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sweep = {100, 1'000, 10'000};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      sweep = {std::atoi(argv[++i])};
    } else {
      std::fprintf(stderr, "usage: %s [--connections N]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t fdLimit = raiseFdLimit();
  std::printf("=== Reactor: connection-count sweep (fd limit %zu) ===\n",
              fdLimit);
  std::printf("%12s %10s %12s %10s %10s %14s %9s\n", "connections",
              "requests", "req/s", "p50", "p99", "syscalls/req", "wakeups");
  // Client + server fds, epoll/eventfd handles, and stdio all share the
  // process-wide limit; clamp the top of the sweep to what fits rather
  // than silently dropping it.
  const int fdBudget = static_cast<int>((fdLimit - 64) / 2);
  std::vector<SweepPoint> points;
  for (int connections : sweep) {
    if (connections > fdBudget) {
      std::printf("%12d   clamped to %d (fd limit %zu)\n", connections,
                  fdBudget, fdLimit);
      connections = fdBudget;
    }
    if (!points.empty() && points.back().connections == connections) continue;
    SweepPoint point;
    if (!measure(connections, point)) return 1;
    points.push_back(point);
    std::printf("%12d %10d %12.0f %8.1fus %8.1fus %14.2f %9llu\n",
                point.connections, point.totalRequests, point.requestsPerSec,
                point.p50Us, point.p99Us, syscallsPerRequest(point.stats),
                static_cast<unsigned long long>(point.stats.eventfdWakeups));
  }
  if (points.empty()) return 1;
  std::printf("(1-CPU container: absolute req/s is a floor — the structural "
              "wins are 1 reactor thread vs thread-per-connection, ~flat "
              "syscalls/request, and zero-copy shared replies)\n");
  writeJson(points);
  return 0;
}
