// Trace-query service throughput: queries/sec and p99 latency for window
// queries against one TraceService, swept over the frame-cache byte
// budget. "cold" touches every frame once through an empty cache (every
// query decodes from disk); "warm" replays a small working set of
// windows that stays resident — the interactive case the server exists
// for (a viewer panning around one region). Prints the sweep, then runs
// microbenchmarks including a full TCP round trip.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "server/client.h"
#include "server/server.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

std::string gSlog;
Tick gStart = 0;
Tick gEnd = 0;

/// Distinct windows tiling the whole run (cold sweep: every frame gets
/// touched) — each spans ~1/32 of the run.
std::vector<WindowQuery> tilingWindows() {
  std::vector<WindowQuery> out;
  const Tick span = (gEnd - gStart) / 32;
  for (int i = 0; i < 32; ++i) {
    WindowQuery q;
    q.t0 = gStart + i * span;
    q.t1 = std::min(gEnd, q.t0 + span + 1);
    out.push_back(q);
  }
  return out;
}

/// A small working set: 8 windows over one quarter of the run, the kind
/// of neighborhood a viewer pans around in.
std::vector<WindowQuery> workingSetWindows() {
  std::vector<WindowQuery> out;
  const Tick span = (gEnd - gStart) / 32;
  for (int i = 0; i < 8; ++i) {
    WindowQuery q;
    q.t0 = gStart + i * span;
    q.t1 = std::min(gEnd, q.t0 + span + 1);
    out.push_back(q);
  }
  return out;
}

struct RunStats {
  double queriesPerSec = 0;
  double p99Us = 0;
};

RunStats timeQueries(TraceService& service,
                     const std::vector<WindowQuery>& queries, int repeats) {
  std::vector<double> us;
  us.reserve(queries.size() * static_cast<std::size_t>(repeats));
  const auto total0 = benchutil::now();
  for (int r = 0; r < repeats; ++r) {
    for (const WindowQuery& q : queries) {
      const auto t0 = benchutil::now();
      benchmark::DoNotOptimize(service.window(0, q));
      us.push_back(benchutil::secondsSince(t0) * 1e6);
    }
  }
  const double totalSeconds = benchutil::secondsSince(total0);
  std::sort(us.begin(), us.end());
  RunStats stats;
  stats.queriesPerSec = static_cast<double>(us.size()) / totalSeconds;
  stats.p99Us = us[static_cast<std::size_t>(
      static_cast<double>(us.size() - 1) * 0.99)];
  return stats;
}

void printSweep() {
  TestProgramOptions workload;
  workload.iterations = 1200;
  PipelineOptions options;
  options.dir = makeScratchDir("bench_server");
  options.name = "serve";
  options.slog.recordsPerFrame = 256;  // plenty of frames to cache
  const PipelineResult run = runPipeline(testProgram(workload), options);
  gSlog = run.slogFile;

  // Total decoded size of every frame = the 100% budget.
  std::size_t allFrameBytes = 0;
  std::size_t frames = 0;
  {
    TraceService probe({gSlog});
    gStart = probe.trace(0).totalStart();
    gEnd = probe.trace(0).totalEnd();
    frames = probe.trace(0).frameIndex().size();
    for (std::size_t f = 0; f < frames; ++f) {
      allFrameBytes += FrameCache::frameBytes(*probe.frame(0, f));
    }
  }

  std::printf("=== Trace-query service: cache budget vs throughput ===\n");
  std::printf("(%zu frames, %.1f KiB decoded; windows span ~1/32 run)\n",
              frames, static_cast<double>(allFrameBytes) / 1024);
  std::printf("%10s %12s %10s %12s %10s %8s %8s\n", "budget", "cold q/s",
              "cold p99", "warm q/s", "warm p99", "hit%", "speedup");
  for (const double fraction : {0.05, 0.25, 0.5, 1.0}) {
    ServiceOptions serviceOptions;
    serviceOptions.cacheBytes = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction *
                                    static_cast<double>(allFrameBytes)));
    TraceService service({gSlog}, serviceOptions);
    // Cold: every frame decoded at least once, nothing resident yet.
    const RunStats cold = timeQueries(service, tilingWindows(), 1);
    // Warm: repeated working set (measured after one priming pass).
    timeQueries(service, workingSetWindows(), 1);
    const FrameCache::Stats before = service.cache().stats();
    const RunStats warm = timeQueries(service, workingSetWindows(), 32);
    const FrameCache::Stats after = service.cache().stats();
    const double lookups = static_cast<double>(
        (after.hits - before.hits) + (after.misses - before.misses));
    const double hitRate =
        100.0 * static_cast<double>(after.hits - before.hits) / lookups;
    std::printf("%9.0f%% %12.0f %8.1fus %12.0f %8.1fus %7.1f%% %7.1fx\n",
                fraction * 100, cold.queriesPerSec, cold.p99Us,
                warm.queriesPerSec, warm.p99Us, hitRate,
                warm.queriesPerSec / cold.queriesPerSec);
  }
  std::printf("(the interactive pan/zoom loop runs entirely out of cache "
              "once the budget covers its working set)\n\n");
}

void BM_WindowWarm(benchmark::State& state) {
  TraceService service({gSlog});
  WindowQuery q;
  q.t0 = gStart;
  q.t1 = gStart + (gEnd - gStart) / 32;
  benchmark::DoNotOptimize(service.window(0, q));  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.window(0, q));
  }
}
BENCHMARK(BM_WindowWarm)->Unit(benchmark::kMicrosecond);

void BM_WindowCold(benchmark::State& state) {
  TraceService service({gSlog});
  WindowQuery q;
  q.t0 = gStart;
  q.t1 = gStart + (gEnd - gStart) / 32;
  for (auto _ : state) {
    service.cache().clear();
    benchmark::DoNotOptimize(service.window(0, q));
  }
}
BENCHMARK(BM_WindowCold)->Unit(benchmark::kMicrosecond);

void BM_SummaryWholeRun(benchmark::State& state) {
  TraceService service({gSlog});
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.summary(0, gStart, gEnd));
  }
}
BENCHMARK(BM_SummaryWholeRun)->Unit(benchmark::kMicrosecond);

void BM_TcpWindowRoundTrip(benchmark::State& state) {
  TraceServer server({gSlog});
  TraceClient client("127.0.0.1", server.port());
  WindowQuery q;
  q.t0 = gStart;
  q.t1 = gStart + (gEnd - gStart) / 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.window(0, q));
  }
  server.stop();
}
BENCHMARK(BM_TcpWindowRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printSweep();
  return ute::benchutil::runBenchmarks(argc, argv);
}
