// Live streaming ingest throughput (docs/STREAMING.md): records/s
// through the full loopback path — producer encode, TCP framing, session
// threads, byte budget, resumable merge, SLOG frame sealing — plus the
// frame-seal cadence a tailing viewer experiences, written to
// BENCH_stream.json. Then microbenchmarks for the wire encode/decode
// and the in-process StreamMerger on its own (no sockets).
//
// Caveat (recorded in the JSON too): this runs in a 1-CPU container, so
// producers, session threads, and the merge thread time-slice one core.
// Records/s here is a floor — on real hardware the sessions and the
// merge overlap instead of interleaving.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "clock/clock_model.h"
#include "interval/standard_profile.h"
#include "stream/ingest_client.h"
#include "stream/ingest_protocol.h"
#include "stream/ingest_server.h"
#include "stream/live_feed.h"
#include "stream/stream_merger.h"

namespace {

using namespace ute;

constexpr int kNodes = 3;
constexpr int kRecordsPerNode = 50000;

std::string scratch(const std::string& name) {
  return (std::filesystem::path(makeScratchDir("bench_stream")) / name)
      .string();
}

std::vector<ThreadEntry> nodeThreads(NodeId node) {
  return {{node, 1000 + node, 10000 + node, node, 0, ThreadType::kMpi}};
}

/// Drift-free Running records, 1 ms every 2 ms — the bench measures the
/// transport and merge machinery, not clock math.
std::vector<std::vector<std::uint8_t>> runningRecords(NodeId node, int n) {
  std::vector<std::vector<std::uint8_t>> bodies;
  bodies.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Tick t = static_cast<Tick>(i) * 2 * kMs;
    const ByteWriter body =
        encodeRecordBody(makeIntervalType(kRunningState, Bebits::kComplete),
                         t, kMs, 0, node, 0);
    bodies.emplace_back(body.view().begin(), body.view().end());
  }
  return bodies;
}

void printArtifact() {
  const Profile profile = makeStandardProfile();
  std::vector<std::vector<std::vector<std::uint8_t>>> perNode;
  std::size_t totalBytes = 0;
  for (int node = 0; node < kNodes; ++node) {
    perNode.push_back(runningRecords(static_cast<NodeId>(node),
                                     kRecordsPerNode));
    for (const auto& body : perNode.back()) totalBytes += body.size();
  }

  LiveFeed feed;
  IngestServerOptions options;
  for (int node = 0; node < kNodes; ++node) {
    options.expectedNodes.push_back(static_cast<NodeId>(node));
  }
  options.outPath = scratch("bench.uti");
  options.slogPath = scratch("bench.slog");
  IngestServer ingest(profile, options, &feed);

  // Poll the live feed while the run streams: each newly sealed frame is
  // stamped, giving the seal cadence a tailing viewer would see.
  std::vector<double> sealSeconds;
  std::thread sealWatcher;
  const auto t0 = benchutil::now();
  sealWatcher = std::thread([&] {
    std::uint64_t seen = 0;
    while (!feed.finished()) {
      const std::uint64_t count = feed.frameCount();
      const double at = benchutil::secondsSince(t0);
      for (; seen < count; ++seen) sealSeconds.push_back(at);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const std::uint64_t count = feed.frameCount();
    const double at = benchutil::secondsSince(t0);
    for (; seen < count; ++seen) sealSeconds.push_back(at);
  });

  std::vector<std::thread> senders;
  double lastByeSeconds = 0;
  for (int node = 0; node < kNodes; ++node) {
    senders.emplace_back([&, node] {
      IngestClient client("127.0.0.1", ingest.port(),
                          static_cast<NodeId>(node));
      client.sendThreads(nodeThreads(static_cast<NodeId>(node)));
      client.sendClockPairs({}, /*final=*/true);
      for (const auto& body : perNode[static_cast<std::size_t>(node)]) {
        client.queueRecord(body);
      }
      client.bye();
    });
  }
  for (auto& t : senders) t.join();
  lastByeSeconds = benchutil::secondsSince(t0);
  const StreamMergeResult result = ingest.wait();
  const double totalSeconds = benchutil::secondsSince(t0);
  sealWatcher.join();

  const double recordsPerSec =
      static_cast<double>(result.recordsOut) / totalSeconds;
  double meanGapMs = 0;
  double maxGapMs = 0;
  for (std::size_t i = 1; i < sealSeconds.size(); ++i) {
    const double gap = (sealSeconds[i] - sealSeconds[i - 1]) * 1e3;
    meanGapMs += gap;
    maxGapMs = std::max(maxGapMs, gap);
  }
  if (sealSeconds.size() > 1) {
    meanGapMs /= static_cast<double>(sealSeconds.size() - 1);
  }
  const double finalSealMs =
      sealSeconds.empty() ? 0 : (totalSeconds - lastByeSeconds) * 1e3;

  std::printf("=== Streaming ingest: %d nodes x %d records, loopback ===\n",
              kNodes, kRecordsPerNode);
  std::printf("%llu records merged in %.3fs: %.0f records/s (%.1f MB/s "
              "wire payload)\n",
              static_cast<unsigned long long>(result.recordsOut),
              totalSeconds, recordsPerSec,
              static_cast<double>(totalBytes) / totalSeconds / 1e6);
  std::printf("%zu SLOG frames sealed; inter-seal gap mean %.2fms max "
              "%.2fms; last bye -> drained %.2fms\n",
              sealSeconds.size(), meanGapMs, maxGapMs, finalSealMs);
  std::printf("(1-CPU container: producers, sessions, and the merge share "
              "one core — treat records/s as a floor)\n");

  std::FILE* json = std::fopen("BENCH_stream.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_stream.json\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"workload\": \"%d synthetic nodes x %d records over "
               "loopback TCP\",\n"
               "  \"caveat\": \"1-CPU container: producers, session threads, "
               "and the merge thread time-slice one core; records/s is a "
               "floor for multi-core deployments\",\n",
               kNodes, kRecordsPerNode);
  std::fprintf(json,
               "  \"ingest\": {\"records\": %llu, \"payload_bytes\": %zu, "
               "\"seconds\": %.6f, \"records_per_second\": %.0f},\n",
               static_cast<unsigned long long>(result.recordsOut),
               totalBytes, totalSeconds, recordsPerSec);
  std::fprintf(json,
               "  \"frame_seal\": {\"frames\": %zu, \"mean_gap_ms\": %.3f, "
               "\"max_gap_ms\": %.3f, \"final_drain_ms\": %.3f}\n}\n",
               sealSeconds.size(), meanGapMs, maxGapMs, finalSealMs);
  std::fclose(json);
  std::printf("wrote BENCH_stream.json\n\n");
}

void BM_EncodeRecordsMessage(benchmark::State& state) {
  const auto bodies = runningRecords(0, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encodeIngestRecords(bodies));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeRecordsMessage)->Arg(64)->Arg(1024);

void BM_DecodeRecordsMessage(benchmark::State& state) {
  const auto bodies = runningRecords(0, static_cast<int>(state.range(0)));
  const ByteWriter message = encodeIngestRecords(bodies);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decodeIngestRecords(message.view()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeRecordsMessage)->Arg(64)->Arg(1024);

/// The resumable merge alone — no sockets, one drift-free input — to
/// separate merge cost from transport cost.
void BM_StreamMergerDrain(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  const auto bodies = runningRecords(0, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StreamMerger merger(profile);
    const std::size_t i = merger.addInput();
    merger.setThreads(i, nodeThreads(0));
    merger.setClockPairs(i, {}, /*final=*/true);
    merger.openOutput(scratch("drain.uti"));
    for (const auto& body : bodies) merger.addRecord(i, body);
    merger.advance();
    merger.closeInput(i);
    benchmark::DoNotOptimize(merger.finish());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamMergerDrain)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  return ute::benchutil::runBenchmarks(argc, argv);
}
