// Table 1: speed of the convert and slogmerge utilities as the raw event
// count scales — the paper's scalability claim is that sec/event stays
// roughly constant from 40 K to 11.2 M raw events (the test program with
// 4 MPI tasks of 4 threads each, run at different problem sizes).
//
// Prints the same two rows the paper reports, then runs per-event
// microbenchmarks on a mid-size trace. Set UTE_TABLE1_SMALL=1 to skip
// the two multi-million-event rows (for quick runs).
// A parallel-pipeline sweep (--jobs {1,2,4,8} by default, or {1,N} when
// run with --jobs N) reports per-stage speedup and records/s and writes
// BENCH_pipeline.json; each parallel run is byte-compared against the
// sequential reference before its numbers are reported.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "support/file_io.h"
#include "workloads/pipeline.h"
#include "convert/converter.h"
#include "interval/standard_profile.h"
#include "merge/merger.h"
#include "mpisim/mpi_runtime.h"
#include "sim/simulation.h"
#include "slog/slog_writer.h"
#include "support/text.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

struct SizedRun {
  std::uint64_t rawEvents = 0;
  std::vector<std::string> rawFiles;
  std::vector<std::string> intervalFiles;
  double convertSecPerEvent = 0;
  double slogmergeSecPerEvent = 0;
};

SizedRun runAtSize(const std::string& dir, std::uint64_t targetEvents) {
  SizedRun out;
  // Trace generation (not part of the utility timings).
  TestProgramOptions workload;
  workload.iterations = testProgramIterationsFor(targetEvents);
  SimulationConfig config = testProgram(workload);
  config.trace.filePrefix = dir + "/t" + std::to_string(targetEvents);
  {
    Simulation sim(std::move(config));
    MpiRuntime mpi(sim);
    sim.setMpiService(&mpi);
    sim.run();
    out.rawFiles = sim.traceFilePaths();
    for (NodeId n = 0; static_cast<std::size_t>(n) <
                       sim.config().nodes.size(); ++n) {
      out.rawEvents += sim.sessionStats(n).eventsCut;
    }
  }

  // Convert, timed (Table 1 row 1).
  auto t0 = benchutil::now();
  const auto converted =
      convertRun(out.rawFiles, dir + "/t" + std::to_string(targetEvents));
  out.convertSecPerEvent =
      benchutil::secondsSince(t0) / static_cast<double>(out.rawEvents);
  for (const auto& c : converted) out.intervalFiles.push_back(c.outputPath);

  // slogmerge (merge + SLOG emission in one pass), timed (row 2).
  const Profile profile = makeStandardProfile();
  std::vector<ThreadEntry> threads;
  std::map<std::uint32_t, std::string> markers;
  for (const std::string& path : out.intervalFiles) {
    IntervalFileReader reader(path);
    threads.insert(threads.end(), reader.threads().begin(),
                   reader.threads().end());
    for (const auto& [id, name] : reader.markers()) markers.emplace(id, name);
  }
  t0 = benchutil::now();
  {
    IntervalMerger merger(out.intervalFiles, profile);
    SlogWriter slog(dir + "/t" + std::to_string(targetEvents) + ".slog",
                    SlogOptions{}, profile, threads, markers);
    merger.mergeTo(dir + "/t" + std::to_string(targetEvents) + ".merged.uti",
                   [&slog](const RecordView& r) { slog.addRecord(r); });
    slog.close();
  }
  out.slogmergeSecPerEvent =
      benchutil::secondsSince(t0) / static_cast<double>(out.rawEvents);
  return out;
}

std::string gScratch;
std::vector<std::string> gMidIntervalFiles;
std::vector<std::string> gMidRawFiles;

void printTable1() {
  // The paper's six problem sizes (raw event counts).
  std::vector<std::uint64_t> sizes = {40282, 128378, 254225,
                                      641354, 4613568, 11216936};
  if (std::getenv("UTE_TABLE1_SMALL") != nullptr) sizes.resize(4);

  std::printf("=== Table 1: utility speed (sec/event), test program with 4 "
              "MPI tasks x 4 threads ===\n");
  std::vector<SizedRun> runs;
  for (std::uint64_t target : sizes) {
    runs.push_back(runAtSize(gScratch, target));
  }
  std::printf("%-24s", "# raw events");
  for (const SizedRun& r : runs) {
    std::printf(" %12s", withCommas(r.rawEvents).c_str());
  }
  std::printf("\n%-24s", "sec/event in convert");
  for (const SizedRun& r : runs) {
    std::printf(" %12.7f", r.convertSecPerEvent);
  }
  std::printf("\n%-24s", "sec/event in slogmerge");
  for (const SizedRun& r : runs) {
    std::printf(" %12.7f", r.slogmergeSecPerEvent);
  }
  const double first = runs.front().convertSecPerEvent;
  const double last = runs.back().convertSecPerEvent;
  std::printf("\nconvert sec/event ratio largest/smallest: %.2f "
              "(the paper's claim: roughly constant)\n\n",
              last / first);
  gMidRawFiles = runs[1].rawFiles;
  gMidIntervalFiles = runs[1].intervalFiles;
}

struct SweepPoint {
  int jobs = 1;
  double convertSeconds = 0;
  double mergeSeconds = 0;
  std::uint64_t records = 0;
  bool identical = true;  ///< outputs byte-identical to --jobs 1
};

/// Runs convert+slogmerge at each job count on one 4-node workload and
/// verifies the parallel outputs byte-match the sequential reference.
void printPipelineSweep(const std::vector<int>& jobsList) {
  std::printf("=== Parallel pipeline sweep: test program on 4 nodes ===\n");
  TestProgramOptions workload;
  workload.iterations = testProgramIterationsFor(
      std::getenv("UTE_TABLE1_SMALL") != nullptr ? 40282 : 641354);
  workload.nodes = 4;

  std::vector<SweepPoint> points;
  std::vector<std::vector<std::uint8_t>> reference;  // jobs=1 outputs
  std::string referenceMerged, referenceSlog;
  for (const int jobs : jobsList) {
    PipelineOptions options;
    options.dir = gScratch + "/sweep_j" + std::to_string(jobs);
    options.name = "sweep";
    options.convert.jobs = jobs;
    options.merge.jobs = jobs;
    const PipelineResult run =
        runPipeline(testProgram(workload), options);

    SweepPoint p;
    p.jobs = jobs;
    p.convertSeconds = run.convertSeconds;
    p.mergeSeconds = run.mergeSeconds;
    p.records = run.merge.recordsIn;
    if (reference.empty()) {
      for (const std::string& f : run.intervalFiles) {
        reference.push_back(readWholeFile(f));
      }
      referenceMerged = run.mergedFile;
      referenceSlog = run.slogFile;
    } else {
      for (std::size_t i = 0; i < run.intervalFiles.size(); ++i) {
        p.identical = p.identical &&
                      readWholeFile(run.intervalFiles[i]) == reference[i];
      }
      p.identical = p.identical && readWholeFile(run.mergedFile) ==
                                       readWholeFile(referenceMerged);
      p.identical = p.identical &&
                    readWholeFile(run.slogFile) == readWholeFile(referenceSlog);
    }
    points.push_back(p);
  }

  const double base =
      points.front().convertSeconds + points.front().mergeSeconds;
  std::printf("%6s %12s %12s %10s %14s %10s\n", "jobs", "convert(s)",
              "merge(s)", "speedup", "records/s", "identical");
  for (const SweepPoint& p : points) {
    const double total = p.convertSeconds + p.mergeSeconds;
    std::printf("%6d %12.3f %12.3f %9.2fx %14s %10s\n", p.jobs,
                p.convertSeconds, p.mergeSeconds,
                total == 0 ? 0.0 : base / total,
                withCommas(total == 0 ? 0
                                      : static_cast<std::uint64_t>(
                                            static_cast<double>(p.records) /
                                            total))
                    .c_str(),
                p.identical ? "yes" : "NO");
  }
  std::printf("\n");

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return;
  }
  std::fprintf(json, "{\n  \"workload\": \"test program, 4 nodes\",\n"
               "  \"records\": %llu,\n  \"points\": [\n",
               static_cast<unsigned long long>(points.front().records));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const double total = p.convertSeconds + p.mergeSeconds;
    std::fprintf(
        json,
        "    {\"jobs\": %d, \"convert_seconds\": %.6f, "
        "\"merge_seconds\": %.6f, \"speedup\": %.4f, "
        "\"records_per_second\": %.1f, \"identical_to_jobs1\": %s}%s\n",
        p.jobs, p.convertSeconds, p.mergeSeconds,
        total == 0 ? 0.0 : base / total,
        total == 0 ? 0.0 : static_cast<double>(p.records) / total,
        p.identical ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_pipeline.json\n\n");
}

void BM_ConvertPerEvent(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto results =
        convertRun(gMidRawFiles, gScratch + "/bm_convert");
    for (const auto& r : results) events += r.rawEvents;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ConvertPerEvent)->Unit(benchmark::kMillisecond);

void BM_SlogmergePerEvent(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalMerger merger(gMidIntervalFiles, profile);
    SlogWriter slog(gScratch + "/bm.slog", SlogOptions{}, profile, {}, {});
    const MergeResult result = merger.mergeTo(
        gScratch + "/bm.merged.uti",
        [&slog](const RecordView& r) { slog.addRecord(r); });
    slog.close();
    records += result.recordsIn;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SlogmergePerEvent)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip a leading-edge --jobs N (benchmark::Initialize rejects unknown
  // flags): when given, sweep {1, N} instead of the default ladder.
  std::vector<int> jobsList = {1, 2, 4, 8};
  std::vector<char*> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::strcmp(args[i], "--jobs") == 0 && i + 1 < args.size()) {
      jobsList = {1, std::atoi(args[i + 1])};
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  int newArgc = static_cast<int>(args.size());

  gScratch = ute::makeScratchDir("bench_table1");
  printTable1();
  printPipelineSweep(jobsList);
  return ute::benchutil::runBenchmarks(newArgc, args.data());
}
