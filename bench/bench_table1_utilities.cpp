// Table 1: speed of the convert and slogmerge utilities as the raw event
// count scales — the paper's scalability claim is that sec/event stays
// roughly constant from 40 K to 11.2 M raw events (the test program with
// 4 MPI tasks of 4 threads each, run at different problem sizes).
//
// Prints the same two rows the paper reports, then runs per-event
// microbenchmarks on a mid-size trace. Set UTE_TABLE1_SMALL=1 to skip
// the two multi-million-event rows (for quick runs).
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_util.h"
#include "convert/converter.h"
#include "interval/standard_profile.h"
#include "merge/merger.h"
#include "mpisim/mpi_runtime.h"
#include "sim/simulation.h"
#include "slog/slog_writer.h"
#include "support/text.h"
#include "workloads/workloads.h"

namespace {

using namespace ute;

struct SizedRun {
  std::uint64_t rawEvents = 0;
  std::vector<std::string> rawFiles;
  std::vector<std::string> intervalFiles;
  double convertSecPerEvent = 0;
  double slogmergeSecPerEvent = 0;
};

SizedRun runAtSize(const std::string& dir, std::uint64_t targetEvents) {
  SizedRun out;
  // Trace generation (not part of the utility timings).
  TestProgramOptions workload;
  workload.iterations = testProgramIterationsFor(targetEvents);
  SimulationConfig config = testProgram(workload);
  config.trace.filePrefix = dir + "/t" + std::to_string(targetEvents);
  {
    Simulation sim(std::move(config));
    MpiRuntime mpi(sim);
    sim.setMpiService(&mpi);
    sim.run();
    out.rawFiles = sim.traceFilePaths();
    for (NodeId n = 0; static_cast<std::size_t>(n) <
                       sim.config().nodes.size(); ++n) {
      out.rawEvents += sim.sessionStats(n).eventsCut;
    }
  }

  // Convert, timed (Table 1 row 1).
  auto t0 = benchutil::now();
  const auto converted =
      convertRun(out.rawFiles, dir + "/t" + std::to_string(targetEvents));
  out.convertSecPerEvent =
      benchutil::secondsSince(t0) / static_cast<double>(out.rawEvents);
  for (const auto& c : converted) out.intervalFiles.push_back(c.outputPath);

  // slogmerge (merge + SLOG emission in one pass), timed (row 2).
  const Profile profile = makeStandardProfile();
  std::vector<ThreadEntry> threads;
  std::map<std::uint32_t, std::string> markers;
  for (const std::string& path : out.intervalFiles) {
    IntervalFileReader reader(path);
    threads.insert(threads.end(), reader.threads().begin(),
                   reader.threads().end());
    for (const auto& [id, name] : reader.markers()) markers.emplace(id, name);
  }
  t0 = benchutil::now();
  {
    IntervalMerger merger(out.intervalFiles, profile);
    SlogWriter slog(dir + "/t" + std::to_string(targetEvents) + ".slog",
                    SlogOptions{}, profile, threads, markers);
    merger.mergeTo(dir + "/t" + std::to_string(targetEvents) + ".merged.uti",
                   [&slog](const RecordView& r) { slog.addRecord(r); });
    slog.close();
  }
  out.slogmergeSecPerEvent =
      benchutil::secondsSince(t0) / static_cast<double>(out.rawEvents);
  return out;
}

std::string gScratch;
std::vector<std::string> gMidIntervalFiles;
std::vector<std::string> gMidRawFiles;

void printTable1() {
  // The paper's six problem sizes (raw event counts).
  std::vector<std::uint64_t> sizes = {40282, 128378, 254225,
                                      641354, 4613568, 11216936};
  if (std::getenv("UTE_TABLE1_SMALL") != nullptr) sizes.resize(4);

  std::printf("=== Table 1: utility speed (sec/event), test program with 4 "
              "MPI tasks x 4 threads ===\n");
  std::vector<SizedRun> runs;
  for (std::uint64_t target : sizes) {
    runs.push_back(runAtSize(gScratch, target));
  }
  std::printf("%-24s", "# raw events");
  for (const SizedRun& r : runs) {
    std::printf(" %12s", withCommas(r.rawEvents).c_str());
  }
  std::printf("\n%-24s", "sec/event in convert");
  for (const SizedRun& r : runs) {
    std::printf(" %12.7f", r.convertSecPerEvent);
  }
  std::printf("\n%-24s", "sec/event in slogmerge");
  for (const SizedRun& r : runs) {
    std::printf(" %12.7f", r.slogmergeSecPerEvent);
  }
  const double first = runs.front().convertSecPerEvent;
  const double last = runs.back().convertSecPerEvent;
  std::printf("\nconvert sec/event ratio largest/smallest: %.2f "
              "(the paper's claim: roughly constant)\n\n",
              last / first);
  gMidRawFiles = runs[1].rawFiles;
  gMidIntervalFiles = runs[1].intervalFiles;
}

void BM_ConvertPerEvent(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto results =
        convertRun(gMidRawFiles, gScratch + "/bm_convert");
    for (const auto& r : results) events += r.rawEvents;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ConvertPerEvent)->Unit(benchmark::kMillisecond);

void BM_SlogmergePerEvent(benchmark::State& state) {
  const Profile profile = makeStandardProfile();
  std::uint64_t records = 0;
  for (auto _ : state) {
    IntervalMerger merger(gMidIntervalFiles, profile);
    SlogWriter slog(gScratch + "/bm.slog", SlogOptions{}, profile, {}, {});
    const MergeResult result = merger.mergeTo(
        gScratch + "/bm.merged.uti",
        [&slog](const RecordView& r) { slog.addRecord(r); });
    slog.close();
    records += result.recordsIn;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SlogmergePerEvent)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  gScratch = ute::makeScratchDir("bench_table1");
  printTable1();
  return ute::benchutil::runBenchmarks(argc, argv);
}
