// Section 2.1: "the average cost of cutting a trace record is fairly
// small (a small fraction of one micro second)" for the enablement test
// plus the trace-buffer insertion of a typical record (one hookword, one
// timestamp word, three data words).
//
// Prints the measured per-record cost, then benchmarks the three parts
// the paper identifies: (1) the enable test alone (a suppressed event),
// (2) enable test + buffer insertion, (3) the wrapper payload encoding.
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "trace/writer.h"

namespace {

using namespace ute;

std::string tracePrefix() {
  return (std::filesystem::temp_directory_path() / "bench_trace_cost")
      .string();
}

void printRecordCost() {
  TraceOptions options;
  options.filePrefix = tracePrefix();
  options.bufferSizeBytes = 8 << 20;
  TraceSession session(options, 0, 1);
  const ByteWriter payload = payloadThreadDispatch(1, 2);  // 3 words

  constexpr int kRecords = 2'000'000;
  const auto t0 = benchutil::now();
  for (int i = 0; i < kRecords; ++i) {
    session.cut(EventType::kThreadDispatch, 0, 0, 1,
                static_cast<Tick>(i) * 50, payload.view());
  }
  const double perRecordUs =
      benchutil::secondsSince(t0) / kRecords * 1e6;
  std::printf("=== Section 2.1: cost of cutting a trace record ===\n");
  std::printf("typical record (hookword + timestamp + 3 data words): "
              "%.4f us/record\n", perRecordUs);
  std::printf("the paper's claim: \"a small fraction of one micro second\" "
              "-> %s\n\n", perRecordUs < 1.0 ? "reproduced" : "NOT met");
}

void BM_EnableTestOnly(benchmark::State& state) {
  TraceOptions options;
  options.filePrefix = tracePrefix() + "_sup";
  options.enabledClasses = 0;  // everything but control suppressed
  TraceSession session(options, 0, 1);
  const ByteWriter payload = payloadThreadDispatch(1, 2);
  Tick t = 0;
  for (auto _ : state) {
    session.cut(EventType::kThreadDispatch, 0, 0, 1, t += 50,
                payload.view());
  }
}
BENCHMARK(BM_EnableTestOnly);

void BM_CutDispatchRecord(benchmark::State& state) {
  TraceOptions options;
  options.filePrefix = tracePrefix() + "_cut";
  options.bufferSizeBytes = 8 << 20;
  TraceSession session(options, 0, 1);
  const ByteWriter payload = payloadThreadDispatch(1, 2);
  Tick t = 0;
  for (auto _ : state) {
    session.cut(EventType::kThreadDispatch, 0, 0, 1, t += 50,
                payload.view());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CutDispatchRecord);

void BM_CutMpiSendRecord(benchmark::State& state) {
  // Includes the wrapper's payload encoding (part three of the cost).
  TraceOptions options;
  options.filePrefix = tracePrefix() + "_send";
  options.bufferSizeBytes = 8 << 20;
  TraceSession session(options, 0, 1);
  Tick t = 0;
  for (auto _ : state) {
    session.cut(EventType::kMpiSend, kFlagBegin, 0, 1, t += 50,
                payloadMpiSend(3, 17, 4096, 42, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CutMpiSendRecord);

}  // namespace

int main(int argc, char** argv) {
  printRecordCost();
  return ute::benchutil::runBenchmarks(argc, argv);
}
