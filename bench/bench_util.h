// Shared helpers for the benchmark binaries: each bench first prints the
// paper artifact it reproduces (the table rows / figure series), then
// runs its google-benchmark microbenchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "workloads/pipeline.h"

namespace ute::benchutil {

inline double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline std::chrono::steady_clock::time_point now() {
  return std::chrono::steady_clock::now();
}

/// Standard bench main body: print the artifact, then run benchmarks.
inline int runBenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ute::benchutil
