# Empty compiler generated dependencies file for bench_ablation_clock_estimators.
# This may be replaced when dependencies are built.
