# Empty dependencies file for bench_fig6_stats.
# This may be replaced when dependencies are built.
