file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_preview.dir/bench_fig7_preview.cpp.o"
  "CMakeFiles/bench_fig7_preview.dir/bench_fig7_preview.cpp.o.d"
  "bench_fig7_preview"
  "bench_fig7_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
