file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_thread_view.dir/bench_fig8_thread_view.cpp.o"
  "CMakeFiles/bench_fig8_thread_view.dir/bench_fig8_thread_view.cpp.o.d"
  "bench_fig8_thread_view"
  "bench_fig8_thread_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_thread_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
