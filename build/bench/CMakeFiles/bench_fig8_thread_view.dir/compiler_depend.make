# Empty compiler generated dependencies file for bench_fig8_thread_view.
# This may be replaced when dependencies are built.
