file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_processor_view.dir/bench_fig9_processor_view.cpp.o"
  "CMakeFiles/bench_fig9_processor_view.dir/bench_fig9_processor_view.cpp.o.d"
  "bench_fig9_processor_view"
  "bench_fig9_processor_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_processor_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
