# Empty compiler generated dependencies file for bench_fig9_processor_view.
# This may be replaced when dependencies are built.
