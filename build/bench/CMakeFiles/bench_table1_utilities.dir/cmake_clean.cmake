file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_utilities.dir/bench_table1_utilities.cpp.o"
  "CMakeFiles/bench_table1_utilities.dir/bench_table1_utilities.cpp.o.d"
  "bench_table1_utilities"
  "bench_table1_utilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_utilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
