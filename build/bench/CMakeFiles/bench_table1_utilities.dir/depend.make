# Empty dependencies file for bench_table1_utilities.
# This may be replaced when dependencies are built.
