file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_record_cost.dir/bench_trace_record_cost.cpp.o"
  "CMakeFiles/bench_trace_record_cost.dir/bench_trace_record_cost.cpp.o.d"
  "bench_trace_record_cost"
  "bench_trace_record_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_record_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
