# Empty compiler generated dependencies file for bench_trace_record_cost.
# This may be replaced when dependencies are built.
