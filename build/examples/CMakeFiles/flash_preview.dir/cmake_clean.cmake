file(REMOVE_RECURSE
  "CMakeFiles/flash_preview.dir/flash_preview.cpp.o"
  "CMakeFiles/flash_preview.dir/flash_preview.cpp.o.d"
  "flash_preview"
  "flash_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
