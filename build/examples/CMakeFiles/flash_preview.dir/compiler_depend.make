# Empty compiler generated dependencies file for flash_preview.
# This may be replaced when dependencies are built.
