file(REMOVE_RECURSE
  "CMakeFiles/sppm_views.dir/sppm_views.cpp.o"
  "CMakeFiles/sppm_views.dir/sppm_views.cpp.o.d"
  "sppm_views"
  "sppm_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppm_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
