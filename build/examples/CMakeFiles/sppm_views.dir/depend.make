# Empty dependencies file for sppm_views.
# This may be replaced when dependencies are built.
