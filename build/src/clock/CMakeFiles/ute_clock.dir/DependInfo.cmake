
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/clock_model.cpp" "src/clock/CMakeFiles/ute_clock.dir/clock_model.cpp.o" "gcc" "src/clock/CMakeFiles/ute_clock.dir/clock_model.cpp.o.d"
  "/root/repo/src/clock/drift_study.cpp" "src/clock/CMakeFiles/ute_clock.dir/drift_study.cpp.o" "gcc" "src/clock/CMakeFiles/ute_clock.dir/drift_study.cpp.o.d"
  "/root/repo/src/clock/sync.cpp" "src/clock/CMakeFiles/ute_clock.dir/sync.cpp.o" "gcc" "src/clock/CMakeFiles/ute_clock.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
