file(REMOVE_RECURSE
  "CMakeFiles/ute_clock.dir/clock_model.cpp.o"
  "CMakeFiles/ute_clock.dir/clock_model.cpp.o.d"
  "CMakeFiles/ute_clock.dir/drift_study.cpp.o"
  "CMakeFiles/ute_clock.dir/drift_study.cpp.o.d"
  "CMakeFiles/ute_clock.dir/sync.cpp.o"
  "CMakeFiles/ute_clock.dir/sync.cpp.o.d"
  "libute_clock.a"
  "libute_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
