file(REMOVE_RECURSE
  "libute_clock.a"
)
