# Empty dependencies file for ute_clock.
# This may be replaced when dependencies are built.
