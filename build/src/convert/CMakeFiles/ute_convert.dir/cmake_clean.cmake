file(REMOVE_RECURSE
  "CMakeFiles/ute_convert.dir/converter.cpp.o"
  "CMakeFiles/ute_convert.dir/converter.cpp.o.d"
  "libute_convert.a"
  "libute_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
