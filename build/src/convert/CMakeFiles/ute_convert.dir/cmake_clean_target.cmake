file(REMOVE_RECURSE
  "libute_convert.a"
)
