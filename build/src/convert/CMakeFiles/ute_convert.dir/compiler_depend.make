# Empty compiler generated dependencies file for ute_convert.
# This may be replaced when dependencies are built.
