# Empty dependencies file for ute_convert.
# This may be replaced when dependencies are built.
