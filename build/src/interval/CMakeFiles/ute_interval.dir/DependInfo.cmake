
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/file_reader.cpp" "src/interval/CMakeFiles/ute_interval.dir/file_reader.cpp.o" "gcc" "src/interval/CMakeFiles/ute_interval.dir/file_reader.cpp.o.d"
  "/root/repo/src/interval/file_writer.cpp" "src/interval/CMakeFiles/ute_interval.dir/file_writer.cpp.o" "gcc" "src/interval/CMakeFiles/ute_interval.dir/file_writer.cpp.o.d"
  "/root/repo/src/interval/profile.cpp" "src/interval/CMakeFiles/ute_interval.dir/profile.cpp.o" "gcc" "src/interval/CMakeFiles/ute_interval.dir/profile.cpp.o.d"
  "/root/repo/src/interval/record.cpp" "src/interval/CMakeFiles/ute_interval.dir/record.cpp.o" "gcc" "src/interval/CMakeFiles/ute_interval.dir/record.cpp.o.d"
  "/root/repo/src/interval/standard_profile.cpp" "src/interval/CMakeFiles/ute_interval.dir/standard_profile.cpp.o" "gcc" "src/interval/CMakeFiles/ute_interval.dir/standard_profile.cpp.o.d"
  "/root/repo/src/interval/ute_api.cpp" "src/interval/CMakeFiles/ute_interval.dir/ute_api.cpp.o" "gcc" "src/interval/CMakeFiles/ute_interval.dir/ute_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
