file(REMOVE_RECURSE
  "CMakeFiles/ute_interval.dir/file_reader.cpp.o"
  "CMakeFiles/ute_interval.dir/file_reader.cpp.o.d"
  "CMakeFiles/ute_interval.dir/file_writer.cpp.o"
  "CMakeFiles/ute_interval.dir/file_writer.cpp.o.d"
  "CMakeFiles/ute_interval.dir/profile.cpp.o"
  "CMakeFiles/ute_interval.dir/profile.cpp.o.d"
  "CMakeFiles/ute_interval.dir/record.cpp.o"
  "CMakeFiles/ute_interval.dir/record.cpp.o.d"
  "CMakeFiles/ute_interval.dir/standard_profile.cpp.o"
  "CMakeFiles/ute_interval.dir/standard_profile.cpp.o.d"
  "CMakeFiles/ute_interval.dir/ute_api.cpp.o"
  "CMakeFiles/ute_interval.dir/ute_api.cpp.o.d"
  "libute_interval.a"
  "libute_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
