file(REMOVE_RECURSE
  "libute_interval.a"
)
