# Empty compiler generated dependencies file for ute_interval.
# This may be replaced when dependencies are built.
