file(REMOVE_RECURSE
  "CMakeFiles/ute_merge.dir/merger.cpp.o"
  "CMakeFiles/ute_merge.dir/merger.cpp.o.d"
  "libute_merge.a"
  "libute_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
