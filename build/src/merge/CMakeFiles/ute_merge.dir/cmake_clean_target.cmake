file(REMOVE_RECURSE
  "libute_merge.a"
)
