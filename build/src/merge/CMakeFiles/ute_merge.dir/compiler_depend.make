# Empty compiler generated dependencies file for ute_merge.
# This may be replaced when dependencies are built.
