# CMake generated Testfile for 
# Source directory: /root/repo/src/merge
# Build directory: /root/repo/build/src/merge
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
