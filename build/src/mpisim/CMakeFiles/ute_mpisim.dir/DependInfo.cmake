
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/mpi_runtime.cpp" "src/mpisim/CMakeFiles/ute_mpisim.dir/mpi_runtime.cpp.o" "gcc" "src/mpisim/CMakeFiles/ute_mpisim.dir/mpi_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
