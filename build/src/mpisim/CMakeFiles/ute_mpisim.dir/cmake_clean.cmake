file(REMOVE_RECURSE
  "CMakeFiles/ute_mpisim.dir/mpi_runtime.cpp.o"
  "CMakeFiles/ute_mpisim.dir/mpi_runtime.cpp.o.d"
  "libute_mpisim.a"
  "libute_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
