file(REMOVE_RECURSE
  "libute_mpisim.a"
)
