# Empty dependencies file for ute_mpisim.
# This may be replaced when dependencies are built.
