file(REMOVE_RECURSE
  "CMakeFiles/ute_sim.dir/engine.cpp.o"
  "CMakeFiles/ute_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ute_sim.dir/program.cpp.o"
  "CMakeFiles/ute_sim.dir/program.cpp.o.d"
  "CMakeFiles/ute_sim.dir/simulation.cpp.o"
  "CMakeFiles/ute_sim.dir/simulation.cpp.o.d"
  "libute_sim.a"
  "libute_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
