file(REMOVE_RECURSE
  "libute_sim.a"
)
