# Empty compiler generated dependencies file for ute_sim.
# This may be replaced when dependencies are built.
