
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slog/preview.cpp" "src/slog/CMakeFiles/ute_slog.dir/preview.cpp.o" "gcc" "src/slog/CMakeFiles/ute_slog.dir/preview.cpp.o.d"
  "/root/repo/src/slog/slog_reader.cpp" "src/slog/CMakeFiles/ute_slog.dir/slog_reader.cpp.o" "gcc" "src/slog/CMakeFiles/ute_slog.dir/slog_reader.cpp.o.d"
  "/root/repo/src/slog/slog_writer.cpp" "src/slog/CMakeFiles/ute_slog.dir/slog_writer.cpp.o" "gcc" "src/slog/CMakeFiles/ute_slog.dir/slog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/ute_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
