file(REMOVE_RECURSE
  "CMakeFiles/ute_slog.dir/preview.cpp.o"
  "CMakeFiles/ute_slog.dir/preview.cpp.o.d"
  "CMakeFiles/ute_slog.dir/slog_reader.cpp.o"
  "CMakeFiles/ute_slog.dir/slog_reader.cpp.o.d"
  "CMakeFiles/ute_slog.dir/slog_writer.cpp.o"
  "CMakeFiles/ute_slog.dir/slog_writer.cpp.o.d"
  "libute_slog.a"
  "libute_slog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_slog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
