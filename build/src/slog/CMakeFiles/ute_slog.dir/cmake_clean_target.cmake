file(REMOVE_RECURSE
  "libute_slog.a"
)
