# Empty dependencies file for ute_slog.
# This may be replaced when dependencies are built.
