
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/engine.cpp" "src/stats/CMakeFiles/ute_stats.dir/engine.cpp.o" "gcc" "src/stats/CMakeFiles/ute_stats.dir/engine.cpp.o.d"
  "/root/repo/src/stats/lexer.cpp" "src/stats/CMakeFiles/ute_stats.dir/lexer.cpp.o" "gcc" "src/stats/CMakeFiles/ute_stats.dir/lexer.cpp.o.d"
  "/root/repo/src/stats/parser.cpp" "src/stats/CMakeFiles/ute_stats.dir/parser.cpp.o" "gcc" "src/stats/CMakeFiles/ute_stats.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/ute_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
