file(REMOVE_RECURSE
  "CMakeFiles/ute_stats.dir/engine.cpp.o"
  "CMakeFiles/ute_stats.dir/engine.cpp.o.d"
  "CMakeFiles/ute_stats.dir/lexer.cpp.o"
  "CMakeFiles/ute_stats.dir/lexer.cpp.o.d"
  "CMakeFiles/ute_stats.dir/parser.cpp.o"
  "CMakeFiles/ute_stats.dir/parser.cpp.o.d"
  "libute_stats.a"
  "libute_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
