file(REMOVE_RECURSE
  "libute_stats.a"
)
