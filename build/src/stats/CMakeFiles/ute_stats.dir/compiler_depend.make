# Empty compiler generated dependencies file for ute_stats.
# This may be replaced when dependencies are built.
