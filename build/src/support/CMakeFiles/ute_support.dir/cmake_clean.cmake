file(REMOVE_RECURSE
  "CMakeFiles/ute_support.dir/bytes.cpp.o"
  "CMakeFiles/ute_support.dir/bytes.cpp.o.d"
  "CMakeFiles/ute_support.dir/cli.cpp.o"
  "CMakeFiles/ute_support.dir/cli.cpp.o.d"
  "CMakeFiles/ute_support.dir/file_io.cpp.o"
  "CMakeFiles/ute_support.dir/file_io.cpp.o.d"
  "CMakeFiles/ute_support.dir/text.cpp.o"
  "CMakeFiles/ute_support.dir/text.cpp.o.d"
  "libute_support.a"
  "libute_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
