file(REMOVE_RECURSE
  "libute_support.a"
)
