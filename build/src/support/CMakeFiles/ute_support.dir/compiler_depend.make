# Empty compiler generated dependencies file for ute_support.
# This may be replaced when dependencies are built.
