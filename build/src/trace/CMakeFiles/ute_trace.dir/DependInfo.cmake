
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/events.cpp" "src/trace/CMakeFiles/ute_trace.dir/events.cpp.o" "gcc" "src/trace/CMakeFiles/ute_trace.dir/events.cpp.o.d"
  "/root/repo/src/trace/marker_registry.cpp" "src/trace/CMakeFiles/ute_trace.dir/marker_registry.cpp.o" "gcc" "src/trace/CMakeFiles/ute_trace.dir/marker_registry.cpp.o.d"
  "/root/repo/src/trace/reader.cpp" "src/trace/CMakeFiles/ute_trace.dir/reader.cpp.o" "gcc" "src/trace/CMakeFiles/ute_trace.dir/reader.cpp.o.d"
  "/root/repo/src/trace/writer.cpp" "src/trace/CMakeFiles/ute_trace.dir/writer.cpp.o" "gcc" "src/trace/CMakeFiles/ute_trace.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
