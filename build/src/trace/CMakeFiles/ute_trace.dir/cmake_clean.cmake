file(REMOVE_RECURSE
  "CMakeFiles/ute_trace.dir/events.cpp.o"
  "CMakeFiles/ute_trace.dir/events.cpp.o.d"
  "CMakeFiles/ute_trace.dir/marker_registry.cpp.o"
  "CMakeFiles/ute_trace.dir/marker_registry.cpp.o.d"
  "CMakeFiles/ute_trace.dir/reader.cpp.o"
  "CMakeFiles/ute_trace.dir/reader.cpp.o.d"
  "CMakeFiles/ute_trace.dir/writer.cpp.o"
  "CMakeFiles/ute_trace.dir/writer.cpp.o.d"
  "libute_trace.a"
  "libute_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
