file(REMOVE_RECURSE
  "libute_trace.a"
)
