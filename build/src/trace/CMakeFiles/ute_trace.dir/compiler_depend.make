# Empty compiler generated dependencies file for ute_trace.
# This may be replaced when dependencies are built.
