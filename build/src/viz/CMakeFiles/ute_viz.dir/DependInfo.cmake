
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/ascii_render.cpp" "src/viz/CMakeFiles/ute_viz.dir/ascii_render.cpp.o" "gcc" "src/viz/CMakeFiles/ute_viz.dir/ascii_render.cpp.o.d"
  "/root/repo/src/viz/report.cpp" "src/viz/CMakeFiles/ute_viz.dir/report.cpp.o" "gcc" "src/viz/CMakeFiles/ute_viz.dir/report.cpp.o.d"
  "/root/repo/src/viz/stats_viewer.cpp" "src/viz/CMakeFiles/ute_viz.dir/stats_viewer.cpp.o" "gcc" "src/viz/CMakeFiles/ute_viz.dir/stats_viewer.cpp.o.d"
  "/root/repo/src/viz/svg_render.cpp" "src/viz/CMakeFiles/ute_viz.dir/svg_render.cpp.o" "gcc" "src/viz/CMakeFiles/ute_viz.dir/svg_render.cpp.o.d"
  "/root/repo/src/viz/timeline_model.cpp" "src/viz/CMakeFiles/ute_viz.dir/timeline_model.cpp.o" "gcc" "src/viz/CMakeFiles/ute_viz.dir/timeline_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/ute_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/slog/CMakeFiles/ute_slog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
