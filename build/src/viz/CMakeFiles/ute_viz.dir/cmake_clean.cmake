file(REMOVE_RECURSE
  "CMakeFiles/ute_viz.dir/ascii_render.cpp.o"
  "CMakeFiles/ute_viz.dir/ascii_render.cpp.o.d"
  "CMakeFiles/ute_viz.dir/report.cpp.o"
  "CMakeFiles/ute_viz.dir/report.cpp.o.d"
  "CMakeFiles/ute_viz.dir/stats_viewer.cpp.o"
  "CMakeFiles/ute_viz.dir/stats_viewer.cpp.o.d"
  "CMakeFiles/ute_viz.dir/svg_render.cpp.o"
  "CMakeFiles/ute_viz.dir/svg_render.cpp.o.d"
  "CMakeFiles/ute_viz.dir/timeline_model.cpp.o"
  "CMakeFiles/ute_viz.dir/timeline_model.cpp.o.d"
  "libute_viz.a"
  "libute_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
