file(REMOVE_RECURSE
  "libute_viz.a"
)
