# Empty dependencies file for ute_viz.
# This may be replaced when dependencies are built.
