file(REMOVE_RECURSE
  "CMakeFiles/ute_workloads.dir/pipeline.cpp.o"
  "CMakeFiles/ute_workloads.dir/pipeline.cpp.o.d"
  "CMakeFiles/ute_workloads.dir/workloads.cpp.o"
  "CMakeFiles/ute_workloads.dir/workloads.cpp.o.d"
  "libute_workloads.a"
  "libute_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ute_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
