file(REMOVE_RECURSE
  "libute_workloads.a"
)
