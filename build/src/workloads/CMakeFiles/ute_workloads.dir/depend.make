# Empty dependencies file for ute_workloads.
# This may be replaced when dependencies are built.
