file(REMOVE_RECURSE
  "CMakeFiles/clock_tests.dir/clock/clock_model_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clock/clock_model_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/clock/drift_study_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clock/drift_study_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/clock/sync_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clock/sync_test.cpp.o.d"
  "clock_tests"
  "clock_tests.pdb"
  "clock_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
