file(REMOVE_RECURSE
  "CMakeFiles/convert_tests.dir/convert/convert_test.cpp.o"
  "CMakeFiles/convert_tests.dir/convert/convert_test.cpp.o.d"
  "convert_tests"
  "convert_tests.pdb"
  "convert_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
