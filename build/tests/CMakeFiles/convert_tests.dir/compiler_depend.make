# Empty compiler generated dependencies file for convert_tests.
# This may be replaced when dependencies are built.
