file(REMOVE_RECURSE
  "CMakeFiles/interval_tests.dir/interval/api_test.cpp.o"
  "CMakeFiles/interval_tests.dir/interval/api_test.cpp.o.d"
  "CMakeFiles/interval_tests.dir/interval/corruption_test.cpp.o"
  "CMakeFiles/interval_tests.dir/interval/corruption_test.cpp.o.d"
  "CMakeFiles/interval_tests.dir/interval/field_test.cpp.o"
  "CMakeFiles/interval_tests.dir/interval/field_test.cpp.o.d"
  "CMakeFiles/interval_tests.dir/interval/file_roundtrip_test.cpp.o"
  "CMakeFiles/interval_tests.dir/interval/file_roundtrip_test.cpp.o.d"
  "CMakeFiles/interval_tests.dir/interval/profile_test.cpp.o"
  "CMakeFiles/interval_tests.dir/interval/profile_test.cpp.o.d"
  "CMakeFiles/interval_tests.dir/interval/record_test.cpp.o"
  "CMakeFiles/interval_tests.dir/interval/record_test.cpp.o.d"
  "interval_tests"
  "interval_tests.pdb"
  "interval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
