# Empty dependencies file for interval_tests.
# This may be replaced when dependencies are built.
