file(REMOVE_RECURSE
  "CMakeFiles/merge_tests.dir/merge/merge_test.cpp.o"
  "CMakeFiles/merge_tests.dir/merge/merge_test.cpp.o.d"
  "CMakeFiles/merge_tests.dir/merge/tournament_tree_test.cpp.o"
  "CMakeFiles/merge_tests.dir/merge/tournament_tree_test.cpp.o.d"
  "merge_tests"
  "merge_tests.pdb"
  "merge_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
