# Empty compiler generated dependencies file for merge_tests.
# This may be replaced when dependencies are built.
