
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpisim/collectives_test.cpp" "tests/CMakeFiles/mpisim_tests.dir/mpisim/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/mpisim_tests.dir/mpisim/collectives_test.cpp.o.d"
  "/root/repo/tests/mpisim/mpi_runtime_test.cpp" "tests/CMakeFiles/mpisim_tests.dir/mpisim/mpi_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/mpisim_tests.dir/mpisim/mpi_runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ute_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/ute_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/ute_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/ute_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/ute_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/slog/CMakeFiles/ute_slog.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/ute_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ute_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ute_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
