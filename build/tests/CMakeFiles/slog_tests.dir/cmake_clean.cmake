file(REMOVE_RECURSE
  "CMakeFiles/slog_tests.dir/slog/preview_test.cpp.o"
  "CMakeFiles/slog_tests.dir/slog/preview_test.cpp.o.d"
  "CMakeFiles/slog_tests.dir/slog/slog_roundtrip_test.cpp.o"
  "CMakeFiles/slog_tests.dir/slog/slog_roundtrip_test.cpp.o.d"
  "slog_tests"
  "slog_tests.pdb"
  "slog_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
