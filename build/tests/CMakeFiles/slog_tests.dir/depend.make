# Empty dependencies file for slog_tests.
# This may be replaced when dependencies are built.
