# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/clock_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/mpisim_tests[1]_include.cmake")
include("/root/repo/build/tests/interval_tests[1]_include.cmake")
include("/root/repo/build/tests/convert_tests[1]_include.cmake")
include("/root/repo/build/tests/merge_tests[1]_include.cmake")
include("/root/repo/build/tests/slog_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/viz_tests[1]_include.cmake")
include("/root/repo/build/tests/cli_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
