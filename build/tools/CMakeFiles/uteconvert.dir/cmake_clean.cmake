file(REMOVE_RECURSE
  "CMakeFiles/uteconvert.dir/uteconvert.cpp.o"
  "CMakeFiles/uteconvert.dir/uteconvert.cpp.o.d"
  "uteconvert"
  "uteconvert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uteconvert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
