# Empty dependencies file for uteconvert.
# This may be replaced when dependencies are built.
