file(REMOVE_RECURSE
  "CMakeFiles/utedump.dir/utedump.cpp.o"
  "CMakeFiles/utedump.dir/utedump.cpp.o.d"
  "utedump"
  "utedump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utedump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
