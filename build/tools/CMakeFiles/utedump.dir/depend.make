# Empty dependencies file for utedump.
# This may be replaced when dependencies are built.
