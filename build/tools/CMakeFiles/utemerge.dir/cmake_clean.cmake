file(REMOVE_RECURSE
  "CMakeFiles/utemerge.dir/utemerge.cpp.o"
  "CMakeFiles/utemerge.dir/utemerge.cpp.o.d"
  "utemerge"
  "utemerge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utemerge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
