# Empty dependencies file for utemerge.
# This may be replaced when dependencies are built.
