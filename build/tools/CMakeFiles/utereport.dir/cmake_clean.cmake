file(REMOVE_RECURSE
  "CMakeFiles/utereport.dir/utereport.cpp.o"
  "CMakeFiles/utereport.dir/utereport.cpp.o.d"
  "utereport"
  "utereport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utereport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
