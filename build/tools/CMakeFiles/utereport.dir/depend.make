# Empty dependencies file for utereport.
# This may be replaced when dependencies are built.
