file(REMOVE_RECURSE
  "CMakeFiles/utestats.dir/utestats.cpp.o"
  "CMakeFiles/utestats.dir/utestats.cpp.o.d"
  "utestats"
  "utestats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utestats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
