# Empty compiler generated dependencies file for utestats.
# This may be replaced when dependencies are built.
