file(REMOVE_RECURSE
  "CMakeFiles/utetrace.dir/utetrace.cpp.o"
  "CMakeFiles/utetrace.dir/utetrace.cpp.o.d"
  "utetrace"
  "utetrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utetrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
