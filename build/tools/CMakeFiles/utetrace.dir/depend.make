# Empty dependencies file for utetrace.
# This may be replaced when dependencies are built.
