file(REMOVE_RECURSE
  "CMakeFiles/uteview.dir/uteview.cpp.o"
  "CMakeFiles/uteview.dir/uteview.cpp.o.d"
  "uteview"
  "uteview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uteview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
