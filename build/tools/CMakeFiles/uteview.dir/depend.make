# Empty dependencies file for uteview.
# This may be replaced when dependencies are built.
