// flash_preview: reproduces Figure 7 — the Jumpshot preview of a whole
// FLASH-like run plus the fast frame display for a selected time.
//
// The preview (state counters over time bins) immediately shows the
// initialization, quiet-evolution, busy-regrid, and termination phases.
// The user then "clicks" a time; the SLOG frame index locates the frame
// containing that instant, and the frame's records — completed by
// pseudo-intervals for states crossing into it — render the detailed
// view without reading the rest of the file.
#include <cstdio>

#include "slog/slog_reader.h"
#include "support/file_io.h"
#include "viz/ascii_render.h"
#include "viz/svg_render.h"
#include "viz/timeline_model.h"
#include "workloads/pipeline.h"
#include "workloads/workloads.h"

int main() {
  using namespace ute;

  PipelineOptions options;
  options.dir = makeScratchDir("flash_preview");
  options.name = "flash";
  const PipelineResult run = runPipeline(flash(FlashOptions{}), options);

  SlogReader slog(run.slogFile);
  std::printf("run spans [%.3f, %.3f] s, %zu SLOG frames\n",
              static_cast<double>(slog.totalStart()) / 1e9,
              static_cast<double>(slog.totalEnd()) / 1e9,
              slog.frameIndex().size());

  // The preview window (Figure 7's smaller window).
  std::printf("%s\n",
              renderPreviewAscii(slog.preview(), slog.states(), 72).c_str());
  writeWholeFile(options.dir + "/fig7_preview.svg",
                 renderPreviewSvg(slog.preview(), slog.states(), 50));

  // Pick an instant in the middle of the run (inside the regrid phase)
  // and display its frame.
  const Tick middle = slog.totalStart() +
                      (slog.totalEnd() - slog.totalStart()) / 2;
  const auto frameIdx = slog.frameIndexFor(middle);
  if (!frameIdx) {
    std::fprintf(stderr, "no frame for the selected time!\n");
    return 1;
  }
  std::printf("selected t=%.3f s -> frame %zu\n",
              static_cast<double>(middle) / 1e9, *frameIdx);
  const TimeSpaceModel frameView = buildSlogFrameView(slog, *frameIdx);
  std::printf("%s", renderAscii(frameView).c_str());
  writeWholeFile(options.dir + "/fig7_frame.svg", renderSvg(frameView));
  std::printf("SVGs written to %s\n", options.dir.c_str());
  return 0;
}
