// Quickstart: the whole framework end to end, finishing with the paper's
// own API example (Figure 5) — computing the total bytes sent by summing
// the "msgSizeSent" field over every interval record.
//
//  1. run a traced program on the simulated cluster  (trace generation)
//  2. convert raw event traces to interval files     (convert utility)
//  3. merge them with clock adjustment               (merge utility)
//  4. read the merged file through the simple API    (Section 2.4)
#include <cstdio>

#include "interval/standard_profile.h"
#include "interval/ute_api.h"
#include "support/text.h"
#include "workloads/pipeline.h"
#include "workloads/workloads.h"

int main() {
  using namespace ute;

  // Steps 1-3: trace, convert, merge (Figure 2's pipeline).
  TestProgramOptions workload;
  workload.iterations = 60;
  PipelineOptions options;
  options.dir = makeScratchDir("quickstart");
  options.name = "quickstart";
  const PipelineResult run = runPipeline(testProgram(workload), options);

  std::printf("simulated %.3f s of cluster time\n",
              static_cast<double>(run.simulatedNs) / 1e9);
  std::printf("raw events: %s   interval records: %s   merged: %s\n",
              withCommas(run.rawEvents).c_str(),
              withCommas(run.intervalRecords).c_str(),
              withCommas(run.merge.recordsOut).c_str());

  // Step 4: the code segment of Figure 5, modulo the opaque handle type.
  using namespace ute::api;
  long long ilong = 0;
  long long totalSize = 0;
  long length = 0;
  table_format table;
  interval_header header;
  frame_directory framedir;
  unsigned char buffer[4096];

  UteFile* infp = readHeader(run.mergedFile.c_str(), &header);
  if (infp == nullptr) return -1;
  if (readFrameDir(infp, &framedir) <= 0) return -1;
  if (readProfile(run.profileFile.c_str(), &table, header.masks) < 0) {
    return -1;
  }
  while ((length = getInterval(infp, &framedir, buffer, sizeof buffer)) > 0) {
    if (getItemByName(&table, buffer, length, "msgSizeSent", &ilong) > 0) {
      totalSize += ilong;
    }
  }
  std::printf("total bytes sent = %lld\n", totalSize);

  // A few of the other Section 2.4 routines.
  std::printf("total elapsed time = %.6f s over %lld records\n",
              static_cast<double>(totalElapsedTime(infp)) / 1e9,
              totalRecordCount(infp));
  char markerName[128];
  if (getMarkerString(infp, 1, markerName, sizeof markerName) > 0) {
    std::printf("marker 1 = \"%s\"\n", markerName);
  }
  freeProfile(&table);
  closeInterval(infp);
  return 0;
}
