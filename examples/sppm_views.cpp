// sppm_views: reproduces Figures 8 and 9 — the thread-activity and
// processor-activity views of the ASCI sPPM benchmark shape (4 nodes,
// each an 8-way SMP, four threads per MPI process of which one makes MPI
// calls and one is idle).
//
// Writes fig8_thread_activity.svg and fig9_processor_activity.svg into
// the scratch directory and prints ASCII versions of both views, where
// the paper's observations are directly visible: the idle thread's empty
// timeline, mostly-idle CPUs, and MPI threads migrating between CPUs.
#include <cstdio>

#include "interval/standard_profile.h"
#include "support/file_io.h"
#include "viz/ascii_render.h"
#include "viz/svg_render.h"
#include "viz/timeline_model.h"
#include "workloads/pipeline.h"
#include "workloads/workloads.h"

int main() {
  using namespace ute;

  SppmOptions workload;
  workload.timesteps = 25;
  PipelineOptions options;
  options.dir = makeScratchDir("sppm_views");
  options.name = "sppm";
  const PipelineResult run = runPipeline(sppm(workload), options);
  const Profile profile = makeStandardProfile();
  IntervalFileReader merged(run.mergedFile);

  // Figure 8: thread-activity view, connected/nested states.
  ViewOptions threadView;
  threadView.kind = ViewKind::kThreadActivity;
  threadView.connectPieces = true;
  const TimeSpaceModel fig8 = buildView(merged, profile, threadView);
  std::printf("%s\n", renderAscii(fig8).c_str());
  writeWholeFile(options.dir + "/fig8_thread_activity.svg", renderSvg(fig8));

  // Figure 9: processor-activity view — necessarily interval pieces,
  // since threads jump between the processors of their SMP node.
  ViewOptions cpuView;
  cpuView.kind = ViewKind::kProcessorActivity;
  for (int n = 0; n < workload.nodes; ++n) {
    cpuView.cpuCountHint[n] = workload.cpusPerNode;
  }
  IntervalFileReader merged2(run.mergedFile);
  const TimeSpaceModel fig9 = buildView(merged2, profile, cpuView);
  std::printf("%s\n", renderAscii(fig9).c_str());
  writeWholeFile(options.dir + "/fig9_processor_activity.svg",
                 renderSvg(fig9));

  // The migration observation, quantified: CPUs used per MPI thread.
  IntervalFileReader merged3(run.mergedFile);
  ViewOptions migration;
  migration.kind = ViewKind::kThreadProcessor;
  const TimeSpaceModel tp = buildView(merged3, profile, migration);
  for (const VizTimeline& row : tp.rows) {
    std::map<std::uint32_t, bool> cpus;
    for (const VizSegment& seg : row.segments) cpus[seg.colorKey] = true;
    std::printf("%s ran on %zu distinct CPUs\n", row.label.c_str(),
                cpus.size());
  }
  std::printf("SVGs written to %s\n", options.dir.c_str());
  return 0;
}
