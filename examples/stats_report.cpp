// stats_report: the statistics utility and viewer (Section 3.2,
// Figure 6) — runs the FLASH-like workload, generates the pre-defined
// tables plus a user-written table in the declarative language, and
// renders the Figure 6 heatmap (per-node interesting-interval duration
// across 50 time bins).
#include <cstdio>

#include "interval/standard_profile.h"
#include "stats/engine.h"
#include "support/file_io.h"
#include "viz/stats_viewer.h"
#include "workloads/pipeline.h"
#include "workloads/workloads.h"

int main() {
  using namespace ute;

  PipelineOptions options;
  options.dir = makeScratchDir("stats_report");
  options.name = "flash";
  const PipelineResult run = runPipeline(flash(FlashOptions{}), options);

  const Profile profile = makeStandardProfile();
  StatsEngine engine(profile);

  // The paper's own example program, verbatim.
  {
    IntervalFileReader file(run.mergedFile);
    const auto tables = engine.runProgram(
        "table name=sample condition=(start < 2) "
        "x=(\"node\", node) x=(\"processor\", cpu) "
        "y=(\"avg(duration)\", dura, avg)",
        file);
    std::printf("== paper's sample table ==\n%s\n", tables[0].tsv().c_str());
  }

  // The pre-defined tables, including Figure 6's.
  IntervalFileReader file(run.mergedFile);
  const auto tables = engine.runProgram(predefinedTablesProgram(), file);
  for (const StatsTable& t : tables) {
    std::printf("== table %s (%zu rows) ==\n", t.name.c_str(), t.rows.size());
    if (t.rows.size() <= 12) std::printf("%s", t.tsv().c_str());
  }

  // Figure 6: visualize interesting durations per node across time bins.
  for (const StatsTable& t : tables) {
    if (t.name != "interesting_by_node_bin") continue;
    std::printf("\n%s",
                renderStatsHeatmapAscii(t, "bin", "node", "sum(duration)")
                    .c_str());
    writeWholeFile(
        options.dir + "/fig6_stats.svg",
        renderStatsHeatmapSvg(t, "bin", "node", "sum(duration)"));
    std::printf("wrote %s/fig6_stats.svg\n", options.dir.c_str());
  }
  return 0;
}
