#include "analysis/metrics.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "interval/field.h"
#include "slog/kernels.h"
#include "support/errors.h"
#include "support/file_io.h"
#include "support/thread_pool.h"
#include "trace/events.h"

namespace ute {

namespace {

inline constexpr std::uint32_t kUtmMagic = 0x4d455455;  // "UTEM"
inline constexpr std::uint32_t kUtmVersion = 1;

/// Column directory order is the format: one u64 grid per entry.
constexpr const char* kColumnNames[] = {
    "busyNs",    "mpiNs",     "ioNs",      "markerNs",    "sendCount",
    "sendBytes", "recvCount", "recvBytes", "lateSenderNs",
};
inline constexpr std::uint32_t kColumnCount = std::size(kColumnNames);

std::uint64_t threadKey(NodeId node, LogicalThreadId thread) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
         static_cast<std::uint32_t>(thread);
}

}  // namespace

const char* stateClassName(StateClass c) {
  switch (c) {
    case StateClass::kBusy: return "busy";
    case StateClass::kMpi: return "mpi";
    case StateClass::kIo: return "io";
    case StateClass::kMarker: return "marker";
  }
  return "?";
}

bool classifyState(std::uint32_t stateId, StateClass& out) {
  if (stateId >= kMarkerStateBase) {
    out = StateClass::kMarker;
    return true;
  }
  const auto event = static_cast<EventType>(stateId);
  if (event == kRunningState) {
    out = StateClass::kBusy;
    return true;
  }
  if (isMpiEvent(event)) {
    out = StateClass::kMpi;
    return true;
  }
  if (isIoEvent(event) || event == EventType::kPageFault) {
    out = StateClass::kIo;
    return true;
  }
  return false;  // clock-sync injection state, unknown ids
}

MetricsStore::MetricsStore(Tick origin, Tick totalEnd, std::uint32_t bins,
                           const std::vector<ThreadEntry>& threads)
    : origin_(origin), totalEnd_(std::max(totalEnd, origin)), bins_(bins) {
  if (bins_ == 0) throw UsageError("metrics need at least one bin");
  const Tick span = totalEnd_ - origin_;
  binWidth_ = span == 0 ? 1 : (span + bins_ - 1) / bins_;

  for (const ThreadEntry& t : threads) {
    if (t.task < 0) continue;  // system threads are not attributed
    tasks_.push_back(t.task);
  }
  std::sort(tasks_.begin(), tasks_.end());
  tasks_.erase(std::unique(tasks_.begin(), tasks_.end()), tasks_.end());
  threadsPerTask_.assign(tasks_.size(), 0);
  for (const ThreadEntry& t : threads) {
    if (t.task < 0) continue;
    const auto it = std::lower_bound(tasks_.begin(), tasks_.end(), t.task);
    const auto idx = static_cast<std::uint32_t>(it - tasks_.begin());
    ++threadsPerTask_[idx];
    threadTask_.emplace_back(threadKey(t.node, t.ltid), idx);
  }
  std::sort(threadTask_.begin(), threadTask_.end());

  const std::size_t cells = static_cast<std::size_t>(bins_) * tasks_.size();
  for (auto& grid : timeNs_) grid.assign(cells, 0);
  sendCount_.assign(cells, 0);
  sendBytes_.assign(cells, 0);
  recvCount_.assign(cells, 0);
  recvBytes_.assign(cells, 0);
  lateSenderNs_.assign(cells, 0);
}

Tick MetricsStore::binEnd(std::uint32_t b) const {
  if (b + 1 >= bins_) return totalEnd_;
  return std::min(binStart(b + 1), totalEnd_);
}

std::uint32_t MetricsStore::binOf(Tick t) const {
  return kernels::binOf(t, origin_, binWidth_, bins_);
}

int MetricsStore::taskIndexOf(NodeId node, LogicalThreadId thread) const {
  const std::uint64_t key = threadKey(node, thread);
  const auto it = std::lower_bound(
      threadTask_.begin(), threadTask_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  if (it == threadTask_.end() || it->first != key) return -1;
  return static_cast<int>(it->second);
}

void MetricsStore::spread(std::vector<std::uint64_t>& grid,
                          std::uint32_t task, Tick start, Tick dura) {
  if (dura == 0) return;
  Tick t = std::max(start, origin_);
  const Tick end = std::max(start + dura, t);
  while (t < end) {
    const std::uint32_t b = binOf(t);
    // The last bin absorbs everything to the right of its start, so the
    // whole duration always lands somewhere (exact conservation).
    const Tick chunk =
        b + 1 >= bins_ ? end - t : std::min(end, binStart(b + 1)) - t;
    grid[cell(b, task)] += chunk;
    t += chunk;
  }
}

MetricsStore::MetricsStore(Tick origin, Tick binWidth,
                           const std::vector<ThreadEntry>& threads)
    : MetricsStore(origin, origin, 1, threads) {
  if (binWidth == 0) throw UsageError("metrics bin width must be positive");
  binWidth_ = binWidth;
}

void MetricsStore::extendTo(Tick t) {
  if (t > totalEnd_) totalEnd_ = t;
  const Tick span = totalEnd_ - origin_;
  const auto needed = static_cast<std::uint32_t>(
      span == 0 ? 1 : (span + binWidth_ - 1) / binWidth_);
  if (needed <= bins_) return;
  bins_ = needed;
  // Grids are bin-major, so growing the bin count appends zeroed cells;
  // every existing cell keeps its index and value.
  const std::size_t cells = static_cast<std::size_t>(bins_) * tasks_.size();
  for (auto& grid : timeNs_) grid.resize(cells, 0);
  sendCount_.resize(cells, 0);
  sendBytes_.resize(cells, 0);
  recvCount_.resize(cells, 0);
  recvBytes_.resize(cells, 0);
  lateSenderNs_.resize(cells, 0);
}

void MetricsStore::addFrame(const SlogFrameData& frame) {
  if (tasks_.empty()) return;

  // Receive intervals of this frame keyed by where they end: the arrow
  // matcher below attributes late-sender time to them. An arrow and the
  // last piece of its receive interval are always emitted into the same
  // frame (SlogWriter appends both while processing one merged record).
  std::map<std::tuple<NodeId, LogicalThreadId, Tick>, Tick> recvStartByEnd;
  for (const SlogInterval& r : frame.intervals) {
    if (r.pseudo) continue;
    const auto event = static_cast<EventType>(r.stateId);
    if (event == EventType::kMpiRecv || event == EventType::kMpiWait ||
        event == EventType::kMpiIrecv) {
      recvStartByEnd.emplace(std::make_tuple(r.node, r.thread, r.end()),
                             r.start);
    }
  }

  // Two-pass interval accumulation over staged lanes (the columnar-frame
  // fast path): pass one filters (pseudo, zero-length, unclassified,
  // unattributed) and resolves (node, thread) -> task with a one-entry
  // memo — merged records cluster by thread, so most lookups are the
  // previous key — into dense same-typed columns; pass two accumulates
  // from the lanes, taking a single add for the common interval that
  // lies wholly inside one bin and falling back to spread() only when it
  // genuinely straddles bins. Cell sums are the exact same integers in
  // the same cells as the record-at-a-time path, so `.utm` output stays
  // byte-identical.
  laneClass_.clear();
  laneTask_.clear();
  laneStart_.clear();
  laneDura_.clear();
  std::uint64_t memoKey = 0;
  int memoTask = -1;
  bool haveMemo = false;
  for (const SlogInterval& r : frame.intervals) {
    if (r.pseudo || r.dura == 0) continue;
    StateClass c;
    if (!classifyState(r.stateId, c)) continue;
    const std::uint64_t key = threadKey(r.node, r.thread);
    if (!haveMemo || key != memoKey) {
      memoTask = taskIndexOf(r.node, r.thread);
      memoKey = key;
      haveMemo = true;
    }
    if (memoTask < 0) continue;
    laneClass_.push_back(static_cast<std::uint8_t>(c));
    laneTask_.push_back(static_cast<std::uint32_t>(memoTask));
    laneStart_.push_back(r.start);
    laneDura_.push_back(r.dura);
  }
  for (std::size_t i = 0; i < laneTask_.size(); ++i) {
    const Tick lo = std::max<Tick>(laneStart_[i], origin_);
    const Tick end = std::max<Tick>(laneStart_[i] + laneDura_[i], lo);
    const std::uint32_t b = kernels::binOf(lo, origin_, binWidth_, bins_);
    std::vector<std::uint64_t>& grid = timeNs_[laneClass_[i]];
    if (b + 1 >= bins_ || end <= binStart(b + 1)) {
      grid[cell(b, laneTask_[i])] += end - lo;
    } else {
      spread(grid, laneTask_[i], laneStart_[i], laneDura_[i]);
    }
  }

  for (const SlogArrow& a : frame.arrows) {
    const int src = taskIndexOf(a.srcNode, a.srcThread);
    if (src >= 0) {
      const std::size_t at = cell(binOf(a.sendTime),
                                  static_cast<std::uint32_t>(src));
      ++sendCount_[at];
      sendBytes_[at] += a.bytes;
    }
    const int dst = taskIndexOf(a.dstNode, a.dstThread);
    if (dst < 0) continue;
    const std::size_t at = cell(binOf(a.recvTime),
                                static_cast<std::uint32_t>(dst));
    ++recvCount_[at];
    recvBytes_[at] += a.bytes;

    const auto recv = recvStartByEnd.find(
        std::make_tuple(a.dstNode, a.dstThread, a.recvTime));
    if (recv == recvStartByEnd.end()) continue;
    const Tick recvStart = recv->second;
    const Tick lateEnd = std::min(a.sendTime, a.recvTime);
    if (lateEnd > recvStart) {
      spread(lateSenderNs_, static_cast<std::uint32_t>(dst), recvStart,
             lateEnd - recvStart);
    }
  }
}

void MetricsStore::addFrom(const MetricsStore& other) {
  if (other.bins_ != bins_ || other.tasks_ != tasks_) {
    throw UsageError("MetricsStore::addFrom: shape mismatch");
  }
  const auto sum = [](std::vector<std::uint64_t>& into,
                      const std::vector<std::uint64_t>& from) {
    for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
  };
  for (std::size_t c = 0; c < kStateClassCount; ++c) {
    sum(timeNs_[c], other.timeNs_[c]);
  }
  sum(sendCount_, other.sendCount_);
  sum(sendBytes_, other.sendBytes_);
  sum(recvCount_, other.recvCount_);
  sum(recvBytes_, other.recvBytes_);
  sum(lateSenderNs_, other.lateSenderNs_);
}

std::uint64_t MetricsStore::idleNs(std::uint32_t bin,
                                   std::uint32_t task) const {
  const Tick lo = std::min(binStart(bin), binEnd(bin));
  const std::uint64_t wall =
      (binEnd(bin) - lo) * threadsPerTask_[task];
  const std::uint64_t busy = timeNs(StateClass::kBusy, bin, task);
  return wall > busy ? wall - busy : 0;
}

double MetricsStore::commFraction(std::uint32_t bin) const {
  std::uint64_t mpi = 0;
  std::uint64_t wall = 0;
  const Tick lo = std::min(binStart(bin), binEnd(bin));
  const Tick span = binEnd(bin) - lo;
  for (std::uint32_t k = 0; k < taskCount(); ++k) {
    mpi += timeNs(StateClass::kMpi, bin, k);
    wall += span * threadsPerTask_[k];
  }
  if (wall == 0) return 0.0;
  return std::min(1.0, static_cast<double>(mpi) / static_cast<double>(wall));
}

double MetricsStore::loadImbalance(std::uint32_t bin) const {
  std::uint64_t max = 0;
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < taskCount(); ++k) {
    const std::uint64_t busy = timeNs(StateClass::kBusy, bin, k);
    max = std::max(max, busy);
    total += busy;
  }
  if (max == 0 || taskCount() == 0) return 0.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(taskCount());
  return (static_cast<double>(max) - avg) / static_cast<double>(max);
}

std::uint64_t MetricsStore::lateSenderTotalNs(std::uint32_t bin) const {
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < taskCount(); ++k) {
    total += lateSenderNs(bin, k);
  }
  return total;
}

std::vector<std::uint8_t> MetricsStore::encode() const {
  ByteWriter w;
  w.u32(kUtmMagic);
  w.u32(kUtmVersion);
  w.u64(origin_);
  w.u64(totalEnd_);
  w.u64(binWidth_);
  w.u32(bins_);
  w.u32(taskCount());
  w.u32(kStateClassCount);
  w.u32(kColumnCount);
  for (std::uint32_t k = 0; k < taskCount(); ++k) {
    w.i32(tasks_[k]);
    w.u32(threadsPerTask_[k]);
  }
  const std::vector<std::uint64_t>* columns[kColumnCount] = {
      &timeNs_[0], &timeNs_[1], &timeNs_[2],  &timeNs_[3],    &sendCount_,
      &sendBytes_, &recvCount_, &recvBytes_,  &lateSenderNs_,
  };
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    w.lstring(kColumnNames[c]);
    w.u8(0);  // kind 0: u64 grid of bins x tasks cells
    w.u64(columns[c]->size() * sizeof(std::uint64_t));
  }
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    for (std::uint64_t v : *columns[c]) w.u64(v);
  }
  return w.take();
}

MetricsStore MetricsStore::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kUtmMagic) throw FormatError("not a .utm metrics file");
  const std::uint32_t version = r.u32();
  if (version != kUtmVersion) {
    throw FormatError("unsupported .utm version " + std::to_string(version));
  }
  MetricsStore store;
  store.origin_ = r.u64();
  store.totalEnd_ = r.u64();
  store.binWidth_ = r.u64();
  store.bins_ = r.u32();
  const std::uint32_t taskCount = r.u32();
  const std::uint32_t classCount = r.u32();
  const std::uint32_t columnCount = r.u32();
  if (store.bins_ == 0 || store.binWidth_ == 0) {
    throw FormatError(".utm: zero bins or bin width");
  }
  if (classCount != kStateClassCount) {
    throw FormatError(".utm: unexpected state-class count");
  }
  store.tasks_.reserve(taskCount);
  store.threadsPerTask_.reserve(taskCount);
  for (std::uint32_t k = 0; k < taskCount; ++k) {
    store.tasks_.push_back(r.i32());
    store.threadsPerTask_.push_back(r.u32());
  }
  const std::size_t cells =
      static_cast<std::size_t>(store.bins_) * taskCount;
  struct Dir {
    std::string name;
    std::uint8_t kind = 0;
    std::uint64_t sizeBytes = 0;
  };
  std::vector<Dir> dir(columnCount);
  for (Dir& d : dir) {
    d.name = r.lstring();
    d.kind = r.u8();
    d.sizeBytes = r.u64();
  }
  std::vector<std::uint64_t>* columns[kColumnCount] = {
      &store.timeNs_[0], &store.timeNs_[1], &store.timeNs_[2],
      &store.timeNs_[3], &store.sendCount_, &store.sendBytes_,
      &store.recvCount_, &store.recvBytes_, &store.lateSenderNs_,
  };
  for (auto* column : columns) column->assign(cells, 0);
  for (const Dir& d : dir) {
    // Match by name so future writers can add columns without breaking
    // this reader; unknown columns are skipped by their recorded size.
    int known = -1;
    for (std::uint32_t c = 0; c < kColumnCount; ++c) {
      if (d.name == kColumnNames[c]) known = static_cast<int>(c);
    }
    if (known < 0 || d.kind != 0) {
      r.skip(d.sizeBytes);
      continue;
    }
    if (d.sizeBytes != cells * sizeof(std::uint64_t)) {
      throw FormatError(".utm: column '" + d.name + "' has wrong size");
    }
    for (std::uint64_t& v : *columns[known]) v = r.u64();
  }
  return store;
}

MetricsStore makeMetricsStore(const SlogReader& reader,
                              const MetricsOptions& options) {
  return MetricsStore(reader.totalStart(), reader.totalEnd(),
                      std::max<std::uint32_t>(options.bins, 1),
                      reader.threads());
}

MetricsStore computeMetrics(const SlogReader& reader,
                            const MetricsOptions& options) {
  MetricsStore total = makeMetricsStore(reader, options);
  const std::size_t frames = reader.frameIndex().size();
  if (frames == 0) return total;

  const std::size_t jobs =
      std::min(effectiveJobs(options.jobs), frames);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < frames; ++i) {
      total.addFrame(*reader.readFrame(i));
    }
    return total;
  }

  // Contiguous frame chunks, one private store per worker; integer cell
  // sums make the merged result identical for every partition. readFrame
  // is thread-safe (frames decode from the shared ByteSource), so the
  // workers need no per-thread file handles.
  //
  // Deliberately lock-free at this level: each worker owns partial[c]
  // exclusively until parallelFor's join, and the addFrom merge below
  // runs single-threaded after it — there is no guarded state for the
  // thread-safety analysis to check (docs/STATIC_ANALYSIS.md), which is
  // exactly the point. The only synchronization is the pool's own
  // annotated Channel/Mutex machinery.
  std::vector<MetricsStore> partial(jobs);
  parallelFor(jobs, jobs, [&](std::size_t c) {
    partial[c] = makeMetricsStore(reader, options);
    const std::size_t lo = frames * c / jobs;
    const std::size_t hi = frames * (c + 1) / jobs;
    for (std::size_t i = lo; i < hi; ++i) {
      partial[c].addFrame(*reader.readFrame(i));
    }
  });
  for (const MetricsStore& p : partial) total.addFrom(p);
  return total;
}

MetricsStore computeMetrics(
    const SlogReader& reader, const MetricsOptions& options,
    const std::function<std::shared_ptr<const SlogFrameData>(std::size_t)>&
        frameAt) {
  MetricsStore total = makeMetricsStore(reader, options);
  for (std::size_t i = 0; i < reader.frameIndex().size(); ++i) {
    total.addFrame(*frameAt(i));
  }
  return total;
}

}  // namespace ute
