// Time-resolved derived metrics over a SLOG file (src/analysis).
//
// The statistics generator answers "how much, per run"; a viewer answers
// "what, exactly, at time t". This engine fills the gap between them with
// the standard *time-resolved* metrics of trace analysis: one pass over
// the SLOG frames fills a columnar store of per (time-bin x task x
// state-class) time sums plus message counters, from which the derived
// series — communication fraction, load imbalance across tasks, and
// late-sender wait time — fall out as cheap integer arithmetic.
//
// Every cell is an exact integer number of nanoseconds (or a count):
// interval durations are split across bins in whole-tick chunks, so
// accumulation is associative and the result is bit-identical no matter
// how the frames are partitioned across threads. computeMetrics() with
// --jobs N therefore produces byte-identical .utm output for every N —
// the same determinism contract the parallel convert/merge pipeline
// keeps, checked the same way by the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "slog/slog_format.h"
#include "slog/slog_reader.h"
#include "support/types.h"

namespace ute {

/// Coarse visualization-state classes the per-bin time sums are kept in.
/// Classes deliberately mirror what an analyst asks first: how much time
/// ran user code, sat inside MPI, did I/O, or was inside a user marker.
enum class StateClass : std::uint8_t {
  kBusy = 0,    ///< the Running dispatch state (includes time inside MPI)
  kMpi = 1,     ///< any MPI routine state
  kIo = 2,      ///< IoRead / IoWrite / PageFault states
  kMarker = 3,  ///< user-marker states (id >= kMarkerStateBase)
};
inline constexpr std::uint32_t kStateClassCount = 4;

const char* stateClassName(StateClass c);

/// Maps a SLOG state id to its class; returns false for states the
/// metrics ignore (the clock-sync injection state, unknown ids).
bool classifyState(std::uint32_t stateId, StateClass& out);

struct MetricsOptions {
  std::uint32_t bins = 240;
  /// Worker threads for the frame scan; <= 1 is the sequential
  /// reference path (output is identical either way).
  int jobs = 1;
};

/// The columnar time-binned store. Grids are bin-major u64 arrays of
/// size bins x tasks: cell (b, k) = grid[b * taskCount + k]. Tasks are
/// the MPI ranks of the SLOG thread table, ascending; intervals on
/// threads without a task (system threads) are not attributed.
///
/// Bin b covers [origin + b*binWidth, origin + (b+1)*binWidth), except
/// the last bin which extends to the end of the run — binning never
/// drops time on the closing edge.
class MetricsStore {
 public:
  MetricsStore() = default;
  /// An empty (all-zero) store shaped for a run: tasks and the
  /// (node, thread) -> task attribution come from the thread table.
  MetricsStore(Tick origin, Tick totalEnd, std::uint32_t bins,
               const std::vector<ThreadEntry>& threads);
  /// A live store for a run whose end is not known yet: the bin width is
  /// fixed up front and the bin count grows with extendTo() as global
  /// time advances (the batch shape fixes the count and derives the
  /// width; a live run cannot). Starts with one bin.
  MetricsStore(Tick origin, Tick binWidth,
               const std::vector<ThreadEntry>& threads);

  Tick origin() const { return origin_; }
  Tick totalEnd() const { return totalEnd_; }
  Tick binWidth() const { return binWidth_; }
  std::uint32_t bins() const { return bins_; }
  const std::vector<TaskId>& tasks() const { return tasks_; }
  std::uint32_t taskCount() const {
    return static_cast<std::uint32_t>(tasks_.size());
  }
  const std::vector<std::uint32_t>& threadsPerTask() const {
    return threadsPerTask_;
  }

  /// Start of bin `b`; the last bin's end is max(grid end, totalEnd).
  Tick binStart(std::uint32_t b) const { return origin_ + b * binWidth_; }
  Tick binEnd(std::uint32_t b) const;
  /// Bin containing `t` (clamped into [0, bins-1]).
  std::uint32_t binOf(Tick t) const;

  // --- base columns (exact integer sums) -----------------------------------
  std::uint64_t timeNs(StateClass c, std::uint32_t bin,
                       std::uint32_t task) const {
    return timeNs_[static_cast<std::size_t>(c)][cell(bin, task)];
  }
  std::uint64_t sendCount(std::uint32_t bin, std::uint32_t task) const {
    return sendCount_[cell(bin, task)];
  }
  std::uint64_t sendBytes(std::uint32_t bin, std::uint32_t task) const {
    return sendBytes_[cell(bin, task)];
  }
  std::uint64_t recvCount(std::uint32_t bin, std::uint32_t task) const {
    return recvCount_[cell(bin, task)];
  }
  std::uint64_t recvBytes(std::uint32_t bin, std::uint32_t task) const {
    return recvBytes_[cell(bin, task)];
  }
  /// Receiver-side wait time attributable to the matching send not yet
  /// having been posted (clipped to the receive interval).
  std::uint64_t lateSenderNs(std::uint32_t bin, std::uint32_t task) const {
    return lateSenderNs_[cell(bin, task)];
  }

  // --- derived series -------------------------------------------------------
  /// Idle time of a task in a bin: the task's threads' wall time in the
  /// bin minus its Running time, clamped at zero.
  std::uint64_t idleNs(std::uint32_t bin, std::uint32_t task) const;
  /// MPI time / task wall time, both summed over tasks (0 when the bin
  /// has no wall time). Bounded to [0, 1].
  double commFraction(std::uint32_t bin) const;
  /// (max - avg) / max of per-task Running time in the bin; 0 when no
  /// task ran. 0 = perfectly balanced, ->1 = one task does all the work.
  double loadImbalance(std::uint32_t bin) const;
  /// Late-sender time summed over tasks.
  std::uint64_t lateSenderTotalNs(std::uint32_t bin) const;

  // --- accumulation (the streaming engine's write path) --------------------
  /// Adds one frame's intervals and arrows. Pseudo-intervals are skipped
  /// (their time is restated, not additional). Thread-safe only across
  /// distinct stores; merge partial stores with addFrom().
  void addFrame(const SlogFrameData& frame);
  /// Appends zeroed fixed-width bins until the grid covers time `t`
  /// (live stores; existing cells are untouched — only the open tail bin
  /// of an incrementally extended store ever changes value afterwards).
  /// Call before addFrame() on a frame that reaches past totalEnd(), or
  /// the spill lands in the tail bin.
  void extendTo(Tick t);
  /// Element-wise sum of another store with the same shape.
  void addFrom(const MetricsStore& other);

  /// Serializes to the self-describing .utm byte layout (docs/ANALYSIS.md).
  std::vector<std::uint8_t> encode() const;
  static MetricsStore decode(std::span<const std::uint8_t> bytes);

 private:
  friend class MetricsReader;

  std::size_t cell(std::uint32_t bin, std::uint32_t task) const {
    return static_cast<std::size_t>(bin) * tasks_.size() + task;
  }
  /// Spreads `dura` ns starting at `start` over the bins it overlaps,
  /// in exact integer chunks.
  void spread(std::vector<std::uint64_t>& grid, std::uint32_t task,
              Tick start, Tick dura);
  int taskIndexOf(NodeId node, LogicalThreadId thread) const;

  Tick origin_ = 0;
  Tick totalEnd_ = 0;
  Tick binWidth_ = 1;
  std::uint32_t bins_ = 0;
  std::vector<TaskId> tasks_;
  std::vector<std::uint32_t> threadsPerTask_;
  /// (node << 32 | thread) -> task index, from the SLOG thread table.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> threadTask_;

  std::vector<std::uint64_t> timeNs_[kStateClassCount];
  std::vector<std::uint64_t> sendCount_;
  std::vector<std::uint64_t> sendBytes_;
  std::vector<std::uint64_t> recvCount_;
  std::vector<std::uint64_t> recvBytes_;
  std::vector<std::uint64_t> lateSenderNs_;

  /// addFrame() staging lanes (capacity reused across frames): the
  /// filter/classify pass fills these dense columns, the accumulation
  /// pass runs over them kernel-style (src/slog/kernels.h).
  std::vector<std::uint8_t> laneClass_;
  std::vector<std::uint32_t> laneTask_;
  std::vector<std::uint64_t> laneStart_;
  std::vector<std::uint64_t> laneDura_;
};

/// An empty store shaped for `reader`'s run (time range + thread table).
MetricsStore makeMetricsStore(const SlogReader& reader,
                              const MetricsOptions& options);

/// The streaming engine: one pass over every frame of `reader`, parallel
/// over contiguous frame chunks when options.jobs > 1 (each worker scans
/// through its own file handle; integer accumulation makes the result
/// independent of the partition).
MetricsStore computeMetrics(const SlogReader& reader,
                            const MetricsOptions& options = {});

/// Same computation, but frames come from `frameAt` — the trace-query
/// service passes its sharded LRU cache here so lazy server-side metric
/// computation stays inside the existing cache byte budget.
MetricsStore computeMetrics(
    const SlogReader& reader, const MetricsOptions& options,
    const std::function<std::shared_ptr<const SlogFrameData>(std::size_t)>&
        frameAt);

}  // namespace ute
