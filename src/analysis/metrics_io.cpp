#include "analysis/metrics_io.h"

#include "support/file_io.h"

namespace ute {

void writeMetricsFile(const std::string& path, const MetricsStore& store) {
  writeWholeFile(path, store.encode());
}

MetricsReader::MetricsReader(const std::string& path)
    : path_(path), store_(MetricsStore::decode(readWholeFile(path))) {}

}  // namespace ute
