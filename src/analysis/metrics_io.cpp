#include "analysis/metrics_io.h"

#include "support/byte_source.h"
#include "support/file_io.h"

namespace ute {

void writeMetricsFile(const std::string& path, const MetricsStore& store) {
  writeWholeFile(path, store.encode());
}

namespace {
MetricsStore decodeSource(const std::string& path) {
  // Decode straight from the mapping when the file maps; the store copies
  // what it keeps, so the source can go away afterwards.
  const ByteSource source(path);
  return MetricsStore::decode(source.whole().bytes());
}
}  // namespace

MetricsReader::MetricsReader(const std::string& path)
    : path_(path), store_(decodeSource(path)) {}

}  // namespace ute
