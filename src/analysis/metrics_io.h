// .utm metrics-store file I/O: the thin disk layer over
// MetricsStore::encode()/decode(). The file is the byte-for-byte encode
// of one store, so the server can serve the same bytes it would write
// and a client can parse a reply and a file with the same code.
#pragma once

#include <string>

#include "analysis/metrics.h"

namespace ute {

/// Conventional extension for metrics-store files.
inline constexpr const char* kMetricsFileExtension = ".utm";

void writeMetricsFile(const std::string& path, const MetricsStore& store);

/// Loads and validates a .utm file (throws IoError / FormatError).
class MetricsReader {
 public:
  explicit MetricsReader(const std::string& path);

  const MetricsStore& store() const { return store_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  MetricsStore store_;
};

}  // namespace ute
