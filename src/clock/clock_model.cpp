#include "clock/clock_model.h"

#include <cmath>

namespace ute {

Tick LocalClockModel::read(Tick trueNs, double jitterDraw) const {
  double value = idealRead(trueNs);
  if (p_.jitterNs > 0) {
    // Uniform in [-jitterNs, +jitterNs].
    value += (jitterDraw * 2.0 - 1.0) * static_cast<double>(p_.jitterNs);
  }
  if (value < 0) value = 0;
  auto ticks = static_cast<Tick>(value);
  if (p_.granularityNs > 1) ticks -= ticks % p_.granularityNs;
  return ticks;
}

double LocalClockModel::idealRead(Tick trueNs) const {
  return static_cast<double>(p_.offsetNs) +
         static_cast<double>(trueNs) * rate();
}

}  // namespace ute
