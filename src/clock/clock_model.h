// Models of the clocks available on an SMP-cluster node.
//
// The paper's substrate is an IBM SP: each node has a local crystal
// oscillator whose frequency differs from nominal by a (temperature-
// dependent, but short-term constant) drift of tens of parts per million,
// and the switch adapter exposes one globally synchronized clock that is
// expensive to read. These classes reproduce both behaviours over the
// simulator's "true time" axis so the synchronization algorithms of
// Section 2.2 can be exercised and evaluated against ground truth.
#pragma once

#include <cstdint>

#include "support/types.h"

namespace ute {

/// A node-local crystal clock: reads are an affine function of true time
/// (offset + drifted rate) quantized to the crystal's tick granularity,
/// plus an optional bounded read jitter that models bus/readout noise.
class LocalClockModel {
 public:
  struct Params {
    /// Value the clock shows at true time 0 (power-on skew), ns.
    TickDelta offsetNs = 0;
    /// Rate error in parts per million; +20 means the clock runs fast by
    /// 20 us per second of true time.
    double driftPpm = 0.0;
    /// Reads are floored to a multiple of this many ns (crystal period).
    Tick granularityNs = 1;
    /// Half-width of uniform read jitter in ns (0 = deterministic). The
    /// jitter is supplied by the caller per read so the model itself stays
    /// stateless and deterministic.
    Tick jitterNs = 0;
  };

  LocalClockModel() = default;
  explicit LocalClockModel(const Params& p) : p_(p) {}

  /// The timestamp this clock shows at true time `trueNs`.
  /// `jitterDraw` must be uniform in [0,1); it is consumed only when
  /// Params::jitterNs > 0.
  Tick read(Tick trueNs, double jitterDraw = 0.0) const;

  /// Exact (unquantized, jitter-free) reading — ground truth for tests.
  double idealRead(Tick trueNs) const;

  double rate() const { return 1.0 + p_.driftPpm * 1e-6; }
  const Params& params() const { return p_; }

 private:
  Params p_;
};

/// The switch-adapter global clock: drift-free by construction (it *is*
/// the time base the cluster synchronizes to) but costly to access.
class GlobalClock {
 public:
  explicit GlobalClock(Tick accessCostNs = 500) : accessCostNs_(accessCostNs) {}

  Tick read(Tick trueNs) const { return trueNs; }

  /// Cost in ns of one read (the paper: "accessing the global clock is
  /// much more expensive than accessing a local clock").
  Tick accessCostNs() const { return accessCostNs_; }

 private:
  Tick accessCostNs_;
};

}  // namespace ute
