#include "clock/drift_study.h"

#include <cstddef>

#include "support/errors.h"
#include "support/rng.h"
#include "support/text.h"

namespace ute {

DriftStudyResult runDriftStudy(const DriftStudyConfig& config) {
  if (config.clocks.size() < 2) {
    throw UsageError("drift study needs at least two clocks");
  }
  if (config.referenceClock < 0 ||
      static_cast<std::size_t>(config.referenceClock) >=
          config.clocks.size()) {
    throw UsageError("drift study: reference clock index out of range");
  }
  if (config.samplePeriodNs == 0) {
    throw UsageError("drift study: sample period must be positive");
  }

  std::vector<LocalClockModel> clocks;
  clocks.reserve(config.clocks.size());
  for (const auto& p : config.clocks) clocks.emplace_back(p);

  Rng rng(config.jitterSeed);
  const auto ref = static_cast<std::size_t>(config.referenceClock);

  DriftStudyResult result;
  result.referenceClock = config.referenceClock;
  for (std::size_t j = 0; j < clocks.size(); ++j) {
    if (j == ref) continue;
    DriftSeries s;
    s.clockIndex = static_cast<int>(j);
    result.series.push_back(std::move(s));
  }

  std::vector<Tick> start(clocks.size());
  for (std::size_t j = 0; j < clocks.size(); ++j) {
    start[j] = clocks[j].read(0, rng.unit());
  }

  for (Tick t = config.samplePeriodNs; t <= config.durationNs;
       t += config.samplePeriodNs) {
    const Tick refElapsed = clocks[ref].read(t, rng.unit()) - start[ref];
    std::size_t out = 0;
    for (std::size_t j = 0; j < clocks.size(); ++j) {
      if (j == ref) continue;
      const Tick elapsed = clocks[j].read(t, rng.unit()) - start[j];
      auto& series = result.series[out++];
      series.referenceElapsedNs.push_back(refElapsed);
      series.discrepancyNs.push_back(static_cast<TickDelta>(elapsed) -
                                     static_cast<TickDelta>(refElapsed));
    }
  }
  return result;
}

DriftStudyConfig figure1Config() {
  DriftStudyConfig config;
  // Four crystals with rate errors of both signs; clock 0 is the
  // reference. Magnitudes chosen so discrepancies reach a few
  // milliseconds over 140 s, matching the scale of the published figure.
  const double ppm[] = {0.0, +22.0, -14.0, +8.5};
  for (double d : ppm) {
    LocalClockModel::Params p;
    p.driftPpm = d;
    p.offsetNs = 0;
    p.granularityNs = 1;
    p.jitterNs = 2 * kUs;  // readout noise visible at small elapsed times
    config.clocks.push_back(p);
  }
  return config;
}

std::string driftStudyCsv(const DriftStudyResult& result) {
  std::string out = "ref_elapsed_s";
  for (const auto& s : result.series) {
    out += ",clock" + std::to_string(s.clockIndex) + "_discrepancy_us";
  }
  out += "\n";
  if (result.series.empty()) return out;
  const std::size_t nSamples = result.series.front().referenceElapsedNs.size();
  for (std::size_t i = 0; i < nSamples; ++i) {
    out += fixed(static_cast<double>(
                     result.series.front().referenceElapsedNs[i]) /
                     static_cast<double>(kSec),
                 3);
    for (const auto& s : result.series) {
      out += ",";
      out += fixed(static_cast<double>(s.discrepancyNs[i]) /
                       static_cast<double>(kUs),
                   1);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ute
