// Reproduction of the paper's Figure 1: accumulated timestamp
// discrepancies among several free-running local clocks.
//
// The figure samples all clocks together over ~140 seconds and plots, for
// a chosen reference clock, how far each other clock's elapsed time has
// drifted from the reference's elapsed time. The discrepancy grows
// near-linearly because each crystal's rate error is (short-term)
// constant.
#pragma once

#include <string>
#include <vector>

#include "clock/clock_model.h"
#include "support/types.h"

namespace ute {

struct DriftStudyConfig {
  std::vector<LocalClockModel::Params> clocks;
  Tick durationNs = 140 * kSec;  // the figure spans roughly 140 s
  Tick samplePeriodNs = kSec;
  int referenceClock = 0;
  std::uint64_t jitterSeed = 1;
};

/// Discrepancy series for one clock against the reference.
struct DriftSeries {
  int clockIndex = 0;
  /// Elapsed time of the reference clock at each sample, ns.
  std::vector<Tick> referenceElapsedNs;
  /// (clock elapsed) - (reference elapsed) at each sample, ns.
  std::vector<TickDelta> discrepancyNs;
};

struct DriftStudyResult {
  int referenceClock = 0;
  std::vector<DriftSeries> series;  // one per non-reference clock
};

/// Samples every clock at the configured period and accumulates pairwise
/// discrepancies against the reference clock.
DriftStudyResult runDriftStudy(const DriftStudyConfig& config);

/// The four-clock configuration used for the Figure 1 reproduction:
/// drift rates of both signs, tens of ppm apart, as in the measured data.
DriftStudyConfig figure1Config();

/// Renders a result as CSV: ref_elapsed_s,clock<i>_discrepancy_us,...
std::string driftStudyCsv(const DriftStudyResult& result);

}  // namespace ute
