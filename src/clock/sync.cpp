#include "clock/sync.h"

#include <algorithm>
#include <cmath>

#include "support/errors.h"

namespace ute {

namespace {

double segmentSlope(const TimestampPair& a, const TimestampPair& b) {
  const double dg =
      static_cast<double>(b.global) - static_cast<double>(a.global);
  const double dl = static_cast<double>(b.local) - static_cast<double>(a.local);
  return dg / dl;
}

void requirePairs(std::span<const TimestampPair> pairs) {
  if (pairs.size() < 2) {
    throw UsageError("clock sync needs at least two timestamp pairs");
  }
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].local <= pairs[i - 1].local) {
      throw UsageError("timestamp pairs must have increasing local times");
    }
  }
}

}  // namespace

double ratioRmsSegments(std::span<const TimestampPair> pairs) {
  requirePairs(pairs);
  double sumSq = 0.0;
  const std::size_t n = pairs.size() - 1;
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const double s = segmentSlope(pairs[i - 1], pairs[i]);
    sumSq += s * s;
  }
  return std::sqrt(sumSq / static_cast<double>(n));
}

double ratioLastPair(std::span<const TimestampPair> pairs) {
  requirePairs(pairs);
  return segmentSlope(pairs.front(), pairs.back());
}

std::vector<TimestampPair> filterOutlierPairs(
    std::span<const TimestampPair> pairs, double tolerance) {
  if (pairs.size() < 3) return {pairs.begin(), pairs.end()};
  requirePairs(pairs);

  std::vector<double> slopes;
  slopes.reserve(pairs.size() - 1);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    slopes.push_back(segmentSlope(pairs[i - 1], pairs[i]));
  }
  std::vector<double> sorted = slopes;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];

  // A pair corrupted by descheduling between the global and local read
  // shows up as one segment with too-low slope followed by one with
  // too-high slope (or vice versa); dropping the shared middle point
  // removes both excursions. We keep a point if the slope of the segment
  // arriving at it is within tolerance of the median.
  std::vector<TimestampPair> out;
  out.push_back(pairs[0]);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const double s = segmentSlope(out.back(), pairs[i]);
    if (std::abs(s - median) <= tolerance * std::abs(median)) {
      out.push_back(pairs[i]);
    }
  }
  if (out.size() < 2) {  // filtered too aggressively; fall back to input
    return {pairs.begin(), pairs.end()};
  }
  return out;
}

ClockMap::ClockMap(std::span<const TimestampPair> pairs, SyncMethod method)
    : method_(method) {
  requirePairs(pairs);
  local0_ = pairs.front().local;
  global0_ = pairs.front().global;
  ratio_ = method == SyncMethod::kLastPair ? ratioLastPair(pairs)
                                           : ratioRmsSegments(pairs);
  if (method == SyncMethod::kPiecewise) {
    segments_.reserve(pairs.size() - 1);
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      segments_.push_back({pairs[i - 1].local, pairs[i - 1].global,
                           segmentSlope(pairs[i - 1], pairs[i])});
    }
  }
  valid_ = true;
}

Tick ClockMap::toGlobal(Tick local) const {
  if (!valid_) return local;
  if (method_ == SyncMethod::kPiecewise && !segments_.empty()) {
    // Find the last segment whose localBegin <= local (extrapolate with
    // the first/last segment outside the sampled range).
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), local,
        [](Tick v, const Segment& s) { return v < s.localBegin; });
    const Segment& seg = it == segments_.begin() ? segments_.front() : *(it - 1);
    const double dl =
        static_cast<double>(local) - static_cast<double>(seg.localBegin);
    const double g = static_cast<double>(seg.globalBegin) + seg.slope * dl;
    return g <= 0 ? 0 : static_cast<Tick>(std::llround(g));
  }
  const double dl =
      static_cast<double>(local) - static_cast<double>(local0_);
  const double g = static_cast<double>(global0_) + ratio_ * dl;
  return g <= 0 ? 0 : static_cast<Tick>(std::llround(g));
}

Tick ClockMap::scaleDuration(Tick localDuration) const {
  if (!valid_) return localDuration;
  return static_cast<Tick>(
      std::llround(ratio_ * static_cast<double>(localDuration)));
}

ClockMap ClockMap::identity() {
  ClockMap m;
  m.valid_ = false;
  return m;
}

}  // namespace ute
