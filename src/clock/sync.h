// Clock synchronization from periodic (global, local) timestamp pairs.
//
// Section 2.2 of the paper: each node's tracing daemon periodically reads
// the switch-adapter global clock and the local clock together, producing a
// sequence of timestamp pairs (G_i, L_i). After tracing, the merge utility
// estimates the global-to-local clock ratio R and maps every local
// timestamp onto the global time base. The paper's estimator is the root
// mean square of the slopes of adjacent-pair segments:
//
//     R = sqrt( (1/n) * sum_{i=1..n} ((G_i - G_{i-1}) / (L_i - L_{i-1}))^2 )
//
// Two alternatives the paper discusses are also implemented: the slope of
// the (first, last) pair, and a piecewise mapping with one ratio per
// segment.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/types.h"

namespace ute {

/// One global-clock record: simultaneous readings of the switch-adapter
/// global clock and the node's local clock.
struct TimestampPair {
  Tick global = 0;
  Tick local = 0;
};

/// Which ratio estimator a ClockMap uses.
enum class SyncMethod {
  kRmsSegments,  ///< the paper's choice (root mean square of segment slopes)
  kLastPair,     ///< slope of the segment from the first to the last pair
  kPiecewise,    ///< one ratio per adjacent-pair segment
};

/// R via root mean square of adjacent-segment slopes (paper Section 2.2).
/// Requires at least two pairs with strictly increasing local timestamps.
double ratioRmsSegments(std::span<const TimestampPair> pairs);

/// R via the overall slope (G_n - G_0) / (L_n - L_0).
double ratioLastPair(std::span<const TimestampPair> pairs);

/// Removes pairs whose instantaneous segment slope deviates from the
/// median slope by more than `tolerance` (relative). This implements the
/// filtering the paper's Summary suggests for pairs corrupted by the
/// daemon being descheduled between the two clock reads. The first pair is
/// always kept. Returns the surviving pairs in order.
std::vector<TimestampPair> filterOutlierPairs(
    std::span<const TimestampPair> pairs, double tolerance = 5e-5);

/// Maps local timestamps (and durations) onto the global clock, anchored
/// at the first pair: G(L) = G_0 + R * (L - L_0). With kPiecewise the
/// total elapsed time is partitioned into n segments, each with its own
/// ratio (extrapolating with the edge segments outside the sampled range).
class ClockMap {
 public:
  ClockMap() = default;
  ClockMap(std::span<const TimestampPair> pairs, SyncMethod method);

  /// Adjusted global timestamp for a local timestamp.
  Tick toGlobal(Tick local) const;

  /// Adjusted duration (the paper: duration D becomes R * D).
  Tick scaleDuration(Tick localDuration) const;

  /// The single ratio (for kPiecewise: the RMS aggregate, used for
  /// durations that span segments).
  double ratio() const { return ratio_; }

  SyncMethod method() const { return method_; }
  bool valid() const { return valid_; }

  /// Identity map (for traces that carry no global clock records).
  static ClockMap identity();

 private:
  struct Segment {
    Tick localBegin = 0;
    Tick globalBegin = 0;
    double slope = 1.0;
  };

  SyncMethod method_ = SyncMethod::kRmsSegments;
  bool valid_ = false;
  double ratio_ = 1.0;
  Tick local0_ = 0;
  Tick global0_ = 0;
  std::vector<Segment> segments_;  // only for kPiecewise
};

}  // namespace ute
