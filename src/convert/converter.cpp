#include "convert/converter.h"

#include <algorithm>
#include <memory>

#include "convert/streaming_converter.h"
#include "interval/record.h"
#include "support/errors.h"
#include "support/thread_pool.h"

namespace ute {

std::uint32_t MarkerUnifier::unify(const std::string& name) {
  MutexLock lock(mu_);
  const auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(names_.size()) + 1;
  const auto inserted = byName_.emplace(name, id).first;
  names_.push_back(&inserted->first);
  return id;
}

void MarkerUnifier::preassign(const std::vector<std::string>& names) {
  for (const std::string& name : names) unify(name);
}

std::vector<std::string> MarkerUnifier::table() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const std::string* name : names_) out.push_back(*name);
  return out;
}

std::size_t MarkerUnifier::size() const {
  MutexLock lock(mu_);
  return names_.size();
}

std::string intervalFilePath(const std::string& prefix, NodeId node) {
  return prefix + "." + std::to_string(node) + ".uti";
}

EventToIntervalConverter::EventToIntervalConverter(MarkerUnifier& markers,
                                                   ConvertOptions options)
    : markers_(markers), options_(options) {}

// The file conversion is the streaming conversion with a .uti writer
// behind the callbacks: the writer is created when the thread table
// freezes (just before the first record), and marker definitions seen
// earlier are held back until then so the file's marker trailer matches
// what the pre-refactor one-shot converter wrote.
ConvertResult EventToIntervalConverter::convertFile(
    const std::string& rawPath, const std::string& outPath) {
  TraceFileReader reader(rawPath);

  std::unique_ptr<IntervalFileWriter> writer;
  std::vector<std::pair<std::uint32_t, std::string>> pendingMarkers;
  StreamingConverter::Callbacks callbacks;
  callbacks.onThreads = [&](const std::vector<ThreadEntry>& threads) {
    IntervalFileOptions opts;
    opts.profileVersion = kStandardProfileVersion;
    opts.fieldSelectionMask = kNodeFileMask;
    opts.merged = false;
    opts.targetFrameBytes = options_.targetFrameBytes;
    opts.framesPerDirectory = options_.framesPerDirectory;
    writer = std::make_unique<IntervalFileWriter>(outPath, opts, threads);
    for (const auto& [id, name] : pendingMarkers) writer->addMarker(id, name);
    pendingMarkers.clear();
  };
  callbacks.onMarker = [&](std::uint32_t id, const std::string& name) {
    if (writer) {
      writer->addMarker(id, name);
    } else {
      pendingMarkers.emplace_back(id, name);
    }
  };
  callbacks.onRecord = [&](std::span<const std::uint8_t> body) {
    writer->addRecord(body);
  };

  StreamingConverter conversion(markers_, reader.node(), std::move(callbacks));
  while (const auto ev = reader.next()) conversion.feed(*ev);
  conversion.finish();
  writer->close();

  ConvertResult result;
  result.outputPath = outPath;
  result.rawEvents = reader.eventsRead();
  result.intervalRecords = conversion.recordsOut();
  return result;
}

std::vector<std::string> scanMarkerNames(const std::string& rawPath,
                                         NodeId* node) {
  TraceFileReader reader(rawPath);
  if (node != nullptr) *node = reader.node();
  std::vector<std::string> names;
  while (const auto ev = reader.next()) {
    if (ev->type != EventType::kMarkerDef) continue;
    ByteReader r = ev->payloadReader();
    r.u32();  // task-local id — irrelevant to unification
    names.push_back(r.lstring());
  }
  return names;
}

std::vector<ConvertResult> convertRun(const std::vector<std::string>& rawPaths,
                                      const std::string& outPrefix,
                                      ConvertOptions options) {
  MarkerUnifier markers;
  const std::size_t jobs =
      std::min(effectiveJobs(options.jobs), rawPaths.size());
  std::vector<ConvertResult> results(rawPaths.size());

  if (jobs <= 1) {
    EventToIntervalConverter converter(markers, options);
    for (std::size_t i = 0; i < rawPaths.size(); ++i) {
      TraceFileReader probe(rawPaths[i]);  // to learn the node id for naming
      const NodeId node = probe.node();
      results[i] =
          converter.convertFile(rawPaths[i], intervalFilePath(outPrefix, node));
    }
    return results;
  }

  // Parallel fan-out, one worker per per-node file. Marker ids must not
  // depend on worker interleaving (output must be byte-identical to the
  // sequential path), so a scan pass first collects every MarkerDef name
  // in encounter order and pre-assigns ids by replaying those sequences
  // in input-file order — exactly the order sequential conversion would
  // have unified them in.
  std::vector<std::vector<std::string>> perFileNames(rawPaths.size());
  std::vector<NodeId> nodes(rawPaths.size(), -1);
  parallelFor(jobs, rawPaths.size(), [&](std::size_t i) {
    perFileNames[i] = scanMarkerNames(rawPaths[i], &nodes[i]);
  });
  for (const auto& names : perFileNames) markers.preassign(names);

  parallelFor(jobs, rawPaths.size(), [&](std::size_t i) {
    EventToIntervalConverter converter(markers, options);
    results[i] = converter.convertFile(rawPaths[i],
                                       intervalFilePath(outPrefix, nodes[i]));
  });
  return results;
}

}  // namespace ute
