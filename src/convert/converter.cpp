#include "convert/converter.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "interval/record.h"
#include "support/errors.h"
#include "support/thread_pool.h"

namespace ute {

std::uint32_t MarkerUnifier::unify(const std::string& name) {
  MutexLock lock(mu_);
  const auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(names_.size()) + 1;
  const auto inserted = byName_.emplace(name, id).first;
  names_.push_back(&inserted->first);
  return id;
}

void MarkerUnifier::preassign(const std::vector<std::string>& names) {
  for (const std::string& name : names) unify(name);
}

std::vector<std::string> MarkerUnifier::table() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const std::string* name : names_) out.push_back(*name);
  return out;
}

std::size_t MarkerUnifier::size() const {
  MutexLock lock(mu_);
  return names_.size();
}

std::string intervalFilePath(const std::string& prefix, NodeId node) {
  return prefix + "." + std::to_string(node) + ".uti";
}

namespace {

/// One open state of a thread: its event type and the pre-encoded field
/// bytes for the piece variants (see standard_profile.h field ordering).
struct StateInstance {
  EventType type = kRunningState;
  std::uint32_t markerId = 0;  ///< user markers only (for end matching)
  std::uint32_t pieces = 0;
  std::vector<std::uint8_t> argsAll;
  std::vector<std::uint8_t> argsBegin;
  std::vector<std::uint8_t> argsEnd;
};

struct ThreadConvertState {
  bool known = false;  ///< seen in a ThreadInfo record
  bool onCpu = false;
  CpuId cpu = 0;
  Tick pieceStart = 0;
  std::int32_t pid = 0;
  std::vector<StateInstance> stack;
};

/// Per-file conversion state machine.
class FileConversion {
 public:
  FileConversion(MarkerUnifier& markers, const ConvertOptions& options,
                 const std::string& rawPath, const std::string& outPath)
      : markers_(markers), options_(options), reader_(rawPath),
        outPath_(outPath), node_(reader_.node()) {}

  ConvertResult run();

 private:
  ThreadConvertState& threadState(LogicalThreadId ltid);
  IntervalFileWriter& writer();
  void handleEvent(const RawEvent& ev);
  void handleDispatch(const RawEvent& ev);
  void handleCallEntry(const RawEvent& ev, ThreadConvertState& ts);
  void handleCallExit(const RawEvent& ev, ThreadConvertState& ts);
  void handleMarker(const RawEvent& ev, ThreadConvertState& ts);
  void openPiece(ThreadConvertState& ts, Tick t, CpuId cpu);
  void closePiece(LogicalThreadId ltid, ThreadConvertState& ts, Tick t,
                  bool finalPiece);
  void sealThread(LogicalThreadId ltid, ThreadConvertState& ts, Tick t);
  void emitClockSync(const RawEvent& ev);
  void finishAtEof();

  MarkerUnifier& markers_;
  ConvertOptions options_;
  TraceFileReader reader_;
  std::string outPath_;
  NodeId node_;
  std::vector<ThreadEntry> threadTable_;
  std::vector<ThreadConvertState> threads_;
  /// (pid, task-local marker id) -> unified marker id.
  std::map<std::pair<std::int32_t, std::uint32_t>, std::uint32_t> markerMap_;
  std::vector<std::pair<std::uint32_t, std::string>> pendingMarkers_;
  std::unique_ptr<IntervalFileWriter> writer_;
  Tick lastEventTime_ = 0;
  std::uint64_t intervalsEmitted_ = 0;
};

ThreadConvertState& FileConversion::threadState(LogicalThreadId ltid) {
  if (ltid < 0) throw FormatError("event attributed to no thread");
  if (static_cast<std::size_t>(ltid) >= threads_.size()) {
    threads_.resize(static_cast<std::size_t>(ltid) + 1);
  }
  return threads_[static_cast<std::size_t>(ltid)];
}

IntervalFileWriter& FileConversion::writer() {
  if (!writer_) {
    IntervalFileOptions opts;
    opts.profileVersion = kStandardProfileVersion;
    opts.fieldSelectionMask = kNodeFileMask;
    opts.merged = false;
    opts.targetFrameBytes = options_.targetFrameBytes;
    opts.framesPerDirectory = options_.framesPerDirectory;
    writer_ = std::make_unique<IntervalFileWriter>(outPath_, opts,
                                                   threadTable_);
    for (const auto& [id, name] : pendingMarkers_) writer_->addMarker(id, name);
    pendingMarkers_.clear();
  }
  return *writer_;
}

ConvertResult FileConversion::run() {
  while (const auto ev = reader_.next()) {
    lastEventTime_ = ev->localTs;
    handleEvent(*ev);
  }
  finishAtEof();
  writer().close();

  ConvertResult result;
  result.outputPath = outPath_;
  result.rawEvents = reader_.eventsRead();
  result.intervalRecords = intervalsEmitted_;
  return result;
}

void FileConversion::handleEvent(const RawEvent& ev) {
  switch (ev.type) {
    case EventType::kNodeInfo:
      return;
    case EventType::kThreadInfo: {
      if (writer_) {
        throw FormatError("ThreadInfo record after interval emission in " +
                          std::to_string(node_));
      }
      ByteReader r = ev.payloadReader();
      ThreadEntry entry;
      entry.ltid = r.i32();
      entry.pid = r.i32();
      entry.systemTid = r.i32();
      entry.task = r.i32();
      entry.type = static_cast<ThreadType>(r.u8());
      entry.node = node_;
      threadTable_.push_back(entry);
      ThreadConvertState& ts = threadState(entry.ltid);
      ts.known = true;
      ts.pid = entry.pid;
      return;
    }
    case EventType::kMarkerDef: {
      ByteReader r = ev.payloadReader();
      const std::uint32_t localId = r.u32();
      const std::string name = r.lstring();
      const std::uint32_t unifiedId = markers_.unify(name);
      const ThreadConvertState& ts = threadState(ev.ltid);
      markerMap_[{ts.pid, localId}] = unifiedId;
      if (writer_) {
        writer_->addMarker(unifiedId, name);
      } else {
        pendingMarkers_.emplace_back(unifiedId, name);
      }
      return;
    }
    case EventType::kGlobalClock:
      emitClockSync(ev);
      return;
    case EventType::kThreadDispatch:
      handleDispatch(ev);
      return;
    case EventType::kUserMarker:
      handleMarker(ev, threadState(ev.ltid));
      return;
    case EventType::kPageFault: {
      // A point event: a zero-duration complete interval. It does not
      // interrupt the thread's current state piece (the stall shows up
      // as the descheduling that follows).
      const ByteWriter body = encodeRecordBody(
          makeIntervalType(EventType::kPageFault, Bebits::kComplete),
          ev.localTs, 0, ev.cpu, node_, ev.ltid, ev.payload);
      writer().addRecord(body.view());
      ++intervalsEmitted_;
      return;
    }
    default:
      if (isMpiEvent(ev.type) || isIoEvent(ev.type)) {
        ThreadConvertState& ts = threadState(ev.ltid);
        if ((ev.flags & kFlagBegin) != 0) {
          handleCallEntry(ev, ts);
        } else {
          handleCallExit(ev, ts);
        }
        return;
      }
      throw FormatError("unexpected event type " + eventTypeName(ev.type) +
                        " in raw trace");
  }
}

void FileConversion::handleDispatch(const RawEvent& ev) {
  ByteReader r = ev.payloadReader();
  const LogicalThreadId oldTid = r.i32();
  const LogicalThreadId newTid = r.i32();
  const bool oldExited = r.remaining() >= 4 && r.u32() != 0;
  if (oldTid >= 0) {
    ThreadConvertState& ts = threadState(oldTid);
    if (oldExited) {
      // The thread terminated: every state it still has open ends here,
      // innermost first, so its Running default state gets a proper
      // end/complete piece instead of lingering to the end of the trace.
      sealThread(oldTid, ts, ev.localTs);
    } else if (ts.onCpu) {
      closePiece(oldTid, ts, ev.localTs, /*finalPiece=*/false);
      ts.onCpu = false;
    }
  }
  if (newTid >= 0) {
    ThreadConvertState& ts = threadState(newTid);
    if (ts.stack.empty()) {
      // First dispatch of this thread: its Running default state begins.
      ts.stack.push_back(StateInstance{});
    }
    openPiece(ts, ev.localTs, ev.cpu);
  }
}

void FileConversion::openPiece(ThreadConvertState& ts, Tick t, CpuId cpu) {
  ts.onCpu = true;
  ts.cpu = cpu;
  ts.pieceStart = t;
}

void FileConversion::closePiece(LogicalThreadId ltid, ThreadConvertState& ts,
                                Tick t, bool finalPiece) {
  StateInstance& s = ts.stack.back();
  const Tick dura = t - ts.pieceStart;
  // Zero-length interruption pieces carry no information; suppress them
  // (a zero-length *final* piece still counts the call, so it is kept).
  if (dura == 0 && !finalPiece) return;
  const Bebits bebits =
      s.pieces == 0 ? (finalPiece ? Bebits::kComplete : Bebits::kBegin)
                    : (finalPiece ? Bebits::kEnd : Bebits::kContinuation);
  ByteWriter extra;
  extra.bytes(s.argsAll);
  if (isFirstPiece(bebits)) extra.bytes(s.argsBegin);
  if (isLastPiece(bebits)) extra.bytes(s.argsEnd);
  const ByteWriter body =
      encodeRecordBody(makeIntervalType(s.type, bebits), ts.pieceStart, dura,
                       ts.cpu, node_, ltid, extra.view());
  writer().addRecord(body.view());
  ++intervalsEmitted_;
  ++s.pieces;
}

void FileConversion::handleCallEntry(const RawEvent& ev,
                                     ThreadConvertState& ts) {
  if (!ts.onCpu) {
    throw FormatError("call entry from a thread that is not dispatched");
  }
  closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/false);
  StateInstance s;
  s.type = ev.type;
  s.argsBegin.assign(ev.payload.begin(), ev.payload.end());
  ts.stack.push_back(std::move(s));
  openPiece(ts, ev.localTs, ts.cpu);
}

void FileConversion::handleCallExit(const RawEvent& ev,
                                    ThreadConvertState& ts) {
  if (!ts.onCpu || ts.stack.size() < 2) {
    throw FormatError("call exit without a matching entry");
  }
  StateInstance& s = ts.stack.back();
  if (s.type != ev.type) {
    throw FormatError("call exit type " + eventTypeName(ev.type) +
                      " does not match open call " + eventTypeName(s.type));
  }
  // Call results (Section 2.3.2: exit arguments become end-piece fields).
  if ((ev.type == EventType::kMpiRecv || ev.type == EventType::kMpiWait)) {
    if (ev.payload.size() == 16) {
      s.argsEnd.assign(ev.payload.begin(), ev.payload.end());
    } else {
      // MPI_Wait on a send request: no receive result. Fill the fixed
      // result fields with sentinels so the record matches its spec.
      ByteWriter w;
      w.i32(-1);  // srcTask
      w.i32(-1);  // tagRecv
      w.u32(0);   // msgSizeRecv
      w.u32(0);   // seqNo
      s.argsEnd.assign(w.view().begin(), w.view().end());
    }
  }
  closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/true);
  ts.stack.pop_back();
  openPiece(ts, ev.localTs, ts.cpu);
}

void FileConversion::handleMarker(const RawEvent& ev, ThreadConvertState& ts) {
  if (!ts.onCpu) {
    throw FormatError("marker event from a thread that is not dispatched");
  }
  ByteReader r = ev.payloadReader();
  const std::uint32_t localId = r.u32();
  const std::uint64_t instrAddr = r.u64();
  const auto mapped = markerMap_.find({ts.pid, localId});
  if (mapped == markerMap_.end()) {
    throw FormatError("marker event before its definition (id " +
                      std::to_string(localId) + ")");
  }
  const std::uint32_t unifiedId = mapped->second;

  if ((ev.flags & kFlagBegin) != 0) {
    closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/false);
    StateInstance s;
    s.type = EventType::kUserMarker;
    s.markerId = unifiedId;
    ByteWriter all;
    all.u32(unifiedId);
    s.argsAll.assign(all.view().begin(), all.view().end());
    ByteWriter begin;
    begin.u64(instrAddr);
    s.argsBegin.assign(begin.view().begin(), begin.view().end());
    ts.stack.push_back(std::move(s));
    openPiece(ts, ev.localTs, ts.cpu);
  } else {
    if (ts.stack.size() < 2 ||
        ts.stack.back().type != EventType::kUserMarker ||
        ts.stack.back().markerId != unifiedId) {
      throw FormatError("marker end does not match the open marker");
    }
    ByteWriter end;
    end.u64(instrAddr);
    ts.stack.back().argsEnd.assign(end.view().begin(), end.view().end());
    closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/true);
    ts.stack.pop_back();
    openPiece(ts, ev.localTs, ts.cpu);
  }
}

void FileConversion::emitClockSync(const RawEvent& ev) {
  ByteReader r = ev.payloadReader();
  const Tick global = r.u64();
  const Tick local = r.u64();
  ByteWriter extra;
  extra.u64(global);
  const ByteWriter body = encodeRecordBody(
      makeIntervalType(kClockSyncState, Bebits::kComplete), local,
      /*dura=*/0, ev.cpu, node_, ev.ltid, extra.view());
  writer().addRecord(body.view());
  ++intervalsEmitted_;
}

void FileConversion::sealThread(LogicalThreadId ltid, ThreadConvertState& ts,
                                Tick t) {
  while (!ts.stack.empty()) {
    // A state sealed here never saw its exit event; pad the fixed result
    // fields its end/complete spec requires.
    StateInstance& top = ts.stack.back();
    if (top.argsEnd.empty()) {
      if (top.type == EventType::kMpiRecv || top.type == EventType::kMpiWait) {
        top.argsEnd.assign(16, 0);
      } else if (top.type == EventType::kUserMarker) {
        top.argsEnd.assign(8, 0);
      }
    }
    if (!ts.onCpu) {
      // No active piece (the state was between pieces); seal it with a
      // zero-duration end piece so every instance terminates properly.
      openPiece(ts, t, ts.cpu);
    }
    closePiece(ltid, ts, t, /*finalPiece=*/true);
    ts.onCpu = false;
    ts.stack.pop_back();
  }
}

void FileConversion::finishAtEof() {
  for (LogicalThreadId ltid = 0;
       static_cast<std::size_t>(ltid) < threads_.size(); ++ltid) {
    sealThread(ltid, threads_[static_cast<std::size_t>(ltid)],
               lastEventTime_);
  }
}

}  // namespace

EventToIntervalConverter::EventToIntervalConverter(MarkerUnifier& markers,
                                                   ConvertOptions options)
    : markers_(markers), options_(options) {}

ConvertResult EventToIntervalConverter::convertFile(
    const std::string& rawPath, const std::string& outPath) {
  FileConversion conversion(markers_, options_, rawPath, outPath);
  return conversion.run();
}

std::vector<std::string> scanMarkerNames(const std::string& rawPath,
                                         NodeId* node) {
  TraceFileReader reader(rawPath);
  if (node != nullptr) *node = reader.node();
  std::vector<std::string> names;
  while (const auto ev = reader.next()) {
    if (ev->type != EventType::kMarkerDef) continue;
    ByteReader r = ev->payloadReader();
    r.u32();  // task-local id — irrelevant to unification
    names.push_back(r.lstring());
  }
  return names;
}

std::vector<ConvertResult> convertRun(const std::vector<std::string>& rawPaths,
                                      const std::string& outPrefix,
                                      ConvertOptions options) {
  MarkerUnifier markers;
  const std::size_t jobs =
      std::min(effectiveJobs(options.jobs), rawPaths.size());
  std::vector<ConvertResult> results(rawPaths.size());

  if (jobs <= 1) {
    EventToIntervalConverter converter(markers, options);
    for (std::size_t i = 0; i < rawPaths.size(); ++i) {
      TraceFileReader probe(rawPaths[i]);  // to learn the node id for naming
      const NodeId node = probe.node();
      results[i] =
          converter.convertFile(rawPaths[i], intervalFilePath(outPrefix, node));
    }
    return results;
  }

  // Parallel fan-out, one worker per per-node file. Marker ids must not
  // depend on worker interleaving (output must be byte-identical to the
  // sequential path), so a scan pass first collects every MarkerDef name
  // in encounter order and pre-assigns ids by replaying those sequences
  // in input-file order — exactly the order sequential conversion would
  // have unified them in.
  std::vector<std::vector<std::string>> perFileNames(rawPaths.size());
  std::vector<NodeId> nodes(rawPaths.size(), -1);
  parallelFor(jobs, rawPaths.size(), [&](std::size_t i) {
    perFileNames[i] = scanMarkerNames(rawPaths[i], &nodes[i]);
  });
  for (const auto& names : perFileNames) markers.preassign(names);

  parallelFor(jobs, rawPaths.size(), [&](std::size_t i) {
    EventToIntervalConverter converter(markers, options);
    results[i] = converter.convertFile(rawPaths[i],
                                       intervalFilePath(outPrefix, nodes[i]));
  });
  return results;
}

}  // namespace ute
