// The convert utility: raw event trace files -> interval files
// (Section 3.1).
//
// Matching events is the first step: a begin event is matched with its
// end event to create an interval; if other events intervene (thread
// dispatch, nested user markers, nested MPI calls) the interval is
// divided into multiple pieces typed by bebits. The converter maintains,
// per thread, a stack of open states with the Running default state at
// the bottom; a piece of the innermost state is open exactly while the
// thread occupies a processor.
//
// The converter also re-assigns one unique identifier to each distinct
// user-marker string across all tasks (the tracing library hands out
// task-local identifiers without cross-task communication, so the same
// string may carry different ids in different tasks — and different
// strings the same id).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interval/file_writer.h"
#include "interval/standard_profile.h"
#include "support/types.h"
#include "trace/reader.h"

namespace ute {

/// Run-wide marker string -> unique identifier assignment, shared by all
/// per-node conversions of one run.
class MarkerUnifier {
 public:
  std::uint32_t unify(const std::string& name);
  const std::map<std::uint32_t, std::string>& table() const { return table_; }

 private:
  std::uint32_t nextId_ = 1;
  std::map<std::string, std::uint32_t> byName_;
  std::map<std::uint32_t, std::string> table_;
};

struct ConvertOptions {
  std::size_t targetFrameBytes = 32 << 10;
  int framesPerDirectory = 64;
};

struct ConvertResult {
  std::string outputPath;
  std::uint64_t rawEvents = 0;
  std::uint64_t intervalRecords = 0;
};

class EventToIntervalConverter {
 public:
  EventToIntervalConverter(MarkerUnifier& markers, ConvertOptions options = {});

  /// Converts one raw per-node trace file into one interval file.
  ConvertResult convertFile(const std::string& rawPath,
                            const std::string& outPath);

 private:
  MarkerUnifier& markers_;
  ConvertOptions options_;
};

/// Converts every raw file of a run ("<prefix>.<node>.utr"), producing
/// "<outPrefix>.<node>.uti" files with a shared marker unification.
std::vector<ConvertResult> convertRun(const std::vector<std::string>& rawPaths,
                                      const std::string& outPrefix,
                                      ConvertOptions options = {});

/// Output path convention for per-node interval files.
std::string intervalFilePath(const std::string& prefix, NodeId node);

}  // namespace ute
