// The convert utility: raw event trace files -> interval files
// (Section 3.1).
//
// Matching events is the first step: a begin event is matched with its
// end event to create an interval; if other events intervene (thread
// dispatch, nested user markers, nested MPI calls) the interval is
// divided into multiple pieces typed by bebits. The converter maintains,
// per thread, a stack of open states with the Running default state at
// the bottom; a piece of the innermost state is open exactly while the
// thread occupies a processor.
//
// The converter also re-assigns one unique identifier to each distinct
// user-marker string across all tasks (the tracing library hands out
// task-local identifiers without cross-task communication, so the same
// string may carry different ids in different tasks — and different
// strings the same id).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interval/file_writer.h"
#include "interval/standard_profile.h"
#include "support/thread_annotations.h"
#include "support/types.h"
#include "trace/reader.h"

namespace ute {

/// Run-wide marker string -> unique identifier assignment, shared by all
/// per-node conversions of one run. Thread-safe: the parallel convert
/// hands one unifier to every per-node worker. Ids are dense from 1 in
/// first-unify order; storage is a single name->id map plus an id->name
/// vector pointing at the map's (stable) keys.
class MarkerUnifier {
 public:
  /// Returns the run-wide id for `name`, assigning the next free id on
  /// first sight. Duplicate strings (the same marker defined in several
  /// tasks, possibly under colliding task-local ids) all map to the one
  /// id of the string.
  std::uint32_t unify(const std::string& name) UTE_EXCLUDES(mu_);

  /// Assigns ids for `names` in order (already-known names keep theirs).
  /// The parallel convert pre-assigns every marker of a run from a cheap
  /// scan pass in input-file order, so worker interleaving cannot change
  /// the assignment and the outputs stay byte-identical to sequential
  /// conversion.
  void preassign(const std::vector<std::string>& names);

  /// The name owning id `i + 1` is at table()[i] (ids are dense from 1).
  std::vector<std::string> table() const UTE_EXCLUDES(mu_);
  std::size_t size() const UTE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::uint32_t> byName_ UTE_GUARDED_BY(mu_);
  /// id - 1 -> key in byName_.
  std::vector<const std::string*> names_ UTE_GUARDED_BY(mu_);
};

struct ConvertOptions {
  std::size_t targetFrameBytes = 32 << 10;
  int framesPerDirectory = 64;
  /// Worker threads for convertRun: one per-node file per worker.
  /// 1 = sequential reference path; <= 0 = one per hardware thread.
  int jobs = 1;
};

struct ConvertResult {
  std::string outputPath;
  std::uint64_t rawEvents = 0;
  std::uint64_t intervalRecords = 0;
};

class EventToIntervalConverter {
 public:
  EventToIntervalConverter(MarkerUnifier& markers, ConvertOptions options = {});

  /// Converts one raw per-node trace file into one interval file.
  ConvertResult convertFile(const std::string& rawPath,
                            const std::string& outPath);

 private:
  MarkerUnifier& markers_;
  ConvertOptions options_;
};

/// Converts every raw file of a run ("<prefix>.<node>.utr"), producing
/// "<outPrefix>.<node>.uti" files with a shared marker unification.
/// With options.jobs != 1 the per-node conversions run on a thread pool
/// after a marker pre-scan; the outputs are byte-identical to jobs == 1.
std::vector<ConvertResult> convertRun(const std::vector<std::string>& rawPaths,
                                      const std::string& outPrefix,
                                      ConvertOptions options = {});

/// The unified marker names of one raw file in definition-encounter
/// order (the parallel convert's scan pass; repeats are preserved so the
/// replay order matches sequential conversion exactly).
std::vector<std::string> scanMarkerNames(const std::string& rawPath,
                                         NodeId* node = nullptr);

/// Output path convention for per-node interval files.
std::string intervalFilePath(const std::string& prefix, NodeId node);

}  // namespace ute
