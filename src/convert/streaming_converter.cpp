#include "convert/streaming_converter.h"

#include "convert/converter.h"
#include "interval/record.h"
#include "support/errors.h"

namespace ute {

StreamingConverter::StreamingConverter(MarkerUnifier& markers, NodeId node,
                                       Callbacks callbacks)
    : markers_(markers), node_(node), callbacks_(std::move(callbacks)) {}

StreamingConverter::ThreadState& StreamingConverter::threadState(
    LogicalThreadId ltid) {
  if (ltid < 0) throw FormatError("event attributed to no thread");
  if (static_cast<std::size_t>(ltid) >= threads_.size()) {
    threads_.resize(static_cast<std::size_t>(ltid) + 1);
  }
  return threads_[static_cast<std::size_t>(ltid)];
}

void StreamingConverter::announceThreads() {
  if (threadsAnnounced_) return;
  threadsAnnounced_ = true;
  if (callbacks_.onThreads) callbacks_.onThreads(threadTable_);
}

void StreamingConverter::emit(std::span<const std::uint8_t> body) {
  announceThreads();
  if (callbacks_.onRecord) callbacks_.onRecord(body);
  ++recordsOut_;
}

void StreamingConverter::feed(const RawEvent& ev) {
  ++eventsIn_;
  lastEventTime_ = ev.localTs;
  switch (ev.type) {
    case EventType::kNodeInfo:
      return;
    case EventType::kThreadInfo: {
      if (threadsAnnounced_) {
        throw FormatError("ThreadInfo record after interval emission in " +
                          std::to_string(node_));
      }
      ByteReader r = ev.payloadReader();
      ThreadEntry entry;
      entry.ltid = r.i32();
      entry.pid = r.i32();
      entry.systemTid = r.i32();
      entry.task = r.i32();
      entry.type = static_cast<ThreadType>(r.u8());
      entry.node = node_;
      threadTable_.push_back(entry);
      ThreadState& ts = threadState(entry.ltid);
      ts.known = true;
      ts.pid = entry.pid;
      return;
    }
    case EventType::kMarkerDef: {
      ByteReader r = ev.payloadReader();
      const std::uint32_t localId = r.u32();
      const std::string name = r.lstring();
      const std::uint32_t unifiedId = markers_.unify(name);
      const ThreadState& ts = threadState(ev.ltid);
      markerMap_[{ts.pid, localId}] = unifiedId;
      if (callbacks_.onMarker) callbacks_.onMarker(unifiedId, name);
      return;
    }
    case EventType::kGlobalClock:
      emitClockSync(ev);
      return;
    case EventType::kThreadDispatch:
      handleDispatch(ev);
      return;
    case EventType::kUserMarker:
      handleMarker(ev, threadState(ev.ltid));
      return;
    case EventType::kPageFault: {
      // A point event: a zero-duration complete interval. It does not
      // interrupt the thread's current state piece (the stall shows up
      // as the descheduling that follows).
      const ByteWriter body = encodeRecordBody(
          makeIntervalType(EventType::kPageFault, Bebits::kComplete),
          ev.localTs, 0, ev.cpu, node_, ev.ltid, ev.payload);
      emit(body.view());
      return;
    }
    default:
      if (isMpiEvent(ev.type) || isIoEvent(ev.type)) {
        ThreadState& ts = threadState(ev.ltid);
        if ((ev.flags & kFlagBegin) != 0) {
          handleCallEntry(ev, ts);
        } else {
          handleCallExit(ev, ts);
        }
        return;
      }
      throw FormatError("unexpected event type " + eventTypeName(ev.type) +
                        " in raw trace");
  }
}

void StreamingConverter::handleDispatch(const RawEvent& ev) {
  ByteReader r = ev.payloadReader();
  const LogicalThreadId oldTid = r.i32();
  const LogicalThreadId newTid = r.i32();
  const bool oldExited = r.remaining() >= 4 && r.u32() != 0;
  if (oldTid >= 0) {
    ThreadState& ts = threadState(oldTid);
    if (oldExited) {
      // The thread terminated: every state it still has open ends here,
      // innermost first, so its Running default state gets a proper
      // end/complete piece instead of lingering to the end of the trace.
      sealThread(oldTid, ts, ev.localTs);
    } else if (ts.onCpu) {
      closePiece(oldTid, ts, ev.localTs, /*finalPiece=*/false);
      ts.onCpu = false;
    }
  }
  if (newTid >= 0) {
    ThreadState& ts = threadState(newTid);
    if (ts.stack.empty()) {
      // First dispatch of this thread: its Running default state begins.
      ts.stack.push_back(StateInstance{});
    }
    openPiece(ts, ev.localTs, ev.cpu);
  }
}

void StreamingConverter::openPiece(ThreadState& ts, Tick t, CpuId cpu) {
  ts.onCpu = true;
  ts.cpu = cpu;
  ts.pieceStart = t;
}

void StreamingConverter::closePiece(LogicalThreadId ltid, ThreadState& ts,
                                    Tick t, bool finalPiece) {
  StateInstance& s = ts.stack.back();
  const Tick dura = t - ts.pieceStart;
  // Zero-length interruption pieces carry no information; suppress them
  // (a zero-length *final* piece still counts the call, so it is kept).
  if (dura == 0 && !finalPiece) return;
  const Bebits bebits =
      s.pieces == 0 ? (finalPiece ? Bebits::kComplete : Bebits::kBegin)
                    : (finalPiece ? Bebits::kEnd : Bebits::kContinuation);
  ByteWriter extra;
  extra.bytes(s.argsAll);
  if (isFirstPiece(bebits)) extra.bytes(s.argsBegin);
  if (isLastPiece(bebits)) extra.bytes(s.argsEnd);
  const ByteWriter body =
      encodeRecordBody(makeIntervalType(s.type, bebits), ts.pieceStart, dura,
                       ts.cpu, node_, ltid, extra.view());
  emit(body.view());
  ++s.pieces;
}

void StreamingConverter::handleCallEntry(const RawEvent& ev, ThreadState& ts) {
  if (!ts.onCpu) {
    throw FormatError("call entry from a thread that is not dispatched");
  }
  closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/false);
  StateInstance s;
  s.type = ev.type;
  s.argsBegin.assign(ev.payload.begin(), ev.payload.end());
  ts.stack.push_back(std::move(s));
  openPiece(ts, ev.localTs, ts.cpu);
}

void StreamingConverter::handleCallExit(const RawEvent& ev, ThreadState& ts) {
  if (!ts.onCpu || ts.stack.size() < 2) {
    throw FormatError("call exit without a matching entry");
  }
  StateInstance& s = ts.stack.back();
  if (s.type != ev.type) {
    throw FormatError("call exit type " + eventTypeName(ev.type) +
                      " does not match open call " + eventTypeName(s.type));
  }
  // Call results (Section 2.3.2: exit arguments become end-piece fields).
  if ((ev.type == EventType::kMpiRecv || ev.type == EventType::kMpiWait)) {
    if (ev.payload.size() == 16) {
      s.argsEnd.assign(ev.payload.begin(), ev.payload.end());
    } else {
      // MPI_Wait on a send request: no receive result. Fill the fixed
      // result fields with sentinels so the record matches its spec.
      ByteWriter w;
      w.i32(-1);  // srcTask
      w.i32(-1);  // tagRecv
      w.u32(0);   // msgSizeRecv
      w.u32(0);   // seqNo
      s.argsEnd.assign(w.view().begin(), w.view().end());
    }
  }
  closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/true);
  ts.stack.pop_back();
  openPiece(ts, ev.localTs, ts.cpu);
}

void StreamingConverter::handleMarker(const RawEvent& ev, ThreadState& ts) {
  if (!ts.onCpu) {
    throw FormatError("marker event from a thread that is not dispatched");
  }
  ByteReader r = ev.payloadReader();
  const std::uint32_t localId = r.u32();
  const std::uint64_t instrAddr = r.u64();
  const auto mapped = markerMap_.find({ts.pid, localId});
  if (mapped == markerMap_.end()) {
    throw FormatError("marker event before its definition (id " +
                      std::to_string(localId) + ")");
  }
  const std::uint32_t unifiedId = mapped->second;

  if ((ev.flags & kFlagBegin) != 0) {
    closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/false);
    StateInstance s;
    s.type = EventType::kUserMarker;
    s.markerId = unifiedId;
    ByteWriter all;
    all.u32(unifiedId);
    s.argsAll.assign(all.view().begin(), all.view().end());
    ByteWriter begin;
    begin.u64(instrAddr);
    s.argsBegin.assign(begin.view().begin(), begin.view().end());
    ts.stack.push_back(std::move(s));
    openPiece(ts, ev.localTs, ts.cpu);
  } else {
    if (ts.stack.size() < 2 ||
        ts.stack.back().type != EventType::kUserMarker ||
        ts.stack.back().markerId != unifiedId) {
      throw FormatError("marker end does not match the open marker");
    }
    ByteWriter end;
    end.u64(instrAddr);
    ts.stack.back().argsEnd.assign(end.view().begin(), end.view().end());
    closePiece(ev.ltid, ts, ev.localTs, /*finalPiece=*/true);
    ts.stack.pop_back();
    openPiece(ts, ev.localTs, ts.cpu);
  }
}

void StreamingConverter::emitClockSync(const RawEvent& ev) {
  ByteReader r = ev.payloadReader();
  const Tick global = r.u64();
  const Tick local = r.u64();
  ByteWriter extra;
  extra.u64(global);
  const ByteWriter body = encodeRecordBody(
      makeIntervalType(kClockSyncState, Bebits::kComplete), local,
      /*dura=*/0, ev.cpu, node_, ev.ltid, extra.view());
  emit(body.view());
}

void StreamingConverter::sealThread(LogicalThreadId ltid, ThreadState& ts,
                                    Tick t) {
  while (!ts.stack.empty()) {
    // A state sealed here never saw its exit event; pad the fixed result
    // fields its end/complete spec requires.
    StateInstance& top = ts.stack.back();
    if (top.argsEnd.empty()) {
      if (top.type == EventType::kMpiRecv || top.type == EventType::kMpiWait) {
        top.argsEnd.assign(16, 0);
      } else if (top.type == EventType::kUserMarker) {
        top.argsEnd.assign(8, 0);
      }
    }
    if (!ts.onCpu) {
      // No active piece (the state was between pieces); seal it with a
      // zero-duration end piece so every instance terminates properly.
      openPiece(ts, t, ts.cpu);
    }
    closePiece(ltid, ts, t, /*finalPiece=*/true);
    ts.onCpu = false;
    ts.stack.pop_back();
  }
}

void StreamingConverter::finish() {
  for (LogicalThreadId ltid = 0;
       static_cast<std::size_t>(ltid) < threads_.size(); ++ltid) {
    sealThread(ltid, threads_[static_cast<std::size_t>(ltid)],
               lastEventTime_);
  }
  // An event stream with no intervals still has a thread table to hand
  // over (the batch path writes an empty .uti with it).
  announceThreads();
}

}  // namespace ute
