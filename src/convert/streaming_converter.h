// Push-style event-to-interval conversion: the batch converter's
// per-file state machine with the input loop and the output file
// factored out. feed() raw events in time order; the converter fires
// callbacks with the frozen thread table (exactly once, immediately
// before the first interval record — or at finish() when a trace emits
// none), unified marker definitions, and encoded interval-record
// bodies.
//
// Two drivers share this one state machine: convertFile() writes the
// records into a .uti file (src/convert/converter.cpp), and the
// streaming ingest ships them over TCP as they are produced
// (src/stream). That sharing is what keeps a streamed conversion
// byte-identical to the batch one (docs/STREAMING.md).
//
// Thread-compatibility: confined to one thread, like the reader that
// feeds it; cross-thread marker unification is MarkerUnifier's job.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "interval/file_writer.h"
#include "interval/standard_profile.h"
#include "support/types.h"
#include "trace/reader.h"

namespace ute {

class MarkerUnifier;

class StreamingConverter {
 public:
  struct Callbacks {
    /// The complete thread table; fired once, before the first record.
    std::function<void(const std::vector<ThreadEntry>&)> onThreads;
    /// A unified marker definition (id, name); may fire before or after
    /// onThreads, in raw-event order.
    std::function<void(std::uint32_t, const std::string&)> onMarker;
    /// One encoded interval-record body, in ascending end-time order.
    std::function<void(std::span<const std::uint8_t>)> onRecord;
  };

  StreamingConverter(MarkerUnifier& markers, NodeId node, Callbacks callbacks);

  /// Converts one raw event; events must arrive in trace order (the
  /// order TraceFileReader yields, or a TraceSession sink fires).
  void feed(const RawEvent& ev);

  /// Seals every still-open state at the last event time and announces
  /// the thread table if no record ever forced it.
  void finish();

  const std::vector<ThreadEntry>& threads() const { return threadTable_; }
  NodeId node() const { return node_; }
  std::uint64_t eventsIn() const { return eventsIn_; }
  std::uint64_t recordsOut() const { return recordsOut_; }

 private:
  /// One open state of a thread: its event type and the pre-encoded
  /// field bytes for the piece variants (standard_profile.h ordering).
  struct StateInstance {
    EventType type = kRunningState;
    std::uint32_t markerId = 0;  ///< user markers only (for end matching)
    std::uint32_t pieces = 0;
    std::vector<std::uint8_t> argsAll;
    std::vector<std::uint8_t> argsBegin;
    std::vector<std::uint8_t> argsEnd;
  };

  struct ThreadState {
    bool known = false;  ///< seen in a ThreadInfo record
    bool onCpu = false;
    CpuId cpu = 0;
    Tick pieceStart = 0;
    std::int32_t pid = 0;
    std::vector<StateInstance> stack;
  };

  ThreadState& threadState(LogicalThreadId ltid);
  void announceThreads();
  void emit(std::span<const std::uint8_t> body);
  void handleDispatch(const RawEvent& ev);
  void handleCallEntry(const RawEvent& ev, ThreadState& ts);
  void handleCallExit(const RawEvent& ev, ThreadState& ts);
  void handleMarker(const RawEvent& ev, ThreadState& ts);
  void openPiece(ThreadState& ts, Tick t, CpuId cpu);
  void closePiece(LogicalThreadId ltid, ThreadState& ts, Tick t,
                  bool finalPiece);
  void sealThread(LogicalThreadId ltid, ThreadState& ts, Tick t);
  void emitClockSync(const RawEvent& ev);

  MarkerUnifier& markers_;
  NodeId node_;
  Callbacks callbacks_;
  std::vector<ThreadEntry> threadTable_;
  std::vector<ThreadState> threads_;
  /// (pid, task-local marker id) -> unified marker id.
  std::map<std::pair<std::int32_t, std::uint32_t>, std::uint32_t> markerMap_;
  bool threadsAnnounced_ = false;
  Tick lastEventTime_ = 0;
  std::uint64_t eventsIn_ = 0;
  std::uint64_t recordsOut_ = 0;
};

}  // namespace ute
