#include "fed/aggregate.h"

#include <algorithm>
#include <cmath>

namespace ute {

namespace {

/// Σ over bins and tasks of the task wall time (bin span × threads of
/// the task) — the same denominator commFraction(bin) uses per bin.
double totalWallNs(const MetricsStore& store) {
  double wall = 0;
  for (std::uint32_t b = 0; b < store.bins(); ++b) {
    const Tick lo = std::min(store.binStart(b), store.binEnd(b));
    const double span = static_cast<double>(store.binEnd(b) - lo);
    for (std::uint32_t k = 0; k < store.taskCount(); ++k) {
      wall += span * static_cast<double>(store.threadsPerTask()[k]);
    }
  }
  return wall;
}

double totalClassNs(const MetricsStore& store, StateClass c) {
  double total = 0;
  for (std::uint32_t b = 0; b < store.bins(); ++b) {
    for (std::uint32_t k = 0; k < store.taskCount(); ++k) {
      total += static_cast<double>(store.timeNs(c, b, k));
    }
  }
  return total;
}

}  // namespace

double runCommFraction(const MetricsStore& store) {
  const double wall = totalWallNs(store);
  if (wall <= 0) return 0.0;
  return std::min(1.0, totalClassNs(store, StateClass::kMpi) / wall);
}

double runLoadImbalance(const MetricsStore& store) {
  if (store.taskCount() == 0) return 0.0;
  double maxBusy = 0;
  double totalBusy = 0;
  for (std::uint32_t k = 0; k < store.taskCount(); ++k) {
    double busy = 0;
    for (std::uint32_t b = 0; b < store.bins(); ++b) {
      busy += static_cast<double>(store.timeNs(StateClass::kBusy, b, k));
    }
    maxBusy = std::max(maxBusy, busy);
    totalBusy += busy;
  }
  if (maxBusy <= 0) return 0.0;
  const double avg = totalBusy / static_cast<double>(store.taskCount());
  return (maxBusy - avg) / maxBusy;
}

double runLateSenderFraction(const MetricsStore& store) {
  const double wall = totalWallNs(store);
  if (wall <= 0) return 0.0;
  double late = 0;
  for (std::uint32_t b = 0; b < store.bins(); ++b) {
    for (std::uint32_t k = 0; k < store.taskCount(); ++k) {
      late += static_cast<double>(store.lateSenderNs(b, k));
    }
  }
  return std::min(1.0, late / wall);
}

Distribution summarize(std::vector<double> values) {
  Distribution d;
  if (values.empty()) return d;
  std::sort(values.begin(), values.end());
  d.min = values.front();
  d.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  d.mean = sum / static_cast<double>(values.size());
  // Nearest-rank percentile: the smallest value with at least p% of the
  // sample at or below it.
  const auto rank = [&values](double p) {
    const std::size_t n = values.size();
    std::size_t r = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(n)));
    if (r == 0) r = 1;
    return values[std::min(r, n) - 1];
  };
  d.p50 = rank(0.50);
  d.p99 = rank(0.99);
  return d;
}

AggregateReply aggregateStores(const std::vector<AggregateInput>& inputs) {
  AggregateReply reply;
  std::vector<double> comm, imbalance, late;
  reply.runs.reserve(inputs.size());
  for (const AggregateInput& input : inputs) {
    AggregateRun run;
    run.globalId = input.globalId;
    run.backend = input.backend;
    run.name = input.name;
    run.commFraction = runCommFraction(*input.store);
    run.loadImbalance = runLoadImbalance(*input.store);
    run.lateSenderFraction = runLateSenderFraction(*input.store);
    comm.push_back(run.commFraction);
    imbalance.push_back(run.loadImbalance);
    late.push_back(run.lateSenderFraction);
    reply.runs.push_back(std::move(run));
  }
  reply.commFraction = summarize(std::move(comm));
  reply.loadImbalance = summarize(std::move(imbalance));
  reply.lateSenderFraction = summarize(std::move(late));
  return reply;
}

namespace {

/// One run's series resampled onto `bins` equal slices of its own
/// [origin, end of last bin) — relative time, so two runs of different
/// length and epoch compare bin-for-bin. Source cells are split across
/// target bins proportionally to overlap (double arithmetic; comparison
/// is a diagnostic, not an exact-integer contract like .utm itself).
struct Rebinned {
  std::uint32_t bins = 0;
  std::uint32_t tasks = 0;
  std::vector<double> mpi;   ///< per target bin, summed over tasks
  std::vector<double> wall;  ///< per target bin, summed over tasks
  std::vector<double> busy;  ///< bin-major, bins × tasks

  double comm(std::uint32_t b) const {
    if (wall[b] <= 0) return 0.0;
    return std::min(1.0, mpi[b] / wall[b]);
  }
  double imbalance(std::uint32_t b) const {
    if (tasks == 0) return 0.0;
    double maxBusy = 0, total = 0;
    for (std::uint32_t k = 0; k < tasks; ++k) {
      const double v = busy[static_cast<std::size_t>(b) * tasks + k];
      maxBusy = std::max(maxBusy, v);
      total += v;
    }
    if (maxBusy <= 0) return 0.0;
    return (maxBusy - total / static_cast<double>(tasks)) / maxBusy;
  }
};

Rebinned rebin(const MetricsStore& store, std::uint32_t bins) {
  Rebinned out;
  out.bins = bins;
  out.tasks = store.taskCount();
  out.mpi.assign(bins, 0.0);
  out.wall.assign(bins, 0.0);
  out.busy.assign(static_cast<std::size_t>(bins) * out.tasks, 0.0);
  if (store.bins() == 0) return out;
  const Tick origin = store.origin();
  const Tick runEnd = store.binEnd(store.bins() - 1);
  const double runSpan = static_cast<double>(runEnd - origin);
  if (runSpan <= 0) return out;
  const double targetWidth = runSpan / static_cast<double>(bins);
  for (std::uint32_t sb = 0; sb < store.bins(); ++sb) {
    const double s0 = static_cast<double>(store.binStart(sb) - origin);
    const double s1 = static_cast<double>(store.binEnd(sb) - origin);
    if (s1 <= s0) continue;
    double srcMpi = 0, srcWall = 0;
    for (std::uint32_t k = 0; k < out.tasks; ++k) {
      srcMpi += static_cast<double>(store.timeNs(StateClass::kMpi, sb, k));
      srcWall += (s1 - s0) * static_cast<double>(store.threadsPerTask()[k]);
    }
    const auto firstTarget =
        static_cast<std::uint32_t>(std::min<double>(s0 / targetWidth,
                                                    bins - 1));
    for (std::uint32_t tb = firstTarget; tb < bins; ++tb) {
      const double t0 = static_cast<double>(tb) * targetWidth;
      const double t1 = (tb + 1 == bins) ? runSpan : t0 + targetWidth;
      const double overlap = std::min(s1, t1) - std::max(s0, t0);
      if (overlap <= 0) {
        if (t0 >= s1) break;
        continue;
      }
      const double frac = overlap / (s1 - s0);
      out.mpi[tb] += frac * srcMpi;
      out.wall[tb] += frac * srcWall;
      for (std::uint32_t k = 0; k < out.tasks; ++k) {
        out.busy[static_cast<std::size_t>(tb) * out.tasks + k] +=
            frac *
            static_cast<double>(store.timeNs(StateClass::kBusy, sb, k));
      }
    }
  }
  return out;
}

}  // namespace

CompareReply compareStores(const MetricsStore& a, const MetricsStore& b,
                           std::uint32_t bins) {
  CompareReply reply;
  reply.bins = bins;
  const Rebinned ra = rebin(a, bins);
  const Rebinned rb = rebin(b, bins);
  reply.commDelta.reserve(bins);
  reply.imbalanceDelta.reserve(bins);
  for (std::uint32_t t = 0; t < bins; ++t) {
    const double commDelta = rb.comm(t) - ra.comm(t);
    const double imbalanceDelta = rb.imbalance(t) - ra.imbalance(t);
    reply.commDelta.push_back(commDelta);
    reply.imbalanceDelta.push_back(imbalanceDelta);
    reply.maxAbsCommDelta =
        std::max(reply.maxAbsCommDelta, std::abs(commDelta));
    reply.maxAbsImbalanceDelta =
        std::max(reply.maxAbsImbalanceDelta, std::abs(imbalanceDelta));
  }
  return reply;
}

}  // namespace ute
