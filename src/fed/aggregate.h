// Cross-trace metric reduction (src/fed).
//
// The fan-out half of AggregateMetrics / CompareTraces: pure functions
// from decoded .utm stores (src/analysis/metrics.h) to the federation
// wire types. Kept free of any router or network state so the oracle
// test can call exactly these functions on the per-trace stores it
// computed itself and demand equality with what the router returned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "server/protocol.h"

namespace ute {

// --- whole-run scalars ------------------------------------------------------
// Each is the run-total analogue of the store's per-bin derived series:
// sums over all bins first, divide once — not an average of per-bin
// ratios, so empty bins carry no weight.

/// Σ MPI time / Σ task wall time over the whole run, in [0, 1].
double runCommFraction(const MetricsStore& store);
/// (max - mean) / max of per-task whole-run Running time; 0 when no
/// task ran or there are no tasks.
double runLoadImbalance(const MetricsStore& store);
/// Σ late-sender wait / Σ task wall time over the whole run.
double runLateSenderFraction(const MetricsStore& store);

/// Five-number summary of `values` (nearest-rank percentiles; an empty
/// input yields all zeros). Sorts a copy; callers keep their order.
Distribution summarize(std::vector<double> values);

/// One trace's contribution to an aggregate.
struct AggregateInput {
  std::uint32_t globalId = 0;
  std::string backend;
  std::string name;
  const MetricsStore* store = nullptr;
};

/// The full AggregateMetrics reduction: per-run scalars for every input
/// plus the three cross-run distributions.
AggregateReply aggregateStores(const std::vector<AggregateInput>& inputs);

/// The CompareTraces reduction: rebin both runs onto a common axis of
/// `bins` bins over each run's own [origin, totalEnd] (relative time, so
/// runs of different length and epoch line up), then emit per-bin
/// (B - A) deltas of comm fraction and load imbalance. `bins` must be
/// >= 1 (callers clamp).
CompareReply compareStores(const MetricsStore& a, const MetricsStore& b,
                           std::uint32_t bins);

}  // namespace ute
