// Per-backend circuit breaker (src/fed).
//
// A dead backend must cost the router one failed connect per cooldown
// window, not one per client request. The breaker is the standard
// three-state machine: Closed passes everything; `failureThreshold`
// consecutive failures open it; an open circuit rejects until the
// cooldown elapses, then admits exactly one probe (HalfOpen). A probe
// success closes the circuit and resets the cooldown; a probe failure
// re-opens it with the cooldown doubled (bounded by cooldownMaxMs), so a
// backend that stays down is poked ever more rarely.
//
// Time is injected (steady_clock::time_point) so tests drive the machine
// deterministically. Not internally synchronized: the registry guards
// each breaker with its own mutex.
#pragma once

#include <algorithm>
#include <chrono>

namespace ute {

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    int failureThreshold = 3;
    int cooldownBaseMs = 200;
    int cooldownMaxMs = 5000;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(const Options& options) : options_(options) {}

  State state() const { return state_; }

  /// May a request go to this backend right now? An open circuit whose
  /// cooldown has elapsed transitions to HalfOpen and admits this one
  /// call as the probe; further calls are rejected until the probe
  /// reports back through recordSuccess()/recordFailure().
  bool allow(Clock::time_point now) {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now >= reopenAt_) {
          state_ = State::kHalfOpen;
          return true;
        }
        return false;
      case State::kHalfOpen:
        return false;  // one probe in flight
    }
    return false;
  }

  void recordSuccess() {
    state_ = State::kClosed;
    failures_ = 0;
    cooldownMs_ = options_.cooldownBaseMs;
  }

  void recordFailure(Clock::time_point now) {
    ++failures_;
    if (state_ == State::kHalfOpen) {
      // The probe failed: back off harder.
      cooldownMs_ = std::min(cooldownMs_ * 2, options_.cooldownMaxMs);
      trip(now);
    } else if (failures_ >= options_.failureThreshold) {
      trip(now);
    }
  }

  /// Forgets the cooldown (probeNow() uses this so tests and admin
  /// sweeps can force an immediate reconnection attempt).
  void resetCooldown() {
    if (state_ == State::kOpen) reopenAt_ = Clock::time_point::min();
  }

 private:
  void trip(Clock::time_point now) {
    state_ = State::kOpen;
    reopenAt_ = now + std::chrono::milliseconds(cooldownMs_);
  }

  Options options_;
  State state_ = State::kClosed;
  int failures_ = 0;
  int cooldownMs_ = options_.cooldownBaseMs;
  Clock::time_point reopenAt_ = Clock::time_point::min();
};

}  // namespace ute
