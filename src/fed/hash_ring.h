// Consistent hash ring over backend names (src/fed).
//
// The federation router assigns every trace a stable preference order of
// backends: hash the trace name onto a ring of virtual nodes, walk
// clockwise, and collect each distinct backend once. Virtual nodes keep
// the assignment balanced; consistency keeps it *stable* — adding one
// backend to a ring of N moves only ~1/(N+1) of the keys (pinned by
// tests/fed/hash_ring_test.cpp), so a fleet resize does not stampede
// every cached reply and pooled connection at once.
//
// Not internally synchronized: the router's registry owns the ring and
// guards it with its own mutex.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ute {

/// FNV-1a, the same cheap deterministic hash the rest of the project
/// uses for content signatures (no seed, identical across runs).
inline std::uint64_t fedHash64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

class HashRing {
 public:
  explicit HashRing(std::size_t virtualNodes = 64)
      : virtualNodes_(virtualNodes == 0 ? 1 : virtualNodes) {}

  void add(const std::string& node) {
    for (std::size_t v = 0; v < virtualNodes_; ++v) {
      ring_.emplace(pointFor(node, v), node);
    }
  }

  void remove(const std::string& node) {
    for (std::size_t v = 0; v < virtualNodes_; ++v) {
      const std::uint64_t point = pointFor(node, v);
      // Points can collide across nodes; erase only this node's entries.
      auto [lo, hi] = ring_.equal_range(point);
      for (auto it = lo; it != hi;) {
        it = (it->second == node) ? ring_.erase(it) : std::next(it);
      }
    }
  }

  bool empty() const { return ring_.empty(); }

  /// The first backend clockwise of `key` — the ring's owner.
  std::string owner(const std::string& key) const {
    const std::vector<std::string> order = preferenceOrder(key, 1);
    return order.empty() ? std::string() : order[0];
  }

  /// Up to `maxNodes` distinct backends in clockwise order from `key`'s
  /// ring position: the owner first, then the failover candidates.
  std::vector<std::string> preferenceOrder(const std::string& key,
                                           std::size_t maxNodes) const {
    std::vector<std::string> order;
    if (ring_.empty() || maxNodes == 0) return order;
    auto it = ring_.lower_bound(fedHash64(key));
    for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
      if (it == ring_.end()) it = ring_.begin();
      if (std::find(order.begin(), order.end(), it->second) == order.end()) {
        order.push_back(it->second);
        if (order.size() >= maxNodes) break;
      }
      ++it;
    }
    return order;
  }

 private:
  std::uint64_t pointFor(const std::string& node, std::size_t replica) const {
    return fedHash64(node + "#" + std::to_string(replica));
  }

  /// multimap: two virtual nodes hashing to the same point must not
  /// silently drop one backend.
  std::multimap<std::uint64_t, std::string> ring_;
  std::size_t virtualNodes_;
};

}  // namespace ute
