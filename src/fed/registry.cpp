#include "fed/registry.h"

#include <limits>
#include <utility>

#include "support/errors.h"

namespace ute {

BackendSpec parseBackendSpec(const std::string& name,
                             const std::string& hostPort) {
  const std::size_t colon = hostPort.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == hostPort.size()) {
    throw UsageError("backend address must be host:port, got '" + hostPort +
                     "'");
  }
  BackendSpec spec;
  spec.name = name;
  spec.host = hostPort.substr(0, colon);
  const std::string portStr = hostPort.substr(colon + 1);
  unsigned long port = 0;
  try {
    port = std::stoul(portStr);
  } catch (const std::exception&) {
    throw UsageError("bad backend port '" + portStr + "'");
  }
  if (port == 0 || port > 65535) {
    throw UsageError("backend port out of range: " + portStr);
  }
  spec.port = static_cast<std::uint16_t>(port);
  return spec;
}

BackendRegistry::BackendRegistry(const RegistryOptions& options)
    : options_(options), ring_(options.virtualNodes) {}

void BackendRegistry::add(const BackendSpec& spec) {
  if (spec.name.empty()) throw UsageError("backend name must not be empty");
  MutexLock lock(mu_);
  if (backends_.count(spec.name) != 0) {
    throw UsageError("backend '" + spec.name + "' already registered");
  }
  Backend backend;
  backend.spec = spec;
  backend.circuit = CircuitBreaker(options_.circuit);
  backends_.emplace(spec.name, std::move(backend));
  ring_.add(spec.name);
}

void BackendRegistry::remove(const std::string& name) {
  MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) {
    throw UsageError("unknown backend '" + name + "'");
  }
  backends_.erase(it);
  ring_.remove(name);
  for (auto row = traces_.begin(); row != traces_.end();) {
    row = (row->second.entry.backend == name) ? traces_.erase(row)
                                              : std::next(row);
  }
}

std::vector<std::string> BackendRegistry::backendNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& [name, backend] : backends_) names.push_back(name);
  return names;
}

CircuitBreaker::State BackendRegistry::circuitState(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) {
    throw UsageError("unknown backend '" + name + "'");
  }
  return it->second.circuit.state();
}

std::uint64_t BackendRegistry::generation(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) {
    throw UsageError("unknown backend '" + name + "'");
  }
  return it->second.generation;
}

std::vector<FedTraceEntry> BackendRegistry::listTraces() const {
  MutexLock lock(mu_);
  std::vector<FedTraceEntry> entries;
  entries.reserve(traces_.size());
  for (const auto& [globalId, row] : traces_) entries.push_back(row.entry);
  return entries;
}

std::vector<BackendRegistry::Route> BackendRegistry::routesFor(
    std::uint32_t globalId) const {
  MutexLock lock(mu_);
  const auto it = traces_.find(globalId);
  std::vector<Route> routes;
  if (it == traces_.end()) return routes;
  const std::string& traceName = it->second.entry.name;
  // Every backend holding a same-name replica, in ring preference order
  // of the trace name. The owning backend of `globalId` is always one of
  // them; others are failover candidates.
  const std::vector<std::string> order =
      ring_.preferenceOrder(traceName, backends_.size());
  for (const std::string& backendName : order) {
    for (const auto& [id, row] : traces_) {
      if (row.entry.backend == backendName && row.entry.name == traceName) {
        Route route;
        route.backend = backendName;
        route.localId = row.localId;
        route.generation = row.entry.generation;
        route.live = row.entry.live;
        routes.push_back(std::move(route));
        break;
      }
    }
  }
  return routes;
}

void BackendRegistry::probe(bool force) {
  for (const std::string& name : backendNames()) probeOne(name, force);
}

void BackendRegistry::probeOne(const std::string& name, bool force) {
  BackendSpec spec;
  {
    MutexLock lock(mu_);
    const auto it = backends_.find(name);
    if (it == backends_.end()) return;
    if (force) it->second.circuit.resetCooldown();
    if (!it->second.circuit.allow(CircuitBreaker::Clock::now())) return;
    spec = it->second.spec;
  }
  // Connect + enumerate with the registry unlocked: a dead backend costs
  // this sweep a connect timeout, not the whole router a stall.
  std::vector<ProbedTrace> probed;
  bool ok = false;
  try {
    ClientOptions clientOptions = options_.client;
    clientOptions.retries = 0;
    clientOptions.acceptEncodings = 0b01;  // row: enumeration only
    TraceClient client(spec.host, spec.port, clientOptions);
    const std::uint32_t count = client.traceCount();
    probed.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const TraceInfo info = client.info(i);
      ProbedTrace trace;
      trace.name = info.path;
      trace.totalStart = info.totalStart;
      trace.totalEnd = info.totalEnd;
      trace.frames = info.frames;
      // Liveness probe: a past-the-end tail cursor returns no frames,
      // just the finished flag (false only while the feed is open).
      trace.live = !client.tailFrames(i, std::numeric_limits<std::uint64_t>::max(), 1).finished;
      probed.push_back(std::move(trace));
    }
    ok = true;
  } catch (const std::exception&) {
    ok = false;
  }
  MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return;  // removed during the probe
  if (!ok) {
    it->second.circuit.recordFailure(CircuitBreaker::Clock::now());
    return;
  }
  const bool wasDown = it->second.circuit.state() != CircuitBreaker::State::kClosed;
  it->second.circuit.recordSuccess();
  if (wasDown && it->second.everProbed) {
    // Reconnected after an outage: the backend may have restarted with
    // different content; a generation bump invalidates cached replies
    // conservatively (re-enumeration below may bump again — harmless).
    ++it->second.generation;
  }
  it->second.everProbed = true;
  applyEnumeration(name, probed);
}

void BackendRegistry::applyEnumeration(
    const std::string& name, const std::vector<ProbedTrace>& traces) {
  Backend& backend = backends_.at(name);
  // Content signature of the enumerated rows; order-sensitive (local
  // ids are positional).
  std::uint64_t signature = 1469598103934665603ull;
  const auto mix = [&signature](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      signature ^= (v >> (i * 8)) & 0xff;
      signature *= 1099511628211ull;
    }
  };
  for (const ProbedTrace& t : traces) {
    mix(fedHash64(t.name));
    mix(t.totalStart);
    mix(t.totalEnd);
    mix(t.frames);
    mix(t.live ? 1 : 0);
  }
  if (backend.signature != 0 && backend.signature != signature) {
    ++backend.generation;
  }
  backend.signature = signature;
  // Rebuild this backend's rows (stable ids via assignedIds_).
  for (auto row = traces_.begin(); row != traces_.end();) {
    row = (row->second.entry.backend == name) ? traces_.erase(row)
                                              : std::next(row);
  }
  for (std::uint32_t localId = 0;
       localId < static_cast<std::uint32_t>(traces.size()); ++localId) {
    const ProbedTrace& t = traces[localId];
    TraceRow row;
    row.localId = localId;
    row.entry.globalId = globalIdFor(name, t.name);
    row.entry.backend = name;
    row.entry.name = t.name;
    row.entry.live = t.live;
    row.entry.totalStart = t.totalStart;
    row.entry.totalEnd = t.totalEnd;
    row.entry.frames = t.frames;
    row.entry.generation = backend.generation;
    traces_[row.entry.globalId] = std::move(row);
  }
}

std::uint32_t BackendRegistry::globalIdFor(const std::string& backend,
                                           const std::string& traceName) {
  const auto key = std::make_pair(backend, traceName);
  const auto it = assignedIds_.find(key);
  if (it != assignedIds_.end()) return it->second;
  const std::uint32_t id = nextGlobalId_++;
  assignedIds_.emplace(key, id);
  return id;
}

BackendRegistry::Lease BackendRegistry::borrow(const std::string& backend,
                                               FrameEncoding encoding,
                                               bool force) {
  BackendSpec spec;
  {
    MutexLock lock(mu_);
    const auto it = backends_.find(backend);
    if (it == backends_.end()) {
      throw IoError("backend '" + backend + "' is not registered");
    }
    if (force) it->second.circuit.resetCooldown();
    if (!it->second.circuit.allow(CircuitBreaker::Clock::now())) {
      throw IoError("backend '" + backend + "' circuit is open");
    }
    auto& pool = it->second.pool[static_cast<std::size_t>(encoding)];
    if (!pool.empty()) {
      Lease lease;
      lease.client = std::move(pool.back());
      pool.pop_back();
      lease.backend = backend;
      lease.encoding = encoding;
      return lease;
    }
    spec = it->second.spec;
  }
  ClientOptions clientOptions = options_.client;
  clientOptions.retries = 0;
  // Offer exactly one encoding so the backend link speaks the same
  // frame layout as the client link — relayed bytes stay identical to a
  // direct connection.
  clientOptions.acceptEncodings =
      static_cast<std::uint8_t>(1u << static_cast<unsigned>(encoding));
  try {
    Lease lease;
    lease.client =
        std::make_unique<TraceClient>(spec.host, spec.port, clientOptions);
    lease.backend = backend;
    lease.encoding = encoding;
    if (lease.client->frameEncoding() != encoding) {
      throw IoError("backend '" + backend +
                    "' negotiated a different frame encoding");
    }
    return lease;
  } catch (const std::exception&) {
    MutexLock lock(mu_);
    const auto it = backends_.find(backend);
    if (it != backends_.end()) {
      it->second.circuit.recordFailure(CircuitBreaker::Clock::now());
    }
    throw;
  }
}

void BackendRegistry::giveBack(Lease lease, bool ok) {
  MutexLock lock(mu_);
  const auto it = backends_.find(lease.backend);
  if (it == backends_.end()) return;  // removed while borrowed
  if (!ok) {
    it->second.circuit.recordFailure(CircuitBreaker::Clock::now());
    return;  // the connection is suspect; drop it
  }
  const bool wasDown =
      it->second.circuit.state() != CircuitBreaker::State::kClosed;
  it->second.circuit.recordSuccess();
  if (wasDown && it->second.everProbed) ++it->second.generation;
  auto& pool = it->second.pool[static_cast<std::size_t>(lease.encoding)];
  if (pool.size() < options_.poolSize) {
    pool.push_back(std::move(lease.client));
  }
}

}  // namespace ute
