// Backend registry for the federation router (src/fed).
//
// Owns everything the router knows about its fleet: the backend set
// (static config plus runtime add/remove), per-backend health as a
// circuit breaker fed by periodic hello probes, the enumerated trace
// table with stable *global* trace ids, the consistent-hash ring that
// orders failover candidates, and small per-(backend, encoding) pools of
// protocol connections.
//
// Global ids are keyed by (backend name, trace name) and never reused:
// a backend that drops out and re-registers, or re-enumerates after a
// restart, keeps the ids its traces already had — clients hold ids
// across backend restarts. Each backend carries a generation counter,
// bumped on reconnect-after-down and on any enumeration whose content
// signature changed; the router's reply cache keys on it, so a bump is
// an invalidation.
//
// All state lives behind one mutex; network I/O (connect, hello,
// enumeration round trips) always happens with the mutex released, so a
// slow or dead backend never blocks routing decisions for the rest of
// the fleet.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fed/circuit.h"
#include "fed/hash_ring.h"
#include "server/client.h"
#include "support/thread_annotations.h"

namespace ute {

struct BackendSpec {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" (throws UsageError on malformed input).
BackendSpec parseBackendSpec(const std::string& name,
                             const std::string& hostPort);

struct RegistryOptions {
  /// Connection policy for backend links. The registry forces retries to
  /// 0 — the router's proxy loop owns retry/backoff, and double-retrying
  /// would multiply the worst-case latency.
  ClientOptions client;
  CircuitBreaker::Options circuit;
  std::size_t virtualNodes = 64;
  /// Idle pooled connections kept per (backend, encoding).
  std::size_t poolSize = 4;

  RegistryOptions() {
    client.connectTimeoutMs = 2000;
    client.retries = 0;
  }
};

class BackendRegistry {
 public:
  explicit BackendRegistry(const RegistryOptions& options);

  // --- fleet membership (admin ops) ----------------------------------------

  /// Registers a backend (UsageError if the name is taken). The new
  /// backend is unknown-health until the next probe.
  void add(const BackendSpec& spec) UTE_EXCLUDES(mu_);
  /// Unregisters a backend and drops its traces from the table and its
  /// pooled connections (UsageError if unknown). Global ids the traces
  /// held stay reserved.
  void remove(const std::string& name) UTE_EXCLUDES(mu_);
  std::vector<std::string> backendNames() const UTE_EXCLUDES(mu_);

  // --- health + enumeration -------------------------------------------------

  /// One health/enumeration sweep over every backend: connect + hello
  /// where the circuit admits it (`force` resets cooldowns first, for
  /// admin sweeps and deterministic tests), re-enumerate traces, update
  /// circuits and generations. Blocking; the background health thread
  /// and RouterService::probeNow() both call this.
  void probe(bool force) UTE_EXCLUDES(mu_);

  CircuitBreaker::State circuitState(const std::string& name) const
      UTE_EXCLUDES(mu_);
  std::uint64_t generation(const std::string& name) const UTE_EXCLUDES(mu_);

  // --- trace table ----------------------------------------------------------

  std::vector<FedTraceEntry> listTraces() const UTE_EXCLUDES(mu_);

  /// One proxy candidate: a backend holding a replica of the trace.
  struct Route {
    std::string backend;
    std::uint32_t localId = 0;
    std::uint64_t generation = 0;
    bool live = false;
  };
  /// Candidates for `globalId` in consistent-hash preference order: the
  /// id's own trace name looked up on every backend that reported a
  /// trace of the same name, ring-ordered. Empty if the id is unknown.
  std::vector<Route> routesFor(std::uint32_t globalId) const
      UTE_EXCLUDES(mu_);

  // --- pooled backend connections ------------------------------------------

  /// A borrowed protocol connection. TraceClient is single-threaded, so
  /// the lease is exclusive; return it with giveBack().
  struct Lease {
    std::unique_ptr<TraceClient> client;
    std::string backend;
    FrameEncoding encoding = FrameEncoding::kRow;
  };

  /// Borrows a pooled connection to `backend` negotiated to exactly
  /// `encoding` (so relayed reply bytes match a direct connection),
  /// creating one if the pool is empty. Throws IoError if the circuit
  /// rejects the attempt (`force` resets the cooldown first) or the
  /// connect/hello fails — the failure is recorded against the circuit.
  Lease borrow(const std::string& backend, FrameEncoding encoding,
               bool force = false) UTE_EXCLUDES(mu_);
  /// Returns a lease. `ok` feeds the circuit: a healthy lease goes back
  /// to the pool; a failed one is discarded and counts as a failure.
  void giveBack(Lease lease, bool ok) UTE_EXCLUDES(mu_);

 private:
  struct Backend {
    BackendSpec spec;
    CircuitBreaker circuit;
    std::uint64_t generation = 0;
    /// FNV over the enumerated trace rows; a change bumps generation.
    std::uint64_t signature = 0;
    bool everProbed = false;
    /// Pools indexed by FrameEncoding value.
    std::vector<std::unique_ptr<TraceClient>> pool[2];
  };

  struct TraceRow {
    FedTraceEntry entry;     ///< entry.generation mirrors the backend's
    std::uint32_t localId = 0;
  };

  /// One enumerated trace as probe() sees it on the wire.
  struct ProbedTrace {
    std::string name;
    bool live = false;
    Tick totalStart = 0;
    Tick totalEnd = 0;
    std::uint32_t frames = 0;
  };

  void probeOne(const std::string& name, bool force) UTE_EXCLUDES(mu_);
  void applyEnumeration(const std::string& name,
                        const std::vector<ProbedTrace>& traces)
      UTE_REQUIRES(mu_);
  std::uint32_t globalIdFor(const std::string& backend,
                            const std::string& traceName) UTE_REQUIRES(mu_);

  const RegistryOptions options_;
  mutable Mutex mu_;
  std::map<std::string, Backend> backends_ UTE_GUARDED_BY(mu_);
  /// globalId -> row; rows of removed backends are erased, their ids
  /// stay reserved in assignedIds_.
  std::map<std::uint32_t, TraceRow> traces_ UTE_GUARDED_BY(mu_);
  /// (backend name, trace name) -> the global id it was ever assigned.
  std::map<std::pair<std::string, std::string>, std::uint32_t> assignedIds_
      UTE_GUARDED_BY(mu_);
  HashRing ring_ UTE_GUARDED_BY(mu_);
  std::uint32_t nextGlobalId_ UTE_GUARDED_BY(mu_) = 1;
};

}  // namespace ute
