#include "fed/router_server.h"

#include "server/protocol.h"
#include "support/errors.h"

namespace ute {

RouterServer::RouterServer(RouterService& service, std::uint16_t port)
    : service_(service), listener_(port) {
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

RouterServer::~RouterServer() { stop(); }

void RouterServer::stop() {
  stopping_.store(true);
  listener_.close();
  if (acceptThread_.joinable()) acceptThread_.join();
  {
    MutexLock lock(connectionsMu_);
    for (auto& conn : connections_) conn->socket.shutdownBoth();
  }
  std::list<std::unique_ptr<Connection>> drained;
  {
    MutexLock lock(connectionsMu_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void RouterServer::acceptLoop() {
  for (;;) {
    std::optional<TcpSocket> client = listener_.accept();
    if (!client) return;  // listener closed
    if (stopping_.load()) return;
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*client);
    Connection* raw = conn.get();
    {
      MutexLock lock(connectionsMu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serveConnection(*raw); });
  }
}

void RouterServer::serveConnection(Connection& conn) {
  ConnectionContext ctx;
  try {
    for (;;) {
      const auto request = recvMessage(conn.socket);
      if (!request) return;  // client hung up
      RequestOutcome outcome = service_.handle(*request, ctx);
      sendMessage(conn.socket, outcome.response);
      if (outcome.shutdown) {
        stopRequested_.store(true);
        return;
      }
    }
  } catch (const FormatError& e) {
    try {
      sendMessage(conn.socket,
                  encodeErrorReply(ErrorCode::kBadRequest, e.what()));
    } catch (const std::exception&) {
      // The connection is already too broken to carry the explanation.
    }
  } catch (const std::exception&) {
    // Torn connection: drop the client.
  }
}

}  // namespace ute
