#include "fed/router_server.h"

namespace ute {

namespace {

ReactorOptions reactorOptions(const RouterServerOptions& options) {
  ReactorOptions reactor;
  reactor.idleTimeoutMs = options.idleTimeoutMs;
  reactor.readTimeoutMs = options.readTimeoutMs;
  reactor.maxPipeline = options.maxPipeline;
  reactor.drainTimeoutMs = options.drainTimeoutMs;
  reactor.maxMessageBytes = kMaxMessageBytes;
  return reactor;
}

}  // namespace

RouterServer::RouterServer(RouterService& service, std::uint16_t port)
    : RouterServer(service, [port] {
        RouterServerOptions options;
        options.port = port;
        return options;
      }()) {}

RouterServer::RouterServer(RouterService& service,
                           const RouterServerOptions& options)
    : service_(service) {
  pool_ = std::make_unique<WorkerPool>(options.workers, options.queueDepth);
  Reactor::Handler& handler = *this;
  reactor_ = std::make_unique<Reactor>(options.port, handler,
                                       reactorOptions(options));
}

RouterServer::~RouterServer() { stop(); }

void RouterServer::stop() { reactor_->shutdown(); }

void RouterServer::onRequest(Reactor::Request req,
                             std::vector<std::uint8_t> payload) {
  auto [it, inserted] = contexts_.try_emplace(req.conn, nullptr);
  if (inserted) it->second = std::make_shared<ConnectionContext>();
  std::shared_ptr<ConnectionContext> ctx = it->second;

  // The relay blocks on backend round trips; it must leave the reactor
  // thread. Concurrency across clients comes from the pool width.
  auto body = std::make_shared<std::vector<std::uint8_t>>(std::move(payload));
  const bool accepted = pool_->trySubmit([this, req, ctx, body] {
    RequestOutcome outcome = service_.handle(*body, *ctx);
    if (outcome.shutdown) stopRequested_.store(true);
    req.reactor->complete(req, std::move(outcome.response), outcome.shutdown);
  });
  if (!accepted) {
    req.reactor->complete(
        req, encodeErrorReply(ErrorCode::kOverloaded,
                              "router relay queue full (" +
                                  std::to_string(pool_->maxQueue()) +
                                  " deep)"));
  }
}

std::vector<std::uint8_t> RouterServer::onConnError(
    Reactor::ConnId /*conn*/, Reactor::ConnError /*kind*/,
    const std::string& detail) {
  return encodeErrorReply(ErrorCode::kBadRequest, detail);
}

void RouterServer::onClosed(Reactor::ConnId conn) { contexts_.erase(conn); }

}  // namespace ute
