// RouterServer: the TCP front end of RouterService (src/fed).
//
// Runs on the shared epoll Reactor (src/server/reactor.h) like the
// backend TraceServer, but with its own WorkerPool: router requests are
// I/O-bound relays that block on backend round trips, so they must not
// run on the reactor thread. Each request is handed to the pool and the
// worker posts the response back with Reactor::complete(); when every
// worker is busy and the queue is full the router sheds load with a
// kOverloaded frame instead of queueing unboundedly. A client can stop
// the router with kShutdown exactly like a backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "fed/router_service.h"
#include "server/protocol.h"
#include "server/reactor.h"
#include "server/worker_pool.h"
#include "support/thread_annotations.h"

namespace ute {

struct RouterServerOptions {
  std::uint16_t port = 0;
  /// Relay workers: each one can block on a backend round trip, so this
  /// bounds the router's concurrent upstream fan-out.
  std::size_t workers = 16;
  std::size_t queueDepth = 256;
  /// Reactor hardening knobs (0 = off; the uterouter CLI sets real
  /// timeouts, embedded test routers stay permissive).
  int idleTimeoutMs = 0;
  int readTimeoutMs = 0;
  std::size_t maxPipeline = 64;
  int drainTimeoutMs = 5'000;
};

class RouterServer : private Reactor::Handler {
 public:
  /// Starts listening and accepting immediately. `service` must outlive
  /// the server.
  RouterServer(RouterService& service, std::uint16_t port);
  RouterServer(RouterService& service, const RouterServerOptions& options);
  ~RouterServer() override;

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  std::uint16_t port() const { return reactor_->port(); }
  Reactor::Stats reactorStats() const { return reactor_->stats(); }

  /// True once a client issued kShutdown (the owner should call stop()).
  bool stopRequested() const { return stopRequested_.load(); }

  /// Graceful stop: no new connections, in-flight relays drained with a
  /// deadline, then the loop joins. Idempotent; also the destructor.
  void stop();

 private:
  void onRequest(Reactor::Request req,
                 std::vector<std::uint8_t> payload) override;
  std::vector<std::uint8_t> onConnError(Reactor::ConnId conn,
                                        Reactor::ConnError kind,
                                        const std::string& detail) override;
  void onClosed(Reactor::ConnId conn) override;

  /// Declared first = destroyed last: pool workers joined by ~WorkerPool
  /// below may still post completions into it.
  std::unique_ptr<Reactor> reactor_;
  RouterService& service_;
  std::atomic<bool> stopRequested_{false};

  /// Per-connection negotiated hello state; reactor-thread confined map,
  /// contexts shared with at most one worker at a time (serial
  /// per-connection dispatch).
  std::unordered_map<Reactor::ConnId, std::shared_ptr<ConnectionContext>>
      contexts_;

  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace ute
