// RouterServer: the TCP front end of RouterService (src/fed).
//
// The same accept-loop shape as TraceServer (src/server/server.h): one
// accept thread, one lightweight thread per connection decoding
// length-prefixed requests. Unlike the backend there is no worker pool —
// router requests are I/O-bound relays, and each connection thread
// blocks on its own backend round trip, so concurrency comes from the
// per-connection threads themselves. A client can stop the router with
// kShutdown exactly like a backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <thread>

#include "fed/router_service.h"
#include "server/tcp.h"
#include "support/thread_annotations.h"

namespace ute {

class RouterServer {
 public:
  /// Starts listening and accepting immediately. `service` must outlive
  /// the server.
  RouterServer(RouterService& service, std::uint16_t port);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// True once a client issued kShutdown (the owner should call stop()).
  bool stopRequested() const { return stopRequested_.load(); }

  /// Closes the listener, unblocks live connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void stop() UTE_EXCLUDES(connectionsMu_);

 private:
  struct Connection {
    TcpSocket socket;
    std::thread thread;
  };

  void acceptLoop() UTE_EXCLUDES(connectionsMu_);
  void serveConnection(Connection& conn);

  RouterService& service_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopRequested_{false};
  std::thread acceptThread_;
  Mutex connectionsMu_;
  std::list<std::unique_ptr<Connection>> connections_
      UTE_GUARDED_BY(connectionsMu_);
};

}  // namespace ute
