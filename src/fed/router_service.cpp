#include "fed/router_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "fed/aggregate.h"
#include "support/errors.h"

namespace ute {

namespace {

ByteWriter okHeader() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ErrorCode::kOk));
  return w;
}

bool isSingleTraceOp(Opcode op) {
  switch (op) {
    case Opcode::kInfo:
    case Opcode::kStates:
    case Opcode::kThreads:
    case Opcode::kPreview:
    case Opcode::kWindow:
    case Opcode::kFrameAt:
    case Opcode::kSummary:
    case Opcode::kGetMetrics:
    case Opcode::kTailFrames:
    case Opcode::kTailMetrics:
      return true;
    default:
      return false;
  }
}

/// Replies safe to keep in the hot-set tier: deterministic for a fixed
/// backend generation. Tail ops advance with the feed and stay out.
bool isCacheableOp(Opcode op) {
  switch (op) {
    case Opcode::kInfo:
    case Opcode::kStates:
    case Opcode::kThreads:
    case Opcode::kPreview:
    case Opcode::kWindow:
    case Opcode::kFrameAt:
    case Opcode::kSummary:
    case Opcode::kGetMetrics:
      return true;
    default:
      return false;
  }
}

std::uint64_t cacheKey(std::uint64_t generation, FrameEncoding encoding,
                       std::span<const std::uint8_t> payload) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mixByte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 8; ++i) {
    mixByte(static_cast<std::uint8_t>((generation >> (i * 8)) & 0xff));
  }
  mixByte(static_cast<std::uint8_t>(encoding));
  for (std::uint8_t b : payload) mixByte(b);
  return h;
}

ErrorCode routerUsageCode(const std::string& what) {
  if (what.rfind("unknown trace id", 0) == 0) return ErrorCode::kBadTrace;
  if (what.rfind("no traces match", 0) == 0) return ErrorCode::kBadTrace;
  return ErrorCode::kBadRequest;
}

}  // namespace

RouterService::RouterService(const RouterOptions& options)
    : options_(options),
      registry_(options.registry),
      cache_(std::max<std::size_t>(options.cacheBytes, 1),
             std::max<std::size_t>(options.cacheShards, 1)) {
  for (const BackendSpec& spec : options.backends) registry_.add(spec);
  // Enumerate the fleet before serving: the first client's hello sees
  // the real trace count, not a race with the health thread.
  registry_.probe(true);
  if (options_.healthIntervalMs > 0) {
    healthThread_ = std::thread([this] { healthLoop(); });
  }
}

RouterService::~RouterService() { stop(); }

void RouterService::stop() {
  stopping_.store(true);
  if (healthThread_.joinable()) healthThread_.join();
}

void RouterService::healthLoop() {
  for (;;) {
    // Chunked sleep: ute::CondVar has no timed wait, and stop() must not
    // block on a full health interval.
    int waitedMs = 0;
    while (waitedMs < options_.healthIntervalMs && !stopping_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      waitedMs += 20;
    }
    if (stopping_.load()) return;
    registry_.probe(false);
  }
}

RequestOutcome RouterService::handle(std::span<const std::uint8_t> payload,
                                     ConnectionContext& ctx) {
  RequestOutcome outcome;
  if (payload.empty()) {
    outcome.response =
        encodeErrorReply(ErrorCode::kBadRequest, "empty request");
    return outcome;
  }
  try {
    return dispatch(payload, ctx);
  } catch (const ServiceError& e) {
    outcome.response = encodeErrorReply(e.code(), e.what());
  } catch (const UsageError& e) {
    outcome.response = encodeErrorReply(routerUsageCode(e.what()), e.what());
  } catch (const FormatError& e) {
    outcome.response = encodeErrorReply(ErrorCode::kBadRequest, e.what());
  } catch (const IoError& e) {
    // Every candidate backend failed: explicit backpressure, retry later.
    outcome.response = encodeErrorReply(ErrorCode::kOverloaded, e.what());
  } catch (const std::exception& e) {
    outcome.response = encodeErrorReply(ErrorCode::kInternal, e.what());
  }
  return outcome;
}

RequestOutcome RouterService::dispatch(std::span<const std::uint8_t> payload,
                                       ConnectionContext& ctx) {
  ByteReader r(payload);
  const auto op = static_cast<Opcode>(r.u8());
  RequestOutcome outcome;

  if (isSingleTraceOp(op)) {
    outcome.response = proxy(payload, ctx);
    return outcome;
  }

  switch (op) {
    case Opcode::kHello: {
      const std::uint32_t magic = r.u32();
      const std::uint16_t version = r.u16();
      if (magic != kQueryMagic || version < kMinProtocolVersion ||
          version > kProtocolVersion) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadVersion,
            "router speaks protocol versions " +
                std::to_string(kMinProtocolVersion) + ".." +
                std::to_string(kProtocolVersion));
        return outcome;
      }
      const auto traceCount =
          static_cast<std::uint32_t>(registry_.listTraces().size());
      if (version < 2) {
        ctx.frameEncoding = FrameEncoding::kRow;
        ByteWriter w = okHeader();
        w.u16(version);
        w.u32(traceCount);
        outcome.response = w.take();
        return outcome;
      }
      const std::uint8_t accept = r.atEnd() ? std::uint8_t{0b01} : r.u8();
      const std::uint8_t usable = accept & kSupportedFrameEncodings;
      if (usable == 0) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadVersion, "no mutually supported frame encoding");
        return outcome;
      }
      ctx.frameEncoding =
          (usable &
           (1u << static_cast<unsigned>(FrameEncoding::kColumnar)))
              ? FrameEncoding::kColumnar
              : FrameEncoding::kRow;
      ByteWriter w = okHeader();
      w.u16(kProtocolVersion);
      w.u32(traceCount);
      w.u8(static_cast<std::uint8_t>(ctx.frameEncoding));
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kListTraces: {
      outcome.response = encodeListTracesReply(registry_.listTraces()).take();
      return outcome;
    }
    case Opcode::kAggregateMetrics: {
      outcome.response = handleAggregate(r, ctx);
      return outcome;
    }
    case Opcode::kCompareTraces: {
      outcome.response = handleCompare(r, ctx);
      return outcome;
    }
    case Opcode::kAddBackend: {
      const std::string name = r.lstring();
      const std::string hostPort = r.lstring();
      registry_.add(parseBackendSpec(name, hostPort));
      // Enumerate the newcomer right away so its traces are visible to
      // the client that added it.
      registry_.probe(true);
      outcome.response = okHeader().take();
      return outcome;
    }
    case Opcode::kRemoveBackend: {
      registry_.remove(r.lstring());
      outcome.response = okHeader().take();
      return outcome;
    }
    case Opcode::kStats: {
      // The router's own stats: the hot-set cache plus a zero pool (the
      // router has no worker pool; connection threads do the I/O).
      const CacheStats cache = cache_.stats();
      ByteWriter w = okHeader();
      w.u64(cache.hits);
      w.u64(cache.misses);
      w.u64(cache.evictions);
      w.u64(cache.bytes);
      w.u64(cache.entries);
      w.u64(0);
      w.u64(0);
      w.u64(0);
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kShutdown: {
      outcome.response = okHeader().take();
      outcome.shutdown = true;
      return outcome;
    }
    default:
      break;
  }
  outcome.response = encodeErrorReply(
      ErrorCode::kBadRequest,
      "unknown opcode " + std::to_string(static_cast<unsigned>(payload[0])));
  return outcome;
}

std::vector<std::uint8_t> RouterService::proxy(
    std::span<const std::uint8_t> payload, ConnectionContext& ctx) {
  if (payload.size() < 5) {
    throw FormatError("truncated single-trace request");
  }
  const auto op = static_cast<Opcode>(payload[0]);
  const std::uint32_t globalId =
      static_cast<std::uint32_t>(payload[1]) |
      (static_cast<std::uint32_t>(payload[2]) << 8) |
      (static_cast<std::uint32_t>(payload[3]) << 16) |
      (static_cast<std::uint32_t>(payload[4]) << 24);
  const std::vector<BackendRegistry::Route> routes =
      registry_.routesFor(globalId);
  if (routes.empty()) {
    throw UsageError("unknown trace id " + std::to_string(globalId));
  }
  const bool cacheable = options_.cacheBytes > 0 && isCacheableOp(op) &&
                         !routes.front().live;
  const std::uint64_t key =
      cacheKey(routes.front().generation, ctx.frameEncoding, payload);
  if (cacheable) {
    if (const auto hit = cache_.lookup(key)) return *hit;
  }
  const int attempts = std::max(0, options_.proxyRetries) + 1;
  std::string lastError = "no candidate backend";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const long long delay = static_cast<long long>(
                                  options_.proxyBackoffBaseMs)
                              << std::min(attempt - 1, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<long long>(delay, options_.proxyBackoffMaxMs)));
    }
    // The last pass resets circuit cooldowns: a backend that just came
    // back is reconnected now instead of erroring until its cooldown
    // expires.
    const bool force = attempt == attempts - 1;
    try {
      std::vector<std::uint8_t> response =
          tryRoutes(routes, payload, ctx.frameEncoding, force);
      if (cacheable) {
        cache_.insert(
            key,
            std::make_shared<const std::vector<std::uint8_t>>(response),
            response.size() + 64);
      }
      return response;
    } catch (const IoError& e) {
      lastError = e.what();
    }
  }
  throw IoError("trace " + std::to_string(globalId) +
                " unavailable: " + lastError);
}

std::vector<std::uint8_t> RouterService::tryRoutes(
    const std::vector<BackendRegistry::Route>& routes,
    std::span<const std::uint8_t> payload, FrameEncoding encoding,
    bool force) {
  std::string lastError = "all circuits open";
  for (const BackendRegistry::Route& route : routes) {
    BackendRegistry::Lease lease;
    try {
      lease = registry_.borrow(route.backend, encoding, force);
    } catch (const std::exception& e) {
      lastError = e.what();
      continue;
    }
    // Rewrite the global trace id to the backend's local id; everything
    // else is relayed untouched, response bytes verbatim.
    std::vector<std::uint8_t> patched(payload.begin(), payload.end());
    patched[1] = static_cast<std::uint8_t>(route.localId & 0xff);
    patched[2] = static_cast<std::uint8_t>((route.localId >> 8) & 0xff);
    patched[3] = static_cast<std::uint8_t>((route.localId >> 16) & 0xff);
    patched[4] = static_cast<std::uint8_t>((route.localId >> 24) & 0xff);
    try {
      std::vector<std::uint8_t> response = lease.client->roundTrip(patched);
      registry_.giveBack(std::move(lease), true);
      return response;
    } catch (const std::exception& e) {
      lastError = e.what();
      registry_.giveBack(std::move(lease), false);
    }
  }
  throw IoError(lastError);
}

MetricsStore RouterService::fetchMetrics(std::uint32_t globalId,
                                         std::uint32_t bins,
                                         ConnectionContext& ctx) {
  const ByteWriter request = encodeMetricsRequest(globalId, bins);
  // decodeMetricsReply throws ServiceError on a relayed error frame,
  // which handle() converts back to the same code for our client.
  return decodeMetricsReply(proxy(request.view(), ctx));
}

std::vector<std::uint8_t> RouterService::handleAggregate(
    ByteReader& r, ConnectionContext& ctx) {
  const std::string pattern = r.lstring();
  std::uint32_t bins = r.u32();
  if (bins == 0) bins = options_.defaultFanoutBins;
  if (bins > kMaxMetricsBins) {
    throw UsageError("metrics bins capped at " +
                     std::to_string(kMaxMetricsBins));
  }
  std::vector<FedTraceEntry> matching;
  for (FedTraceEntry& entry : registry_.listTraces()) {
    if (entry.live) continue;  // metrics need the finished file
    const std::string qualified = entry.backend + "/" + entry.name;
    if (pattern.empty() || qualified.find(pattern) != std::string::npos) {
      matching.push_back(std::move(entry));
    }
  }
  if (matching.empty()) {
    throw UsageError("no traces match pattern '" + pattern + "'");
  }
  // Scatter: one GetMetrics per matching trace through the normal proxy
  // path (pooled connections, circuit breakers, cache). Gather into the
  // pure reducers so the oracle test can replay the reduction exactly.
  std::vector<MetricsStore> stores;
  stores.reserve(matching.size());
  for (const FedTraceEntry& entry : matching) {
    stores.push_back(fetchMetrics(entry.globalId, bins, ctx));
  }
  std::vector<AggregateInput> inputs;
  inputs.reserve(matching.size());
  for (std::size_t i = 0; i < matching.size(); ++i) {
    AggregateInput input;
    input.globalId = matching[i].globalId;
    input.backend = matching[i].backend;
    input.name = matching[i].name;
    input.store = &stores[i];
    inputs.push_back(std::move(input));
  }
  return encodeAggregateReply(aggregateStores(inputs)).take();
}

std::vector<std::uint8_t> RouterService::handleCompare(
    ByteReader& r, ConnectionContext& ctx) {
  const std::uint32_t idA = r.u32();
  const std::uint32_t idB = r.u32();
  std::uint32_t bins = r.u32();
  if (bins == 0) bins = options_.defaultFanoutBins;
  if (bins > kMaxMetricsBins) {
    throw UsageError("metrics bins capped at " +
                     std::to_string(kMaxMetricsBins));
  }
  const MetricsStore a = fetchMetrics(idA, bins, ctx);
  const MetricsStore b = fetchMetrics(idB, bins, ctx);
  return encodeCompareReply(compareStores(a, b, bins)).take();
}

}  // namespace ute
