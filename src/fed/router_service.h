// RouterService: the request brain of uterouter (src/fed).
//
// Answers the full uteserve protocol over a fleet of backends
// (docs/FEDERATION.md):
//   - single-trace ops (kInfo..kSummary, kGetMetrics, kTail*) are
//     proxied byte-transparently: the u32 trace id at bytes [1, 5) of
//     the request is rewritten from the global id to the owning
//     backend's local id and the response bytes are relayed verbatim,
//     so a client cannot tell a router from a direct connection;
//   - kListTraces / kAggregateMetrics / kCompareTraces fan out across
//     the fleet and reduce (src/fed/aggregate.h);
//   - kAddBackend / kRemoveBackend edit the registry at runtime.
//
// Proxying retries with bounded exponential backoff across the
// consistent-hash candidate list, gated per backend by its circuit
// breaker; a killed-and-restarted backend costs some latency, not an
// error, once it accepts connections again. Replies for non-live traces
// are kept in a hot-set tier (the same sharded byte-budgeted LRU the
// frame cache uses) keyed by backend generation, so a backend restart
// or content change invalidates by key rotation, not by scanning.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "fed/registry.h"
#include "server/protocol.h"
#include "support/sharded_cache.h"

namespace ute {

struct RouterOptions {
  std::vector<BackendSpec> backends;
  RegistryOptions registry;
  /// Hot-set reply cache (0 bytes disables it).
  std::size_t cacheBytes = 64u << 20;
  std::size_t cacheShards = 8;
  /// Background health/enumeration probe cadence; 0 disables the thread
  /// (tests drive probes synchronously with probeNow()).
  int healthIntervalMs = 1000;
  /// Extra passes over the candidate list before giving up on a proxy.
  int proxyRetries = 2;
  int proxyBackoffBaseMs = 50;
  int proxyBackoffMaxMs = 500;
  /// Bin count for kAggregateMetrics / kCompareTraces when the request
  /// says 0.
  std::uint32_t defaultFanoutBins = 240;
};

class RouterService {
 public:
  explicit RouterService(const RouterOptions& options);
  ~RouterService();

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// Executes one request payload. Never throws: every failure becomes
  /// an error frame. Mirrors processRequest()'s contract so the server
  /// loop treats backends and routers identically.
  RequestOutcome handle(std::span<const std::uint8_t> payload,
                        ConnectionContext& ctx);

  /// Synchronous forced health + enumeration sweep (cooldowns reset) —
  /// the deterministic alternative to the background thread.
  void probeNow() { registry_.probe(true); }

  BackendRegistry& registry() { return registry_; }
  CacheStats cacheStats() const { return cache_.stats(); }

  /// Stops the background health thread (idempotent; destructor calls
  /// it too).
  void stop();

 private:
  RequestOutcome dispatch(std::span<const std::uint8_t> payload,
                          ConnectionContext& ctx);
  std::vector<std::uint8_t> proxy(std::span<const std::uint8_t> payload,
                                  ConnectionContext& ctx);
  /// One pass over the candidate routes; returns the response or throws
  /// IoError if every candidate failed. `force` resets circuit
  /// cooldowns (the last-resort pass, so a just-restarted backend is
  /// reconnected without waiting out its cooldown).
  std::vector<std::uint8_t> tryRoutes(
      const std::vector<BackendRegistry::Route>& routes,
      std::span<const std::uint8_t> payload, FrameEncoding encoding,
      bool force);
  /// Fetches + decodes one federated trace's metrics via the proxy path.
  MetricsStore fetchMetrics(std::uint32_t globalId, std::uint32_t bins,
                            ConnectionContext& ctx);
  std::vector<std::uint8_t> handleAggregate(ByteReader& r,
                                            ConnectionContext& ctx);
  std::vector<std::uint8_t> handleCompare(ByteReader& r,
                                          ConnectionContext& ctx);
  void healthLoop();

  const RouterOptions options_;
  BackendRegistry registry_;
  ShardedCache<std::vector<std::uint8_t>> cache_;
  std::atomic<bool> stopping_{false};
  std::thread healthThread_;
};

}  // namespace ute
