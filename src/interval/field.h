// Field description words and interval types — the core vocabulary of the
// self-defining interval format (Section 2.3.1, Figure 3).
//
// Each field of a record is described by one 32-bit field description
// word packing: a vector bit, a counter length, a data type, an element
// length, a field selection attribute, and a field name index. The field
// selection attribute is matched against the field selection mask stored
// in a given interval file's header to decide whether the field exists in
// that file — this is how the same profile describes both individual
// (per-node) and merged interval files that carry different fields for
// the same record type.
//
// An *interval type* combines an event type with two "bebits" (begin/end
// bits) that say whether a record is a complete interval or the begin /
// continuation / end piece of an interval that was interrupted (thread
// descheduled, or a nested state started).
#pragma once

#include <cstdint>
#include <string>

#include "support/errors.h"
#include "trace/events.h"

namespace ute {

/// Data types representable in a field description word (5 bits).
enum class DataType : std::uint8_t {
  kU8 = 0,
  kU16 = 1,
  kU32 = 2,
  kU64 = 3,
  kI8 = 4,
  kI16 = 5,
  kI32 = 6,
  kI64 = 7,
  kF64 = 8,
  kChar = 9,  ///< byte of a character string (vector fields)
};

inline std::uint8_t dataTypeSize(DataType t) {
  switch (t) {
    case DataType::kU8:
    case DataType::kI8:
    case DataType::kChar:
      return 1;
    case DataType::kU16:
    case DataType::kI16:
      return 2;
    case DataType::kU32:
    case DataType::kI32:
      return 4;
    case DataType::kU64:
    case DataType::kI64:
    case DataType::kF64:
      return 8;
  }
  throw FormatError("unknown data type " +
                    std::to_string(static_cast<int>(t)));
}

std::string dataTypeName(DataType t);

/// The begin/end bits. kComplete marks an uninterrupted interval; an
/// interrupted one becomes a kBegin piece, zero or more kContinuation
/// pieces, and a kEnd piece. The encoding is chosen so that
/// (bebits & kBeginBit) means "first piece" and (bebits & kEndBit) means
/// "last piece".
enum class Bebits : std::uint8_t {
  kContinuation = 0b00,
  kEnd = 0b01,
  kBegin = 0b10,
  kComplete = 0b11,
};

inline bool isFirstPiece(Bebits b) {
  return (static_cast<std::uint8_t>(b) & 0b10) != 0;
}
inline bool isLastPiece(Bebits b) {
  return (static_cast<std::uint8_t>(b) & 0b01) != 0;
}

std::string bebitsName(Bebits b);

/// Interval type = event type + bebits (Section 2.3.1).
using IntervalType = std::uint32_t;

inline IntervalType makeIntervalType(EventType event, Bebits bebits) {
  return (static_cast<IntervalType>(event) << 2) |
         static_cast<IntervalType>(bebits);
}
inline EventType intervalEventType(IntervalType t) {
  return static_cast<EventType>(t >> 2);
}
inline Bebits intervalBebits(IntervalType t) {
  return static_cast<Bebits>(t & 0b11);
}

/// Pseudo event types that exist only at the interval level (they are
/// derived by the convert utility, not cut as raw events).
inline constexpr EventType kRunningState = static_cast<EventType>(32);
inline constexpr EventType kClockSyncState = static_cast<EventType>(33);

/// One decoded field description word.
struct FieldSpec {
  bool isVector = false;
  std::uint8_t counterLen = 0;  ///< 0, 1, 2 or 4 bytes (vector fields)
  DataType type = DataType::kU64;
  std::uint8_t elemLen = 8;
  std::uint8_t attr = 0;  ///< field selection attribute, 0..15
  std::uint16_t nameIndex = 0;

  /// Whether the field exists in a file whose header carries `mask`.
  bool selectedBy(std::uint64_t mask) const {
    return (mask & (std::uint64_t{1} << attr)) != 0;
  }
};

// Field description word layout (32 bits):
//   bit 31     : vector flag
//   bits 30..29: counter length code (0: none, 1: 1 byte, 2: 2, 3: 4)
//   bits 28..24: data type
//   bits 23..16: element length in bytes
//   bits 15..12: field selection attribute
//   bits 11..0 : field name index

std::uint32_t encodeFieldWord(const FieldSpec& f);
FieldSpec decodeFieldWord(std::uint32_t word);

}  // namespace ute
