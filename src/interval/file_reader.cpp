#include "interval/file_reader.h"

#include "support/errors.h"

namespace ute {

IntervalFileReader::IntervalFileReader(const std::string& path,
                                       ByteSource::Mode mode)
    : source_(path, mode) {
  const FrameBuf headerBytes = source_.fetch(0, kIntervalHeaderBytes);
  ByteReader r = headerBytes.reader();
  if (r.u32() != kIntervalMagic) {
    throw FormatError("not an interval file: " + path);
  }
  header_.profileVersion = r.u32();
  header_.headerVersion = r.u32();
  if (header_.headerVersion != kIntervalHeaderVersion) {
    throw FormatError("unsupported interval header version in " + path);
  }
  header_.flags = r.u32();
  header_.fieldSelectionMask = r.u64();
  header_.threadCount = r.u32();
  header_.markerTableOffset = r.u64();
  header_.markerCount = r.u32();
  header_.firstDirOffset = r.u64();
  header_.totalRecords = r.u64();
  header_.minStart = r.u64();
  header_.maxEnd = r.u64();

  const FrameBuf tableBytes = source_.fetch(
      kIntervalHeaderBytes, header_.threadCount * kThreadEntryBytes);
  ByteReader tr = tableBytes.reader();
  threads_.reserve(header_.threadCount);
  for (std::uint32_t i = 0; i < header_.threadCount; ++i) {
    ThreadEntry t;
    t.task = tr.i32();
    t.pid = tr.i32();
    t.systemTid = tr.i32();
    t.node = tr.i32();
    t.ltid = tr.i32();
    t.type = static_cast<ThreadType>(tr.u8());
    threads_.push_back(t);
  }

  if (header_.markerCount > 0) {
    const FrameBuf markerBytes = source_.fetch(
        header_.markerTableOffset,
        static_cast<std::size_t>(source_.size() - header_.markerTableOffset));
    ByteReader mr = markerBytes.reader();
    for (std::uint32_t i = 0; i < header_.markerCount; ++i) {
      const std::uint32_t id = mr.u32();
      markers_.emplace(id, mr.lstring());
    }
  }
}

void IntervalFileReader::checkProfile(const Profile& profile) const {
  if (profile.versionId() != header_.profileVersion) {
    throw FormatError("profile version mismatch: file " + path() +
                      " was written with profile version " +
                      std::to_string(header_.profileVersion) +
                      " but the profile has version " +
                      std::to_string(profile.versionId()));
  }
}

FrameDirectory IntervalFileReader::readDirectory(std::uint64_t offset) const {
  if (offset == 0 || offset >= source_.size()) {
    return FrameDirectory{};  // empty file or end of chain
  }

  if (source_.size() - offset < kDirHeaderBytes) {
    throw FormatError("truncated frame directory header" +
                      ioContext(path(), offset));
  }
  const FrameBuf head = source_.fetch(offset, kDirHeaderBytes);
  ByteReader r = head.reader();
  FrameDirectory dir;
  dir.offset = offset;
  const std::uint32_t dirSize = r.u32();
  const std::uint32_t frameCount = r.u32();
  dir.prevOffset = r.u64();
  dir.nextOffset = r.u64();
  if (dirSize != kDirHeaderBytes + frameCount * kFrameEntryBytes) {
    throw FormatError("inconsistent frame directory size" +
                      ioContext(path(), offset));
  }
  if (dir.nextOffset != 0 && dir.nextOffset <= offset) {
    throw FormatError("frame directory chain does not advance" +
                      ioContext(path(), offset));
  }
  const std::uint64_t entryBytes =
      std::uint64_t{frameCount} * kFrameEntryBytes;
  if (entryBytes > source_.size() - offset - kDirHeaderBytes) {
    throw FormatError("frame directory exceeds file size" +
                      ioContext(path(), offset));
  }
  const FrameBuf entries = source_.fetch(
      offset + kDirHeaderBytes, static_cast<std::size_t>(entryBytes));
  ByteReader er = entries.reader();
  dir.frames.reserve(frameCount);
  for (std::uint32_t i = 0; i < frameCount; ++i) {
    FrameInfo f;
    f.offset = er.u64();
    f.sizeBytes = er.u32();
    f.records = er.u32();
    f.startTime = er.u64();
    f.endTime = er.u64();
    dir.frames.push_back(f);
  }
  return dir;
}

FrameBuf IntervalFileReader::readFrame(const FrameInfo& frame) const {
  return source_.fetch(frame.offset, frame.sizeBytes);
}

std::vector<std::uint8_t> IntervalFileReader::recordAt(
    std::uint64_t frameOffset, std::uint32_t index) const {
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) {
      if (f.offset != frameOffset) continue;
      if (index >= f.records) {
        throw UsageError("recordAt: index " + std::to_string(index) +
                         " out of range for frame with " +
                         std::to_string(f.records) + " records");
      }
      const FrameBuf bytes = readFrame(f);
      ByteReader r = bytes.reader();
      for (std::uint32_t i = 0; i < index; ++i) {
        readLengthPrefixedRecord(r);
      }
      const auto body = readLengthPrefixedRecord(r);
      return {body.begin(), body.end()};
    }
    if (dir.nextOffset == 0) break;
  }
  throw UsageError("recordAt: no frame starts at offset " +
                   std::to_string(frameOffset));
}

std::optional<FrameInfo> IntervalFileReader::frameContaining(Tick t) const {
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) {
      if (t >= f.startTime && t <= f.endTime) return f;
    }
    if (dir.nextOffset == 0) break;
  }
  return std::nullopt;
}

Tick IntervalFileReader::totalElapsed() const {
  Tick minStart = ~Tick{0};
  Tick maxEnd = 0;
  bool any = false;
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) {
      any = true;
      minStart = std::min(minStart, f.startTime);
      maxEnd = std::max(maxEnd, f.endTime);
    }
    if (dir.nextOffset == 0) break;
  }
  return any ? maxEnd - minStart : 0;
}

std::uint64_t IntervalFileReader::countRecordsViaDirectories() const {
  std::uint64_t total = 0;
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) total += f.records;
    if (dir.nextOffset == 0) break;
  }
  return total;
}

IntervalFileReader::RecordStream::RecordStream(
    const IntervalFileReader& reader)
    : reader_(reader) {
  reader_.source().advise(MappedFile::Hint::kSequential);
  dir_ = reader_.firstDirectory();
  if (dir_.frames.empty()) exhausted_ = true;
}

bool IntervalFileReader::RecordStream::loadNextFrame() {
  for (;;) {
    if (frameIdx_ < dir_.frames.size()) {
      frame_ = reader_.readFrame(dir_.frames[frameIdx_]);
      ++frameIdx_;
      pos_ = 0;
      return true;
    }
    if (dir_.nextOffset == 0) return false;
    dir_ = reader_.readDirectory(dir_.nextOffset);
    frameIdx_ = 0;
    if (dir_.frames.empty()) return false;
  }
}

bool IntervalFileReader::RecordStream::next(RecordView& out) {
  if (exhausted_) return false;
  for (;;) {
    if (pos_ < frame_.size()) {
      ByteReader r(frame_.bytes().subspan(pos_));
      const auto body = readLengthPrefixedRecord(r);
      pos_ += r.pos();
      out = RecordView::parse(body);
      return true;
    }
    if (!loadNextFrame()) {
      exhausted_ = true;
      return false;
    }
  }
}

}  // namespace ute
