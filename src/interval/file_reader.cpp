#include "interval/file_reader.h"

namespace ute {

IntervalFileReader::IntervalFileReader(const std::string& path)
    : file_(path) {
  const auto headerBytes = file_.read(kIntervalHeaderBytes);
  ByteReader r(headerBytes);
  if (r.u32() != kIntervalMagic) {
    throw FormatError("not an interval file: " + path);
  }
  header_.profileVersion = r.u32();
  header_.headerVersion = r.u32();
  if (header_.headerVersion != kIntervalHeaderVersion) {
    throw FormatError("unsupported interval header version in " + path);
  }
  header_.flags = r.u32();
  header_.fieldSelectionMask = r.u64();
  header_.threadCount = r.u32();
  header_.markerTableOffset = r.u64();
  header_.markerCount = r.u32();
  header_.firstDirOffset = r.u64();
  header_.totalRecords = r.u64();
  header_.minStart = r.u64();
  header_.maxEnd = r.u64();

  const auto tableBytes =
      file_.read(header_.threadCount * kThreadEntryBytes);
  ByteReader tr(tableBytes);
  threads_.reserve(header_.threadCount);
  for (std::uint32_t i = 0; i < header_.threadCount; ++i) {
    ThreadEntry t;
    t.task = tr.i32();
    t.pid = tr.i32();
    t.systemTid = tr.i32();
    t.node = tr.i32();
    t.ltid = tr.i32();
    t.type = static_cast<ThreadType>(tr.u8());
    threads_.push_back(t);
  }

  if (header_.markerCount > 0) {
    file_.seek(header_.markerTableOffset);
    const auto markerBytes = file_.read(
        static_cast<std::size_t>(file_.size() - header_.markerTableOffset));
    ByteReader mr(markerBytes);
    for (std::uint32_t i = 0; i < header_.markerCount; ++i) {
      const std::uint32_t id = mr.u32();
      markers_.emplace(id, mr.lstring());
    }
  }
}

void IntervalFileReader::checkProfile(const Profile& profile) const {
  if (profile.versionId() != header_.profileVersion) {
    throw FormatError("profile version mismatch: file " + file_.path() +
                      " was written with profile version " +
                      std::to_string(header_.profileVersion) +
                      " but the profile has version " +
                      std::to_string(profile.versionId()));
  }
}

FrameDirectory IntervalFileReader::readDirectory(std::uint64_t offset) {
  if (offset == 0 || offset >= file_.size()) {
    return FrameDirectory{};  // empty file or end of chain
  }

  file_.seek(offset);
  // One bulk read covers the header plus every entry of a default-sized
  // (64-frame) directory; only oversized directories need a second read
  // for the tail. The readahead is clamped to the file, so a directory
  // whose entries the file cannot hold still fails the explicit length
  // checks below rather than the clamp.
  constexpr std::size_t kDirReadahead =
      kDirHeaderBytes + 64 * kFrameEntryBytes;
  const std::uint64_t avail = file_.size() - offset;
  std::vector<std::uint8_t> buf =
      avail < kDirReadahead ? file_.read(static_cast<std::size_t>(avail))
                            : file_.read(kDirReadahead);
  if (buf.size() < kDirHeaderBytes) {
    throw FormatError("truncated frame directory header in " + file_.path());
  }
  ByteReader r(buf);
  FrameDirectory dir;
  dir.offset = offset;
  const std::uint32_t dirSize = r.u32();
  const std::uint32_t frameCount = r.u32();
  dir.prevOffset = r.u64();
  dir.nextOffset = r.u64();
  if (dirSize != kDirHeaderBytes + frameCount * kFrameEntryBytes) {
    throw FormatError("inconsistent frame directory size in " + file_.path());
  }
  if (dir.nextOffset != 0 && dir.nextOffset <= offset) {
    throw FormatError("frame directory chain does not advance in " +
                      file_.path());
  }
  const std::size_t need = kDirHeaderBytes + frameCount * kFrameEntryBytes;
  if (need > avail) {
    throw FormatError("frame directory exceeds file size in " + file_.path());
  }
  if (buf.size() < need) {
    // Oversized directory: fetch the entries the readahead missed. The
    // file position is already at buf.size() past `offset`.
    const auto tail = file_.read(need - buf.size());
    buf.insert(buf.end(), tail.begin(), tail.end());
  } else if (buf.size() > need) {
    // Leave the stream positioned right after the directory, as the
    // two-read implementation did.
    file_.seek(offset + need);
  }
  ByteReader er(std::span<const std::uint8_t>(buf).subspan(kDirHeaderBytes));
  dir.frames.reserve(frameCount);
  for (std::uint32_t i = 0; i < frameCount; ++i) {
    FrameInfo f;
    f.offset = er.u64();
    f.sizeBytes = er.u32();
    f.records = er.u32();
    f.startTime = er.u64();
    f.endTime = er.u64();
    dir.frames.push_back(f);
  }
  return dir;
}

std::vector<std::uint8_t> IntervalFileReader::readFrame(
    const FrameInfo& frame) {
  file_.seek(frame.offset);
  return file_.read(frame.sizeBytes);
}

std::vector<std::uint8_t> IntervalFileReader::recordAt(
    std::uint64_t frameOffset, std::uint32_t index) {
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) {
      if (f.offset != frameOffset) continue;
      if (index >= f.records) {
        throw UsageError("recordAt: index " + std::to_string(index) +
                         " out of range for frame with " +
                         std::to_string(f.records) + " records");
      }
      const auto bytes = readFrame(f);
      ByteReader r(bytes);
      for (std::uint32_t i = 0; i < index; ++i) {
        readLengthPrefixedRecord(r);
      }
      const auto body = readLengthPrefixedRecord(r);
      return {body.begin(), body.end()};
    }
    if (dir.nextOffset == 0) break;
  }
  throw UsageError("recordAt: no frame starts at offset " +
                   std::to_string(frameOffset));
}

std::optional<FrameInfo> IntervalFileReader::frameContaining(Tick t) {
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) {
      if (t >= f.startTime && t <= f.endTime) return f;
    }
    if (dir.nextOffset == 0) break;
  }
  return std::nullopt;
}

Tick IntervalFileReader::totalElapsed() {
  Tick minStart = ~Tick{0};
  Tick maxEnd = 0;
  bool any = false;
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) {
      any = true;
      minStart = std::min(minStart, f.startTime);
      maxEnd = std::max(maxEnd, f.endTime);
    }
    if (dir.nextOffset == 0) break;
  }
  return any ? maxEnd - minStart : 0;
}

std::uint64_t IntervalFileReader::countRecordsViaDirectories() {
  std::uint64_t total = 0;
  for (FrameDirectory dir = firstDirectory(); !dir.frames.empty();
       dir = readDirectory(dir.nextOffset)) {
    for (const FrameInfo& f : dir.frames) total += f.records;
    if (dir.nextOffset == 0) break;
  }
  return total;
}

IntervalFileReader::RecordStream::RecordStream(IntervalFileReader& reader)
    : reader_(reader) {
  dir_ = reader_.firstDirectory();
  if (dir_.frames.empty()) exhausted_ = true;
}

bool IntervalFileReader::RecordStream::loadNextFrame() {
  for (;;) {
    if (frameIdx_ < dir_.frames.size()) {
      frameBytes_ = reader_.readFrame(dir_.frames[frameIdx_]);
      ++frameIdx_;
      pos_ = 0;
      return true;
    }
    if (dir_.nextOffset == 0) return false;
    dir_ = reader_.readDirectory(dir_.nextOffset);
    frameIdx_ = 0;
    if (dir_.frames.empty()) return false;
  }
}

bool IntervalFileReader::RecordStream::next(RecordView& out) {
  if (exhausted_) return false;
  for (;;) {
    if (pos_ < frameBytes_.size()) {
      ByteReader r(std::span<const std::uint8_t>(frameBytes_).subspan(pos_));
      const auto body = readLengthPrefixedRecord(r);
      pos_ += r.pos();
      out = RecordView::parse(body);
      return true;
    }
    if (!loadNextFrame()) {
      exhausted_ = true;
      return false;
    }
  }
}

}  // namespace ute
