// Interval file reader: header, thread table, marker table, frame
// directory navigation, frame loading, record streaming, and time-based
// frame lookup (Sections 2.3.3 / 2.4).
//
// Sits on the zero-copy ByteSource layer: directory and frame reads are
// bounds-checked views into the file mapping (no per-frame heap copy on
// the mmap path; pooled buffers on the stdio fallback). readFrame()
// returns a FrameBuf — an immutable shared handle that stays valid for
// as long as any holder keeps it, independent of the reader.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "interval/file_writer.h"
#include "interval/record.h"
#include "support/byte_source.h"

namespace ute {

struct IntervalFileHeader {
  std::uint32_t profileVersion = 0;
  std::uint32_t headerVersion = 0;
  std::uint32_t flags = 0;
  std::uint64_t fieldSelectionMask = 0;
  std::uint32_t threadCount = 0;
  std::uint64_t markerTableOffset = 0;
  std::uint32_t markerCount = 0;
  std::uint64_t firstDirOffset = 0;
  std::uint64_t totalRecords = 0;
  Tick minStart = 0;
  Tick maxEnd = 0;

  bool merged() const { return (flags & kIntervalFlagMerged) != 0; }
};

struct FrameInfo {
  std::uint64_t offset = 0;
  std::uint32_t sizeBytes = 0;
  std::uint32_t records = 0;
  Tick startTime = 0;
  Tick endTime = 0;
};

struct FrameDirectory {
  std::uint64_t offset = 0;
  std::uint64_t prevOffset = 0;
  std::uint64_t nextOffset = 0;  ///< 0 = last directory
  std::vector<FrameInfo> frames;
};

class IntervalFileReader {
 public:
  explicit IntervalFileReader(const std::string& path,
                              ByteSource::Mode mode = ByteSource::Mode::kAuto);

  const IntervalFileHeader& header() const { return header_; }
  const std::vector<ThreadEntry>& threads() const { return threads_; }
  /// Marker id -> marker string (Section 2.4's marker retrieval API).
  const std::map<std::uint32_t, std::string>& markers() const {
    return markers_;
  }

  /// Verifies a profile matches this file (the version-ID check the
  /// paper requires of every utility); throws FormatError on mismatch.
  void checkProfile(const Profile& profile) const;

  FrameDirectory readDirectory(std::uint64_t offset) const;
  FrameDirectory firstDirectory() const {
    return readDirectory(header_.firstDirOffset);
  }

  /// One frame (length-prefixed records back to back) as a shared
  /// immutable view — zero-copy on the mmap path. Thread-safe.
  FrameBuf readFrame(const FrameInfo& frame) const;

  /// The body of record `index` (0-based) inside the frame that starts
  /// at file offset `frameOffset` — the paper's "retrieve an interval at
  /// a specific location" (Section 2.4). Throws UsageError when the
  /// offset names no frame or the index is out of range.
  std::vector<std::uint8_t> recordAt(std::uint64_t frameOffset,
                                     std::uint32_t index) const;

  /// Walks the directory chain to find a frame whose [start, end] time
  /// range contains `t`. Directory-entry granularity only — no frame
  /// content is read (the fast access path the format exists for).
  std::optional<FrameInfo> frameContaining(Tick t) const;

  /// Total elapsed time / record count aggregated from directory entries
  /// (also available precomputed in the header trailer).
  Tick totalElapsed() const;
  std::uint64_t countRecordsViaDirectories() const;

  /// Streams every record in file order, hiding frame and directory
  /// boundaries (the paper's getInterval()). The RecordView's bytes stay
  /// valid until the next call.
  class RecordStream {
   public:
    RecordStream(const IntervalFileReader& reader);
    /// False at end of file.
    bool next(RecordView& out);

   private:
    bool loadNextFrame();

    const IntervalFileReader& reader_;
    FrameDirectory dir_;
    std::size_t frameIdx_ = 0;
    FrameBuf frame_;
    std::size_t pos_ = 0;
    bool exhausted_ = false;
  };

  RecordStream records() const { return RecordStream(*this); }

  const std::string& path() const { return source_.path(); }
  const ByteSource& source() const { return source_; }

 private:
  ByteSource source_;
  IntervalFileHeader header_;
  std::vector<ThreadEntry> threads_;
  std::map<std::uint32_t, std::string> markers_;
};

}  // namespace ute
