#include "interval/file_writer.h"

#include <algorithm>

namespace ute {

IntervalFileWriter::IntervalFileWriter(const std::string& path,
                                       const IntervalFileOptions& options,
                                       std::vector<ThreadEntry> threads)
    : path_(path), options_(options), file_(path) {
  if (options_.framesPerDirectory <= 0) options_.framesPerDirectory = 64;
  if (options_.targetFrameBytes < 1024) options_.targetFrameBytes = 1024;

  ByteWriter header;
  header.u32(kIntervalMagic);
  header.u32(options_.profileVersion);
  header.u32(kIntervalHeaderVersion);
  header.u32(options_.merged ? kIntervalFlagMerged : 0);
  header.u64(options_.fieldSelectionMask);
  header.u32(static_cast<std::uint32_t>(threads.size()));
  header.u64(0);  // marker table offset (patched)
  header.u32(0);  // marker count (patched)
  header.u64(kIntervalHeaderBytes + threads.size() * kThreadEntryBytes);
  header.u64(0);  // total records (patched)
  header.u64(0);  // min start (patched)
  header.u64(0);  // max end (patched)
  if (header.size() != kIntervalHeaderBytes) {
    throw UsageError("interval header layout drifted");
  }
  file_.write(header);

  ByteWriter table;
  for (const ThreadEntry& t : threads) {
    table.i32(t.task);
    table.i32(t.pid);
    table.i32(t.systemTid);
    table.i32(t.node);
    table.i32(t.ltid);
    table.u8(static_cast<std::uint8_t>(t.type));
  }
  file_.write(table);
}

void IntervalFileWriter::addMarker(std::uint32_t id, const std::string& name) {
  const auto [it, inserted] = markers_.emplace(id, name);
  if (!inserted && it->second != name) {
    throw UsageError("marker id " + std::to_string(id) +
                     " registered with two different strings ('" + it->second +
                     "' vs '" + name + "')");
  }
}

void IntervalFileWriter::addRecord(std::span<const std::uint8_t> body) {
  if (closed_) throw UsageError("IntervalFileWriter: addRecord after close");
  const RecordView view = RecordView::parse(body);
  if (view.end() < lastEnd_ && !inHook_) {
    throw UsageError("interval records must be appended in ascending "
                     "end-time order (" +
                     std::to_string(view.end()) + " after " +
                     std::to_string(lastEnd_) + ")");
  }

  // A fresh frame (other than the first) begins: let the hook inject its
  // pseudo-intervals so a reader jumping into this frame sees the states
  // that are still open at its beginning.
  if (current_.records == 0 && totalRecords_ > 0 && hook_ && !inHook_) {
    inHook_ = true;
    std::vector<ByteWriter> extra;
    hook_(lastEnd_, extra);
    for (const ByteWriter& w : extra) {
      appendToFrame(w.view(), RecordView::parse(w.view()));
    }
    inHook_ = false;
  }

  appendToFrame(body, view);
  if (!inHook_) lastEnd_ = std::max(lastEnd_, view.end());
  if (current_.bytes.size() >= options_.targetFrameBytes) finalizeFrame();
}

void IntervalFileWriter::appendToFrame(std::span<const std::uint8_t> body,
                                       const RecordView& view) {
  if (current_.records == 0) {
    current_.minStart = view.start;
    current_.maxEnd = view.end();
  } else {
    current_.minStart = std::min(current_.minStart, view.start);
    current_.maxEnd = std::max(current_.maxEnd, view.end());
  }
  appendRecordWithLength(current_.bytes, body);
  ++current_.records;
  ++totalRecords_;
  minStart_ = std::min(minStart_, view.start);
  maxEnd_ = std::max(maxEnd_, view.end());
}

void IntervalFileWriter::finalizeFrame() {
  if (current_.records == 0) return;
  pendingFrames_.push_back(std::move(current_));
  current_ = PendingFrame{};
  if (pendingFrames_.size() >=
      static_cast<std::size_t>(options_.framesPerDirectory)) {
    flushDirectory();
  }
}

void IntervalFileWriter::flushDirectory() {
  if (pendingFrames_.empty()) return;
  const std::uint64_t dirOffset = file_.tell();
  const std::size_t dirSize =
      kDirHeaderBytes + pendingFrames_.size() * kFrameEntryBytes;

  ByteWriter dir;
  dir.u32(static_cast<std::uint32_t>(dirSize));
  dir.u32(static_cast<std::uint32_t>(pendingFrames_.size()));
  dir.u64(prevDirOffset_);
  dir.u64(0);  // next directory offset; patched when it exists

  std::uint64_t frameOffset = dirOffset + dirSize;
  std::size_t frameBytesTotal = 0;
  for (const PendingFrame& f : pendingFrames_) {
    dir.u64(frameOffset);
    dir.u32(static_cast<std::uint32_t>(f.bytes.size()));
    dir.u32(f.records);
    dir.u64(f.minStart);
    dir.u64(f.maxEnd);
    frameOffset += f.bytes.size();
    frameBytesTotal += f.bytes.size();
  }
  // One contiguous write per directory flush (directory + all frames)
  // instead of 1 + framesPerDirectory separate writes.
  std::vector<std::uint8_t> batch;
  batch.reserve(dirSize + frameBytesTotal);
  const auto dirView = dir.view();
  batch.insert(batch.end(), dirView.begin(), dirView.end());
  for (const PendingFrame& f : pendingFrames_) {
    batch.insert(batch.end(), f.bytes.begin(), f.bytes.end());
  }
  file_.write(batch);
  pendingFrames_.clear();

  if (prevDirOffset_ != 0) {
    // Patch the previous directory's "next" link (dir header offset 16).
    ByteWriter patch;
    patch.u64(dirOffset);
    file_.writeAt(prevDirOffset_ + 16, patch.view());
  }
  prevDirOffset_ = dirOffset;
}

void IntervalFileWriter::close() {
  if (closed_) return;
  finalizeFrame();
  flushDirectory();

  const std::uint64_t markerOffset = markers_.empty() ? 0 : file_.tell();
  if (!markers_.empty()) {
    ByteWriter table;
    for (const auto& [id, name] : markers_) {
      table.u32(id);
      table.lstring(name);
    }
    file_.write(table);
  }

  // Patch marker table offset/count and the aggregate trailer fields.
  ByteWriter markerPatch;
  markerPatch.u64(markerOffset);
  markerPatch.u32(static_cast<std::uint32_t>(markers_.size()));
  file_.writeAt(28, markerPatch.view());

  ByteWriter aggregates;
  aggregates.u64(totalRecords_);
  aggregates.u64(totalRecords_ == 0 ? 0 : minStart_);
  aggregates.u64(maxEnd_);
  file_.writeAt(48, aggregates.view());

  file_.close();
  closed_ = true;
}

}  // namespace ute
