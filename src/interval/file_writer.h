// Interval file writer: header, thread table, and interval records
// partitioned into frames grouped under doubly-linked frame directories
// (Section 2.3.3, Figure 4).
//
// Records must be appended in ascending end-time order (the invariant the
// merge utility and all readers rely on). Frames close when they reach a
// target byte size; a directory is flushed to disk when it holds its full
// complement of frames, and its "next directory" link is back-patched
// when the following directory's position becomes known. The marker
// string table (marker id -> string, Section 2.4) is written as a trailer
// whose offset the header carries.
//
// A frame-start hook lets the merge utility inject its zero-duration
// continuation pseudo-intervals at the beginning of every frame
// (Section 3.3) without this writer knowing anything about state nesting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "interval/profile.h"
#include "interval/record.h"
#include "support/file_io.h"
#include "support/types.h"
#include "trace/events.h"

namespace ute {

/// One entry of the thread table (Section 2.3.3): MPI task ID, process
/// ID, system thread ID, node ID, logical thread ID, and thread type.
struct ThreadEntry {
  TaskId task = -1;
  std::int32_t pid = 0;
  std::int32_t systemTid = 0;
  NodeId node = 0;
  LogicalThreadId ltid = 0;
  ThreadType type = ThreadType::kUser;
};

struct IntervalFileOptions {
  std::uint32_t profileVersion = 0;
  std::uint64_t fieldSelectionMask = 1;
  bool merged = false;
  std::size_t targetFrameBytes = 32 << 10;
  int framesPerDirectory = 64;
};

class IntervalFileWriter {
 public:
  /// Called when a new frame is about to start; may append record bodies
  /// (zero-duration continuation pseudo-intervals) that become the first
  /// records of the frame. `frameStart` is the end time of the last
  /// record of the previous frame.
  using FrameStartHook =
      std::function<void(Tick frameStart, std::vector<ByteWriter>& out)>;

  IntervalFileWriter(const std::string& path,
                     const IntervalFileOptions& options,
                     std::vector<ThreadEntry> threads);

  void setFrameStartHook(FrameStartHook hook) { hook_ = std::move(hook); }

  /// Registers one marker string/identifier pair; duplicates by id are
  /// ignored, conflicting strings for one id throw.
  void addMarker(std::uint32_t id, const std::string& name);

  /// Appends one record body (as produced by encodeRecordBody). Bodies
  /// must arrive in ascending end-time order.
  void addRecord(std::span<const std::uint8_t> body);

  /// Finalizes frames and directories, writes the marker table, patches
  /// the header, and closes the file.
  void close();

  std::uint64_t recordsWritten() const { return totalRecords_; }
  const std::string& path() const { return path_; }

 private:
  struct PendingFrame {
    std::vector<std::uint8_t> bytes;
    std::uint32_t records = 0;
    Tick minStart = 0;
    Tick maxEnd = 0;
  };

  void appendToFrame(std::span<const std::uint8_t> body,
                     const RecordView& view);
  void finalizeFrame();
  void flushDirectory();

  std::string path_;
  IntervalFileOptions options_;
  FileWriter file_;
  FrameStartHook hook_;
  std::map<std::uint32_t, std::string> markers_;

  PendingFrame current_;
  std::vector<PendingFrame> pendingFrames_;
  std::uint64_t prevDirOffset_ = 0;  ///< 0 = none yet
  std::uint64_t totalRecords_ = 0;
  Tick lastEnd_ = 0;
  Tick minStart_ = ~Tick{0};
  Tick maxEnd_ = 0;
  bool inHook_ = false;
  bool closed_ = false;
};

// Shared layout constants (used by the reader).
inline constexpr std::uint32_t kIntervalMagic = 0x49455455;  // "UTEI"
inline constexpr std::uint32_t kIntervalHeaderVersion = 1;
inline constexpr std::size_t kIntervalHeaderBytes = 72;
inline constexpr std::size_t kThreadEntryBytes = 21;
inline constexpr std::size_t kDirHeaderBytes = 24;
inline constexpr std::size_t kFrameEntryBytes = 32;
inline constexpr std::uint32_t kIntervalFlagMerged = 0x1;

}  // namespace ute
