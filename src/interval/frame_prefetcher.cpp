#include "interval/frame_prefetcher.h"

namespace ute {

FramePrefetcher::FramePrefetcher(const std::string& path, std::size_t depth)
    : reader_(path), frames_(depth == 0 ? 2 : depth) {
  fetcher_ = std::thread([this] { fetchLoop(); });
}

FramePrefetcher::~FramePrefetcher() {
  frames_.close();  // unblocks a fetcher parked on a full channel
  if (fetcher_.joinable()) fetcher_.join();
}

void FramePrefetcher::fetchLoop() {
  try {
    for (FrameDirectory dir = reader_.firstDirectory(); !dir.frames.empty();
         dir = reader_.readDirectory(dir.nextOffset)) {
      for (const FrameInfo& f : dir.frames) {
        // On the mmap path readFrame is a bounds check, not I/O; the
        // WILLNEED advice is what actually pulls the pages in ahead of
        // the consumer.
        reader_.source().advise(f.offset, f.sizeBytes,
                                MappedFile::Hint::kWillNeed);
        if (!frames_.send(reader_.readFrame(f))) return;  // consumer gone
      }
      if (dir.nextOffset == 0) break;
    }
  } catch (...) {
    MutexLock lock(errorMu_);
    error_ = std::current_exception();
  }
  frames_.close();
}

bool FramePrefetcher::next(FrameBuf& frame) {
  auto got = frames_.receive();
  if (!got) {
    // Closed and drained; the fetcher stored error_ before its close().
    std::exception_ptr error;
    {
      MutexLock lock(errorMu_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
    return false;
  }
  frame = std::move(*got);
  return true;
}

PrefetchRecordStream::PrefetchRecordStream(const std::string& path,
                                           std::size_t depth)
    : prefetcher_(path, depth) {}

bool PrefetchRecordStream::next(RecordView& out) {
  if (exhausted_) return false;
  for (;;) {
    if (pos_ < frame_.size()) {
      ByteReader r(frame_.bytes().subspan(pos_));
      const auto body = readLengthPrefixedRecord(r);
      pos_ += r.pos();
      out = RecordView::parse(body);
      return true;
    }
    if (!prefetcher_.next(frame_)) {
      exhausted_ = true;
      return false;
    }
    pos_ = 0;
  }
}

}  // namespace ute
