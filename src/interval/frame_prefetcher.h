// Background frame prefetching for interval files.
//
// The k-way merge consumes each input strictly in file order, one record
// at a time, but the underlying I/O is frame-granular — so between frames
// the tournament tree used to stall on a synchronous readFrame(). A
// FramePrefetcher moves that read onto a dedicated fetcher thread that
// walks the directory chain and pushes whole frames through a bounded
// Channel (default depth 2: one frame being consumed, one being read —
// classic double buffering, and the bound keeps a fast disk from
// ballooning memory on a slow consumer).
//
// The prefetcher opens its own IntervalFileReader, so a caller may keep a
// separate reader on the same path for metadata without synchronization.
// Errors raised by the fetcher thread (corrupt directories, truncated
// frames) are captured and rethrown from the consumer's next() call, so
// error behavior matches the synchronous path.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "interval/file_reader.h"
#include "support/channel.h"

namespace ute {

class FramePrefetcher {
 public:
  explicit FramePrefetcher(const std::string& path, std::size_t depth = 2);
  ~FramePrefetcher();

  FramePrefetcher(const FramePrefetcher&) = delete;
  FramePrefetcher& operator=(const FramePrefetcher&) = delete;

  /// Moves the next frame's raw bytes into `frame`; false at end of
  /// file. Rethrows any error the fetcher thread hit.
  bool next(std::vector<std::uint8_t>& frame);

 private:
  void fetchLoop();

  IntervalFileReader reader_;
  Channel<std::vector<std::uint8_t>> frames_;
  std::exception_ptr error_;  ///< set before frames_.close(), read after
  std::thread fetcher_;
};

/// Record-granular view over a FramePrefetcher: the drop-in prefetching
/// counterpart of IntervalFileReader::RecordStream (same record sequence,
/// byte for byte). The RecordView's bytes stay valid until the next call.
class PrefetchRecordStream {
 public:
  explicit PrefetchRecordStream(const std::string& path,
                                std::size_t depth = 2);

  /// False at end of file.
  bool next(RecordView& out);

 private:
  FramePrefetcher prefetcher_;
  std::vector<std::uint8_t> frameBytes_;
  std::size_t pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace ute
