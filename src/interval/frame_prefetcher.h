// Background frame prefetching for interval files.
//
// The k-way merge consumes each input strictly in file order, one record
// at a time, but the underlying I/O is frame-granular — so between frames
// the tournament tree used to stall on a synchronous readFrame(). A
// FramePrefetcher moves that work onto a dedicated fetcher thread that
// walks the directory chain and pushes shared immutable FrameBuf handles
// through a bounded Channel (default depth 2: one frame being consumed,
// one being read — classic double buffering, and the bound keeps a fast
// disk from ballooning memory on a slow consumer).
//
// On the mmap path a FrameBuf is a view into the mapping, so "fetching"
// is free; the fetcher instead issues madvise(WILLNEED) for the next
// frame's pages, turning the double buffering into page-cache readahead
// rather than a second in-memory copy. On the stdio fallback the frames
// flow through the source's buffer pool, recycling the same few
// allocations.
//
// The prefetcher opens its own IntervalFileReader, so a caller may keep a
// separate reader on the same path for metadata without synchronization.
// Errors raised by the fetcher thread (corrupt directories, truncated
// frames) are captured and rethrown from the consumer's next() call, so
// error behavior matches the synchronous path.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "interval/file_reader.h"
#include "support/channel.h"
#include "support/thread_annotations.h"

namespace ute {

class FramePrefetcher {
 public:
  explicit FramePrefetcher(const std::string& path, std::size_t depth = 2);
  ~FramePrefetcher();

  FramePrefetcher(const FramePrefetcher&) = delete;
  FramePrefetcher& operator=(const FramePrefetcher&) = delete;

  /// Hands the next frame's shared byte view to `frame`; false at end of
  /// file. Rethrows any error the fetcher thread hit.
  bool next(FrameBuf& frame);

 private:
  void fetchLoop();

  IntervalFileReader reader_;
  Channel<FrameBuf> frames_;
  Mutex errorMu_;
  /// Set by the fetcher before it closes frames_, read by the consumer
  /// after receive() returns nullopt.
  std::exception_ptr error_ UTE_GUARDED_BY(errorMu_);
  std::thread fetcher_;
};

/// Record-granular view over a FramePrefetcher: the drop-in prefetching
/// counterpart of IntervalFileReader::RecordStream (same record sequence,
/// byte for byte). The RecordView's bytes stay valid until the next call.
class PrefetchRecordStream {
 public:
  explicit PrefetchRecordStream(const std::string& path,
                                std::size_t depth = 2);

  /// False at end of file.
  bool next(RecordView& out);

 private:
  FramePrefetcher prefetcher_;
  FrameBuf frame_;
  std::size_t pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace ute
