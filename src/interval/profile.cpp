#include "interval/profile.h"

#include "support/file_io.h"

namespace ute {

namespace {
constexpr std::uint32_t kProfileMagic = 0x50455455;  // "UTEP"
constexpr std::uint32_t kProfileHeaderVersion = 1;
}  // namespace

std::string dataTypeName(DataType t) {
  switch (t) {
    case DataType::kU8: return "u8";
    case DataType::kU16: return "u16";
    case DataType::kU32: return "u32";
    case DataType::kU64: return "u64";
    case DataType::kI8: return "i8";
    case DataType::kI16: return "i16";
    case DataType::kI32: return "i32";
    case DataType::kI64: return "i64";
    case DataType::kF64: return "f64";
    case DataType::kChar: return "char";
  }
  return "?";
}

std::string bebitsName(Bebits b) {
  switch (b) {
    case Bebits::kComplete: return "complete";
    case Bebits::kBegin: return "begin";
    case Bebits::kContinuation: return "continuation";
    case Bebits::kEnd: return "end";
  }
  return "?";
}

std::uint32_t encodeFieldWord(const FieldSpec& f) {
  std::uint32_t counterCode = 0;
  switch (f.counterLen) {
    case 0: counterCode = 0; break;
    case 1: counterCode = 1; break;
    case 2: counterCode = 2; break;
    case 4: counterCode = 3; break;
    default:
      throw UsageError("invalid vector counter length " +
                       std::to_string(f.counterLen));
  }
  if (f.attr > 15) throw UsageError("field selection attribute must be 0..15");
  if (f.nameIndex > 0x0fff) throw UsageError("field name index overflow");
  return (static_cast<std::uint32_t>(f.isVector) << 31) |
         (counterCode << 29) |
         (static_cast<std::uint32_t>(f.type) << 24) |
         (static_cast<std::uint32_t>(f.elemLen) << 16) |
         (static_cast<std::uint32_t>(f.attr) << 12) |
         static_cast<std::uint32_t>(f.nameIndex);
}

FieldSpec decodeFieldWord(std::uint32_t word) {
  FieldSpec f;
  f.isVector = (word >> 31) != 0;
  switch ((word >> 29) & 0b11) {
    case 0: f.counterLen = 0; break;
    case 1: f.counterLen = 1; break;
    case 2: f.counterLen = 2; break;
    case 3: f.counterLen = 4; break;
  }
  f.type = static_cast<DataType>((word >> 24) & 0x1f);
  f.elemLen = static_cast<std::uint8_t>((word >> 16) & 0xff);
  f.attr = static_cast<std::uint8_t>((word >> 12) & 0x0f);
  f.nameIndex = static_cast<std::uint16_t>(word & 0x0fff);
  if (f.isVector && f.counterLen == 0) {
    throw FormatError("vector field without a counter length");
  }
  if (f.elemLen != dataTypeSize(f.type)) {
    throw FormatError("field element length disagrees with its data type");
  }
  return f;
}

const RecordSpec* Profile::find(IntervalType t) const {
  const auto it = specs_.find(t);
  return it == specs_.end() ? nullptr : &it->second;
}

std::optional<std::uint16_t> Profile::fieldNameIndex(
    std::string_view name) const {
  for (std::size_t i = 0; i < fieldNames_.size(); ++i) {
    if (fieldNames_[i] == name) return static_cast<std::uint16_t>(i);
  }
  return std::nullopt;
}

ByteWriter Profile::encode() const {
  ByteWriter w;
  w.u32(kProfileMagic);
  w.u32(versionId_);
  w.u32(kProfileHeaderVersion);
  w.u16(static_cast<std::uint16_t>(recordNames_.size()));
  for (const auto& n : recordNames_) w.lstring(n);
  w.u16(static_cast<std::uint16_t>(fieldNames_.size()));
  for (const auto& n : fieldNames_) w.lstring(n);
  w.u16(static_cast<std::uint16_t>(specs_.size()));
  for (const auto& [type, spec] : specs_) {
    w.u32(type);
    w.u16(spec.nameIndex);
    w.u8(0);  // reserved (Figure 3)
    w.u8(static_cast<std::uint8_t>(spec.fields.size()));
    for (const FieldSpec& f : spec.fields) w.u32(encodeFieldWord(f));
  }
  return w;
}

Profile Profile::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kProfileMagic) throw FormatError("not a profile file");
  Profile p;
  p.versionId_ = r.u32();
  if (r.u32() != kProfileHeaderVersion) {
    throw FormatError("unsupported profile header version");
  }
  const std::uint16_t nRecordNames = r.u16();
  p.recordNames_.reserve(nRecordNames);
  for (std::uint16_t i = 0; i < nRecordNames; ++i) {
    p.recordNames_.push_back(r.lstring());
  }
  const std::uint16_t nFieldNames = r.u16();
  p.fieldNames_.reserve(nFieldNames);
  for (std::uint16_t i = 0; i < nFieldNames; ++i) {
    p.fieldNames_.push_back(r.lstring());
  }
  const std::uint16_t nSpecs = r.u16();
  for (std::uint16_t i = 0; i < nSpecs; ++i) {
    RecordSpec spec;
    spec.intervalType = r.u32();
    spec.nameIndex = r.u16();
    r.u8();  // reserved
    const std::uint8_t nFields = r.u8();
    spec.fields.reserve(nFields);
    for (std::uint8_t f = 0; f < nFields; ++f) {
      FieldSpec fs = decodeFieldWord(r.u32());
      if (fs.nameIndex >= p.fieldNames_.size()) {
        throw FormatError("field name index out of range in profile");
      }
      spec.fields.push_back(fs);
    }
    if (spec.nameIndex >= p.recordNames_.size()) {
      throw FormatError("record name index out of range in profile");
    }
    p.specs_.emplace(spec.intervalType, std::move(spec));
  }
  if (!r.atEnd()) throw FormatError("trailing bytes in profile file");
  return p;
}

void Profile::writeFile(const std::string& path) const {
  writeWholeFile(path, encode().view());
}

Profile Profile::readFile(const std::string& path) {
  const auto bytes = readWholeFile(path);
  return decode(bytes);
}

std::string Profile::describe() const {
  std::string out = "profile version " + std::to_string(versionId_) + ", " +
                    std::to_string(specs_.size()) + " record types\n";
  for (const auto& [type, spec] : specs_) {
    out += "  " + recordName(spec) + "/" + bebitsName(intervalBebits(type)) +
           " (type " + std::to_string(type) + "):";
    for (const FieldSpec& f : spec.fields) {
      out += " " + fieldName(f) + ":" + dataTypeName(f.type);
      if (f.isVector) out += "[]";
      if (f.attr != 0) out += "@" + std::to_string(f.attr);
    }
    out += "\n";
  }
  return out;
}

ProfileBuilder::ProfileBuilder(std::uint32_t versionId) {
  profile_.versionId_ = versionId;
}

std::uint16_t ProfileBuilder::internRecordName(const std::string& name) {
  const auto it = recordNameIndex_.find(name);
  if (it != recordNameIndex_.end()) return it->second;
  const auto idx = static_cast<std::uint16_t>(profile_.recordNames_.size());
  profile_.recordNames_.push_back(name);
  recordNameIndex_.emplace(name, idx);
  return idx;
}

std::uint16_t ProfileBuilder::internFieldName(const std::string& name) {
  const auto it = fieldNameIndex_.find(name);
  if (it != fieldNameIndex_.end()) return it->second;
  const auto idx = static_cast<std::uint16_t>(profile_.fieldNames_.size());
  if (idx > 0x0fff) throw UsageError("too many field names for a profile");
  profile_.fieldNames_.push_back(name);
  fieldNameIndex_.emplace(name, idx);
  return idx;
}

RecordSpec& ProfileBuilder::current() {
  if (!haveCurrent_) throw UsageError("no record() opened yet");
  return profile_.specs_.at(currentType_);
}

ProfileBuilder& ProfileBuilder::record(IntervalType type,
                                       const std::string& name) {
  RecordSpec spec;
  spec.intervalType = type;
  spec.nameIndex = internRecordName(name);
  const auto [it, inserted] = profile_.specs_.emplace(type, std::move(spec));
  if (!inserted) {
    throw UsageError("duplicate record spec for interval type " +
                     std::to_string(type));
  }
  currentType_ = type;
  haveCurrent_ = true;
  return *this;
}

ProfileBuilder& ProfileBuilder::scalar(const std::string& name, DataType type,
                                       std::uint8_t attr) {
  FieldSpec f;
  f.type = type;
  f.elemLen = dataTypeSize(type);
  f.attr = attr;
  f.nameIndex = internFieldName(name);
  if (current().fields.size() >= 255) {
    throw UsageError("record has too many fields");
  }
  current().fields.push_back(f);
  return *this;
}

ProfileBuilder& ProfileBuilder::vector(const std::string& name, DataType type,
                                       std::uint8_t counterLen,
                                       std::uint8_t attr) {
  FieldSpec f;
  f.isVector = true;
  f.counterLen = counterLen;
  f.type = type;
  f.elemLen = dataTypeSize(type);
  f.attr = attr;
  f.nameIndex = internFieldName(name);
  encodeFieldWord(f);  // validates counterLen / attr
  current().fields.push_back(f);
  return *this;
}

Profile ProfileBuilder::build() { return std::move(profile_); }

}  // namespace ute
