// The description profile: record specifications for every interval type
// (Section 2.3.1).
//
// Interval records and their specifications live in separate files: the
// records in an interval file, the specifications in a description
// profile. The profile header carries a version ID, the number of record
// types, and the string arrays for record and field names; utilities
// verify the version ID in an interval file against the profile before
// decoding anything.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "interval/field.h"
#include "support/bytes.h"

namespace ute {

/// Specification of one record (interval) type: Figure 3.
struct RecordSpec {
  IntervalType intervalType = 0;
  std::uint16_t nameIndex = 0;
  std::vector<FieldSpec> fields;
};

class Profile {
 public:
  std::uint32_t versionId() const { return versionId_; }

  const RecordSpec* find(IntervalType t) const;
  const std::map<IntervalType, RecordSpec>& specs() const { return specs_; }

  const std::string& recordName(const RecordSpec& spec) const {
    return recordNames_.at(spec.nameIndex);
  }
  const std::string& fieldName(const FieldSpec& field) const {
    return fieldNames_.at(field.nameIndex);
  }
  const std::vector<std::string>& recordNames() const { return recordNames_; }
  const std::vector<std::string>& fieldNames() const { return fieldNames_; }

  /// Index of `name` in the field-name array, if interned.
  std::optional<std::uint16_t> fieldNameIndex(std::string_view name) const;

  // --- serialization -----------------------------------------------------
  ByteWriter encode() const;
  static Profile decode(std::span<const std::uint8_t> bytes);
  void writeFile(const std::string& path) const;
  static Profile readFile(const std::string& path);

  /// Human-readable dump (for the utedump tool and for debugging).
  std::string describe() const;

 private:
  friend class ProfileBuilder;

  std::uint32_t versionId_ = 0;
  std::vector<std::string> recordNames_;
  std::vector<std::string> fieldNames_;
  std::map<IntervalType, RecordSpec> specs_;
};

/// Assembles a Profile, interning names and validating field words.
class ProfileBuilder {
 public:
  explicit ProfileBuilder(std::uint32_t versionId);

  /// Starts (or extends) the spec for an interval type.
  ProfileBuilder& record(IntervalType type, const std::string& name);

  /// Appends a scalar field to the record opened by the last record().
  ProfileBuilder& scalar(const std::string& name, DataType type,
                         std::uint8_t attr = 0);

  /// Appends a vector field (counterLen-byte element count, then elements).
  ProfileBuilder& vector(const std::string& name, DataType type,
                         std::uint8_t counterLen, std::uint8_t attr = 0);

  Profile build();

 private:
  std::uint16_t internRecordName(const std::string& name);
  std::uint16_t internFieldName(const std::string& name);
  RecordSpec& current();

  Profile profile_;
  std::map<std::string, std::uint16_t> recordNameIndex_;
  std::map<std::string, std::uint16_t> fieldNameIndex_;
  IntervalType currentType_ = 0;
  bool haveCurrent_ = false;
};

}  // namespace ute
