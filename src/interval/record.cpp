#include "interval/record.h"

#include <cstring>

namespace ute {

namespace {

std::uint64_t leLoad(std::span<const std::uint8_t> data, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return v;
}

void leStore(std::span<std::uint8_t> data, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

RecordView RecordView::parse(std::span<const std::uint8_t> body) {
  if (body.size() < kCommonPrefixBytes) {
    throw FormatError("interval record shorter than its common prefix");
  }
  RecordView v;
  v.body = body;
  v.intervalType = static_cast<IntervalType>(leLoad(body.subspan(0, 4), 4));
  v.start = leLoad(body.subspan(4, 8), 8);
  v.dura = leLoad(body.subspan(12, 8), 8);
  v.cpu = static_cast<std::int32_t>(leLoad(body.subspan(20, 4), 4));
  v.node = static_cast<NodeId>(
      static_cast<std::int32_t>(leLoad(body.subspan(24, 4), 4)));
  v.thread = static_cast<LogicalThreadId>(
      static_cast<std::int32_t>(leLoad(body.subspan(28, 4), 4)));
  return v;
}

ByteWriter encodeRecordBody(IntervalType type, Tick start, Tick dura,
                            std::int32_t cpu, NodeId node,
                            LogicalThreadId thread,
                            std::span<const std::uint8_t> extra) {
  ByteWriter w;
  w.u32(type);
  w.u64(start);
  w.u64(dura);
  w.i32(cpu);
  w.i32(node);
  w.i32(thread);
  w.bytes(extra);
  return w;
}

std::size_t recordSizeOnDisk(std::size_t bodySize) {
  return bodySize + (bodySize > 255 ? 3 : 1);
}

void appendRecordWithLength(std::vector<std::uint8_t>& out,
                            std::span<const std::uint8_t> body) {
  if (body.size() > 0xffff) {
    throw UsageError("interval record body longer than 65535 bytes");
  }
  if (body.size() > 255) {
    // Zero length byte, then the true length in the next two bytes
    // (Section 2.3.2).
    out.push_back(0);
    out.push_back(static_cast<std::uint8_t>(body.size() & 0xff));
    out.push_back(static_cast<std::uint8_t>(body.size() >> 8));
  } else {
    out.push_back(static_cast<std::uint8_t>(body.size()));
  }
  out.insert(out.end(), body.begin(), body.end());
}

std::span<const std::uint8_t> readLengthPrefixedRecord(ByteReader& r) {
  if (r.atEnd()) return {};
  std::size_t len = r.u8();
  if (len == 0) len = r.u16();
  return r.bytes(len);
}

void patchRecordTimes(std::span<std::uint8_t> body, Tick start, Tick dura) {
  if (body.size() < kCommonPrefixBytes) {
    throw UsageError("record body too short to patch");
  }
  leStore(body.subspan(4, 8), start, 8);
  leStore(body.subspan(12, 8), dura, 8);
}

bool forEachField(
    const RecordSpec& spec, std::uint64_t mask,
    std::span<const std::uint8_t> body,
    const std::function<bool(const FieldSpec&, std::span<const std::uint8_t>,
                             std::uint32_t)>& fn) {
  std::size_t off = 0;
  for (const FieldSpec& f : spec.fields) {
    if (!f.selectedBy(mask)) continue;
    std::uint32_t count = 1;
    if (f.isVector) {
      if (off + f.counterLen > body.size()) return false;
      count = static_cast<std::uint32_t>(
          leLoad(body.subspan(off, f.counterLen), f.counterLen));
      off += f.counterLen;
    }
    const std::size_t dataLen =
        static_cast<std::size_t>(count) * f.elemLen;
    if (off + dataLen > body.size()) return false;
    if (!fn(f, body.subspan(off, dataLen), count)) return true;
    off += dataLen;
  }
  return true;
}

std::int64_t decodeScalar(DataType type, std::span<const std::uint8_t> data) {
  const std::size_t n = dataTypeSize(type);
  const std::uint64_t raw = leLoad(data, n);
  switch (type) {
    case DataType::kI8:
      return static_cast<std::int8_t>(raw);
    case DataType::kI16:
      return static_cast<std::int16_t>(raw);
    case DataType::kI32:
      return static_cast<std::int32_t>(raw);
    case DataType::kI64:
      return static_cast<std::int64_t>(raw);
    case DataType::kF64: {
      double d;
      std::memcpy(&d, &raw, sizeof d);
      return static_cast<std::int64_t>(d);
    }
    default:
      return static_cast<std::int64_t>(raw);
  }
}

double decodeScalarF64(DataType type, std::span<const std::uint8_t> data) {
  if (type == DataType::kF64) {
    const std::uint64_t raw = leLoad(data, 8);
    double d;
    std::memcpy(&d, &raw, sizeof d);
    return d;
  }
  return static_cast<double>(decodeScalar(type, data));
}

namespace {

/// Shared lookup: finds the field called `name` and hands its bytes to
/// `fn`. Returns false when the type/field is unknown or masked out.
template <typename Fn>
bool withFieldData(const Profile& profile, std::uint64_t mask,
                   const RecordView& record, std::string_view name, Fn&& fn) {
  const RecordSpec* spec = profile.find(record.intervalType);
  if (spec == nullptr) return false;
  const auto nameIdx = profile.fieldNameIndex(name);
  if (!nameIdx) return false;
  bool found = false;
  forEachField(*spec, mask, record.body,
               [&](const FieldSpec& f, std::span<const std::uint8_t> data,
                   std::uint32_t count) {
                 if (f.nameIndex != *nameIdx) return true;
                 found = true;
                 fn(f, data, count);
                 return false;
               });
  return found;
}

}  // namespace

std::optional<std::int64_t> getScalarByName(const Profile& profile,
                                            std::uint64_t mask,
                                            const RecordView& record,
                                            std::string_view name) {
  std::optional<std::int64_t> out;
  withFieldData(profile, mask, record, name,
                [&](const FieldSpec& f, std::span<const std::uint8_t> data,
                    std::uint32_t count) {
                  if (!f.isVector && count == 1) {
                    out = decodeScalar(f.type, data);
                  }
                });
  return out;
}

std::optional<double> getF64ByName(const Profile& profile, std::uint64_t mask,
                                   const RecordView& record,
                                   std::string_view name) {
  std::optional<double> out;
  withFieldData(profile, mask, record, name,
                [&](const FieldSpec& f, std::span<const std::uint8_t> data,
                    std::uint32_t count) {
                  if (!f.isVector && count == 1) {
                    out = decodeScalarF64(f.type, data);
                  }
                });
  return out;
}

std::optional<std::string> getStringByName(const Profile& profile,
                                           std::uint64_t mask,
                                           const RecordView& record,
                                           std::string_view name) {
  std::optional<std::string> out;
  withFieldData(profile, mask, record, name,
                [&](const FieldSpec& f, std::span<const std::uint8_t> data,
                    std::uint32_t) {
                  if (f.isVector && f.type == DataType::kChar) {
                    out = std::string(
                        reinterpret_cast<const char*>(data.data()),
                        data.size());
                  }
                });
  return out;
}

FieldAccessor::FieldAccessor(const Profile& profile, IntervalType type,
                             std::uint64_t mask, std::string_view name)
    : mask_(mask) {
  spec_ = profile.find(type);
  if (spec_ == nullptr) return;
  const auto nameIdx = profile.fieldNameIndex(name);
  if (!nameIdx) return;
  nameIndex_ = *nameIdx;
  std::size_t off = 0;
  bool fixed = true;
  for (const FieldSpec& f : spec_->fields) {
    if (!f.selectedBy(mask)) continue;
    if (f.nameIndex == nameIndex_ && !f.isVector) {
      present_ = true;
      fixedOffset_ = fixed;
      offset_ = off;
      type_ = f.type;
      elemLen_ = f.elemLen;
      return;
    }
    if (f.isVector) {
      fixed = false;  // offsets after this depend on the vector's length
    } else {
      off += f.elemLen;
    }
  }
}

std::optional<std::int64_t> FieldAccessor::get(const RecordView& record) const {
  if (!present_) return std::nullopt;
  if (fixedOffset_) {
    if (offset_ + elemLen_ > record.body.size()) return std::nullopt;
    return decodeScalar(type_, record.body.subspan(offset_, elemLen_));
  }
  // Slow path: a vector field precedes the target; walk the record.
  std::optional<std::int64_t> out;
  forEachField(*spec_, mask_, record.body,
               [&](const FieldSpec& f, std::span<const std::uint8_t> data,
                   std::uint32_t count) {
                 if (f.nameIndex != nameIndex_ || f.isVector || count != 1) {
                   return true;
                 }
                 out = decodeScalar(f.type, data);
                 return false;
               });
  return out;
}

}  // namespace ute
