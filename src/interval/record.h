// Interval record encoding, decoding and field access (Section 2.3.2).
//
// Every record body starts with the six common fields of the paper —
// record type, start time, duration, processor ID, node ID, logical
// thread ID — at fixed offsets, followed by type-specific fields as
// described by the record's specification in the profile. On disk each
// record is preceded by a one-byte record length; a zero length byte
// means the true length follows in the next two bytes, so a reader can
// always locate the next record without decoding the current one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "interval/profile.h"
#include "support/bytes.h"
#include "support/types.h"

namespace ute {

/// Size of the common-field prefix: type u32, start u64, dura u64,
/// cpu i32, node i32, thread i32.
inline constexpr std::size_t kCommonPrefixBytes = 32;

/// Canonical names of the common fields (used by the standard profile,
/// the statistics language and getItemByName alike).
inline constexpr const char* kFieldType = "type";
inline constexpr const char* kFieldStart = "start";
inline constexpr const char* kFieldDura = "dura";
inline constexpr const char* kFieldCpu = "cpu";
inline constexpr const char* kFieldNode = "node";
inline constexpr const char* kFieldThread = "thread";

/// A decoded view of one record. `body` spans the full record body
/// (starting at the type word); the common fields are pre-parsed.
struct RecordView {
  std::span<const std::uint8_t> body;
  IntervalType intervalType = 0;
  Tick start = 0;
  Tick dura = 0;
  std::int32_t cpu = 0;
  NodeId node = 0;
  LogicalThreadId thread = 0;

  Tick end() const { return start + dura; }
  EventType eventType() const { return intervalEventType(intervalType); }
  Bebits bebits() const { return intervalBebits(intervalType); }

  /// Parses the common prefix; throws FormatError on short bodies.
  static RecordView parse(std::span<const std::uint8_t> body);
};

/// Encodes a record body: common fields followed by pre-encoded
/// type-specific field bytes (append them in spec order).
ByteWriter encodeRecordBody(IntervalType type, Tick start, Tick dura,
                            std::int32_t cpu, NodeId node,
                            LogicalThreadId thread,
                            std::span<const std::uint8_t> extra = {});

/// Appends `body` to `out` with the 1-or-3-byte record length prefix.
void appendRecordWithLength(std::vector<std::uint8_t>& out,
                            std::span<const std::uint8_t> body);

/// Size the record occupies on disk including its length prefix.
std::size_t recordSizeOnDisk(std::size_t bodySize);

/// Reads one length-prefixed record body from `r` (which must be
/// positioned at a length prefix). Returns an empty span at end of input.
std::span<const std::uint8_t> readLengthPrefixedRecord(ByteReader& r);

/// Overwrites the start/dura common fields of an encoded body in place —
/// the merge utility adjusts timestamps without re-encoding records.
void patchRecordTimes(std::span<std::uint8_t> body, Tick start, Tick dura);

// --- field access ----------------------------------------------------------

/// Invokes `fn(field, data, count)` for each field present under `mask`,
/// where `data` spans the element bytes (for vectors: after the counter)
/// and `count` is 1 for scalars. Stops early when fn returns false.
/// Returns false if the body was exhausted prematurely (malformed).
bool forEachField(
    const RecordSpec& spec, std::uint64_t mask,
    std::span<const std::uint8_t> body,
    const std::function<bool(const FieldSpec&, std::span<const std::uint8_t>,
                             std::uint32_t)>& fn);

/// Decodes one scalar element as a signed 64-bit value (sign-extending
/// signed types; kF64 is truncated toward zero).
std::int64_t decodeScalar(DataType type, std::span<const std::uint8_t> data);
double decodeScalarF64(DataType type, std::span<const std::uint8_t> data);

/// The paper's getItemByName: the value of the scalar field called `name`
/// in `record`, or nullopt when the record's type has no such field (or
/// the field is masked out of this file).
std::optional<std::int64_t> getScalarByName(const Profile& profile,
                                            std::uint64_t mask,
                                            const RecordView& record,
                                            std::string_view name);
std::optional<double> getF64ByName(const Profile& profile, std::uint64_t mask,
                                   const RecordView& record,
                                   std::string_view name);
/// Vector-of-char fields as a string.
std::optional<std::string> getStringByName(const Profile& profile,
                                           std::uint64_t mask,
                                           const RecordView& record,
                                           std::string_view name);

/// Pre-resolved accessor for hot loops (statistics over millions of
/// records): when no vector field precedes the target and all earlier
/// fields are selected, the byte offset is fixed and lookups are O(1).
class FieldAccessor {
 public:
  /// Builds the accessor, or an "absent" accessor when the record type
  /// has no such field under this mask.
  FieldAccessor(const Profile& profile, IntervalType type, std::uint64_t mask,
                std::string_view name);

  bool present() const { return present_; }
  std::optional<std::int64_t> get(const RecordView& record) const;

 private:
  bool present_ = false;
  bool fixedOffset_ = false;
  std::size_t offset_ = 0;
  DataType type_ = DataType::kU64;
  std::uint8_t elemLen_ = 0;
  std::uint16_t nameIndex_ = 0;
  const RecordSpec* spec_ = nullptr;
  std::uint64_t mask_ = 0;
};

}  // namespace ute
