#include "interval/standard_profile.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "interval/record.h"

namespace ute {

namespace {

using FieldList = std::vector<std::pair<const char*, DataType>>;

/// Adds the four bebits variants of one state-like event type. Every
/// variant carries the common fields and `always`; first pieces
/// additionally carry `onBegin` (call arguments), last pieces `onEnd`
/// (call results); every variant ends with the merged-file-only
/// origStart field.
void addStateSpecs(ProfileBuilder& b, EventType event, const std::string& name,
                   const FieldList& always = {}, const FieldList& onBegin = {},
                   const FieldList& onEnd = {}) {
  for (const Bebits bebits : {Bebits::kComplete, Bebits::kBegin,
                              Bebits::kContinuation, Bebits::kEnd}) {
    b.record(makeIntervalType(event, bebits), name);
    b.scalar(kFieldType, DataType::kU32);
    b.scalar(kFieldStart, DataType::kU64);
    b.scalar(kFieldDura, DataType::kU64);
    b.scalar(kFieldCpu, DataType::kI32);
    b.scalar(kFieldNode, DataType::kI32);
    b.scalar(kFieldThread, DataType::kI32);
    for (const auto& [fieldName, type] : always) b.scalar(fieldName, type);
    if (isFirstPiece(bebits)) {
      for (const auto& [fieldName, type] : onBegin) b.scalar(fieldName, type);
    }
    if (isLastPiece(bebits)) {
      for (const auto& [fieldName, type] : onEnd) b.scalar(fieldName, type);
    }
    b.scalar(kFieldOrigStart, DataType::kU64, /*attr=*/1);
  }
}

}  // namespace

Profile makeStandardProfile() {
  ProfileBuilder b(kStandardProfileVersion);

  addStateSpecs(b, kRunningState, "Running");

  // Clock-sync pseudo intervals exist only as complete records.
  b.record(makeIntervalType(kClockSyncState, Bebits::kComplete), "ClockSync");
  b.scalar(kFieldType, DataType::kU32);
  b.scalar(kFieldStart, DataType::kU64);
  b.scalar(kFieldDura, DataType::kU64);
  b.scalar(kFieldCpu, DataType::kI32);
  b.scalar(kFieldNode, DataType::kI32);
  b.scalar(kFieldThread, DataType::kI32);
  b.scalar(kFieldGlobalTime, DataType::kU64);
  b.scalar(kFieldOrigStart, DataType::kU64, /*attr=*/1);

  addStateSpecs(b, EventType::kUserMarker, "UserMarker",
                /*always=*/{{kFieldMarkerId, DataType::kU32}},
                /*onBegin=*/{{kFieldInstrBegin, DataType::kU64}},
                /*onEnd=*/{{kFieldInstrEnd, DataType::kU64}});

  // Section 5 extension activities: blocking I/O calls become states,
  // page faults are point (complete, zero-duration) records.
  addStateSpecs(b, EventType::kIoRead, "IoRead", {},
                {{kFieldIoBytes, DataType::kU32}});
  addStateSpecs(b, EventType::kIoWrite, "IoWrite", {},
                {{kFieldIoBytes, DataType::kU32}});
  b.record(makeIntervalType(EventType::kPageFault, Bebits::kComplete),
           "PageFault");
  b.scalar(kFieldType, DataType::kU32);
  b.scalar(kFieldStart, DataType::kU64);
  b.scalar(kFieldDura, DataType::kU64);
  b.scalar(kFieldCpu, DataType::kI32);
  b.scalar(kFieldNode, DataType::kI32);
  b.scalar(kFieldThread, DataType::kI32);
  b.scalar(kFieldFaultAddr, DataType::kU64);
  b.scalar(kFieldOrigStart, DataType::kU64, /*attr=*/1);

  addStateSpecs(b, EventType::kMpiInit, "MPI_Init");
  addStateSpecs(b, EventType::kMpiFinalize, "MPI_Finalize");

  addStateSpecs(b, EventType::kMpiSend, "MPI_Send", {},
                {{kFieldDestTask, DataType::kI32},
                 {kFieldTag, DataType::kI32},
                 {kFieldMsgSizeSent, DataType::kU32},
                 {kFieldSeqNo, DataType::kU32},
                 {kFieldComm, DataType::kI32}});

  addStateSpecs(b, EventType::kMpiIsend, "MPI_Isend", {},
                {{kFieldDestTask, DataType::kI32},
                 {kFieldTag, DataType::kI32},
                 {kFieldMsgSizeSent, DataType::kU32},
                 {kFieldSeqNo, DataType::kU32},
                 {kFieldComm, DataType::kI32},
                 {kFieldReqSlot, DataType::kI32}});

  addStateSpecs(b, EventType::kMpiRecv, "MPI_Recv", {},
                {{kFieldSrcWanted, DataType::kI32},
                 {kFieldTagWanted, DataType::kI32},
                 {kFieldComm, DataType::kI32}},
                {{kFieldSrcTask, DataType::kI32},
                 {kFieldTagRecv, DataType::kI32},
                 {kFieldMsgSizeRecv, DataType::kU32},
                 {kFieldSeqNo, DataType::kU32}});

  addStateSpecs(b, EventType::kMpiIrecv, "MPI_Irecv", {},
                {{kFieldSrcWanted, DataType::kI32},
                 {kFieldTagWanted, DataType::kI32},
                 {kFieldComm, DataType::kI32},
                 {kFieldReqSlot, DataType::kI32}});

  addStateSpecs(b, EventType::kMpiWait, "MPI_Wait", {},
                {{kFieldReqSlot, DataType::kI32}},
                {{kFieldSrcTask, DataType::kI32},
                 {kFieldTagRecv, DataType::kI32},
                 {kFieldMsgSizeRecv, DataType::kU32},
                 {kFieldSeqNo, DataType::kU32}});

  addStateSpecs(b, EventType::kMpiBarrier, "MPI_Barrier", {},
                {{kFieldComm, DataType::kI32}});

  for (const auto& [event, name] :
       {std::pair{EventType::kMpiBcast, "MPI_Bcast"},
        std::pair{EventType::kMpiReduce, "MPI_Reduce"},
        std::pair{EventType::kMpiAllreduce, "MPI_Allreduce"},
        std::pair{EventType::kMpiAlltoall, "MPI_Alltoall"}}) {
    addStateSpecs(b, event, name, {},
                  {{kFieldCollBytes, DataType::kU32},
                   {kFieldRoot, DataType::kI32},
                   {kFieldComm, DataType::kI32}});
  }

  return b.build();
}

Profile ensureStandardProfileFile(const std::string& path) {
  Profile p = makeStandardProfile();
  if (!std::filesystem::exists(path)) p.writeFile(path);
  return p;
}

}  // namespace ute
