// The standard description profile for UTE traces.
//
// One spec per (event type, bebits) combination, as the paper prescribes:
// a begin piece of an MPI_Send and its continuation pieces are distinct
// interval types with distinct field sets. Field ordering convention per
// state type: fields carried by *every* piece first, then fields only on
// first pieces (begin/complete) — a call's arguments — then fields only
// on last pieces (end/complete) — a call's results. The convert utility
// relies on this order to assemble record bodies by concatenation.
//
// The field selection attributes used:
//   attr 0 — present in every interval file,
//   attr 1 — present only in merged files ("origStart": the record's
//            pre-adjustment local start time, kept for provenance).
// Hence kNodeFileMask selects attr 0 only and kMergedFileMask both.
#pragma once

#include <cstdint>

#include "interval/profile.h"

namespace ute {

inline constexpr std::uint32_t kStandardProfileVersion = 0x00010003;
inline constexpr std::uint64_t kNodeFileMask = 0x1;
inline constexpr std::uint64_t kMergedFileMask = 0x3;

/// Conventional file name for the standard profile ("profile.ute").
inline constexpr const char* kStandardProfileFileName = "profile.ute";

// Field names beyond the common six (see record.h). Kept as constants so
// utilities, tests and the statistics language agree on spelling.
inline constexpr const char* kFieldOrigStart = "origStart";
inline constexpr const char* kFieldGlobalTime = "globalTime";
inline constexpr const char* kFieldMarkerId = "markerId";
inline constexpr const char* kFieldInstrBegin = "instrAddrBegin";
inline constexpr const char* kFieldInstrEnd = "instrAddrEnd";
inline constexpr const char* kFieldDestTask = "destTask";
inline constexpr const char* kFieldTag = "tag";
inline constexpr const char* kFieldMsgSizeSent = "msgSizeSent";
inline constexpr const char* kFieldSeqNo = "seqNo";
inline constexpr const char* kFieldComm = "comm";
inline constexpr const char* kFieldReqSlot = "reqSlot";
inline constexpr const char* kFieldSrcWanted = "srcWanted";
inline constexpr const char* kFieldTagWanted = "tagWanted";
inline constexpr const char* kFieldSrcTask = "srcTask";
inline constexpr const char* kFieldTagRecv = "tagRecv";
inline constexpr const char* kFieldMsgSizeRecv = "msgSizeRecv";
inline constexpr const char* kFieldCollBytes = "collBytes";
inline constexpr const char* kFieldRoot = "root";
inline constexpr const char* kFieldIoBytes = "ioBytes";
inline constexpr const char* kFieldFaultAddr = "faultAddr";

/// Builds the standard profile (deterministic: same bytes every time).
Profile makeStandardProfile();

/// Writes the standard profile to `path` if it does not already exist,
/// and returns it.
Profile ensureStandardProfileFile(const std::string& path);

}  // namespace ute
