#include "interval/ute_api.h"

#include <cstring>
#include <memory>

#include "interval/file_reader.h"
#include "interval/profile.h"
#include "interval/record.h"

namespace ute::api {

struct UteFile {
  explicit UteFile(const char* path)
      : reader(path), stream(reader.records()) {}
  IntervalFileReader reader;
  IntervalFileReader::RecordStream stream;
};

namespace {
struct ProfileHandle {
  Profile profile;
};

const Profile* profileOf(const table_format* table) {
  if (table == nullptr || table->impl == nullptr) return nullptr;
  return &static_cast<const ProfileHandle*>(table->impl)->profile;
}
}  // namespace

UteFile* readHeader(const char* path, interval_header* header) {
  try {
    auto file = std::make_unique<UteFile>(path);
    if (header != nullptr) {
      const IntervalFileHeader& h = file->reader.header();
      header->profile_version = h.profileVersion;
      header->header_version = h.headerVersion;
      header->masks = h.fieldSelectionMask;
      header->thread_count = h.threadCount;
      header->total_records = h.totalRecords;
      header->min_start = h.minStart;
      header->max_end = h.maxEnd;
    }
    return file.release();
  } catch (const std::exception&) {
    return nullptr;
  }
}

int readFrameDir(UteFile* file, frame_directory* dir) {
  if (file == nullptr || dir == nullptr) return -1;
  try {
    const FrameDirectory first = file->reader.firstDirectory();
    dir->owner = file;
    dir->frames_in_first_dir = static_cast<std::uint32_t>(first.frames.size());
    return static_cast<int>(first.frames.size());
  } catch (const std::exception&) {
    return -1;
  }
}

int readProfile(const char* path, table_format* table, std::uint64_t masks) {
  if (table == nullptr) return -1;
  try {
    auto handle = std::make_unique<ProfileHandle>();
    handle->profile = Profile::readFile(path);
    table->impl = handle.release();
    table->masks = masks;
    return 0;
  } catch (const std::exception&) {
    return -1;
  }
}

long getInterval(UteFile* file, frame_directory* dir, void* buffer,
                 std::size_t bufSize) {
  if (file == nullptr || dir == nullptr || dir->owner != file) return -1;
  try {
    RecordView view;
    if (!file->stream.next(view)) return 0;
    if (view.body.size() > bufSize) return -1;
    std::memcpy(buffer, view.body.data(), view.body.size());
    return static_cast<long>(view.body.size());
  } catch (const std::exception&) {
    return -1;
  }
}

long getIntervalAt(UteFile* file, std::uint64_t frameOffset,
                   std::uint32_t index, void* buffer, std::size_t bufSize) {
  if (file == nullptr || buffer == nullptr) return -1;
  try {
    const auto body = file->reader.recordAt(frameOffset, index);
    if (body.size() > bufSize) return -1;
    std::memcpy(buffer, body.data(), body.size());
    return static_cast<long>(body.size());
  } catch (const std::exception&) {
    return -1;
  }
}

int getItemByName(const table_format* table, const void* record, long length,
                  const char* name, long long* out) {
  const Profile* profile = profileOf(table);
  if (profile == nullptr || record == nullptr || length <= 0 || out == nullptr) {
    return -1;
  }
  try {
    const std::span<const std::uint8_t> body(
        static_cast<const std::uint8_t*>(record),
        static_cast<std::size_t>(length));
    const RecordView view = RecordView::parse(body);
    const RecordSpec* spec = profile->find(view.intervalType);
    if (spec == nullptr) return -1;
    const auto value = getScalarByName(*profile, table->masks, view, name);
    if (!value) return -1;
    *out = *value;
    // Return the item's size in bytes, as the paper's API does.
    for (const FieldSpec& f : spec->fields) {
      if (profile->fieldName(f) == name) return f.elemLen;
    }
    return -1;
  } catch (const std::exception&) {
    return -1;
  }
}

int getItemDoubleByName(const table_format* table, const void* record,
                        long length, const char* name, double* out) {
  const Profile* profile = profileOf(table);
  if (profile == nullptr || record == nullptr || length <= 0 || out == nullptr) {
    return -1;
  }
  try {
    const std::span<const std::uint8_t> body(
        static_cast<const std::uint8_t*>(record),
        static_cast<std::size_t>(length));
    const RecordView view = RecordView::parse(body);
    const auto value = getF64ByName(*profile, table->masks, view, name);
    if (!value) return -1;
    *out = *value;
    return 8;
  } catch (const std::exception&) {
    return -1;
  }
}

int getVectorCharByName(const table_format* table, const void* record,
                        long length, const char* name, char* buf,
                        std::size_t bufSize) {
  const Profile* profile = profileOf(table);
  if (profile == nullptr || record == nullptr || length <= 0 || buf == nullptr) {
    return -1;
  }
  try {
    const std::span<const std::uint8_t> body(
        static_cast<const std::uint8_t*>(record),
        static_cast<std::size_t>(length));
    const RecordView view = RecordView::parse(body);
    const auto value = getStringByName(*profile, table->masks, view, name);
    if (!value || value->size() + 1 > bufSize) return -1;
    std::memcpy(buf, value->data(), value->size());
    buf[value->size()] = '\0';
    return static_cast<int>(value->size());
  } catch (const std::exception&) {
    return -1;
  }
}

int isVectorField(const table_format* table, std::uint32_t recordType,
                  const char* name) {
  const Profile* profile = profileOf(table);
  if (profile == nullptr) return -1;
  const RecordSpec* spec = profile->find(recordType);
  if (spec == nullptr) return -1;
  for (const FieldSpec& f : spec->fields) {
    if (profile->fieldName(f) == name) return f.isVector ? 1 : 0;
  }
  return -1;
}

int getMarkerString(UteFile* file, std::uint32_t markerId, char* buf,
                    std::size_t bufSize) {
  if (file == nullptr || buf == nullptr) return -1;
  const auto& markers = file->reader.markers();
  const auto it = markers.find(markerId);
  if (it == markers.end() || it->second.size() + 1 > bufSize) return -1;
  std::memcpy(buf, it->second.data(), it->second.size());
  buf[it->second.size()] = '\0';
  return static_cast<int>(it->second.size());
}

long long totalElapsedTime(UteFile* file) {
  if (file == nullptr) return -1;
  try {
    return static_cast<long long>(file->reader.totalElapsed());
  } catch (const std::exception&) {
    return -1;
  }
}

long long totalRecordCount(UteFile* file) {
  if (file == nullptr) return -1;
  try {
    return static_cast<long long>(file->reader.countRecordsViaDirectories());
  } catch (const std::exception&) {
    return -1;
  }
}

void closeInterval(UteFile* file) { delete file; }

void freeProfile(table_format* table) {
  if (table == nullptr || table->impl == nullptr) return;
  delete static_cast<ProfileHandle*>(table->impl);
  table->impl = nullptr;
}

}  // namespace ute::api
