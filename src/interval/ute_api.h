// The simple C-style API of Section 2.4 (Figure 5).
//
// This is a thin compatibility layer over IntervalFileReader / Profile so
// that the paper's example — computing the total bytes sent by summing
// the "msgSizeSent" field over every record — can be written essentially
// verbatim (examples/quickstart.cpp does exactly that). The C++ classes
// are the primary interface; this one exists because the paper specifies
// it, and the utilities built "using the API" (the statistics generator)
// are tested against both.
//
// Error convention follows the paper: readHeader returns NULL on failure,
// the readers return <= 0, getItemByName returns the item size in bytes
// (> 0) on success and -1 when the record has no such field.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ute::api {

/// Opaque handle for an open interval file (the paper used FILE*).
struct UteFile;

struct interval_header {
  std::uint32_t profile_version = 0;
  std::uint32_t header_version = 0;
  std::uint64_t masks = 0;  ///< field selection mask
  std::uint32_t thread_count = 0;
  std::uint64_t total_records = 0;
  std::uint64_t min_start = 0;
  std::uint64_t max_end = 0;
};

/// Sequential-access anchor. readFrameDir() initializes it from the first
/// frame directory; getInterval() then walks all subsequent frames and
/// directories transparently ("hides all subsequent frames and frame
/// directories from the user").
struct frame_directory {
  UteFile* owner = nullptr;
  std::uint32_t frames_in_first_dir = 0;
};

/// Loaded profile restricted to a field selection mask.
struct table_format {
  void* impl = nullptr;  ///< owns a profile handle; free with freeProfile()
  std::uint64_t masks = 0;
};

/// Opens an interval file and fills `header`. Returns NULL on error.
UteFile* readHeader(const char* path, interval_header* header);

/// Positions `dir` at the first frame directory; returns the number of
/// frames in it (> 0), or <= 0 on error.
int readFrameDir(UteFile* file, frame_directory* dir);

/// Loads a profile file, keeping only fields selected by `masks`.
/// Returns 0 on success, < 0 on error (including version mismatch when
/// the file was opened first — pass the header's masks as in Figure 5).
int readProfile(const char* path, table_format* table, std::uint64_t masks);

/// Copies the next record body into `buffer` and returns its length in
/// bytes, 0 at end of file, or < 0 on error (e.g. buffer too small).
long getInterval(UteFile* file, frame_directory* dir, void* buffer,
                 std::size_t bufSize);

/// Looks up the scalar field `name` in `record` (a body returned by
/// getInterval, of length `length`). On success stores the value in
/// `*out` and returns the item size in bytes; returns -1 otherwise.
int getItemByName(const table_format* table, const void* record, long length,
                  const char* name, long long* out);

/// Variant returning the value as double (for f64 fields).
int getItemDoubleByName(const table_format* table, const void* record,
                        long length, const char* name, double* out);

/// Retrieves a char-vector field as a NUL-terminated string; returns the
/// string length, or -1 if absent / bufSize too small.
int getVectorCharByName(const table_format* table, const void* record,
                        long length, const char* name, char* buf,
                        std::size_t bufSize);

/// True (1) if the named field of this record type is a vector field.
int isVectorField(const table_format* table, std::uint32_t recordType,
                  const char* name);

/// Retrieves the interval at a specific location (Section 2.4): record
/// `index` of the frame starting at file offset `frameOffset` (both from
/// the frame directory entries). Returns the record length, or < 0.
long getIntervalAt(UteFile* file, std::uint64_t frameOffset,
                   std::uint32_t index, void* buffer, std::size_t bufSize);

/// Retrieves the marker string for a marker identifier (Section 2.4).
/// Returns the string length, or -1 when unknown / buffer too small.
int getMarkerString(UteFile* file, std::uint32_t markerId, char* buf,
                    std::size_t bufSize);

/// Aggregates over frame directory structures (Section 2.4): total
/// elapsed time and total number of records in the trace file.
long long totalElapsedTime(UteFile* file);
long long totalRecordCount(UteFile* file);

void closeInterval(UteFile* file);
void freeProfile(table_format* table);

}  // namespace ute::api
