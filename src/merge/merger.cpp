#include "merge/merger.h"

#include <algorithm>
#include <map>
#include <set>
#include <memory>
#include <optional>

#include "interval/frame_prefetcher.h"
#include "interval/standard_profile.h"
#include "merge/tournament_tree.h"
#include "support/errors.h"
#include "support/thread_pool.h"

namespace ute {

namespace {

constexpr Tick kSentinelEnd = ~Tick{0};

/// One input interval file being merged: reader, clock map, and a
/// one-record lookahead already adjusted onto the global time base. The
/// record source is either the reader's synchronous stream (jobs == 1)
/// or a background prefetcher delivering the identical byte sequence.
struct InputStream {
  InputStream(const std::string& path, std::size_t prefetchDepth)
      : reader(std::make_unique<IntervalFileReader>(path)) {
    if (prefetchDepth > 0) {
      prefetched = std::make_unique<PrefetchRecordStream>(path, prefetchDepth);
    } else {
      stream.emplace(reader->records());
    }
  }

  std::unique_ptr<IntervalFileReader> reader;
  std::optional<IntervalFileReader::RecordStream> stream;
  std::unique_ptr<PrefetchRecordStream> prefetched;
  ClockMap map;
  /// Threads excluded by the category selection; their records are
  /// skipped during the merge.
  std::set<std::pair<NodeId, LogicalThreadId>> excludedThreads;
  std::vector<std::uint8_t> body;  ///< adjusted current record
  RecordView view;
  bool ok = false;

  Tick key() const { return ok ? view.end() : kSentinelEnd; }

  bool nextRaw(RecordView& out) {
    return prefetched ? prefetched->next(out) : stream->next(out);
  }

  /// Loads the next record, applying the timestamp adjustment and
  /// appending the merged-file origStart field.
  void advance(bool keepClockRecords) {
    RecordView raw;
    for (;;) {
      if (!nextRaw(raw)) {
        ok = false;
        return;
      }
      if (!keepClockRecords &&
          raw.eventType() == kClockSyncState) {
        continue;
      }
      if (!excludedThreads.empty() &&
          excludedThreads.count({raw.node, raw.thread}) != 0) {
        continue;
      }
      break;
    }
    body.assign(raw.body.begin(), raw.body.end());
    // Map both endpoints through the (monotone) clock map and derive the
    // duration from them: mapping start and duration independently can
    // round equal end times to values 1 ns apart, breaking the merged
    // file's end-time ordering. The difference equals the paper's R*D up
    // to rounding.
    const Tick newStart = map.toGlobal(raw.start);
    const Tick newEnd = map.toGlobal(raw.end());
    patchRecordTimes(body, newStart, newEnd - newStart);
    // Merged files carry the pre-adjustment local start time (attr-1
    // field origStart, last in every spec).
    for (int i = 0; i < 8; ++i) {
      body.push_back(static_cast<std::uint8_t>(raw.start >> (8 * i)));
    }
    view = RecordView::parse(body);
    ok = true;
  }
};

/// Extracts the (global, local) timestamp pairs from a per-node interval
/// file's ClockSync records (first pass of the merge).
std::vector<TimestampPair> collectClockPairs(const std::string& path) {
  IntervalFileReader reader(path);
  std::vector<TimestampPair> pairs;
  auto records = reader.records();
  RecordView view;
  while (records.next(view)) {
    if (view.eventType() != kClockSyncState) continue;
    if (view.body.size() < kCommonPrefixBytes + 8) {
      throw FormatError("short ClockSync record in " + path);
    }
    TimestampPair p;
    p.local = view.start;
    std::uint64_t g = 0;
    for (int i = 0; i < 8; ++i) {
      g |= static_cast<std::uint64_t>(view.body[kCommonPrefixBytes + i])
           << (8 * i);
    }
    p.global = g;
    pairs.push_back(p);
  }
  return pairs;
}

/// Open-state tracking for the frame-start pseudo-intervals.
struct OpenState {
  EventType type = kRunningState;
  std::int32_t cpu = 0;
  NodeId node = 0;
  LogicalThreadId thread = 0;
  std::vector<std::uint8_t> alwaysBytes;  ///< fields every piece carries
};

}  // namespace

IntervalMerger::IntervalMerger(std::vector<std::string> inputPaths,
                               const Profile& profile, MergeOptions options)
    : inputPaths_(std::move(inputPaths)), profile_(profile),
      options_(options) {
  if (inputPaths_.empty()) {
    throw UsageError("merge needs at least one input file");
  }
}

MergeResult IntervalMerger::mergeTo(const std::string& outPath,
                                    const RecordSink& sink) {
  MergeResult result;
  result.outputPath = outPath;

  // Byte length of the "always" fields (those on every piece) per event
  // type, from the continuation specs — what a pseudo-interval must copy.
  std::map<EventType, std::size_t> alwaysLen;
  for (const auto& [type, spec] : profile_.specs()) {
    if (intervalBebits(type) != Bebits::kContinuation) continue;
    std::size_t len = 0;
    for (std::size_t i = 6; i < spec.fields.size(); ++i) {
      if (spec.fields[i].attr == 0) len += spec.fields[i].elemLen;
    }
    alwaysLen[intervalEventType(type)] = len;
  }

  // Pass 1: clock pairs, thread tables, markers. Metadata merging stays
  // sequential (cheap, order-sensitive validation); the per-input clock
  // scans — a full pass over each file — fan out across the pool below.
  const std::size_t jobs =
      std::min(effectiveJobs(options_.jobs), inputPaths_.size());
  const std::size_t prefetchDepth =
      jobs > 1 ? std::max<std::size_t>(options_.prefetchDepth, 2) : 0;
  std::vector<std::unique_ptr<InputStream>> inputs;
  std::vector<ThreadEntry> mergedThreads;
  std::map<std::pair<NodeId, LogicalThreadId>, bool> seenThreads;
  std::map<std::uint32_t, std::string> mergedMarkers;
  for (const std::string& path : inputPaths_) {
    auto input = std::make_unique<InputStream>(path, prefetchDepth);
    input->reader->checkProfile(profile_);

    for (const ThreadEntry& t : input->reader->threads()) {
      if (seenThreads.emplace(std::make_pair(t.node, t.ltid), true).second ==
          false) {
        throw FormatError("thread (node " + std::to_string(t.node) +
                          ", ltid " + std::to_string(t.ltid) +
                          ") appears in more than one input file");
      }
      if ((options_.threadTypeMask & MergeOptions::threadTypeBit(t.type)) ==
          0) {
        input->excludedThreads.emplace(t.node, t.ltid);
        continue;
      }
      mergedThreads.push_back(t);
    }
    for (const auto& [id, name] : input->reader->markers()) {
      const auto [it, inserted] = mergedMarkers.emplace(id, name);
      if (!inserted && it->second != name) {
        throw FormatError("marker id " + std::to_string(id) +
                          " names two strings across inputs — run the "
                          "convert utility with a shared marker unifier");
      }
    }
    result.recordsIn += input->reader->header().totalRecords;
    inputs.push_back(std::move(input));
  }

  parallelFor(jobs, inputs.size(), [&](std::size_t i) {
    std::vector<TimestampPair> pairs = collectClockPairs(inputPaths_[i]);
    if (options_.filterOutliers && pairs.size() >= 3) {
      pairs = filterOutlierPairs(pairs, options_.outlierTolerance);
    }
    inputs[i]->map = pairs.size() >= 2 ? ClockMap(pairs, options_.syncMethod)
                                       : ClockMap::identity();
  });
  for (const auto& input : inputs) result.ratios.push_back(input->map.ratio());

  IntervalFileOptions writerOptions;
  writerOptions.profileVersion = profile_.versionId();
  writerOptions.fieldSelectionMask = kMergedFileMask;
  writerOptions.merged = true;
  writerOptions.targetFrameBytes = options_.targetFrameBytes;
  writerOptions.framesPerDirectory = options_.framesPerDirectory;
  IntervalFileWriter writer(outPath, writerOptions, mergedThreads);
  for (const auto& [id, name] : mergedMarkers) writer.addMarker(id, name);

  // Frame-start hook: zero-duration continuation pseudo-intervals for
  // every state open at the boundary (Section 3.3).
  std::map<std::pair<NodeId, LogicalThreadId>, std::vector<OpenState>>
      openStates;
  writer.setFrameStartHook([&](Tick frameStart, std::vector<ByteWriter>& out) {
    for (const auto& [key, stack] : openStates) {
      for (const OpenState& s : stack) {
        ByteWriter extra;
        extra.bytes(s.alwaysBytes);
        extra.u64(frameStart);  // origStart of a pseudo record: itself
        out.push_back(encodeRecordBody(
            makeIntervalType(s.type, Bebits::kContinuation), frameStart,
            /*dura=*/0, s.cpu, s.node, s.thread, extra.view()));
        ++result.pseudoRecords;
      }
    }
  });

  // Pass 2: the k-way merge itself.
  for (auto& input : inputs) input->advance(options_.keepClockRecords);

  const auto emit = [&](InputStream& input) {
    const RecordView& v = input.view;
    writer.addRecord(v.body);
    ++result.recordsOut;
    if (sink) sink(v);

    // Maintain the per-thread open-state stacks for the hook. ClockSync
    // records are complete-only and never tracked.
    const Bebits bebits = v.bebits();
    if (bebits == Bebits::kBegin) {
      OpenState s;
      s.type = v.eventType();
      s.cpu = v.cpu;
      s.node = v.node;
      s.thread = v.thread;
      const auto lenIt = alwaysLen.find(s.type);
      const std::size_t n = lenIt == alwaysLen.end() ? 0 : lenIt->second;
      if (v.body.size() >= kCommonPrefixBytes + n) {
        s.alwaysBytes.assign(v.body.begin() + kCommonPrefixBytes,
                             v.body.begin() + kCommonPrefixBytes + n);
      }
      openStates[{v.node, v.thread}].push_back(std::move(s));
    } else if (bebits == Bebits::kEnd) {
      auto& stack = openStates[{v.node, v.thread}];
      if (stack.empty() || stack.back().type != v.eventType()) {
        throw FormatError("end piece without a matching begin piece "
                          "(node " + std::to_string(v.node) + ", thread " +
                          std::to_string(v.thread) + ")");
      }
      stack.pop_back();
    }
    input.advance(options_.keepClockRecords);
  };

  if (options_.useNaiveMerge || inputs.size() == 1) {
    for (;;) {
      InputStream* best = nullptr;
      for (auto& input : inputs) {
        if (!input->ok) continue;
        if (best == nullptr || input->view.end() < best->view.end()) {
          best = input.get();
        }
      }
      if (best == nullptr) break;
      emit(*best);
    }
  } else {
    const std::pair<Tick, std::size_t> sentinel{kSentinelEnd, inputs.size()};
    const auto keyOf = [&](std::size_t i) {
      return inputs[i]->ok ? std::pair<Tick, std::size_t>{inputs[i]->key(), i}
                           : sentinel;
    };
    std::vector<std::pair<Tick, std::size_t>> keys;
    keys.reserve(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) keys.push_back(keyOf(i));
    LoserTree<std::pair<Tick, std::size_t>> tree(std::move(keys), sentinel);
    while (!tree.exhausted()) {
      const std::size_t i = tree.min();
      emit(*inputs[i]);
      tree.update(i, keyOf(i));
    }
  }

  writer.close();
  return result;
}

}  // namespace ute
