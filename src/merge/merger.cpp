#include "merge/merger.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "interval/frame_prefetcher.h"
#include "interval/standard_profile.h"
#include "stream/stream_merger.h"
#include "support/errors.h"
#include "support/thread_pool.h"

namespace ute {

namespace {

/// One input interval file: the reader plus its record source — either
/// the reader's synchronous stream (jobs == 1) or a background
/// prefetcher delivering the identical byte sequence.
struct InputFile {
  InputFile(const std::string& path, std::size_t prefetchDepth)
      : reader(std::make_unique<IntervalFileReader>(path)) {
    if (prefetchDepth > 0) {
      prefetched = std::make_unique<PrefetchRecordStream>(path, prefetchDepth);
    } else {
      stream.emplace(reader->records());
    }
  }

  std::unique_ptr<IntervalFileReader> reader;
  std::optional<IntervalFileReader::RecordStream> stream;
  std::unique_ptr<PrefetchRecordStream> prefetched;
  bool done = false;

  bool nextRaw(RecordView& out) {
    return prefetched ? prefetched->next(out) : stream->next(out);
  }
};

/// Extracts the (global, local) timestamp pairs from a per-node interval
/// file's ClockSync records (first pass of the merge).
std::vector<TimestampPair> collectClockPairs(const std::string& path) {
  IntervalFileReader reader(path);
  std::vector<TimestampPair> pairs;
  auto records = reader.records();
  RecordView view;
  while (records.next(view)) {
    if (view.eventType() != kClockSyncState) continue;
    if (view.body.size() < kCommonPrefixBytes + 8) {
      throw FormatError("short ClockSync record in " + path);
    }
    TimestampPair p;
    p.local = view.start;
    std::uint64_t g = 0;
    for (int i = 0; i < 8; ++i) {
      g |= static_cast<std::uint64_t>(view.body[kCommonPrefixBytes + i])
           << (8 * i);
    }
    p.global = g;
    pairs.push_back(p);
  }
  return pairs;
}

}  // namespace

IntervalMerger::IntervalMerger(std::vector<std::string> inputPaths,
                               const Profile& profile, MergeOptions options)
    : inputPaths_(std::move(inputPaths)), profile_(profile),
      options_(options) {
  if (inputPaths_.empty()) {
    throw UsageError("merge needs at least one input file");
  }
}

MergeResult IntervalMerger::mergeTo(const std::string& outPath,
                                    const RecordSink& sink) {
  MergeResult result;
  result.outputPath = outPath;

  // The batch merge is the streaming merge driven to completion: feed
  // the resumable StreamMerger (src/stream) file records in order with
  // the final clock fits, and the tournament selection, timestamp
  // adjustment, pseudo-record injection and output framing all happen in
  // one shared code path — which is what guarantees the streamed and
  // batch pipelines stay byte-identical (docs/STREAMING.md).
  StreamMergeOptions streamOptions;
  streamOptions.syncMethod = options_.syncMethod;
  streamOptions.threadTypeMask = options_.threadTypeMask;
  streamOptions.filterOutliers = options_.filterOutliers;
  streamOptions.outlierTolerance = options_.outlierTolerance;
  streamOptions.keepClockRecords = options_.keepClockRecords;
  streamOptions.targetFrameBytes = options_.targetFrameBytes;
  streamOptions.framesPerDirectory = options_.framesPerDirectory;
  streamOptions.useNaiveMerge = options_.useNaiveMerge;
  StreamMerger merger(profile_, streamOptions);

  // Pass 1: thread tables, markers, clock pairs. Metadata merging stays
  // sequential (cheap, order-sensitive validation); the per-input clock
  // scans — a full pass over each file — fan out across the pool below.
  const std::size_t jobs =
      std::min(effectiveJobs(options_.jobs), inputPaths_.size());
  const std::size_t prefetchDepth =
      jobs > 1 ? std::max<std::size_t>(options_.prefetchDepth, 2) : 0;
  std::vector<std::unique_ptr<InputFile>> inputs;
  for (const std::string& path : inputPaths_) {
    auto input = std::make_unique<InputFile>(path, prefetchDepth);
    input->reader->checkProfile(profile_);
    const std::size_t idx = merger.addInput();
    merger.setThreads(idx, input->reader->threads());
    for (const auto& [id, name] : input->reader->markers()) {
      merger.addMarker(id, name);
    }
    result.recordsIn += input->reader->header().totalRecords;
    inputs.push_back(std::move(input));
  }

  std::vector<std::vector<TimestampPair>> pairs(inputs.size());
  parallelFor(jobs, inputs.size(), [&](std::size_t i) {
    pairs[i] = collectClockPairs(inputPaths_[i]);
  });
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    merger.setClockPairs(i, pairs[i], /*final=*/true);
  }

  merger.openOutput(outPath, sink);

  // Pass 2: drive the state machine to completion. Each round refills
  // every input the merge has drained (one lookahead record apiece, so
  // memory stays O(inputs)) and advances; the merge stalls exactly when
  // some input's lookahead empties.
  RecordView raw;
  std::size_t open = inputs.size();
  while (open > 0) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      InputFile& in = *inputs[i];
      if (in.done) continue;
      while (merger.needsData(i)) {
        if (in.nextRaw(raw)) {
          merger.addRecord(i, raw.body);
        } else {
          merger.closeInput(i);
          in.done = true;
          --open;
          break;
        }
      }
    }
    merger.advance();
  }
  const StreamMergeResult streamed = merger.finish();

  result.recordsOut = streamed.recordsOut;
  result.pseudoRecords = streamed.pseudoRecords;
  result.ratios = streamed.ratios;
  return result;
}

}  // namespace ute
