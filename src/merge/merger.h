// The merge utility (Section 3.1): merges the per-node interval files of
// one run into a single interval file ordered by (globally adjusted) end
// time.
//
// Key functions, as in the paper:
//  - aligning the starting points of the individual files by their first
//    global clock records,
//  - adjusting local timestamps for clock drift using the global-to-local
//    ratio estimated from the global clock records (Section 2.2),
//  - a balanced (tournament) tree whose nodes point at the next interval
//    of each file, sorted by end time,
//  - zero-duration continuation pseudo-intervals at the beginning of each
//    frame representing the states still open there (Section 3.3), so a
//    viewer jumping into the middle of the file sees nested outer states.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clock/sync.h"
#include "interval/file_reader.h"
#include "interval/file_writer.h"
#include "interval/profile.h"

namespace ute {

struct MergeOptions {
  SyncMethod syncMethod = SyncMethod::kRmsSegments;
  /// Which thread categories to merge (Section 2.3.3: the thread table's
  /// three categories "provide a way to choose specific threads for
  /// merging"). Bit per ThreadType value; default: all.
  std::uint8_t threadTypeMask = 0x7;
  static std::uint8_t threadTypeBit(ThreadType t) {
    return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(t));
  }
  /// Drop global-clock pairs corrupted by daemon descheduling before
  /// estimating the ratio (the paper's Summary remark).
  bool filterOutliers = true;
  double outlierTolerance = 5e-5;
  /// Keep the per-node ClockSync pseudo-records in the merged output.
  bool keepClockRecords = false;
  std::size_t targetFrameBytes = 32 << 10;
  int framesPerDirectory = 64;
  /// Ablation switch: O(k) linear scan instead of the loser tree.
  bool useNaiveMerge = false;
  /// Parallelism: with jobs != 1, the per-input clock-map fits of pass 1
  /// run on a thread pool and pass 2 reads every input through a
  /// double-buffered background frame prefetcher, so the tournament tree
  /// never blocks on disk. Output is byte-identical to jobs == 1.
  /// 1 = sequential reference path; <= 0 = one per hardware thread.
  int jobs = 1;
  /// Frames buffered ahead per input when prefetching (min 2).
  std::size_t prefetchDepth = 2;
};

struct MergeResult {
  std::string outputPath;
  std::uint64_t recordsIn = 0;
  std::uint64_t recordsOut = 0;
  std::uint64_t pseudoRecords = 0;
  /// Per input file: the estimated global-to-local clock ratio.
  std::vector<double> ratios;
};

class IntervalMerger {
 public:
  /// `profile` must be the profile the inputs were written with.
  IntervalMerger(std::vector<std::string> inputPaths, const Profile& profile,
                 MergeOptions options = {});

  /// Observes every merged record (after adjustment) as it is written —
  /// the hook the slogmerge utility uses to build the SLOG file in the
  /// same pass.
  using RecordSink = std::function<void(const RecordView&)>;

  MergeResult mergeTo(const std::string& outPath,
                      const RecordSink& sink = nullptr);

 private:
  std::vector<std::string> inputPaths_;
  const Profile& profile_;
  MergeOptions options_;
};

}  // namespace ute
