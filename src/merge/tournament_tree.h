// Loser-tree (tournament) k-way selection.
//
// The merge utility holds one tree node per input interval file, each
// pointing at that file's next record, sorted by end time (Section 3.1).
// After the winning record is copied to the merged file, only the path
// from that leaf to the root is replayed — O(log k) comparisons per
// record instead of the naive O(k) scan (bench_ablation_merge measures
// the difference).
#pragma once

#include <cstddef>
#include <vector>

#include "support/errors.h"

namespace ute {

/// Key must be strict-weak-ordered by operator<. Exhausted streams are
/// represented by a caller-supplied sentinel key that compares greater
/// than every live key.
template <typename Key>
class LoserTree {
 public:
  LoserTree(std::vector<Key> keys, Key sentinel)
      : k_(keys.size()), sentinel_(std::move(sentinel)) {
    if (k_ == 0) throw UsageError("LoserTree needs at least one stream");
    m_ = 1;
    while (m_ < k_) m_ <<= 1;
    keys_ = std::move(keys);
    keys_.resize(m_, sentinel_);
    tree_.assign(m_, 0);
    winner_ = build(1);
  }

  /// Index of the stream holding the smallest key.
  std::size_t min() const { return winner_; }
  const Key& minKey() const { return keys_[winner_]; }

  /// True when every stream shows the sentinel.
  bool exhausted() const { return !(keys_[winner_] < sentinel_); }

  /// Replaces stream `i`'s key and replays its path to the root. Only
  /// the current winner may be updated: the stored losers along a leaf's
  /// path are exactly the winner's candidate set, so replaying any other
  /// leaf would drop the reigning winner from the tournament (it is
  /// stored at no interior node). Callers that need to change a
  /// non-winner's key must rebuild the tree.
  void update(std::size_t i, Key key) {
    if (i != winner_) {
      throw UsageError("LoserTree::update on a non-winner leaf");
    }
    keys_[i] = std::move(key);
    std::size_t cur = i;
    for (std::size_t node = (m_ + i) / 2; node >= 1; node /= 2) {
      if (keys_[tree_[node]] < keys_[cur]) std::swap(cur, tree_[node]);
    }
    winner_ = cur;
  }

  /// Marks stream `i` as exhausted.
  void close(std::size_t i) { update(i, sentinel_); }

 private:
  /// Returns the winner of the subtree rooted at `node`, recording losers.
  std::size_t build(std::size_t node) {
    if (node >= m_) return node - m_;
    const std::size_t left = build(2 * node);
    const std::size_t right = build(2 * node + 1);
    if (keys_[left] < keys_[right] || !(keys_[right] < keys_[left])) {
      tree_[node] = right;
      return left;
    }
    tree_[node] = left;
    return right;
  }

  std::size_t k_;
  std::size_t m_;
  Key sentinel_;
  std::vector<Key> keys_;
  std::vector<std::size_t> tree_;
  std::size_t winner_ = 0;
};

}  // namespace ute
