#include "mpisim/mpi_runtime.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/errors.h"

namespace ute {

namespace {
/// ceil(log2(n)) for n >= 1; tree depth of a collective over n tasks.
int treeDepth(int n) {
  return n <= 1 ? 1 : std::bit_width(static_cast<unsigned>(n - 1));
}
}  // namespace

MpiRuntime::MpiRuntime(Simulation& sim, MpiCostModel costs)
    : sim_(sim), costs_(costs), worldSize_(sim.taskCount()) {
  unexpected_.resize(static_cast<std::size_t>(worldSize_));
  posted_.resize(static_cast<std::size_t>(worldSize_));
  collSeq_.resize(static_cast<std::size_t>(worldSize_), 0);
}

Tick MpiRuntime::latency(TaskId a, TaskId b) const {
  return sim_.sameNode(a, b) ? costs_.shmLatencyNs : costs_.switchLatencyNs;
}

double MpiRuntime::nsPerByte(TaskId a, TaskId b) const {
  return sim_.sameNode(a, b) ? costs_.shmNsPerByte : costs_.switchNsPerByte;
}

std::int64_t MpiRuntime::requestKey(const SimThread& thread,
                                    std::int32_t slot) {
  return (static_cast<std::int64_t>(thread.id) << 20) | slot;
}

EventType MpiRuntime::eventTypeFor(OpKind kind) {
  switch (kind) {
    case OpKind::kMpiInit: return EventType::kMpiInit;
    case OpKind::kMpiFinalize: return EventType::kMpiFinalize;
    case OpKind::kMpiSend: return EventType::kMpiSend;
    case OpKind::kMpiRecv: return EventType::kMpiRecv;
    case OpKind::kMpiIsend: return EventType::kMpiIsend;
    case OpKind::kMpiIrecv: return EventType::kMpiIrecv;
    case OpKind::kMpiWait: return EventType::kMpiWait;
    case OpKind::kMpiBarrier: return EventType::kMpiBarrier;
    case OpKind::kMpiBcast: return EventType::kMpiBcast;
    case OpKind::kMpiReduce: return EventType::kMpiReduce;
    case OpKind::kMpiAllreduce: return EventType::kMpiAllreduce;
    case OpKind::kMpiAlltoall: return EventType::kMpiAlltoall;
    default:
      throw UsageError("not an MPI op: " + opKindName(kind));
  }
}

void MpiRuntime::cutEntry(SimThread& thread, const Op& op,
                          std::uint32_t seqno) {
  const EventType type = eventTypeFor(op.kind);
  switch (op.kind) {
    case OpKind::kMpiSend:
      sim_.cutEvent(thread, type, kFlagBegin,
                    payloadMpiSend(op.peer, op.tag, op.bytes, seqno,
                                   kCommWorld));
      break;
    case OpKind::kMpiIsend: {
      ByteWriter w;
      w.i32(op.peer);
      w.i32(op.tag);
      w.u32(op.bytes);
      w.u32(seqno);
      w.i32(kCommWorld);
      w.i32(op.reqSlot);
      sim_.cutEvent(thread, type, kFlagBegin, w);
      break;
    }
    case OpKind::kMpiRecv:
      sim_.cutEvent(thread, type, kFlagBegin,
                    payloadMpiRecvEntry(op.peer, op.tag, kCommWorld));
      break;
    case OpKind::kMpiIrecv: {
      ByteWriter w;
      w.i32(op.peer);
      w.i32(op.tag);
      w.i32(kCommWorld);
      w.i32(op.reqSlot);
      sim_.cutEvent(thread, type, kFlagBegin, w);
      break;
    }
    case OpKind::kMpiWait: {
      ByteWriter w;
      w.i32(op.reqSlot);
      sim_.cutEvent(thread, type, kFlagBegin, w);
      break;
    }
    case OpKind::kMpiBcast:
    case OpKind::kMpiReduce:
      sim_.cutEvent(thread, type, kFlagBegin,
                    payloadMpiCollective(op.bytes, op.root, kCommWorld));
      break;
    case OpKind::kMpiAllreduce:
    case OpKind::kMpiAlltoall:
      sim_.cutEvent(thread, type, kFlagBegin,
                    payloadMpiCollective(op.bytes, 0, kCommWorld));
      break;
    case OpKind::kMpiBarrier: {
      ByteWriter w;
      w.i32(kCommWorld);
      sim_.cutEvent(thread, type, kFlagBegin, w);
      break;
    }
    default:  // Init, Finalize: no arguments
      sim_.cutEvent(thread, type, kFlagBegin, ByteWriter{});
      break;
  }
}

void MpiRuntime::cutExit(SimThread& thread, const Op& op) {
  const EventType type = eventTypeFor(op.kind);
  CallContext& ctx = calls_[thread.id];
  if (ctx.haveRecvResult) {
    const RecvResult& r = ctx.recvResult;
    sim_.cutEvent(thread, type, kFlagEnd,
                  payloadMpiRecvExit(r.src, r.tag, r.bytes, r.seqno));
  } else {
    sim_.cutEvent(thread, type, kFlagEnd, ByteWriter{});
  }
  calls_.erase(thread.id);
}

MpiService::EnterResult MpiRuntime::onEnter(SimThread& thread, const Op& op) {
  if (thread.task < 0 || thread.task >= worldSize_) {
    throw UsageError("MPI call from thread without a task");
  }
  calls_[thread.id] = CallContext{};
  switch (op.kind) {
    case OpKind::kMpiSend:
      return enterSend(thread, op, /*immediate=*/false);
    case OpKind::kMpiIsend:
      return enterSend(thread, op, /*immediate=*/true);
    case OpKind::kMpiRecv:
      return enterRecv(thread, op);
    case OpKind::kMpiIrecv:
      return enterIrecv(thread, op);
    case OpKind::kMpiWait:
      return enterWait(thread, op);
    default:
      return enterCollective(thread, op);
  }
}

MpiService::EnterResult MpiRuntime::enterSend(SimThread& thread, const Op& op,
                                              bool immediate) {
  if (op.peer < 0 || op.peer >= worldSize_) {
    throw UsageError("send to invalid task " + std::to_string(op.peer));
  }
  const std::uint32_t seqno = nextSeqno_++;
  cutEntry(thread, op, seqno);
  ++stats_.sends;
  stats_.bytesSent += op.bytes;

  const Tick inject =
      costs_.sendOverheadNs +
      static_cast<Tick>(costs_.sendCopyNsPerByte *
                        static_cast<double>(op.bytes));
  Message msg;
  msg.src = thread.task;
  msg.dst = op.peer;
  msg.tag = op.tag;
  msg.bytes = op.bytes;
  msg.seqno = seqno;
  msg.arrival =
      sim_.engine().now() + inject + latency(thread.task, op.peer) +
      static_cast<Tick>(nsPerByte(thread.task, op.peer) *
                        static_cast<double>(op.bytes));
  sim_.engine().scheduleAt(msg.arrival, [this, msg] { deliver(msg); });

  if (immediate) {
    // Eager isend: the request is locally complete once injected.
    requests_[requestKey(thread, op.reqSlot)] = Request{};
    requests_[requestKey(thread, op.reqSlot)].complete = true;
  }
  return {inject, /*blocks=*/false};
}

MpiService::EnterResult MpiRuntime::enterRecv(SimThread& thread,
                                              const Op& op) {
  cutEntry(thread, op, 0);
  ++stats_.recvs;
  auto& queue = unexpected_[static_cast<std::size_t>(thread.task)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (!matches(*it, op.peer, op.tag)) continue;
    // Message already arrived: copy it out and return without blocking.
    ++stats_.unexpectedMatches;
    CallContext& ctx = calls_[thread.id];
    ctx.haveRecvResult = true;
    ctx.recvResult = {it->src, it->tag, it->bytes, it->seqno};
    const Tick copy = static_cast<Tick>(costs_.recvCopyNsPerByte *
                                        static_cast<double>(it->bytes));
    queue.erase(it);
    return {costs_.recvPostNs + copy, /*blocks=*/false};
  }
  PostedRecv posted;
  posted.threadId = thread.id;
  posted.src = op.peer;
  posted.tag = op.tag;
  posted_[static_cast<std::size_t>(thread.task)].push_back(posted);
  return {costs_.recvPostNs, /*blocks=*/true};
}

MpiService::EnterResult MpiRuntime::enterIrecv(SimThread& thread,
                                               const Op& op) {
  cutEntry(thread, op, 0);
  const std::int64_t key = requestKey(thread, op.reqSlot);
  Request req;
  req.isRecv = true;
  auto& queue = unexpected_[static_cast<std::size_t>(thread.task)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (!matches(*it, op.peer, op.tag)) continue;
    req.complete = true;
    req.result = {it->src, it->tag, it->bytes, it->seqno};
    queue.erase(it);
    break;
  }
  if (!req.complete) {
    PostedRecv posted;
    posted.reqKey = key;
    posted.src = op.peer;
    posted.tag = op.tag;
    posted_[static_cast<std::size_t>(thread.task)].push_back(posted);
  }
  requests_[key] = req;
  return {costs_.recvPostNs, /*blocks=*/false};
}

MpiService::EnterResult MpiRuntime::enterWait(SimThread& thread,
                                              const Op& op) {
  cutEntry(thread, op, 0);
  const std::int64_t key = requestKey(thread, op.reqSlot);
  const auto it = requests_.find(key);
  if (it == requests_.end()) {
    throw UsageError("MPI_Wait on unknown request slot " +
                     std::to_string(op.reqSlot));
  }
  Request& req = it->second;
  if (req.complete) {
    CallContext& ctx = calls_[thread.id];
    Tick copy = 0;
    if (req.isRecv) {
      ++stats_.recvs;
      ctx.haveRecvResult = true;
      ctx.recvResult = req.result;
      copy = static_cast<Tick>(costs_.recvCopyNsPerByte *
                               static_cast<double>(req.result.bytes));
    }
    requests_.erase(it);
    return {1 * kUs + copy, /*blocks=*/false};
  }
  req.waiter = thread.id;
  return {1 * kUs, /*blocks=*/true};
}

MpiService::EnterResult MpiRuntime::enterCollective(SimThread& thread,
                                                    const Op& op) {
  cutEntry(thread, op, 0);
  ++stats_.collectives;
  std::size_t& seq = collSeq_[static_cast<std::size_t>(thread.task)];
  const std::size_t index = seq++;
  while (collectiveBase_ + collectives_.size() <= index) {
    collectives_.emplace_back();
    collectives_.back().kind = op.kind;
  }
  CollectiveInstance& inst = collectives_[index - collectiveBase_];
  if (inst.arrived == 0) inst.kind = op.kind;
  if (inst.kind != op.kind) {
    throw UsageError("collective mismatch: task " + std::to_string(thread.task) +
                     " called " + opKindName(op.kind) + " where others called " +
                     opKindName(inst.kind));
  }
  inst.maxBytes = std::max(inst.maxBytes, op.bytes);
  inst.waiters.push_back(thread.id);
  if (++inst.arrived == worldSize_) {
    const Tick done = sim_.engine().now() + collectiveCost(inst.kind,
                                                           inst.maxBytes);
    for (int tid : inst.waiters) sim_.wake(tid, done);
    // Retire fully-drained instances from the front of the window.
    while (!collectives_.empty() &&
           collectives_.front().arrived == worldSize_) {
      collectives_.pop_front();
      ++collectiveBase_;
    }
  }
  return {costs_.collectiveSetupNs, /*blocks=*/true};
}

Tick MpiRuntime::collectiveCost(OpKind kind, std::uint32_t bytes) const {
  const int depth = treeDepth(worldSize_);
  const Tick lat = costs_.switchLatencyNs;
  const auto volume = static_cast<Tick>(costs_.switchNsPerByte *
                                        static_cast<double>(bytes));
  switch (kind) {
    case OpKind::kMpiInit:
      return costs_.initCostNs;
    case OpKind::kMpiFinalize:
      return costs_.finalizeCostNs;
    case OpKind::kMpiBarrier:
      return costs_.collectiveSetupNs + lat * static_cast<Tick>(depth);
    case OpKind::kMpiBcast:
    case OpKind::kMpiReduce:
      return costs_.collectiveSetupNs +
             static_cast<Tick>(depth) * (lat + volume);
    case OpKind::kMpiAllreduce:
      return costs_.collectiveSetupNs +
             2 * static_cast<Tick>(depth) * (lat + volume);
    case OpKind::kMpiAlltoall:
      return costs_.collectiveSetupNs +
             static_cast<Tick>(worldSize_ - 1) * (lat + volume);
    default:
      throw UsageError("no collective cost for " + opKindName(kind));
  }
}

void MpiRuntime::deliver(const Message& msg) {
  auto& postedList = posted_[static_cast<std::size_t>(msg.dst)];
  for (auto it = postedList.begin(); it != postedList.end(); ++it) {
    if (!matches(*it, msg)) continue;
    ++stats_.postedMatches;
    const PostedRecv posted = *it;
    postedList.erase(it);
    if (posted.threadId >= 0) {
      // A blocking receive is waiting on this message.
      CallContext& ctx = calls_[posted.threadId];
      ctx.haveRecvResult = true;
      ctx.recvResult = {msg.src, msg.tag, msg.bytes, msg.seqno};
      ctx.resumeCost = static_cast<Tick>(costs_.recvCopyNsPerByte *
                                         static_cast<double>(msg.bytes));
      sim_.wake(posted.threadId, msg.arrival);
    } else {
      // An irecv request: complete it and wake a blocked waiter if any.
      Request& req = requests_.at(posted.reqKey);
      req.complete = true;
      req.result = {msg.src, msg.tag, msg.bytes, msg.seqno};
      if (req.waiter >= 0) {
        CallContext& ctx = calls_[req.waiter];
        ++stats_.recvs;
        ctx.haveRecvResult = true;
        ctx.recvResult = req.result;
        ctx.resumeCost = static_cast<Tick>(
            costs_.recvCopyNsPerByte * static_cast<double>(msg.bytes));
        const int waiter = req.waiter;
        requests_.erase(posted.reqKey);
        sim_.wake(waiter, msg.arrival);
      }
    }
    return;
  }
  unexpected_[static_cast<std::size_t>(msg.dst)].push_back(msg);
}

Tick MpiRuntime::onResume(SimThread& thread, const Op&) {
  const auto it = calls_.find(thread.id);
  if (it == calls_.end()) return 0;
  const Tick cost = it->second.resumeCost;
  it->second.resumeCost = 0;
  return cost;
}

void MpiRuntime::onExit(SimThread& thread, const Op& op) {
  cutExit(thread, op);
}

}  // namespace ute
