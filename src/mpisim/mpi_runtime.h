// Simulated MPI runtime with PMPI-style tracing wrappers.
//
// Implements the MpiService hooks the cluster simulator calls for every
// MPI op: point-to-point matching (tag + source, MPI_ANY_SOURCE/ANY_TAG,
// unexpected-message queues, per-message sequence numbers so the analysis
// utilities can match sends with receives — Section 2.1), non-blocking
// requests with Wait, and tree-cost collectives. Every entry and exit
// cuts a trace record through the node's trace session, exactly where the
// real system's PMPI wrapper layer cut them.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/simulation.h"

namespace ute {

/// Interconnect and software-overhead cost model. Defaults are in the
/// ballpark of a 2000-era SP switch (tens of microseconds of latency,
/// ~100 MB/s) — the reproduction depends on shapes, not these constants.
struct MpiCostModel {
  Tick switchLatencyNs = 25 * kUs;
  double switchNsPerByte = 8.0;
  Tick shmLatencyNs = 3 * kUs;    ///< same-node (shared memory) path
  double shmNsPerByte = 1.0;
  Tick sendOverheadNs = 4 * kUs;  ///< CPU time to inject an eager send
  double sendCopyNsPerByte = 0.4;
  Tick recvPostNs = 2 * kUs;      ///< CPU time to post a receive
  double recvCopyNsPerByte = 0.4;
  Tick collectiveSetupNs = 6 * kUs;
  Tick initCostNs = 200 * kUs;
  Tick finalizeCostNs = 50 * kUs;
};

struct MpiRuntimeStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t collectives = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t unexpectedMatches = 0;  ///< recv found the message waiting
  std::uint64_t postedMatches = 0;      ///< message found the recv waiting
};

inline constexpr std::int32_t kAnySource = -1;
inline constexpr std::int32_t kAnyTag = -1;
inline constexpr std::int32_t kCommWorld = 0;

class MpiRuntime : public MpiService {
 public:
  explicit MpiRuntime(Simulation& sim, MpiCostModel costs = {});

  EnterResult onEnter(SimThread& thread, const Op& op) override;
  Tick onResume(SimThread& thread, const Op& op) override;
  void onExit(SimThread& thread, const Op& op) override;

  const MpiRuntimeStats& stats() const { return stats_; }

 private:
  struct Message {
    TaskId src = -1;
    TaskId dst = -1;
    std::int32_t tag = 0;
    std::uint32_t bytes = 0;
    std::uint32_t seqno = 0;
    Tick arrival = 0;
  };

  /// A receive posted and not yet matched. `threadId` is the blocked
  /// caller for a blocking recv; for an irecv it is -1 and `reqKey`
  /// identifies the request instead.
  struct PostedRecv {
    int threadId = -1;
    std::int64_t reqKey = -1;
    TaskId src = kAnySource;
    std::int32_t tag = kAnyTag;
  };

  /// Result of a completed receive, pending its exit record.
  struct RecvResult {
    TaskId src = -1;
    std::int32_t tag = 0;
    std::uint32_t bytes = 0;
    std::uint32_t seqno = 0;
  };

  struct Request {
    bool isRecv = false;
    bool complete = false;
    int waiter = -1;  ///< thread blocked in MPI_Wait on this request
    RecvResult result;
  };

  /// One in-flight collective operation instance on a communicator.
  struct CollectiveInstance {
    OpKind kind = OpKind::kMpiBarrier;
    int arrived = 0;
    std::uint32_t maxBytes = 0;
    std::vector<int> waiters;
  };

  /// Per-call context stashed between onEnter and onExit of one thread.
  struct CallContext {
    bool haveRecvResult = false;
    RecvResult recvResult;
    Tick resumeCost = 0;
  };

  Tick latency(TaskId a, TaskId b) const;
  double nsPerByte(TaskId a, TaskId b) const;
  Tick collectiveCost(OpKind kind, std::uint32_t bytes) const;
  static std::int64_t requestKey(const SimThread& thread, std::int32_t slot);

  bool matches(const PostedRecv& posted, const Message& msg) const {
    return (posted.src == kAnySource || posted.src == msg.src) &&
           (posted.tag == kAnyTag || posted.tag == msg.tag);
  }
  bool matches(const Message& msg, TaskId src, std::int32_t tag) const {
    return (src == kAnySource || msg.src == src) &&
           (tag == kAnyTag || msg.tag == tag);
  }

  EnterResult enterSend(SimThread& thread, const Op& op, bool immediate);
  EnterResult enterRecv(SimThread& thread, const Op& op);
  EnterResult enterIrecv(SimThread& thread, const Op& op);
  EnterResult enterWait(SimThread& thread, const Op& op);
  EnterResult enterCollective(SimThread& thread, const Op& op);
  void deliver(const Message& msg);
  void cutEntry(SimThread& thread, const Op& op, std::uint32_t seqno);
  void cutExit(SimThread& thread, const Op& op);
  static EventType eventTypeFor(OpKind kind);

  Simulation& sim_;
  MpiCostModel costs_;
  MpiRuntimeStats stats_;
  std::uint32_t nextSeqno_ = 1;
  int worldSize_;

  std::vector<std::deque<Message>> unexpected_;   ///< per destination task
  std::vector<std::vector<PostedRecv>> posted_;   ///< per destination task
  std::unordered_map<std::int64_t, Request> requests_;
  std::unordered_map<int, CallContext> calls_;    ///< per thread id

  /// Collective matching: tasks join instance `collSeq_[task]++` of their
  /// communicator; mismatched op kinds across tasks are detected.
  std::deque<CollectiveInstance> collectives_;
  std::size_t collectiveBase_ = 0;  ///< index of collectives_.front()
  std::vector<std::size_t> collSeq_;
};

}  // namespace ute
