#include "server/client.h"

#include "support/errors.h"

namespace ute {

TraceClient::TraceClient(const std::string& host, std::uint16_t port)
    : socket_(TcpSocket::connectTo(host, port)) {
  const ByteWriter hello = encodeHelloRequest();
  const HelloReply reply = decodeHelloReply(roundTrip(hello.view()));
  traceCount_ = reply.traceCount;
}

std::vector<std::uint8_t> TraceClient::roundTrip(
    std::span<const std::uint8_t> payload) {
  sendMessage(socket_, payload);
  auto response = recvMessage(socket_);
  if (!response) throw IoError("server closed the connection");
  return std::move(*response);
}

TraceInfo TraceClient::info(std::uint32_t traceId) {
  return decodeInfoReply(
      roundTrip(encodeTraceRequest(Opcode::kInfo, traceId).view()));
}

std::vector<SlogStateDef> TraceClient::states(std::uint32_t traceId) {
  return decodeStatesReply(
      roundTrip(encodeTraceRequest(Opcode::kStates, traceId).view()));
}

std::vector<ThreadEntry> TraceClient::threads(std::uint32_t traceId) {
  return decodeThreadsReply(
      roundTrip(encodeTraceRequest(Opcode::kThreads, traceId).view()));
}

SlogPreview TraceClient::preview(std::uint32_t traceId) {
  return decodePreviewReply(
      roundTrip(encodeTraceRequest(Opcode::kPreview, traceId).view()));
}

WindowResult TraceClient::window(std::uint32_t traceId,
                                 const WindowQuery& query) {
  return decodeWindowReply(
      roundTrip(encodeWindowRequest(traceId, query).view()));
}

FrameReply TraceClient::frameAt(std::uint32_t traceId, Tick t) {
  return decodeFrameAtReply(
      roundTrip(encodeFrameAtRequest(traceId, t).view()));
}

std::vector<SummaryEntry> TraceClient::summary(std::uint32_t traceId,
                                               Tick t0, Tick t1) {
  return decodeSummaryReply(
      roundTrip(encodeSummaryRequest(traceId, t0, t1).view()));
}

MetricsStore TraceClient::metrics(std::uint32_t traceId,
                                  std::uint32_t bins) {
  return decodeMetricsReply(
      roundTrip(encodeMetricsRequest(traceId, bins).view()));
}

ServiceStats TraceClient::stats() {
  return decodeStatsReply(roundTrip(encodeStatsRequest().view()));
}

void TraceClient::shutdownServer() {
  decodeOkReply(roundTrip(encodeShutdownRequest().view()));
}

}  // namespace ute
