#include "server/client.h"

#include "support/errors.h"

namespace ute {

TraceClient::TraceClient(const std::string& host, std::uint16_t port)
    : socket_(TcpSocket::connectTo(host, port)) {
  const ByteWriter hello = encodeHelloRequest();
  HelloReply reply;
  try {
    reply = decodeHelloReply(roundTrip(hello.view()));
  } catch (const IoError& e) {
    // The server may have dropped us between accept and the handshake
    // (e.g. it was restarting). One reconnect attempt, with the original
    // failure noted if it fails again.
    try {
      socket_ = TcpSocket::connectTo(host, port);
      reply = decodeHelloReply(roundTrip(hello.view()));
    } catch (const std::exception& retryErr) {
      throw IoError(std::string("handshake failed twice: ") + e.what() +
                    "; retry: " + retryErr.what());
    }
  } catch (const ServiceError& e) {
    if (e.code() != ErrorCode::kBadVersion) throw;
    // A pre-v2 server rejects the v2 hello outright; fall back to the
    // exact v1 handshake (row-encoded frames) before giving up.
    try {
      reply = decodeHelloReply(roundTrip(encodeLegacyHelloRequest().view()));
      reply.frameEncoding = FrameEncoding::kRow;
    } catch (const ServiceError& legacyErr) {
      // Deterministic mismatch — retrying cannot help; annotate instead.
      std::string message = legacyErr.what();
      const std::string prefix =
          std::string(errorCodeName(legacyErr.code())) + ": ";
      if (message.rfind(prefix, 0) == 0) {
        message = message.substr(prefix.size());
      }
      throw ServiceError(legacyErr.code(),
                         message + " (this client speaks versions " +
                             std::to_string(kMinProtocolVersion) + ".." +
                             std::to_string(kProtocolVersion) + ")");
    }
  }
  traceCount_ = reply.traceCount;
  frameEncoding_ = reply.frameEncoding;
}

std::vector<std::uint8_t> TraceClient::roundTrip(
    std::span<const std::uint8_t> payload) {
  sendMessage(socket_, payload);
  auto response = recvMessage(socket_);
  if (!response) throw IoError("server closed the connection");
  return std::move(*response);
}

TraceInfo TraceClient::info(std::uint32_t traceId) {
  return decodeInfoReply(
      roundTrip(encodeTraceRequest(Opcode::kInfo, traceId).view()));
}

std::vector<SlogStateDef> TraceClient::states(std::uint32_t traceId) {
  return decodeStatesReply(
      roundTrip(encodeTraceRequest(Opcode::kStates, traceId).view()));
}

std::vector<ThreadEntry> TraceClient::threads(std::uint32_t traceId) {
  return decodeThreadsReply(
      roundTrip(encodeTraceRequest(Opcode::kThreads, traceId).view()));
}

SlogPreview TraceClient::preview(std::uint32_t traceId) {
  return decodePreviewReply(
      roundTrip(encodeTraceRequest(Opcode::kPreview, traceId).view()));
}

WindowResult TraceClient::window(std::uint32_t traceId,
                                 const WindowQuery& query) {
  return decodeWindowReply(
      roundTrip(encodeWindowRequest(traceId, query).view()),
      frameEncoding_);
}

FrameReply TraceClient::frameAt(std::uint32_t traceId, Tick t) {
  return decodeFrameAtReply(
      roundTrip(encodeFrameAtRequest(traceId, t).view()), frameEncoding_);
}

std::vector<SummaryEntry> TraceClient::summary(std::uint32_t traceId,
                                               Tick t0, Tick t1) {
  return decodeSummaryReply(
      roundTrip(encodeSummaryRequest(traceId, t0, t1).view()));
}

MetricsStore TraceClient::metrics(std::uint32_t traceId,
                                  std::uint32_t bins) {
  return decodeMetricsReply(
      roundTrip(encodeMetricsRequest(traceId, bins).view()));
}

TailFramesReply TraceClient::tailFrames(std::uint32_t traceId,
                                        std::uint64_t cursor,
                                        std::uint32_t maxFrames) {
  return decodeTailFramesReply(
      roundTrip(encodeTailFramesRequest(traceId, cursor, maxFrames).view()),
      frameEncoding_);
}

TailMetricsReply TraceClient::tailMetrics(std::uint32_t traceId) {
  return decodeTailMetricsReply(
      roundTrip(encodeTailMetricsRequest(traceId).view()));
}

ServiceStats TraceClient::stats() {
  return decodeStatsReply(roundTrip(encodeStatsRequest().view()));
}

void TraceClient::shutdownServer() {
  decodeOkReply(roundTrip(encodeShutdownRequest().view()));
}

}  // namespace ute
