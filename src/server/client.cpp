#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/errors.h"

namespace ute {

int backoffDelayMs(const ClientOptions& options, int attempt) {
  const int shift = std::min(attempt, 20);  // avoid UB on huge attempt
  const long long delay =
      static_cast<long long>(options.backoffBaseMs) << shift;
  return static_cast<int>(
      std::min<long long>(delay, options.backoffMaxMs));
}

TraceClient::TraceClient(const std::string& host, std::uint16_t port)
    : TraceClient(host, port, ClientOptions{}) {}

TraceClient::TraceClient(const std::string& host, std::uint16_t port,
                         const ClientOptions& options)
    : host_(host), port_(port), options_(options) {
  // Bounded exponential-backoff retry around connect + hello. Transport
  // failures (refused, timed out, dropped mid-handshake — e.g. the
  // server was restarting) retry; ServiceError is a deterministic
  // protocol answer and propagates immediately.
  std::string lastError;
  const int attempts = std::max(0, options_.retries) + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoffDelayMs(options_, attempt - 1)));
    }
    try {
      connectAndHello();
      return;
    } catch (const IoError& e) {
      lastError = e.what();
    }
  }
  throw IoError("connect failed after " + std::to_string(attempts) +
                " attempt(s): " + lastError + netContext(host_, port_));
}

void TraceClient::connectAndHello() {
  socket_ = TcpSocket::connectTo(host_, port_, options_.connectTimeoutMs);
  if (options_.recvTimeoutMs > 0) {
    socket_.setRecvTimeout(options_.recvTimeoutMs);
  }
  HelloReply reply;
  try {
    reply = decodeHelloReply(
        roundTrip(encodeHelloRequest(options_.acceptEncodings).view()));
  } catch (const ServiceError& e) {
    if (e.code() != ErrorCode::kBadVersion) throw;
    // A pre-v2 server rejects the v2 hello outright; fall back to the
    // exact v1 handshake (row-encoded frames) before giving up.
    try {
      reply = decodeHelloReply(roundTrip(encodeLegacyHelloRequest().view()));
      reply.frameEncoding = FrameEncoding::kRow;
    } catch (const ServiceError& legacyErr) {
      // Deterministic mismatch — retrying cannot help; annotate instead.
      std::string message = legacyErr.what();
      const std::string prefix =
          std::string(errorCodeName(legacyErr.code())) + ": ";
      if (message.rfind(prefix, 0) == 0) {
        message = message.substr(prefix.size());
      }
      throw ServiceError(legacyErr.code(),
                         message + " (this client speaks versions " +
                             std::to_string(kMinProtocolVersion) + ".." +
                             std::to_string(kProtocolVersion) + ")");
    }
  }
  traceCount_ = reply.traceCount;
  frameEncoding_ = reply.frameEncoding;
}

std::vector<std::uint8_t> TraceClient::roundTrip(
    std::span<const std::uint8_t> payload) {
  sendMessage(socket_, payload);
  auto response = recvMessage(socket_);
  if (!response) throw IoError("server closed the connection");
  return std::move(*response);
}

TraceInfo TraceClient::info(std::uint32_t traceId) {
  return decodeInfoReply(
      roundTrip(encodeTraceRequest(Opcode::kInfo, traceId).view()));
}

std::vector<SlogStateDef> TraceClient::states(std::uint32_t traceId) {
  return decodeStatesReply(
      roundTrip(encodeTraceRequest(Opcode::kStates, traceId).view()));
}

std::vector<ThreadEntry> TraceClient::threads(std::uint32_t traceId) {
  return decodeThreadsReply(
      roundTrip(encodeTraceRequest(Opcode::kThreads, traceId).view()));
}

SlogPreview TraceClient::preview(std::uint32_t traceId) {
  return decodePreviewReply(
      roundTrip(encodeTraceRequest(Opcode::kPreview, traceId).view()));
}

WindowResult TraceClient::window(std::uint32_t traceId,
                                 const WindowQuery& query) {
  return decodeWindowReply(
      roundTrip(encodeWindowRequest(traceId, query).view()),
      frameEncoding_);
}

FrameReply TraceClient::frameAt(std::uint32_t traceId, Tick t) {
  return decodeFrameAtReply(
      roundTrip(encodeFrameAtRequest(traceId, t).view()), frameEncoding_);
}

std::vector<SummaryEntry> TraceClient::summary(std::uint32_t traceId,
                                               Tick t0, Tick t1) {
  return decodeSummaryReply(
      roundTrip(encodeSummaryRequest(traceId, t0, t1).view()));
}

MetricsStore TraceClient::metrics(std::uint32_t traceId,
                                  std::uint32_t bins) {
  return decodeMetricsReply(
      roundTrip(encodeMetricsRequest(traceId, bins).view()));
}

TailFramesReply TraceClient::tailFrames(std::uint32_t traceId,
                                        std::uint64_t cursor,
                                        std::uint32_t maxFrames) {
  return decodeTailFramesReply(
      roundTrip(encodeTailFramesRequest(traceId, cursor, maxFrames).view()),
      frameEncoding_);
}

TailMetricsReply TraceClient::tailMetrics(std::uint32_t traceId) {
  return decodeTailMetricsReply(
      roundTrip(encodeTailMetricsRequest(traceId).view()));
}

ServiceStats TraceClient::stats() {
  return decodeStatsReply(roundTrip(encodeStatsRequest().view()));
}

void TraceClient::shutdownServer() {
  decodeOkReply(roundTrip(encodeShutdownRequest().view()));
}

std::vector<FedTraceEntry> TraceClient::listTraces() {
  return decodeListTracesReply(roundTrip(encodeListTracesRequest().view()));
}

AggregateReply TraceClient::aggregateMetrics(const std::string& pattern,
                                             std::uint32_t bins) {
  return decodeAggregateReply(
      roundTrip(encodeAggregateMetricsRequest(pattern, bins).view()));
}

CompareReply TraceClient::compareTraces(std::uint32_t idA, std::uint32_t idB,
                                        std::uint32_t bins) {
  return decodeCompareReply(
      roundTrip(encodeCompareTracesRequest(idA, idB, bins).view()));
}

void TraceClient::addBackend(const std::string& name,
                             const std::string& hostPort) {
  decodeOkReply(roundTrip(encodeAddBackendRequest(name, hostPort).view()));
}

void TraceClient::removeBackend(const std::string& name) {
  decodeOkReply(roundTrip(encodeRemoveBackendRequest(name).view()));
}

}  // namespace ute
