// TraceClient: the client-side library for the uteserve protocol.
//
// Connects, performs the version handshake, and exposes one blocking
// method per opcode, returning the same structs the in-process
// TraceService API uses. Error frames surface as ServiceError (with the
// wire ErrorCode); transport failures as IoError. Not thread-safe: one
// TraceClient per thread (the protocol is strictly request/response per
// connection).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/tcp.h"

namespace ute {

class TraceClient {
 public:
  /// Connects and completes the hello handshake (throws ServiceError on
  /// a version mismatch, IoError if the server is unreachable).
  TraceClient(const std::string& host, std::uint16_t port);

  std::uint32_t traceCount() const { return traceCount_; }
  /// The frame encoding negotiated in hello (columnar against a v2
  /// server, row against a v1 server).
  FrameEncoding frameEncoding() const { return frameEncoding_; }

  TraceInfo info(std::uint32_t traceId);
  std::vector<SlogStateDef> states(std::uint32_t traceId);
  std::vector<ThreadEntry> threads(std::uint32_t traceId);
  SlogPreview preview(std::uint32_t traceId);
  WindowResult window(std::uint32_t traceId, const WindowQuery& query);
  FrameReply frameAt(std::uint32_t traceId, Tick t);
  std::vector<SummaryEntry> summary(std::uint32_t traceId, Tick t0, Tick t1);
  /// Time-resolved metrics store (bins = 0: server default). The server
  /// computes it lazily on first request and caches the encoded bytes.
  MetricsStore metrics(std::uint32_t traceId, std::uint32_t bins = 0);
  /// Sealed frames from `cursor` on (docs/STREAMING.md). Works on live
  /// and file traces; resuming from the returned nextCursor after a
  /// reconnect yields every sealed frame exactly once.
  TailFramesReply tailFrames(std::uint32_t traceId, std::uint64_t cursor,
                             std::uint32_t maxFrames = 0);
  /// The live (or finished) metrics blob plus watermark/sealed-bin info.
  TailMetricsReply tailMetrics(std::uint32_t traceId);
  ServiceStats stats();
  /// Asks the server to stop accepting and shut down.
  void shutdownServer();

  /// Sends a raw request payload and returns the raw response payload —
  /// the byte-identity hook the integration tests compare against a
  /// local processRequest() on the same SLOG file.
  std::vector<std::uint8_t> roundTrip(std::span<const std::uint8_t> payload);

 private:
  TcpSocket socket_;
  std::uint32_t traceCount_ = 0;
  FrameEncoding frameEncoding_ = FrameEncoding::kRow;
};

}  // namespace ute
