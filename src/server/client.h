// TraceClient: the client-side library for the uteserve protocol.
//
// Connects, performs the version handshake, and exposes one blocking
// method per opcode, returning the same structs the in-process
// TraceService API uses. Error frames surface as ServiceError (with the
// wire ErrorCode); transport failures as IoError. Not thread-safe: one
// TraceClient per thread (the protocol is strictly request/response per
// connection).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/tcp.h"

namespace ute {

/// Connection policy shared by every consumer of the protocol client —
/// the CLI tools, the federation router's backend connections, and
/// tests. All timeouts are milliseconds; 0 disables the bound.
struct ClientOptions {
  /// Bound on the TCP connect itself (0 = kernel default, minutes).
  int connectTimeoutMs = 5000;
  /// Bound on any single response read (SO_RCVTIMEO; 0 = unbounded).
  /// Leave 0 for tail ops, which block server-side until data arrives.
  int recvTimeoutMs = 0;
  /// Extra connect+hello attempts after the first failure. Transport
  /// errors (IoError) retry; protocol errors (ServiceError) never do.
  int retries = 2;
  /// Exponential backoff between attempts: base << attempt, capped.
  int backoffBaseMs = 50;
  int backoffMaxMs = 1000;
  /// FrameEncoding bitmask advertised in hello. The federation router
  /// narrows this to exactly the client-side encoding so relayed reply
  /// bytes match a direct connection bit-for-bit.
  std::uint8_t acceptEncodings = kSupportedFrameEncodings;
};

/// Backoff delay before retry number `attempt` (0-based), bounded by
/// `backoffMaxMs`. Exposed so the router's proxy loop and the client
/// share one schedule.
int backoffDelayMs(const ClientOptions& options, int attempt);

class TraceClient {
 public:
  /// Connects and completes the hello handshake (throws ServiceError on
  /// a version mismatch, IoError if the server stays unreachable across
  /// the configured retries).
  TraceClient(const std::string& host, std::uint16_t port);
  TraceClient(const std::string& host, std::uint16_t port,
              const ClientOptions& options);

  std::uint32_t traceCount() const { return traceCount_; }
  /// The frame encoding negotiated in hello (columnar against a v2
  /// server, row against a v1 server).
  FrameEncoding frameEncoding() const { return frameEncoding_; }

  TraceInfo info(std::uint32_t traceId);
  std::vector<SlogStateDef> states(std::uint32_t traceId);
  std::vector<ThreadEntry> threads(std::uint32_t traceId);
  SlogPreview preview(std::uint32_t traceId);
  WindowResult window(std::uint32_t traceId, const WindowQuery& query);
  FrameReply frameAt(std::uint32_t traceId, Tick t);
  std::vector<SummaryEntry> summary(std::uint32_t traceId, Tick t0, Tick t1);
  /// Time-resolved metrics store (bins = 0: server default). The server
  /// computes it lazily on first request and caches the encoded bytes.
  MetricsStore metrics(std::uint32_t traceId, std::uint32_t bins = 0);
  /// Sealed frames from `cursor` on (docs/STREAMING.md). Works on live
  /// and file traces; resuming from the returned nextCursor after a
  /// reconnect yields every sealed frame exactly once.
  TailFramesReply tailFrames(std::uint32_t traceId, std::uint64_t cursor,
                             std::uint32_t maxFrames = 0);
  /// The live (or finished) metrics blob plus watermark/sealed-bin info.
  TailMetricsReply tailMetrics(std::uint32_t traceId);
  ServiceStats stats();
  /// Asks the server to stop accepting and shut down.
  void shutdownServer();

  // Federation ops — only a uterouter answers these; a plain backend
  // returns kBadRequest (surfaced here as ServiceError).
  std::vector<FedTraceEntry> listTraces();
  AggregateReply aggregateMetrics(const std::string& pattern,
                                  std::uint32_t bins = 0);
  CompareReply compareTraces(std::uint32_t idA, std::uint32_t idB,
                             std::uint32_t bins = 0);
  void addBackend(const std::string& name, const std::string& hostPort);
  void removeBackend(const std::string& name);

  /// Sends a raw request payload and returns the raw response payload —
  /// the byte-identity hook the integration tests compare against a
  /// local processRequest() on the same SLOG file.
  std::vector<std::uint8_t> roundTrip(std::span<const std::uint8_t> payload);

 private:
  /// One connect + hello. Throws IoError / ServiceError; on kBadVersion
  /// falls back to the exact v1 handshake before giving up.
  void connectAndHello();

  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  TcpSocket socket_;
  std::uint32_t traceCount_ = 0;
  FrameEncoding frameEncoding_ = FrameEncoding::kRow;
};

}  // namespace ute
