#include "server/frame_cache.h"

#include <algorithm>

#include "support/errors.h"

namespace ute {

namespace {

/// splitmix64: frame keys are (traceId << 32) | frameIdx, so neighboring
/// frames differ only in low bits; mixing spreads them across shards.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FrameCache::FrameCache(std::size_t byteBudget, std::size_t shards)
    : byteBudget_(byteBudget), shardCount_(std::max<std::size_t>(1, shards)) {
  shardBudget_ = std::max<std::size_t>(1, byteBudget_ / shardCount_);
  shards_ = std::make_unique<Shard[]>(shardCount_);
}

std::size_t FrameCache::frameBytes(const SlogFrameData& frame) {
  return sizeof(SlogFrameData) +
         frame.intervals.size() * sizeof(SlogInterval) +
         frame.arrows.size() * sizeof(SlogArrow);
}

FrameCache::Shard& FrameCache::shardFor(std::uint64_t key) {
  return shards_[mix(key) % shardCount_];
}

void FrameCache::evictOver(Shard& shard) {
  // The most recent entry survives even when it alone exceeds the shard
  // budget (evicting what was just inserted would make oversized frames
  // uncacheable and the cache would thrash on them).
  while (shard.bytes > shardBudget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.byKey.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

FrameCache::FramePtr FrameCache::lookup(std::uint64_t key) {
  Shard& shard = shardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.byKey.find(key);
  if (it == shard.byKey.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->frame;
}

FrameCache::FramePtr FrameCache::getOrLoad(
    std::uint64_t key, const std::function<FramePtr()>& loader) {
  Shard& shard = shardFor(key);
  {
    MutexLock lock(shard.mu);
    const auto it = shard.byKey.find(key);
    if (it != shard.byKey.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->frame;
    }
    ++shard.misses;
  }

  // Decode outside the lock; a concurrent loser of the same race reuses
  // the winner's entry below. The loader's handle is cached as-is.
  FramePtr frame = loader();
  const std::size_t bytes = frameBytes(*frame);

  MutexLock lock(shard.mu);
  const auto it = shard.byKey.find(key);
  if (it != shard.byKey.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->frame;
  }
  shard.lru.push_front(Entry{key, frame, bytes});
  shard.byKey.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  evictOver(shard);
  return frame;
}

FrameCache::Stats FrameCache::stats() const {
  Stats total;
  for (std::size_t s = 0; s < shardCount_; ++s) {
    const Shard& shard = shards_[s];
    MutexLock lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.bytes += shard.bytes;
    total.entries += shard.lru.size();
  }
  return total;
}

void FrameCache::clear() {
  for (std::size_t s = 0; s < shardCount_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.byKey.clear();
    shard.bytes = 0;
  }
}

}  // namespace ute
