// Sharded LRU cache of decoded SLOG frames.
//
// The trace-query service answers many overlapping window queries, and a
// hot time window maps to the same handful of frames every time; decoding
// a frame (seek + read + record parse) once and sharing the result across
// all clients is where the service's warm-path speedup comes from. The
// sharding / byte-budget / eviction machinery is the generic
// ShardedCache (src/support/sharded_cache.h) — the same implementation
// the federation router's hot-set reply tier uses; this class only adds
// the frame-specific budget accounting.
#pragma once

#include <cstdint>
#include <functional>

#include "slog/slog_format.h"
#include "support/sharded_cache.h"

namespace ute {

class FrameCache {
 public:
  using FramePtr = SlogFramePtr;
  using Stats = CacheStats;

  /// `byteBudget` is split evenly across `shards` (each shard evicts
  /// independently once its slice is full).
  FrameCache(std::size_t byteBudget, std::size_t shards)
      : cache_(byteBudget, shards) {}

  /// Returns the cached frame for `key`, or obtains it via `loader` on a
  /// miss. The loader returns the shared immutable handle directly (no
  /// copy into the cache) and runs outside the shard lock, so a slow disk
  /// read never blocks hits on other keys in the same shard; if two
  /// threads miss on the same key at once, both load and the first insert
  /// wins — every caller then holds the same single frame buffer.
  FramePtr getOrLoad(std::uint64_t key,
                     const std::function<FramePtr()>& loader) {
    return cache_.getOrLoad(key, [&loader] {
      ShardedCache<SlogFrameData>::Loaded loaded;
      loaded.value = loader();
      loaded.bytes = frameBytes(*loaded.value);
      return loaded;
    });
  }

  /// Hit-or-nullptr probe (counts toward hits/misses).
  FramePtr lookup(std::uint64_t key) { return cache_.lookup(key); }

  Stats stats() const { return cache_.stats(); }
  void clear() { cache_.clear(); }

  std::size_t byteBudget() const { return cache_.byteBudget(); }
  std::size_t shardCount() const { return cache_.shardCount(); }

  /// Budget accounting charge for one decoded frame.
  static std::size_t frameBytes(const SlogFrameData& frame) {
    return sizeof(SlogFrameData) +
           frame.intervals.size() * sizeof(SlogInterval) +
           frame.arrows.size() * sizeof(SlogArrow);
  }

 private:
  ShardedCache<SlogFrameData> cache_;
};

}  // namespace ute
