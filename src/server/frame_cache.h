// Sharded LRU cache of decoded SLOG frames.
//
// The trace-query service answers many overlapping window queries, and a
// hot time window maps to the same handful of frames every time; decoding
// a frame (seek + read + record parse) once and sharing the result across
// all clients is where the service's warm-path speedup comes from. The
// cache is sharded — each shard owns its own mutex, LRU list, byte
// budget and counters — so concurrent readers touching different frames
// do not serialize on one lock. Values are shared_ptr<const ...>: an
// entry can be evicted while clients still hold (and keep using) it.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "slog/slog_format.h"
#include "support/thread_annotations.h"

namespace ute {

class FrameCache {
 public:
  using FramePtr = SlogFramePtr;

  /// Aggregated over all shards. hits+misses counts lookups; evictions
  /// counts entries dropped to stay within the byte budget.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;
  };

  /// `byteBudget` is split evenly across `shards` (each shard evicts
  /// independently once its slice is full).
  FrameCache(std::size_t byteBudget, std::size_t shards);

  /// Returns the cached frame for `key`, or obtains it via `loader` on a
  /// miss. The loader returns the shared immutable handle directly (no
  /// copy into the cache) and runs outside the shard lock, so a slow disk
  /// read never blocks hits on other keys in the same shard; if two
  /// threads miss on the same key at once, both load and the first insert
  /// wins — every caller then holds the same single frame buffer.
  FramePtr getOrLoad(std::uint64_t key,
                     const std::function<FramePtr()>& loader);

  /// Hit-or-nullptr probe (counts toward hits/misses).
  FramePtr lookup(std::uint64_t key);

  Stats stats() const;
  void clear();

  std::size_t byteBudget() const { return byteBudget_; }
  std::size_t shardCount() const { return shardCount_; }

  /// Budget accounting charge for one decoded frame.
  static std::size_t frameBytes(const SlogFrameData& frame);

 private:
  struct Entry {
    std::uint64_t key = 0;
    FramePtr frame;
    std::size_t bytes = 0;
  };
  /// Front of `lru` is most recently used. Each shard is its own
  /// capability: two threads touching different shards never share a
  /// lock, and the analysis checks every field access against the
  /// owning shard's mutex.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru UTE_GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> byKey
        UTE_GUARDED_BY(mu);
    std::size_t bytes UTE_GUARDED_BY(mu) = 0;
    std::uint64_t hits UTE_GUARDED_BY(mu) = 0;
    std::uint64_t misses UTE_GUARDED_BY(mu) = 0;
    std::uint64_t evictions UTE_GUARDED_BY(mu) = 0;
  };

  Shard& shardFor(std::uint64_t key);
  void evictOver(Shard& shard) UTE_REQUIRES(shard.mu);

  std::size_t byteBudget_;
  std::size_t shardCount_;
  std::size_t shardBudget_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace ute
