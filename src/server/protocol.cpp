#include "server/protocol.h"

#include "support/errors.h"

namespace ute {

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kBadTrace: return "bad-trace";
    case ErrorCode::kBadWindow: return "bad-window";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

namespace {

void putOpcode(ByteWriter& w, Opcode op) {
  w.u8(static_cast<std::uint8_t>(op));
}

void putInterval(ByteWriter& w, const SlogInterval& r) {
  w.u32(r.stateId);
  w.u8(r.bebits);
  w.u8(r.pseudo ? 1 : 0);
  w.u64(r.start);
  w.u64(r.dura);
  w.i32(r.node);
  w.i32(r.cpu);
  w.i32(r.thread);
}

SlogInterval takeInterval(ByteReader& r) {
  SlogInterval rec;
  rec.stateId = r.u32();
  rec.bebits = r.u8();
  rec.pseudo = r.u8() != 0;
  rec.start = r.u64();
  rec.dura = r.u64();
  rec.node = r.i32();
  rec.cpu = r.i32();
  rec.thread = r.i32();
  return rec;
}

void putArrow(ByteWriter& w, const SlogArrow& a) {
  w.i32(a.srcNode);
  w.i32(a.srcThread);
  w.u64(a.sendTime);
  w.i32(a.dstNode);
  w.i32(a.dstThread);
  w.u64(a.recvTime);
  w.u32(a.bytes);
}

SlogArrow takeArrow(ByteReader& r) {
  SlogArrow a;
  a.srcNode = r.i32();
  a.srcThread = r.i32();
  a.sendTime = r.u64();
  a.dstNode = r.i32();
  a.dstThread = r.i32();
  a.recvTime = r.u64();
  a.bytes = r.u32();
  return a;
}

/// Span-based so callers serialize straight from a shared frame or a
/// WindowResult without assembling a temporary SlogFrameData. A row
/// connection gets the exact v1 layout; a columnar connection gets a
/// u32 blob length + the v2 columnar frame payload.
void putFrameData(ByteWriter& w, std::span<const SlogInterval> intervals,
                  std::span<const SlogArrow> arrows,
                  FrameEncoding enc = FrameEncoding::kRow) {
  if (enc == FrameEncoding::kColumnar) {
    std::vector<std::uint8_t> blob;
    encodeColumnarFrame(intervals, arrows, blob);
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.bytes(blob);
    return;
  }
  w.u32(static_cast<std::uint32_t>(intervals.size()));
  for (const SlogInterval& r : intervals) putInterval(w, r);
  w.u32(static_cast<std::uint32_t>(arrows.size()));
  for (const SlogArrow& a : arrows) putArrow(w, a);
}

SlogFrameData takeFrameData(ByteReader& r,
                            FrameEncoding enc = FrameEncoding::kRow) {
  SlogFrameData data;
  if (enc == FrameEncoding::kColumnar) {
    const std::uint32_t blobLen = r.u32();
    decodeColumnarFrame(r.bytes(blobLen), data, " (wire frame)");
    return data;
  }
  const std::uint32_t nIntervals = r.u32();
  data.intervals.reserve(nIntervals);
  for (std::uint32_t i = 0; i < nIntervals; ++i) {
    data.intervals.push_back(takeInterval(r));
  }
  const std::uint32_t nArrows = r.u32();
  data.arrows.reserve(nArrows);
  for (std::uint32_t i = 0; i < nArrows; ++i) {
    data.arrows.push_back(takeArrow(r));
  }
  return data;
}

/// Checks the leading status byte; on error consumes the error body and
/// throws. Returns a reader positioned at the success body.
ByteReader openReply(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const auto status = static_cast<ErrorCode>(r.u8());
  if (status != ErrorCode::kOk) {
    throw ServiceError(status, ByteReader(payload.subspan(1)).lstring());
  }
  return r;
}

ByteWriter okHeader() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ErrorCode::kOk));
  return w;
}

}  // namespace

// --- request encoding -------------------------------------------------------

ByteWriter encodeHelloRequest(std::uint8_t accept) {
  ByteWriter w;
  putOpcode(w, Opcode::kHello);
  w.u32(kQueryMagic);
  w.u16(kProtocolVersion);
  w.u8(accept);
  return w;
}

ByteWriter encodeLegacyHelloRequest() {
  ByteWriter w;
  putOpcode(w, Opcode::kHello);
  w.u32(kQueryMagic);
  w.u16(kMinProtocolVersion);
  return w;
}

ByteWriter encodeTraceRequest(Opcode op, std::uint32_t traceId) {
  ByteWriter w;
  putOpcode(w, op);
  w.u32(traceId);
  return w;
}

ByteWriter encodeWindowRequest(std::uint32_t traceId,
                               const WindowQuery& query) {
  ByteWriter w;
  putOpcode(w, Opcode::kWindow);
  w.u32(traceId);
  w.u64(query.t0);
  w.u64(query.t1);
  w.u8(query.node ? 1 : 0);
  w.i32(query.node.value_or(0));
  w.u8(query.thread ? 1 : 0);
  w.i32(query.thread.value_or(0));
  w.u32(static_cast<std::uint32_t>(query.states.size()));
  for (std::uint32_t s : query.states) w.u32(s);
  return w;
}

ByteWriter encodeSummaryRequest(std::uint32_t traceId, Tick t0, Tick t1) {
  ByteWriter w;
  putOpcode(w, Opcode::kSummary);
  w.u32(traceId);
  w.u64(t0);
  w.u64(t1);
  return w;
}

ByteWriter encodeFrameAtRequest(std::uint32_t traceId, Tick t) {
  ByteWriter w;
  putOpcode(w, Opcode::kFrameAt);
  w.u32(traceId);
  w.u64(t);
  return w;
}

ByteWriter encodeStatsRequest() {
  ByteWriter w;
  putOpcode(w, Opcode::kStats);
  return w;
}

ByteWriter encodeShutdownRequest() {
  ByteWriter w;
  putOpcode(w, Opcode::kShutdown);
  return w;
}

ByteWriter encodeMetricsRequest(std::uint32_t traceId, std::uint32_t bins) {
  ByteWriter w;
  putOpcode(w, Opcode::kGetMetrics);
  w.u32(traceId);
  w.u32(bins);
  return w;
}

ByteWriter encodeTailFramesRequest(std::uint32_t traceId,
                                   std::uint64_t cursor,
                                   std::uint32_t maxFrames) {
  ByteWriter w;
  putOpcode(w, Opcode::kTailFrames);
  w.u32(traceId);
  w.u64(cursor);
  w.u32(maxFrames);
  return w;
}

ByteWriter encodeTailMetricsRequest(std::uint32_t traceId) {
  ByteWriter w;
  putOpcode(w, Opcode::kTailMetrics);
  w.u32(traceId);
  return w;
}

ByteWriter encodeListTracesRequest() {
  ByteWriter w;
  putOpcode(w, Opcode::kListTraces);
  return w;
}

ByteWriter encodeAggregateMetricsRequest(const std::string& pattern,
                                         std::uint32_t bins) {
  ByteWriter w;
  putOpcode(w, Opcode::kAggregateMetrics);
  w.lstring(pattern);
  w.u32(bins);
  return w;
}

ByteWriter encodeCompareTracesRequest(std::uint32_t idA, std::uint32_t idB,
                                      std::uint32_t bins) {
  ByteWriter w;
  putOpcode(w, Opcode::kCompareTraces);
  w.u32(idA);
  w.u32(idB);
  w.u32(bins);
  return w;
}

ByteWriter encodeAddBackendRequest(const std::string& name,
                                   const std::string& hostPort) {
  ByteWriter w;
  putOpcode(w, Opcode::kAddBackend);
  w.lstring(name);
  w.lstring(hostPort);
  return w;
}

ByteWriter encodeRemoveBackendRequest(const std::string& name) {
  ByteWriter w;
  putOpcode(w, Opcode::kRemoveBackend);
  w.lstring(name);
  return w;
}

// --- response decoding ------------------------------------------------------

HelloReply decodeHelloReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  HelloReply reply;
  reply.version = r.u16();
  reply.traceCount = r.u32();
  // A v1 server's reply ends here; a v2 reply appends the chosen
  // frame encoding.
  if (reply.version >= 2 && !r.atEnd()) {
    reply.frameEncoding = static_cast<FrameEncoding>(r.u8());
  }
  return reply;
}

TraceInfo decodeInfoReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  TraceInfo info;
  info.path = r.lstring();
  info.totalStart = r.u64();
  info.totalEnd = r.u64();
  info.frames = r.u32();
  info.states = r.u32();
  info.threads = r.u32();
  return info;
}

std::vector<SlogStateDef> decodeStatesReply(
    std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  const std::uint32_t count = r.u32();
  std::vector<SlogStateDef> states;
  states.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SlogStateDef s;
    s.id = r.u32();
    s.rgb = r.u32();
    s.name = r.lstring();
    states.push_back(std::move(s));
  }
  return states;
}

std::vector<ThreadEntry> decodeThreadsReply(
    std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  const std::uint32_t count = r.u32();
  std::vector<ThreadEntry> threads;
  threads.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ThreadEntry t;
    t.task = r.i32();
    t.pid = r.i32();
    t.systemTid = r.i32();
    t.node = r.i32();
    t.ltid = r.i32();
    t.type = static_cast<ThreadType>(r.u8());
    threads.push_back(t);
  }
  return threads;
}

SlogPreview decodePreviewReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  SlogPreview preview;
  preview.origin = r.u64();
  preview.binWidth = r.u64();
  preview.bins = r.u32();
  const std::uint32_t stateCount = r.u32();
  preview.perStateBinTime.reserve(stateCount);
  for (std::uint32_t s = 0; s < stateCount; ++s) {
    std::vector<double> row(preview.bins);
    for (std::uint32_t b = 0; b < preview.bins; ++b) row[b] = r.f64();
    preview.perStateBinTime.push_back(std::move(row));
  }
  return preview;
}

WindowResult decodeWindowReply(std::span<const std::uint8_t> payload,
                               FrameEncoding enc) {
  ByteReader r = openReply(payload);
  WindowResult result;
  result.t0 = r.u64();
  result.t1 = r.u64();
  SlogFrameData data = takeFrameData(r, enc);
  result.intervals = std::move(data.intervals);
  result.arrows = std::move(data.arrows);
  return result;
}

FrameReply decodeFrameAtReply(std::span<const std::uint8_t> payload,
                              FrameEncoding enc) {
  ByteReader r = openReply(payload);
  FrameReply reply;
  reply.frameIdx = r.u32();
  reply.entry.offset = r.u64();
  reply.entry.sizeBytes = r.u32();
  reply.entry.records = r.u32();
  reply.entry.timeStart = r.u64();
  reply.entry.timeEnd = r.u64();
  reply.data = takeFrameData(r, enc);
  return reply;
}

std::vector<SummaryEntry> decodeSummaryReply(
    std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  const std::uint32_t count = r.u32();
  std::vector<SummaryEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SummaryEntry e;
    e.stateId = r.u32();
    e.ns = r.f64();
    entries.push_back(e);
  }
  return entries;
}

ServiceStats decodeStatsReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  ServiceStats stats;
  stats.cache.hits = r.u64();
  stats.cache.misses = r.u64();
  stats.cache.evictions = r.u64();
  stats.cache.bytes = r.u64();
  stats.cache.entries = r.u64();
  stats.pool.accepted = r.u64();
  stats.pool.rejected = r.u64();
  stats.pool.executed = r.u64();
  return stats;
}

void decodeOkReply(std::span<const std::uint8_t> payload) {
  openReply(payload);
}

MetricsStore decodeMetricsReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  return MetricsStore::decode(payload.subspan(r.pos()));
}

TailFramesReply decodeTailFramesReply(std::span<const std::uint8_t> payload,
                                      FrameEncoding enc) {
  ByteReader r = openReply(payload);
  TailFramesReply reply;
  reply.nextCursor = r.u64();
  reply.finished = r.u8() != 0;
  reply.watermark = r.u64();
  const std::uint32_t count = r.u32();
  reply.frames.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TailFrame f;
    f.entry.offset = r.u64();
    f.entry.sizeBytes = r.u32();
    f.entry.records = r.u32();
    f.entry.timeStart = r.u64();
    f.entry.timeEnd = r.u64();
    f.data = takeFrameData(r, enc);
    reply.frames.push_back(std::move(f));
  }
  return reply;
}

TailMetricsReply decodeTailMetricsReply(
    std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  TailMetricsReply reply;
  reply.finished = r.u8() != 0;
  reply.watermark = r.u64();
  reply.sealedBins = r.u32();
  const std::span<const std::uint8_t> rest = payload.subspan(r.pos());
  reply.blob.assign(rest.begin(), rest.end());
  if (!reply.blob.empty()) reply.store = MetricsStore::decode(reply.blob);
  return reply;
}

namespace {

void putDistribution(ByteWriter& w, const Distribution& d) {
  w.f64(d.min);
  w.f64(d.max);
  w.f64(d.mean);
  w.f64(d.p50);
  w.f64(d.p99);
}

Distribution takeDistribution(ByteReader& r) {
  Distribution d;
  d.min = r.f64();
  d.max = r.f64();
  d.mean = r.f64();
  d.p50 = r.f64();
  d.p99 = r.f64();
  return d;
}

}  // namespace

ByteWriter encodeListTracesReply(const std::vector<FedTraceEntry>& entries) {
  ByteWriter w = okHeader();
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const FedTraceEntry& e : entries) {
    w.u32(e.globalId);
    w.lstring(e.backend);
    w.lstring(e.name);
    w.u8(e.live ? 1 : 0);
    w.u64(e.totalStart);
    w.u64(e.totalEnd);
    w.u32(e.frames);
    w.u64(e.generation);
  }
  return w;
}

std::vector<FedTraceEntry> decodeListTracesReply(
    std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  const std::uint32_t count = r.u32();
  std::vector<FedTraceEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FedTraceEntry e;
    e.globalId = r.u32();
    e.backend = r.lstring();
    e.name = r.lstring();
    e.live = r.u8() != 0;
    e.totalStart = r.u64();
    e.totalEnd = r.u64();
    e.frames = r.u32();
    e.generation = r.u64();
    entries.push_back(std::move(e));
  }
  return entries;
}

ByteWriter encodeAggregateReply(const AggregateReply& reply) {
  ByteWriter w = okHeader();
  w.u32(static_cast<std::uint32_t>(reply.runs.size()));
  for (const AggregateRun& run : reply.runs) {
    w.u32(run.globalId);
    w.lstring(run.backend);
    w.lstring(run.name);
    w.f64(run.commFraction);
    w.f64(run.loadImbalance);
    w.f64(run.lateSenderFraction);
  }
  putDistribution(w, reply.commFraction);
  putDistribution(w, reply.loadImbalance);
  putDistribution(w, reply.lateSenderFraction);
  return w;
}

AggregateReply decodeAggregateReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  AggregateReply reply;
  const std::uint32_t count = r.u32();
  reply.runs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AggregateRun run;
    run.globalId = r.u32();
    run.backend = r.lstring();
    run.name = r.lstring();
    run.commFraction = r.f64();
    run.loadImbalance = r.f64();
    run.lateSenderFraction = r.f64();
    reply.runs.push_back(std::move(run));
  }
  reply.commFraction = takeDistribution(r);
  reply.loadImbalance = takeDistribution(r);
  reply.lateSenderFraction = takeDistribution(r);
  return reply;
}

ByteWriter encodeCompareReply(const CompareReply& reply) {
  ByteWriter w = okHeader();
  w.u32(reply.bins);
  w.f64(reply.maxAbsCommDelta);
  w.f64(reply.maxAbsImbalanceDelta);
  for (double v : reply.commDelta) w.f64(v);
  for (double v : reply.imbalanceDelta) w.f64(v);
  return w;
}

CompareReply decodeCompareReply(std::span<const std::uint8_t> payload) {
  ByteReader r = openReply(payload);
  CompareReply reply;
  reply.bins = r.u32();
  reply.maxAbsCommDelta = r.f64();
  reply.maxAbsImbalanceDelta = r.f64();
  reply.commDelta.reserve(reply.bins);
  reply.imbalanceDelta.reserve(reply.bins);
  for (std::uint32_t i = 0; i < reply.bins; ++i) {
    reply.commDelta.push_back(r.f64());
  }
  for (std::uint32_t i = 0; i < reply.bins; ++i) {
    reply.imbalanceDelta.push_back(r.f64());
  }
  return reply;
}

// --- server dispatch --------------------------------------------------------

std::vector<std::uint8_t> encodeErrorReply(ErrorCode code,
                                           const std::string& message) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  w.lstring(message);
  return w.take();
}

namespace {

RequestOutcome dispatch(TraceService& service,
                        std::span<const std::uint8_t> payload,
                        ConnectionContext& ctx) {
  ByteReader r(payload);
  const auto op = static_cast<Opcode>(r.u8());
  RequestOutcome outcome;

  switch (op) {
    case Opcode::kHello: {
      const std::uint32_t magic = r.u32();
      const std::uint16_t version = r.u16();
      if (magic != kQueryMagic || version < kMinProtocolVersion ||
          version > kProtocolVersion) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadVersion,
            "server speaks protocol versions " +
                std::to_string(kMinProtocolVersion) + ".." +
                std::to_string(kProtocolVersion));
        return outcome;
      }
      if (version < 2) {
        // A v1 client: reply with the exact v1 bytes and keep this
        // connection's frames row-encoded.
        ctx.frameEncoding = FrameEncoding::kRow;
        ByteWriter w = okHeader();
        w.u16(version);
        w.u32(service.traceCount());
        outcome.response = w.take();
        return outcome;
      }
      // v2: the client advertises the encodings it accepts; the server
      // picks the best one it also supports (columnar when offered).
      const std::uint8_t accept =
          r.atEnd() ? std::uint8_t{0b01} : r.u8();
      const std::uint8_t usable = accept & kSupportedFrameEncodings;
      if (usable == 0) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadVersion,
            "no mutually supported frame encoding");
        return outcome;
      }
      ctx.frameEncoding = (usable &
                           (1u << static_cast<unsigned>(
                                FrameEncoding::kColumnar)))
                              ? FrameEncoding::kColumnar
                              : FrameEncoding::kRow;
      ByteWriter w = okHeader();
      w.u16(kProtocolVersion);
      w.u32(service.traceCount());
      w.u8(static_cast<std::uint8_t>(ctx.frameEncoding));
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kInfo: {
      const std::uint32_t traceId = r.u32();
      ByteWriter w = okHeader();
      if (service.isLive(traceId)) {
        const LiveFeed& feed = service.liveFeed(traceId);
        const auto [start, end] = feed.timeRange();
        w.lstring(service.traceName(traceId));
        w.u64(start);
        w.u64(end);
        w.u32(static_cast<std::uint32_t>(feed.frameCount()));
        w.u32(static_cast<std::uint32_t>(feed.states().size()));
        w.u32(static_cast<std::uint32_t>(feed.threads().size()));
      } else {
        const SlogReader& reader = service.trace(traceId);
        w.lstring(reader.path());
        w.u64(reader.totalStart());
        w.u64(reader.totalEnd());
        w.u32(static_cast<std::uint32_t>(reader.frameIndex().size()));
        w.u32(static_cast<std::uint32_t>(reader.states().size()));
        w.u32(static_cast<std::uint32_t>(reader.threads().size()));
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kStates: {
      const std::uint32_t traceId = r.u32();
      const std::vector<SlogStateDef> liveStates =
          service.isLive(traceId) ? service.liveFeed(traceId).states()
                                  : std::vector<SlogStateDef>{};
      const std::vector<SlogStateDef>& states =
          service.isLive(traceId) ? liveStates
                                  : service.trace(traceId).states();
      ByteWriter w = okHeader();
      w.u32(static_cast<std::uint32_t>(states.size()));
      for (const SlogStateDef& s : states) {
        w.u32(s.id);
        w.u32(s.rgb);
        w.lstring(s.name);
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kThreads: {
      const std::uint32_t traceId = r.u32();
      const std::vector<ThreadEntry> liveThreads =
          service.isLive(traceId) ? service.liveFeed(traceId).threads()
                                  : std::vector<ThreadEntry>{};
      const std::vector<ThreadEntry>& threads =
          service.isLive(traceId) ? liveThreads
                                  : service.trace(traceId).threads();
      ByteWriter w = okHeader();
      w.u32(static_cast<std::uint32_t>(threads.size()));
      for (const ThreadEntry& t : threads) {
        w.i32(t.task);
        w.i32(t.pid);
        w.i32(t.systemTid);
        w.i32(t.node);
        w.i32(t.ltid);
        w.u8(static_cast<std::uint8_t>(t.type));
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kPreview: {
      const SlogReader& reader = service.trace(r.u32());
      const SlogPreview& p = reader.preview();
      ByteWriter w = okHeader();
      w.u64(p.origin);
      w.u64(p.binWidth);
      w.u32(p.bins);
      w.u32(static_cast<std::uint32_t>(p.perStateBinTime.size()));
      for (const std::vector<double>& row : p.perStateBinTime) {
        for (double v : row) w.f64(v);
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kWindow: {
      const std::uint32_t traceId = r.u32();
      WindowQuery query;
      query.t0 = r.u64();
      query.t1 = r.u64();
      const bool hasNode = r.u8() != 0;
      const NodeId node = r.i32();
      if (hasNode) query.node = node;
      const bool hasThread = r.u8() != 0;
      const LogicalThreadId thread = r.i32();
      if (hasThread) query.thread = thread;
      const std::uint32_t nStates = r.u32();
      query.states.reserve(nStates);
      for (std::uint32_t i = 0; i < nStates; ++i) {
        query.states.push_back(r.u32());
      }
      const WindowResult result = service.window(traceId, query);
      ByteWriter w = okHeader();
      w.u64(result.t0);
      w.u64(result.t1);
      putFrameData(w, result.intervals, result.arrows, ctx.frameEncoding);
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kFrameAt: {
      const std::uint32_t traceId = r.u32();
      const Tick t = r.u64();
      const FrameAtResult result = service.frameAt(traceId, t);
      ByteWriter w = okHeader();
      w.u32(static_cast<std::uint32_t>(result.frameIdx));
      w.u64(result.entry.offset);
      w.u32(result.entry.sizeBytes);
      w.u32(result.entry.records);
      w.u64(result.entry.timeStart);
      w.u64(result.entry.timeEnd);
      putFrameData(w, result.frame->intervals, result.frame->arrows,
                   ctx.frameEncoding);
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kSummary: {
      const std::uint32_t traceId = r.u32();
      const Tick t0 = r.u64();
      const Tick t1 = r.u64();
      const std::vector<SummaryEntry> entries =
          service.summary(traceId, t0, t1);
      ByteWriter w = okHeader();
      w.u32(static_cast<std::uint32_t>(entries.size()));
      for (const SummaryEntry& e : entries) {
        w.u32(e.stateId);
        w.f64(e.ns);
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kStats: {
      const FrameCache::Stats cache = service.cache().stats();
      const WorkerPool::Stats pool = service.pool().stats();
      ByteWriter w = okHeader();
      w.u64(cache.hits);
      w.u64(cache.misses);
      w.u64(cache.evictions);
      w.u64(cache.bytes);
      w.u64(cache.entries);
      w.u64(pool.accepted);
      w.u64(pool.rejected);
      w.u64(pool.executed);
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kShutdown: {
      outcome.response = okHeader().take();
      outcome.shutdown = true;
      return outcome;
    }
    case Opcode::kGetMetrics: {
      const std::uint32_t traceId = r.u32();
      const std::uint32_t bins = r.u32();
      const TraceService::MetricsBlob blob = service.metrics(traceId, bins);
      if (1 + blob->size() > kMaxMessageBytes) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadRequest, "metrics reply exceeds the message "
                                    "cap; request fewer bins");
        return outcome;
      }
      ByteWriter w = okHeader();
      w.bytes(*blob);
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kTailFrames: {
      const std::uint32_t traceId = r.u32();
      const std::uint64_t cursor = r.u64();
      const std::uint32_t maxFrames = r.u32();
      const LiveFeed::TailFrames tail =
          service.tailFrames(traceId, cursor, maxFrames);
      ByteWriter w = okHeader();
      w.u64(tail.nextCursor);
      w.u8(tail.finished ? 1 : 0);
      w.u64(tail.watermark);
      w.u32(static_cast<std::uint32_t>(tail.frames.size()));
      for (const auto& [entry, data] : tail.frames) {
        w.u64(entry.offset);
        w.u32(entry.sizeBytes);
        w.u32(entry.records);
        w.u64(entry.timeStart);
        w.u64(entry.timeEnd);
        putFrameData(w, data->intervals, data->arrows, ctx.frameEncoding);
      }
      if (w.size() > kMaxMessageBytes) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadRequest,
            "tail reply exceeds the message cap; request fewer frames");
        return outcome;
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kTailMetrics: {
      const std::uint32_t traceId = r.u32();
      const LiveFeed::TailMetrics tail = service.tailMetrics(traceId);
      ByteWriter w = okHeader();
      w.u8(tail.finished ? 1 : 0);
      w.u64(tail.watermark);
      w.u32(tail.sealedBins);
      w.bytes(tail.blob);
      if (w.size() > kMaxMessageBytes) {
        outcome.response = encodeErrorReply(
            ErrorCode::kBadRequest, "metrics reply exceeds the message cap");
        return outcome;
      }
      outcome.response = w.take();
      return outcome;
    }
    case Opcode::kListTraces:
    case Opcode::kAggregateMetrics:
    case Opcode::kCompareTraces:
    case Opcode::kAddBackend:
    case Opcode::kRemoveBackend: {
      // Federation ops are answered by uterouter; a plain backend
      // declines them explicitly so a misdirected client gets a clear
      // answer instead of "unknown opcode".
      outcome.response = encodeErrorReply(
          ErrorCode::kBadRequest,
          "federation op " + std::to_string(static_cast<unsigned>(op)) +
              " requires a uterouter, not a plain backend");
      return outcome;
    }
  }
  outcome.response = encodeErrorReply(
      ErrorCode::kBadRequest,
      "unknown opcode " +
          std::to_string(static_cast<unsigned>(payload.empty() ? 0
                                                               : payload[0])));
  return outcome;
}

/// UsageError carries bad-trace, bad-window and bad-parameter
/// conditions; the message prefix disambiguates for the wire code.
ErrorCode usageCode(const std::string& what) {
  if (what.rfind("unknown trace id", 0) == 0) return ErrorCode::kBadTrace;
  if (what.rfind("metrics bins", 0) == 0) return ErrorCode::kBadRequest;
  if (what.rfind("live trace", 0) == 0) return ErrorCode::kBadRequest;
  return ErrorCode::kBadWindow;
}

}  // namespace

RequestOutcome processRequest(TraceService& service,
                              std::span<const std::uint8_t> payload,
                              ConnectionContext& ctx) {
  RequestOutcome outcome;
  if (payload.empty()) {
    outcome.response =
        encodeErrorReply(ErrorCode::kBadRequest, "empty request");
    return outcome;
  }
  try {
    return dispatch(service, payload, ctx);
  } catch (const UsageError& e) {
    outcome.response = encodeErrorReply(usageCode(e.what()), e.what());
  } catch (const CorruptFileError& e) {
    // The request was fine; the file on disk is not.
    outcome.response = encodeErrorReply(ErrorCode::kInternal, e.what());
  } catch (const FormatError& e) {
    // Truncated/garbled request bytes (ByteReader over-read).
    outcome.response = encodeErrorReply(ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    outcome.response = encodeErrorReply(ErrorCode::kInternal, e.what());
  }
  return outcome;
}

RequestOutcome processRequest(TraceService& service,
                              std::span<const std::uint8_t> payload) {
  ConnectionContext ctx;  // row frames, discarded after the call
  return processRequest(service, payload, ctx);
}

}  // namespace ute
