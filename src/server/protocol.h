// The uteserve wire protocol: versioned, length-prefixed binary frames.
//
// Every message on the wire is  u32 payloadLen | payload , little-endian
// like every other format in this project. A request payload starts with
// a u8 opcode; a response payload starts with a u8 status byte — 0 for
// success followed by the op-specific body, nonzero for an error frame
// (the status byte is the ErrorCode, followed by a human-readable
// lstring). The same encode/decode functions back the TCP client, the
// server dispatch loop, and the byte-identity assertions in the tests —
// there is exactly one serialization of every message.
//
// docs/SERVER.md is the normative description of this protocol; keep the
// two in sync (protocol_test.cpp pins the layouts).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "server/trace_service.h"
#include "slog/slog_codec.h"
#include "support/bytes.h"

namespace ute {

inline constexpr std::uint32_t kQueryMagic = 0x51455455;  // "UTEQ"
/// v2 hello negotiates the frame encoding: the client appends a u8
/// bitmask of FrameEncoding values it accepts, the server picks one and
/// appends its u8 choice to the hello reply. v1 clients (no mask) keep
/// getting row-encoded frames and byte-identical v1 replies.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::uint16_t kMinProtocolVersion = 1;
/// Bit i set = FrameEncoding(i) accepted. This build handles both.
inline constexpr std::uint8_t kSupportedFrameEncodings = 0b11;
/// Sanity cap on one message; anything longer is a protocol violation.
inline constexpr std::uint32_t kMaxMessageBytes = 64u << 20;

/// Per-connection negotiated state, established by the hello exchange
/// and applied to every later frame-carrying message on the connection.
struct ConnectionContext {
  FrameEncoding frameEncoding = FrameEncoding::kRow;
};

enum class Opcode : std::uint8_t {
  kHello = 1,
  kInfo = 2,
  kStates = 3,
  kThreads = 4,
  kPreview = 5,
  kWindow = 6,
  kFrameAt = 7,
  kSummary = 8,
  kStats = 9,
  kShutdown = 10,
  kGetMetrics = 11,
  /// Follow-the-cursor tailing of sealed SLOG frames (docs/STREAMING.md);
  /// works on live and file traces alike.
  kTailFrames = 12,
  /// The incrementally extended live metrics blob + watermark.
  kTailMetrics = 13,
  // Federation ops (docs/FEDERATION.md), answered by uterouter. A plain
  // backend answers them with kBadRequest; the single-trace ops above
  // keep their frozen layouts so a router is byte-transparent for them.
  /// Merged registry view: every trace on every registered backend.
  kListTraces = 14,
  /// Scatter kGetMetrics to backends whose traces match a name pattern,
  /// reduce the per-trace .utm blobs into cross-trace series.
  kAggregateMetrics = 15,
  /// Pairwise binned-metrics delta between two federated traces.
  kCompareTraces = 16,
  /// Admin: add/remove a backend in the router's registry at runtime.
  kAddBackend = 17,
  kRemoveBackend = 18,
};

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,   ///< unparseable payload or unknown opcode
  kBadVersion = 2,   ///< hello magic/version mismatch
  kBadTrace = 3,     ///< trace id out of range
  kBadWindow = 4,    ///< empty/out-of-run window, no frame at t
  kOverloaded = 5,   ///< request queue full — retry later
  kInternal = 6,
};

const char* errorCodeName(ErrorCode code);

/// An error frame decoded client-side becomes this exception.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(errorCodeName(code)) + ": " + message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct HelloReply {
  std::uint16_t version = 0;
  std::uint32_t traceCount = 0;
  /// The server's frame-encoding choice (v2 replies; v1 implies row).
  FrameEncoding frameEncoding = FrameEncoding::kRow;
};

struct TraceInfo {
  std::string path;
  Tick totalStart = 0;
  Tick totalEnd = 0;
  std::uint32_t frames = 0;
  std::uint32_t states = 0;
  std::uint32_t threads = 0;
};

struct ServiceStats {
  FrameCache::Stats cache;
  WorkerPool::Stats pool;
};

// --- federation wire types --------------------------------------------------
// Defined here (not in src/fed) because they are protocol surface: the
// router encodes them, any client decodes them, and protocol_test.cpp
// pins their layouts alongside the single-trace ops.

/// One row of the merged registry view (kListTraces).
struct FedTraceEntry {
  std::uint32_t globalId = 0;
  std::string backend;  ///< registry name of the owning backend
  std::string name;     ///< trace path/name as the backend reports it
  bool live = false;
  Tick totalStart = 0;
  Tick totalEnd = 0;
  std::uint32_t frames = 0;
  /// Bumped whenever the backend's view of this trace may have changed
  /// (reconnect, re-enumeration); versions the router's reply cache.
  std::uint64_t generation = 0;
};

/// Five-number summary of a per-run series (nearest-rank percentiles).
struct Distribution {
  double min = 0, max = 0, mean = 0, p50 = 0, p99 = 0;
};

/// Whole-run scalars for one trace inside an aggregate.
struct AggregateRun {
  std::uint32_t globalId = 0;
  std::string backend;
  std::string name;
  double commFraction = 0;       ///< Σ mpi / Σ (busy + mpi + io)
  double loadImbalance = 0;      ///< (max - mean) / max of per-task busy
  double lateSenderFraction = 0; ///< Σ late-sender / Σ (busy + mpi + io)
};

struct AggregateReply {
  std::vector<AggregateRun> runs;
  Distribution commFraction;
  Distribution loadImbalance;
  Distribution lateSenderFraction;
};

/// Per-bin deltas (B - A) after rebinning both traces onto a common
/// relative-time axis of `bins` bins.
struct CompareReply {
  std::uint32_t bins = 0;
  double maxAbsCommDelta = 0;
  double maxAbsImbalanceDelta = 0;
  std::vector<double> commDelta;
  std::vector<double> imbalanceDelta;
};

// --- request encoding (client side) ---------------------------------------

/// v2 hello advertising `accept`, a bitmask of FrameEncoding values.
ByteWriter encodeHelloRequest(
    std::uint8_t accept = kSupportedFrameEncodings);
/// The exact v1 hello bytes — what a pre-v2 client sends. Used as the
/// client's fallback against old servers and by the compat tests.
ByteWriter encodeLegacyHelloRequest();
ByteWriter encodeTraceRequest(Opcode op, std::uint32_t traceId);
ByteWriter encodeWindowRequest(std::uint32_t traceId,
                               const WindowQuery& query);
ByteWriter encodeSummaryRequest(std::uint32_t traceId, Tick t0, Tick t1);
ByteWriter encodeFrameAtRequest(std::uint32_t traceId, Tick t);
ByteWriter encodeStatsRequest();
ByteWriter encodeShutdownRequest();
/// bins = 0 asks for the server default (kDefaultMetricsBins).
ByteWriter encodeMetricsRequest(std::uint32_t traceId, std::uint32_t bins);
/// maxFrames = 0 asks for everything from `cursor` on.
ByteWriter encodeTailFramesRequest(std::uint32_t traceId,
                                   std::uint64_t cursor,
                                   std::uint32_t maxFrames);
ByteWriter encodeTailMetricsRequest(std::uint32_t traceId);
// Federation requests (router-only ops).
ByteWriter encodeListTracesRequest();
/// `pattern` is a substring match against "backend/name" (empty matches
/// everything); bins = 0 asks for the router default.
ByteWriter encodeAggregateMetricsRequest(const std::string& pattern,
                                         std::uint32_t bins);
ByteWriter encodeCompareTracesRequest(std::uint32_t idA, std::uint32_t idB,
                                      std::uint32_t bins);
ByteWriter encodeAddBackendRequest(const std::string& name,
                                   const std::string& hostPort);
ByteWriter encodeRemoveBackendRequest(const std::string& name);

// --- response decoding (client side) ---------------------------------------
// Each checks the status byte and throws ServiceError on an error frame.

/// Frame-carrying replies decode with the connection's negotiated
/// encoding; everything else is encoding-independent.
HelloReply decodeHelloReply(std::span<const std::uint8_t> payload);
TraceInfo decodeInfoReply(std::span<const std::uint8_t> payload);
std::vector<SlogStateDef> decodeStatesReply(
    std::span<const std::uint8_t> payload);
std::vector<ThreadEntry> decodeThreadsReply(
    std::span<const std::uint8_t> payload);
SlogPreview decodePreviewReply(std::span<const std::uint8_t> payload);
WindowResult decodeWindowReply(std::span<const std::uint8_t> payload,
                               FrameEncoding enc = FrameEncoding::kRow);
/// frameIdx + index entry + frame contents.
struct FrameReply {
  std::uint32_t frameIdx = 0;
  SlogFrameIndexEntry entry;
  SlogFrameData data;
};
FrameReply decodeFrameAtReply(std::span<const std::uint8_t> payload,
                              FrameEncoding enc = FrameEncoding::kRow);
std::vector<SummaryEntry> decodeSummaryReply(
    std::span<const std::uint8_t> payload);
ServiceStats decodeStatsReply(std::span<const std::uint8_t> payload);
void decodeOkReply(std::span<const std::uint8_t> payload);
/// The reply body is one encoded .utm metrics store (docs/ANALYSIS.md);
/// the same bytes utemetrics would write to disk for this trace.
MetricsStore decodeMetricsReply(std::span<const std::uint8_t> payload);

struct TailFrame {
  SlogFrameIndexEntry entry;
  SlogFrameData data;
};
struct TailFramesReply {
  std::uint64_t nextCursor = 0;
  bool finished = false;
  Tick watermark = 0;
  std::vector<TailFrame> frames;
};
TailFramesReply decodeTailFramesReply(std::span<const std::uint8_t> payload,
                                      FrameEncoding enc =
                                          FrameEncoding::kRow);

struct TailMetricsReply {
  bool finished = false;
  Tick watermark = 0;
  /// Bins strictly below the watermark — final, never restated.
  std::uint32_t sealedBins = 0;
  /// The raw encoded .utm bytes (still comparable byte-for-byte against
  /// a utemetrics file) plus the decoded store.
  std::vector<std::uint8_t> blob;
  MetricsStore store;
};
TailMetricsReply decodeTailMetricsReply(std::span<const std::uint8_t> payload);

// Federation replies. The encoders live beside the decoders because the
// router (not TraceService) produces these frames.
ByteWriter encodeListTracesReply(const std::vector<FedTraceEntry>& entries);
std::vector<FedTraceEntry> decodeListTracesReply(
    std::span<const std::uint8_t> payload);
ByteWriter encodeAggregateReply(const AggregateReply& reply);
AggregateReply decodeAggregateReply(std::span<const std::uint8_t> payload);
ByteWriter encodeCompareReply(const CompareReply& reply);
CompareReply decodeCompareReply(std::span<const std::uint8_t> payload);

// --- server dispatch --------------------------------------------------------

struct RequestOutcome {
  std::vector<std::uint8_t> response;
  bool shutdown = false;  ///< payload was a (successful) kShutdown
};

/// Executes one request payload against `service` and produces the
/// response payload. Never throws: every failure becomes an error frame.
/// A kHello request updates `ctx` with the negotiated frame encoding;
/// frame-carrying replies are encoded per `ctx`.
RequestOutcome processRequest(TraceService& service,
                              std::span<const std::uint8_t> payload,
                              ConnectionContext& ctx);
/// Context-free overload: frames are always row-encoded (what a v1
/// connection sees, and what in-process callers get by default).
RequestOutcome processRequest(TraceService& service,
                              std::span<const std::uint8_t> payload);

/// The canonical overload error frame (sent without touching a worker).
std::vector<std::uint8_t> encodeErrorReply(ErrorCode code,
                                           const std::string& message);

}  // namespace ute
