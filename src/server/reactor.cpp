#include "server/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "support/bytes.h"
#include "support/errors.h"

namespace ute {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64u << 10;      ///< recv() granularity
constexpr std::size_t kShrinkThreshold = 256u << 10;
constexpr int kMaxEpollEvents = 256;
constexpr int kMaxWriteIov = 16;  ///< outbox segments per sendmsg()

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int elapsedMs(Clock::time_point since, Clock::time_point now) {
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
          .count());
}

}  // namespace

/// One connection's whole state machine. Loop-thread confined.
struct Reactor::Conn {
  int fd = -1;
  ConnId id = 0;

  // -- reading header / reading body ----------------------------------------
  // Buffered, so one recv() can carry many pipelined frames. [rdPos,
  // rdEnd) is the unparsed window; midMessage marks a partial frame
  // whose slowloris clock (messageStart) is ticking.
  std::vector<std::uint8_t> rdbuf;
  std::size_t rdPos = 0;
  std::size_t rdEnd = 0;
  bool midMessage = false;

  // -- awaiting service -------------------------------------------------------
  // Parsed requests wait here; exactly one is dispatched at a time, so
  // per-connection handler state (negotiated encoding, session state)
  // needs no locking and responses are naturally in request order.
  std::deque<std::vector<std::uint8_t>> pending;
  bool inflight = false;
  std::uint64_t token = 0;

  // -- draining writes --------------------------------------------------------
  struct OutMsg {
    std::uint8_t prefix[4] = {};
    std::size_t prefixSent = 0;
    SharedReply payload;  ///< may be null (close without bytes)
    std::size_t payloadSent = 0;
    bool closeAfter = false;
  };
  std::deque<OutMsg> outbox;
  std::size_t outboxBytes = 0;

  std::uint32_t events = EPOLLIN;  ///< currently registered epoll mask
  bool readPaused = false;
  bool peerClosed = false;  ///< EOF seen; replies still drain
  bool closing = false;     ///< close once inflight + outbox drain
  bool zombie = false;      ///< fd closed, awaiting the last completion

  Clock::time_point lastActivity{};
  Clock::time_point messageStart{};
  std::list<ConnId>::iterator idleIt{};
  std::list<ConnId>::iterator partialIt{};
  bool inPartialList = false;
};

Reactor::Reactor(std::uint16_t port, Handler& handler, ReactorOptions options)
    : handler_(handler), options_(options), listener_(port) {
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) {
    throw IoError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  eventFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (eventFd_ < 0) {
    const int err = errno;
    ::close(epollFd_);
    throw IoError(std::string("eventfd: ") + std::strerror(err));
  }
  setNonBlocking(listener_.fd());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // id 0 = listener
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.u64 = ~std::uint64_t{0};  // ~0 = eventfd
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, eventFd_, &wev);
  thread_ = std::thread([this] { loop(); });
}

Reactor::~Reactor() {
  shutdown();
  ::close(eventFd_);
  ::close(epollFd_);
}

void Reactor::complete(Request req, SharedReply payload, bool closeAfter) {
  {
    MutexLock lock(mu_);
    if (loopExited_) return;
    completions_.push_back({req, std::move(payload), closeAfter});
  }
  // Compare against the id the loop published about itself, not
  // thread_.get_id(): thread_ is still being move-assigned in the
  // constructor while the freshly started loop can already dispatch
  // requests, so reading the member here would race with that write.
  if (std::this_thread::get_id() != loopThreadId_.load(std::memory_order_relaxed)) {
    wake();
  }
}

void Reactor::complete(Request req, std::vector<std::uint8_t> payload,
                       bool closeAfter) {
  complete(req,
           std::make_shared<const std::vector<std::uint8_t>>(
               std::move(payload)),
           closeAfter);
}

void Reactor::shutdown() {
  {
    MutexLock lock(mu_);
    if (!shutdownRequested_) shutdownRequested_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

Reactor::Stats Reactor::stats() const {
  Stats out;
  out.accepted = stats_.accepted.load(std::memory_order_relaxed);
  out.closed = stats_.closed.load(std::memory_order_relaxed);
  out.peakConnections = stats_.peakConnections.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.responses = stats_.responses.load(std::memory_order_relaxed);
  out.bytesIn = stats_.bytesIn.load(std::memory_order_relaxed);
  out.bytesOut = stats_.bytesOut.load(std::memory_order_relaxed);
  out.recvCalls = stats_.recvCalls.load(std::memory_order_relaxed);
  out.sendCalls = stats_.sendCalls.load(std::memory_order_relaxed);
  out.epollWaits = stats_.epollWaits.load(std::memory_order_relaxed);
  out.eventfdWakeups = stats_.eventfdWakeups.load(std::memory_order_relaxed);
  out.partialWrites = stats_.partialWrites.load(std::memory_order_relaxed);
  out.readPauses = stats_.readPauses.load(std::memory_order_relaxed);
  out.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  out.badFrames = stats_.badFrames.load(std::memory_order_relaxed);
  out.forcedCloses = stats_.forcedCloses.load(std::memory_order_relaxed);
  return out;
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(eventFd_, &one, sizeof one);
}

// --- the loop ---------------------------------------------------------------

void Reactor::loop() {
  loopThreadId_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  epoll_event events[kMaxEpollEvents];
  for (;;) {
    progress();
    bool wantShutdown;
    {
      MutexLock lock(mu_);
      wantShutdown = shutdownRequested_;
    }
    if (wantShutdown && !draining_) beginDrain();
    if (draining_ && drainFinished()) break;

    const int n =
        ::epoll_wait(epollFd_, events, kMaxEpollEvents, waitTimeoutMs());
    stats_.epollWaits.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll set itself is broken; nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        handleAccepts();
      } else if (tag == ~std::uint64_t{0}) {
        std::uint64_t drainCounter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(eventFd_, &drainCounter, sizeof drainCounter);
        stats_.eventfdWakeups.fetch_add(1, std::memory_order_relaxed);
      } else {
        handleEvent(tag, events[i].events);
      }
    }
    // Idle retry for the fd-exhaustion pause (waitTimeoutMs bounds the
    // wait at acceptRetryMs while paused); a closing connection resumes
    // sooner.
    if (n == 0 && acceptsPaused_ && !draining_) resumeAccepts();
    sweepTimeouts();
  }

  // Drain deadline passed (or orderly finish): force-close everything
  // still alive, then let late completions drop at the mutex.
  std::vector<Conn*> leftovers;
  leftovers.reserve(conns_.size());
  for (auto& [id, conn] : conns_) leftovers.push_back(conn.get());
  for (Conn* conn : leftovers) {
    if (!conn->zombie) {
      stats_.forcedCloses.fetch_add(1, std::memory_order_relaxed);
    }
    conn->inflight = false;  // the completion, if any, will be dropped
    conn->zombie = false;
    closeConn(*conn);
  }
  {
    MutexLock lock(mu_);
    loopExited_ = true;
    completions_.clear();
  }
}

int Reactor::waitTimeoutMs() const {
  if (draining_) return 20;
  // Paused accepts may have no closing connection to resume them (the
  // fd pressure can come from elsewhere in the process): retry on a
  // bounded cadence instead of sleeping forever.
  if (acceptsPaused_) return options_.acceptRetryMs;
  int bound = -1;
  if (options_.idleTimeoutMs > 0) bound = options_.idleTimeoutMs;
  if (options_.readTimeoutMs > 0 &&
      (bound < 0 || options_.readTimeoutMs < bound)) {
    bound = options_.readTimeoutMs;
  }
  if (bound < 0) return -1;  // eventfd/shutdown wakes us
  const int quarter = bound / 4;
  return quarter < 10 ? 10 : (quarter > 250 ? 250 : quarter);
}

void Reactor::handleAccepts() {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // Out of fds with a pending backlog: the level-triggered listener
      // would make every epoll_wait return instantly. Deregister it and
      // retry once a connection closes (or after a bounded backoff).
      if (errno == EMFILE || errno == ENFILE) pauseAccepts();
      return;  // otherwise EAGAIN or the listener closed
    }
    if (draining_ ||
        (options_.maxConnections != 0 &&
         conns_.size() >= options_.maxConnections)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.sndbufBytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbufBytes,
                   sizeof options_.sndbufBytes);
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = nextConnId_++;
    conn->lastActivity = Clock::now();
    idleOrder_.push_back(conn->id);
    conn->idleIt = std::prev(idleOrder_.end());
    epoll_event ev{};
    ev.events = conn->events;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      idleOrder_.erase(conn->idleIt);
      ::close(fd);
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
    const auto live = static_cast<std::uint64_t>(conns_.size());
    if (live > stats_.peakConnections.load(std::memory_order_relaxed)) {
      stats_.peakConnections.store(live, std::memory_order_relaxed);
    }
  }
}

void Reactor::pauseAccepts() {
  if (acceptsPaused_ || listener_.fd() < 0) return;
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
  acceptsPaused_ = true;
}

void Reactor::resumeAccepts() {
  if (!acceptsPaused_) return;
  acceptsPaused_ = false;
  if (draining_ || listener_.fd() < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // id 0 = listener
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
}

void Reactor::handleEvent(ConnId id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;  // closed earlier this batch
  Conn& conn = *it->second;
  if (conn.zombie) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 &&
      (events & (EPOLLIN | EPOLLOUT)) == 0) {
    closeConn(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flushWrites(conn)) return;  // connection died mid-write
  }
  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 && !conn.readPaused &&
      !conn.closing) {
    handleRead(conn);
  }
}

void Reactor::touchIdle(Conn& conn) {
  conn.lastActivity = Clock::now();
  idleOrder_.splice(idleOrder_.end(), idleOrder_, conn.idleIt);
}

void Reactor::handleRead(Conn& conn) {
  // Hoisted before the parseFrames calls below: each of them can close
  // and erase the connection, and the liveness probe must not read
  // conn.id through a dangling reference.
  const ConnId id = conn.id;
  for (;;) {
    // Compact and make room for at least one chunk.
    if (conn.rdPos > 0) {
      if (conn.rdPos == conn.rdEnd) {
        conn.rdPos = conn.rdEnd = 0;
        if (conn.rdbuf.size() > kShrinkThreshold) {
          conn.rdbuf.resize(kReadChunk);
          conn.rdbuf.shrink_to_fit();
        }
      } else if (conn.rdEnd + kReadChunk > conn.rdbuf.size()) {
        std::memmove(conn.rdbuf.data(), conn.rdbuf.data() + conn.rdPos,
                     conn.rdEnd - conn.rdPos);
        conn.rdEnd -= conn.rdPos;
        conn.rdPos = 0;
      }
    }
    if (conn.rdbuf.size() < conn.rdEnd + kReadChunk) {
      conn.rdbuf.resize(conn.rdEnd + kReadChunk);
    }
    const std::size_t room = conn.rdbuf.size() - conn.rdEnd;
    const ssize_t n =
        ::recv(conn.fd, conn.rdbuf.data() + conn.rdEnd, room, 0);
    stats_.recvCalls.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      closeConn(conn);
      return;
    }
    if (n == 0) {
      conn.peerClosed = true;
      parseFrames(conn);
      if (conns_.count(id) == 0) return;  // parse error closed it
      if (!conn.inflight && conn.pending.empty() && conn.outbox.empty()) {
        closeConn(conn);
      }
      return;
    }
    stats_.bytesIn.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
    conn.rdEnd += static_cast<std::size_t>(n);
    touchIdle(conn);
    parseFrames(conn);
    if (conns_.count(id) == 0) return;
    if (conn.readPaused || conn.closing) return;
    if (static_cast<std::size_t>(n) < room) return;  // kernel drained
  }
}

void Reactor::parseFrames(Conn& conn) {
  while (!conn.readPaused && !conn.closing) {
    const std::size_t avail = conn.rdEnd - conn.rdPos;
    if (avail == 0) break;
    if (avail < 4) {
      if (!conn.midMessage) {
        conn.midMessage = true;
        // The conn may already be listed for a write stall (flushWrites
        // EAGAIN); keep that earlier clock — a second entry would leave
        // a stale node behind when partialIt is overwritten.
        if (!conn.inPartialList) {
          conn.messageStart = Clock::now();
          partialOrder_.push_back(conn.id);
          conn.partialIt = std::prev(partialOrder_.end());
          conn.inPartialList = true;
        }
      }
      break;
    }
    ByteReader prefix(std::span<const std::uint8_t>(
        conn.rdbuf.data() + conn.rdPos, 4));
    const std::uint32_t length = prefix.u32();
    if (length > options_.maxMessageBytes) {
      stats_.badFrames.fetch_add(1, std::memory_order_relaxed);
      failConn(conn, ConnError::kOversizedFrame,
               "message length " + std::to_string(length) +
                   " exceeds protocol maximum");
      return;
    }
    const std::size_t total = 4 + static_cast<std::size_t>(length);
    if (avail < total) {
      if (!conn.midMessage) {
        conn.midMessage = true;
        // The conn may already be listed for a write stall (flushWrites
        // EAGAIN); keep that earlier clock — a second entry would leave
        // a stale node behind when partialIt is overwritten.
        if (!conn.inPartialList) {
          conn.messageStart = Clock::now();
          partialOrder_.push_back(conn.id);
          conn.partialIt = std::prev(partialOrder_.end());
          conn.inPartialList = true;
        }
      }
      // Grow toward the full frame, but only a few chunks past what has
      // actually arrived: a bare length prefix claiming maxMessageBytes
      // must not pin 64 MiB per connection on a handful of bytes.
      const std::size_t target =
          std::min(conn.rdPos + total, conn.rdEnd + 4 * kReadChunk);
      if (conn.rdbuf.size() < target) {
        conn.rdbuf.resize(target);
      }
      break;
    }
    if (conn.midMessage) {
      conn.midMessage = false;
      // A non-empty outbox means the entry doubles as the write-stall
      // clock; it is cleared by flushWrites when the peer drains.
      if (conn.inPartialList && conn.outbox.empty()) {
        partialOrder_.erase(conn.partialIt);
        conn.inPartialList = false;
      }
    }
    std::vector<std::uint8_t> payload(
        conn.rdbuf.begin() + static_cast<std::ptrdiff_t>(conn.rdPos + 4),
        conn.rdbuf.begin() + static_cast<std::ptrdiff_t>(conn.rdPos + total));
    conn.rdPos += total;
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    conn.pending.push_back(std::move(payload));
    dirty_.push_back(conn.id);
    updateReadPause(conn);
  }
}

// Dispatch + completion fixpoint: applying a completion can ready the
// next pending request, whose inline completion re-enters the queue —
// loop until both are empty.
void Reactor::progress() {
  for (;;) {
    std::vector<Completion> batch;
    {
      MutexLock lock(mu_);
      batch.swap(completions_);
    }
    if (batch.empty() && dirty_.empty()) return;
    for (Completion& completion : batch) {
      applyCompletion(std::move(completion));
    }
    std::vector<ConnId> ready;
    ready.swap(dirty_);
    for (const ConnId id : ready) {
      const auto it = conns_.find(id);
      if (it != conns_.end() && !it->second->zombie) serviceConn(*it->second);
    }
  }
}

void Reactor::serviceConn(Conn& conn) {
  if (conn.inflight || conn.closing || conn.pending.empty()) return;
  if (draining_) {
    conn.pending.clear();  // parked requests are dropped at shutdown
    if (conn.outbox.empty()) closeConn(conn);
    return;
  }
  std::vector<std::uint8_t> payload = std::move(conn.pending.front());
  conn.pending.pop_front();
  conn.inflight = true;
  ++conn.token;
  touchIdle(conn);
  handler_.onRequest(Request{this, conn.id, conn.token}, std::move(payload));
  // An inline complete() landed in completions_; progress() picks it up.
}

void Reactor::applyCompletion(Completion completion) {
  const auto it = conns_.find(completion.req.conn);
  if (it == conns_.end()) return;  // connection long gone
  Conn& conn = *it->second;
  if (!conn.inflight || conn.token != completion.req.token) return;
  conn.inflight = false;
  stats_.responses.fetch_add(1, std::memory_order_relaxed);
  if (conn.zombie) {
    finalizeConn(conn);
    return;
  }
  touchIdle(conn);
  if (completion.payload != nullptr) {
    Conn::OutMsg msg;
    ByteWriter prefix;
    prefix.u32(static_cast<std::uint32_t>(completion.payload->size()));
    std::memcpy(msg.prefix, prefix.view().data(), 4);
    msg.payload = std::move(completion.payload);
    msg.closeAfter = completion.closeAfter;
    conn.outboxBytes += 4 + msg.payload->size();
    conn.outbox.push_back(std::move(msg));
  } else if (completion.closeAfter) {
    conn.closing = true;
  }
  if (completion.closeAfter) conn.closing = true;
  // Hoisted above flushWrites: when it returns false the connection is
  // gone and conn.id must not be read afterwards.
  const ConnId id = conn.id;
  if (!flushWrites(conn)) return;
  updateReadPause(conn);
  // The unpause path re-enters parseFrames on the buffered backlog,
  // which can close (and erase) the connection — e.g. an oversized
  // length prefix left behind the pipeline guard. `conn` is dead then;
  // re-look-up before touching it (mirrors the guard in handleRead).
  const auto again = conns_.find(id);
  if (again == conns_.end() || again->second->zombie) return;
  if (!again->second->closing) {
    dirty_.push_back(id);  // next pipelined request
  }
}

/// Drains the outbox opportunistically. Returns false when the
/// connection was closed (error or closeAfter reached).
bool Reactor::flushWrites(Conn& conn) {
  while (!conn.outbox.empty()) {
    iovec iov[kMaxWriteIov];
    int iovCount = 0;
    for (const Conn::OutMsg& msg : conn.outbox) {
      if (iovCount >= kMaxWriteIov - 1) break;
      if (msg.prefixSent < 4) {
        iov[iovCount].iov_base =
            const_cast<std::uint8_t*>(msg.prefix) + msg.prefixSent;
        iov[iovCount].iov_len = 4 - msg.prefixSent;
        ++iovCount;
      }
      const std::size_t payloadSize =
          msg.payload != nullptr ? msg.payload->size() : 0;
      if (msg.payloadSent < payloadSize) {
        iov[iovCount].iov_base =
            const_cast<std::uint8_t*>(msg.payload->data()) + msg.payloadSent;
        iov[iovCount].iov_len = payloadSize - msg.payloadSent;
        ++iovCount;
      }
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovCount);
    const ssize_t n = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL);
    stats_.sendCalls.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if ((conn.events & EPOLLOUT) == 0) {
          stats_.partialWrites.fetch_add(1, std::memory_order_relaxed);
          conn.events |= EPOLLOUT;
          updateEpoll(conn);
        }
        // The write-stall clock: outbox pending counts as a partial
        // "message" the peer must drain within readTimeoutMs.
        if (!conn.inPartialList) {
          conn.messageStart = Clock::now();
          partialOrder_.push_back(conn.id);
          conn.partialIt = std::prev(partialOrder_.end());
          conn.inPartialList = true;
        }
        return true;
      }
      closeConn(conn);
      return false;
    }
    stats_.bytesOut.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0 && !conn.outbox.empty()) {
      Conn::OutMsg& msg = conn.outbox.front();
      if (msg.prefixSent < 4) {
        const std::size_t take = std::min<std::size_t>(4 - msg.prefixSent,
                                                       left);
        msg.prefixSent += take;
        left -= take;
      }
      const std::size_t payloadSize =
          msg.payload != nullptr ? msg.payload->size() : 0;
      if (left > 0 && msg.payloadSent < payloadSize) {
        const std::size_t take =
            std::min<std::size_t>(payloadSize - msg.payloadSent, left);
        msg.payloadSent += take;
        left -= take;
      }
      if (msg.prefixSent == 4 && msg.payloadSent == payloadSize) {
        conn.outboxBytes -= 4 + payloadSize;
        const bool closeAfter = msg.closeAfter;
        conn.outbox.pop_front();
        if (closeAfter) {
          closeConn(conn);
          return false;
        }
      }
    }
    touchIdle(conn);
    // Progress was made; clear the write-stall clock. A still-partial
    // *outgoing* message restarts it below on the next EAGAIN, and a
    // partial *incoming* frame re-enters via parseFrames.
    if (conn.inPartialList && !conn.midMessage) {
      partialOrder_.erase(conn.partialIt);
      conn.inPartialList = false;
    }
  }
  if ((conn.events & EPOLLOUT) != 0) {
    conn.events &= ~static_cast<std::uint32_t>(EPOLLOUT);
    updateEpoll(conn);
  }
  if (conn.outbox.empty() &&
      (conn.closing ||
       (conn.peerClosed && !conn.inflight && conn.pending.empty()))) {
    closeConn(conn);
    return false;
  }
  return true;
}

void Reactor::updateReadPause(Conn& conn) {
  const bool shouldPause = conn.pending.size() >= options_.maxPipeline ||
                           conn.outboxBytes >= options_.maxOutboxBytes;
  if (shouldPause == conn.readPaused) return;
  conn.readPaused = shouldPause;
  if (shouldPause) {
    stats_.readPauses.fetch_add(1, std::memory_order_relaxed);
    conn.events &= ~static_cast<std::uint32_t>(EPOLLIN);
    updateEpoll(conn);
  } else {
    conn.events |= EPOLLIN;
    updateEpoll(conn);
    // Frames read before the pause may be sitting unparsed in rdbuf;
    // level-triggered epoll only re-fires for *kernel* bytes, so parse
    // the user-space backlog now. (Recursion is bounded: parseFrames
    // only re-enters here in the pause direction, which doesn't recurse.)
    parseFrames(conn);
  }
}

void Reactor::updateEpoll(Conn& conn) {
  epoll_event ev{};
  ev.events = conn.events;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

/// Structured violation path: ask the handler for an error frame, queue
/// it (close-after-drain), or close silently when it declines.
void Reactor::failConn(Conn& conn, ConnError kind, const std::string& detail) {
  conn.closing = true;
  conn.pending.clear();
  std::vector<std::uint8_t> reply;
  if (kind != ConnError::kWriteStall) {
    reply = handler_.onConnError(conn.id, kind, detail);
  }
  if (reply.empty() || conn.inflight) {
    // No reply to carry (or a request is mid-service whose response
    // ordering we will not entangle with an error frame): close now if
    // idle, else once the in-flight request finishes.
    if (!conn.inflight && conn.outbox.empty()) closeConn(conn);
    return;
  }
  Conn::OutMsg msg;
  ByteWriter prefix;
  prefix.u32(static_cast<std::uint32_t>(reply.size()));
  std::memcpy(msg.prefix, prefix.view().data(), 4);
  msg.payload =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(reply));
  msg.closeAfter = true;
  conn.outboxBytes += 4 + msg.payload->size();
  conn.outbox.push_back(std::move(msg));
  flushWrites(conn);
}

void Reactor::closeConn(Conn& conn) {
  if (conn.fd >= 0) {
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    resumeAccepts();  // an fd just freed up for the backlog
    idleOrder_.erase(conn.idleIt);
    if (conn.inPartialList) {
      partialOrder_.erase(conn.partialIt);
      conn.inPartialList = false;
    }
  }
  if (conn.inflight) {
    // A worker still owns this request; defer the handler's onClosed
    // (and the state teardown it implies) until that completion lands.
    conn.zombie = true;
    return;
  }
  finalizeConn(conn);
}

void Reactor::finalizeConn(Conn& conn) {
  const ConnId id = conn.id;
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  conns_.erase(id);  // invalidates `conn`
  handler_.onClosed(id);
}

void Reactor::sweepTimeouts() {
  if (options_.idleTimeoutMs <= 0 && options_.readTimeoutMs <= 0) return;
  const auto now = Clock::now();
  if (options_.readTimeoutMs > 0) {
    while (!partialOrder_.empty()) {
      const auto it = conns_.find(partialOrder_.front());
      if (it == conns_.end()) {  // stale entry; cannot happen, but safe
        partialOrder_.pop_front();
        continue;
      }
      Conn& conn = *it->second;
      if (elapsedMs(conn.messageStart, now) < options_.readTimeoutMs) break;
      // Pop the entry first: failConn may leave the connection draining
      // an error reply, and a stale front entry would spin this sweep.
      partialOrder_.pop_front();
      conn.inPartialList = false;
      const ConnId id = conn.id;
      if (conn.midMessage) {
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
        failConn(conn, ConnError::kReadTimeout,
                 "read timed out: frame incomplete after " +
                     std::to_string(options_.readTimeoutMs) + "ms");
        // utecheck: allow(invalidate) — exclusive arm: failConn runs only when midMessage
      } else if (!conn.outbox.empty()) {
        // Write stall: the peer is not reading; no reply can help.
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
        failConn(conn, ConnError::kWriteStall, "peer stopped reading");
        const auto again = conns_.find(id);
        if (again != conns_.end() && !again->second->zombie) {
          closeConn(*again->second);
        }
      }
      // else: stale entry for a healthy connection — just dropped.
    }
  }
  if (options_.idleTimeoutMs > 0) {
    while (!idleOrder_.empty()) {
      const auto it = conns_.find(idleOrder_.front());
      if (it == conns_.end()) {
        idleOrder_.pop_front();
        continue;
      }
      Conn& conn = *it->second;
      if (elapsedMs(conn.lastActivity, now) < options_.idleTimeoutMs) break;
      if (conn.inflight || !conn.outbox.empty() || conn.midMessage) {
        // Being serviced / draining / mid-frame: not idle. Refresh so
        // the sweep can make progress past it.
        touchIdle(conn);
        continue;
      }
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      failConn(conn, ConnError::kIdleTimeout,
               "idle timeout: no request for " +
                   std::to_string(options_.idleTimeoutMs) + "ms");
    }
  }
}

void Reactor::beginDrain() {
  draining_ = true;
  drainDeadline_ =
      Clock::now() + std::chrono::milliseconds(options_.drainTimeoutMs);
  listener_.close();
  std::vector<ConnId> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const ConnId id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    if (conn.zombie) continue;
    conn.pending.clear();
    // closing makes flushWrites close the moment the outbox drains —
    // in particular right after the in-flight response is queued+sent.
    conn.closing = true;
    if (!conn.readPaused) {
      conn.readPaused = true;
      conn.events &= ~static_cast<std::uint32_t>(EPOLLIN);
      updateEpoll(conn);
    }
    if (!conn.inflight && conn.outbox.empty()) closeConn(conn);
  }
}

bool Reactor::drainFinished() {
  if (conns_.empty()) return true;
  return Clock::now() >= drainDeadline_;
}

}  // namespace ute
