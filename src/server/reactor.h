// Reactor: the non-blocking epoll event loop under every network-facing
// server (uteserve, uterouter, utestream --listen/--serve).
//
// One thread owns an epoll set, a non-blocking listener, and every
// connection's state machine:
//
//   reading header -> reading body -> awaiting service -> draining writes
//
// Reads are buffered: one recv() can deliver many pipelined requests,
// which are parsed into a bounded per-connection pending queue. Requests
// on one connection are dispatched to the Handler strictly in order, one
// at a time ("awaiting service"); the handler either answers inline or
// hands the CPU work to a worker pool and calls complete() later from
// any thread (an eventfd wakes the loop). Responses are immutable shared
// buffers — the same reply handle can sit in thousands of connections'
// outboxes at once without a copy — drained with sendmsg(prefix,
// payload) gathers and finished opportunistically; only a partial write
// registers EPOLLOUT.
//
// Backpressure and hardening (docs/SERVER.md "Reactor"):
//   - pipelining guard: at most maxPipeline parsed-but-unanswered
//     requests per connection; past that the connection's reads pause
//     (kernel buffers fill, the client blocks) until replies drain;
//   - outbox bound: reads also pause while outboxBytes exceeds
//     maxOutboxBytes, so a client that stops reading cannot make the
//     server buffer unboundedly;
//   - idle timeout: a connection with no request in flight and no bytes
//     moving for idleTimeoutMs gets a structured error reply (the
//     handler's choice) and a close — never a hung thread;
//   - read timeout: a *partial* frame must complete within readTimeoutMs
//     of its first byte (slowloris: trickling one byte per second does
//     not reset this clock), and a non-empty outbox must make progress
//     within the same bound or the peer is declared gone.
//
// Graceful shutdown: shutdown() stops accepting, drops parked
// (undispatched) requests, lets every in-flight request complete and its
// response drain, then closes — bounded by drainTimeoutMs, after which
// stragglers are force-closed. Completions arriving after the loop exits
// are dropped safely.
//
// Containment: this file and reactor.cpp are the only places in src/ and
// tools/ that may touch epoll/eventfd/O_NONBLOCK (utelint
// reactor-containment; the one exception is tcp.cpp's bounded client
// connect). src/fed and src/stream reach the loop only through this API.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/tcp.h"
#include "support/thread_annotations.h"

namespace ute {

struct ReactorOptions {
  /// Close a connection with no in-flight request and no traffic for
  /// this long (0 = never). Connections whose request is being serviced
  /// are exempt — tail ops legitimately block server-side for minutes.
  int idleTimeoutMs = 0;
  /// A partial frame (or a stalled non-empty outbox) must progress
  /// within this bound (0 = never). The slowloris clock: it starts at
  /// the first byte of a message and is NOT reset by later bytes.
  int readTimeoutMs = 0;
  /// Parsed-but-unanswered requests allowed per connection before its
  /// reads pause (the pipelining guard).
  std::size_t maxPipeline = 64;
  /// Pause reads while a connection's queued responses exceed this.
  std::size_t maxOutboxBytes = 64u << 20;
  /// Length-prefix sanity cap; a larger frame is a protocol violation
  /// answered via Handler::onConnError and a close.
  std::uint32_t maxMessageBytes = 64u << 20;
  /// Graceful-shutdown budget for draining in-flight responses.
  int drainTimeoutMs = 5'000;
  /// Accepted connections beyond this are closed immediately (0 = no
  /// cap; the kernel fd limit is the real backstop either way).
  std::size_t maxConnections = 0;
  /// SO_SNDBUF applied to accepted sockets (0 = kernel default). Tests
  /// shrink it to force partial writes without moving megabytes.
  int sndbufBytes = 0;
  /// Retry cadence while accepts are paused after EMFILE/ENFILE: the fd
  /// pressure can come from elsewhere in the process, so the reactor
  /// re-arms the listener on this bound even when no connection closes.
  /// Stress tests shrink it to recover quickly inside a tight deadline.
  int acceptRetryMs = 100;
};

class Reactor {
 public:
  using ConnId = std::uint64_t;
  /// Immutable shared response payload: one buffer, many outboxes.
  using SharedReply = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Identifies one dispatched request; pass it back to complete().
  /// Carries the reactor that dispatched it so workers can complete
  /// through the request itself (`req.reactor->complete(req, ...)`) —
  /// handler code must not read an owner member holding the reactor
  /// (e.g. a `std::unique_ptr<Reactor>` assigned after construction):
  /// the loop thread starts inside the constructor, so such a member is
  /// written with no happens-before edge to the handler's read.
  struct Request {
    Reactor* reactor = nullptr;
    ConnId conn = 0;
    std::uint64_t token = 0;
  };

  enum class ConnError : std::uint8_t {
    kOversizedFrame,  ///< length prefix beyond maxMessageBytes
    kIdleTimeout,     ///< idle with nothing in flight
    kReadTimeout,     ///< partial frame that never completed
    kWriteStall,      ///< peer stopped reading a non-empty outbox
  };

  /// Server-side protocol hooks. All methods run on the reactor thread
  /// and must not block; hand blocking/CPU work to a pool and call
  /// Reactor::complete() from there.
  class Handler {
   public:
    virtual ~Handler() = default;

    /// One complete request frame (length prefix stripped). Exactly one
    /// complete() call per request finishes it (from any thread).
    virtual void onRequest(Request req, std::vector<std::uint8_t> payload) = 0;

    /// A protocol/liveness violation. Return the error frame to send
    /// before the close, or empty to close silently. Never called for
    /// kWriteStall with a deliverable path (the peer is not reading).
    virtual std::vector<std::uint8_t> onConnError(ConnId conn,
                                                  ConnError kind,
                                                  const std::string& detail) {
      (void)conn;
      (void)kind;
      (void)detail;
      return {};
    }

    /// The connection is gone and no request of it is still in flight
    /// (a force-closed connection's last completion is awaited first, so
    /// per-connection handler state is never torn down under a worker).
    virtual void onClosed(ConnId conn) { (void)conn; }
  };

  /// Counters for the concurrency bench and tests. Monotonic, readable
  /// from any thread while the loop runs.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t peakConnections = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t recvCalls = 0;
    std::uint64_t sendCalls = 0;
    std::uint64_t epollWaits = 0;
    std::uint64_t eventfdWakeups = 0;
    std::uint64_t partialWrites = 0;  ///< EAGAIN -> EPOLLOUT transitions
    std::uint64_t readPauses = 0;     ///< backpressure engagements
    std::uint64_t timeouts = 0;       ///< idle + read + write-stall closes
    std::uint64_t badFrames = 0;
    std::uint64_t forcedCloses = 0;   ///< drain deadline expirations
  };

  /// Binds 127.0.0.1:port (0 = ephemeral), starts the loop thread.
  /// `handler` must outlive the reactor, and so must every thread that
  /// may still call complete(): join/shut down worker pools BEFORE
  /// destroying the reactor (the servers encode this in member order —
  /// reactor_ declared first, pool after, so the pool joins while the
  /// reactor is still alive to drop late completions at the mutex).
  Reactor(std::uint16_t port, Handler& handler, ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Finishes `req`: queues `payload` (null = no bytes, e.g. a torn
  /// ingest session) on the connection's outbox and, with closeAfter,
  /// closes once it drained. Thread-safe; calls after shutdown are
  /// dropped. Exactly one complete() per dispatched request.
  void complete(Request req, SharedReply payload, bool closeAfter = false)
      UTE_EXCLUDES(mu_);
  void complete(Request req, std::vector<std::uint8_t> payload,
                bool closeAfter = false) UTE_EXCLUDES(mu_);

  /// Graceful stop: no new connections, parked requests dropped,
  /// in-flight responses drained (drainTimeoutMs), then the loop joins.
  /// Idempotent; the destructor calls it. Not callable from Handler
  /// methods (it joins the loop thread).
  void shutdown() UTE_EXCLUDES(mu_);

  Stats stats() const;

 private:
  struct Conn;
  struct Completion {
    Request req;
    SharedReply payload;
    bool closeAfter = false;
  };

  void loop();
  void handleAccepts();
  void pauseAccepts();
  void resumeAccepts();
  void handleEvent(ConnId id, std::uint32_t events);
  void handleRead(Conn& conn);
  void parseFrames(Conn& conn);
  void progress();
  void serviceConn(Conn& conn);
  void applyCompletion(Completion completion);
  bool flushWrites(Conn& conn);
  void updateReadPause(Conn& conn);
  void updateEpoll(Conn& conn);
  void failConn(Conn& conn, ConnError kind, const std::string& detail);
  void closeConn(Conn& conn);
  void finalizeConn(Conn& conn) UTE_MAY_INVALIDATE(conns_);
  void sweepTimeouts();
  void beginDrain();
  bool drainFinished();
  int waitTimeoutMs() const;
  void wake();
  void touchIdle(Conn& conn);

  Handler& handler_;
  const ReactorOptions options_;
  TcpListener listener_;

  // Cross-thread surface: completions + shutdown flag, guarded by mu_;
  // the eventfd turns a post into a loop wakeup.
  mutable Mutex mu_;
  std::vector<Completion> completions_ UTE_GUARDED_BY(mu_);
  bool shutdownRequested_ UTE_GUARDED_BY(mu_) = false;
  bool loopExited_ UTE_GUARDED_BY(mu_) = false;

  // Everything below is confined to the loop thread (created before the
  // thread starts, torn down after the join).
  int epollFd_ = -1;
  int eventFd_ = -1;
  std::uint64_t nextConnId_ = 1;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  /// Connections ordered by last activity (front = oldest) for the idle
  /// sweep, and by first-byte time for the partial-frame sweep.
  std::list<ConnId> idleOrder_;
  std::list<ConnId> partialOrder_;
  std::vector<ConnId> dirty_;
  /// Listener deregistered after EMFILE/ENFILE; re-armed on a close.
  bool acceptsPaused_ = false;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drainDeadline_{};

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0}, closed{0}, peakConnections{0},
        requests{0}, responses{0}, bytesIn{0}, bytesOut{0}, recvCalls{0},
        sendCalls{0}, epollWaits{0}, eventfdWakeups{0}, partialWrites{0},
        readPauses{0}, timeouts{0}, badFrames{0}, forcedCloses{0};
  };
  AtomicStats stats_;

  /// Published by the loop as its first action; complete() compares it
  /// against the caller to skip the eventfd wake on the loop thread.
  /// (thread_.get_id() would race with the constructor's assignment.)
  std::atomic<std::thread::id> loopThreadId_{};

  std::thread thread_;
};

}  // namespace ute
