#include "server/server.h"

#include <future>

#include "server/protocol.h"
#include "support/errors.h"

namespace ute {

namespace {

ServiceOptions withLiveDefaults(const ServerOptions& options) {
  ServiceOptions service = options.service;
  if (options.liveFeed != nullptr) service.allowNoTraces = true;
  return service;
}

}  // namespace

TraceServer::TraceServer(const std::vector<std::string>& slogPaths,
                         const ServerOptions& options)
    : service_(slogPaths, withLiveDefaults(options)),
      listener_(options.port) {
  // Attach before the accept thread exists so no client can observe the
  // trace count changing.
  if (options.liveFeed != nullptr) {
    service_.attachLiveFeed(options.liveName, options.liveFeed);
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

TraceServer::~TraceServer() { stop(); }

void TraceServer::stop() {
  if (stopping_.exchange(true)) {
    // A second caller still waits for the accept thread below.
  }
  listener_.close();
  if (acceptThread_.joinable()) acceptThread_.join();
  {
    MutexLock lock(connectionsMu_);
    for (auto& conn : connections_) conn->socket.shutdownBoth();
  }
  // Joining outside the lock: connection threads never re-enter the list
  // except to be erased here.
  std::list<std::unique_ptr<Connection>> drained;
  {
    MutexLock lock(connectionsMu_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void TraceServer::acceptLoop() {
  for (;;) {
    std::optional<TcpSocket> client = listener_.accept();
    if (!client) return;  // listener closed
    if (stopping_.load()) return;
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*client);
    Connection* raw = conn.get();
    {
      MutexLock lock(connectionsMu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serveConnection(*raw); });
  }
}

void TraceServer::serveConnection(Connection& conn) {
  // Negotiated hello state for this connection (frame encoding). The
  // protocol is strictly request/response, so only one request at a
  // time ever touches it — no locking needed.
  ConnectionContext ctx;
  try {
    for (;;) {
      const auto request = recvMessage(conn.socket);
      if (!request) return;  // client hung up
      bool shutdown = false;
      std::vector<std::uint8_t> response;

      // The query runs on the worker pool; this thread only does I/O.
      std::packaged_task<RequestOutcome()> task([this, &request, &ctx] {
        return processRequest(service_, *request, ctx);
      });
      std::future<RequestOutcome> future = task.get_future();
      if (service_.trySubmit([&task] { task(); })) {
        RequestOutcome outcome = future.get();
        response = std::move(outcome.response);
        shutdown = outcome.shutdown;
      } else {
        response = encodeErrorReply(
            ErrorCode::kOverloaded,
            "request queue full (" +
                std::to_string(service_.pool().maxQueue()) + " deep)");
      }

      sendMessage(conn.socket, response);
      if (shutdown) {
        stopRequested_.store(true);
        return;
      }
    }
  } catch (const FormatError& e) {
    // A framing violation (oversized length prefix, garbled frame) gets
    // a structured kBadRequest reply before the drop — the client sees
    // why instead of a bare EOF.
    try {
      sendMessage(conn.socket,
                  encodeErrorReply(ErrorCode::kBadRequest, e.what()));
    } catch (const std::exception&) {
      // The connection is already too broken to carry the explanation.
    }
  } catch (const std::exception&) {
    // Torn connection (EOF mid-message, send failure): drop the client.
  }
}

}  // namespace ute
