#include "server/server.h"

namespace ute {

namespace {

ServiceOptions withLiveDefaults(const ServerOptions& options) {
  ServiceOptions service = options.service;
  if (options.liveFeed != nullptr) service.allowNoTraces = true;
  return service;
}

ReactorOptions reactorOptions(const ServerOptions& options) {
  ReactorOptions reactor;
  reactor.idleTimeoutMs = options.idleTimeoutMs;
  reactor.readTimeoutMs = options.readTimeoutMs;
  reactor.maxPipeline = options.maxPipeline;
  reactor.drainTimeoutMs = options.drainTimeoutMs;
  reactor.maxMessageBytes = kMaxMessageBytes;
  return reactor;
}

}  // namespace

TraceServer::TraceServer(const std::vector<std::string>& slogPaths,
                         const ServerOptions& options)
    : service_(slogPaths, withLiveDefaults(options)) {
  // Attach before the reactor exists so no client can observe the trace
  // count changing.
  if (options.liveFeed != nullptr) {
    service_.attachLiveFeed(options.liveName, options.liveFeed);
  }
  // The derived-to-base conversion is only accessible in member scope
  // (private inheritance), so it cannot happen inside make_unique.
  Reactor::Handler& handler = *this;
  reactor_ = std::make_unique<Reactor>(options.port, handler,
                                       reactorOptions(options));
}

TraceServer::~TraceServer() { stop(); }

void TraceServer::stop() { reactor_->shutdown(); }

void TraceServer::onRequest(Reactor::Request req,
                            std::vector<std::uint8_t> payload) {
  // Negotiated hello state, created on the connection's first request.
  // Workers hold the shared_ptr, so a context outlives its connection if
  // a request is still being serviced when the peer vanishes.
  auto [it, inserted] = contexts_.try_emplace(req.conn, nullptr);
  if (inserted) it->second = std::make_shared<ConnectionContext>();
  std::shared_ptr<ConnectionContext> ctx = it->second;

  // The query runs on the worker pool; the reactor thread only does I/O.
  auto body = std::make_shared<std::vector<std::uint8_t>>(std::move(payload));
  const bool accepted = service_.trySubmit([this, req, ctx, body] {
    RequestOutcome outcome = processRequest(service_, *body, *ctx);
    if (outcome.shutdown) stopRequested_.store(true);
    req.reactor->complete(req, std::move(outcome.response), outcome.shutdown);
  });
  if (!accepted) {
    req.reactor->complete(
        req, encodeErrorReply(
                 ErrorCode::kOverloaded,
                 "request queue full (" +
                     std::to_string(service_.pool().maxQueue()) + " deep)"));
  }
}

std::vector<std::uint8_t> TraceServer::onConnError(Reactor::ConnId /*conn*/,
                                                   Reactor::ConnError /*kind*/,
                                                   const std::string& detail) {
  // Framing violations and liveness timeouts get a structured
  // kBadRequest reply before the close — the client sees why instead of
  // a bare EOF (same contract the thread-per-connection server had for
  // oversized frames).
  return encodeErrorReply(ErrorCode::kBadRequest, detail);
}

void TraceServer::onClosed(Reactor::ConnId conn) { contexts_.erase(conn); }

}  // namespace ute
