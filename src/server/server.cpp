#include "server/server.h"

#include <future>

#include "server/protocol.h"

namespace ute {

TraceServer::TraceServer(const std::vector<std::string>& slogPaths,
                         const ServerOptions& options)
    : service_(slogPaths, options.service), listener_(options.port) {
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

TraceServer::~TraceServer() { stop(); }

void TraceServer::stop() {
  if (stopping_.exchange(true)) {
    // A second caller still waits for the accept thread below.
  }
  listener_.close();
  if (acceptThread_.joinable()) acceptThread_.join();
  {
    MutexLock lock(connectionsMu_);
    for (auto& conn : connections_) conn->socket.shutdownBoth();
  }
  // Joining outside the lock: connection threads never re-enter the list
  // except to be erased here.
  std::list<std::unique_ptr<Connection>> drained;
  {
    MutexLock lock(connectionsMu_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void TraceServer::acceptLoop() {
  for (;;) {
    std::optional<TcpSocket> client = listener_.accept();
    if (!client) return;  // listener closed
    if (stopping_.load()) return;
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*client);
    Connection* raw = conn.get();
    {
      MutexLock lock(connectionsMu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serveConnection(*raw); });
  }
}

void TraceServer::serveConnection(Connection& conn) {
  try {
    for (;;) {
      const auto request = recvMessage(conn.socket);
      if (!request) return;  // client hung up
      bool shutdown = false;
      std::vector<std::uint8_t> response;

      // The query runs on the worker pool; this thread only does I/O.
      std::packaged_task<RequestOutcome()> task(
          [this, &request] { return processRequest(service_, *request); });
      std::future<RequestOutcome> future = task.get_future();
      if (service_.trySubmit([&task] { task(); })) {
        RequestOutcome outcome = future.get();
        response = std::move(outcome.response);
        shutdown = outcome.shutdown;
      } else {
        response = encodeErrorReply(
            ErrorCode::kOverloaded,
            "request queue full (" +
                std::to_string(service_.pool().maxQueue()) + " deep)");
      }

      sendMessage(conn.socket, response);
      if (shutdown) {
        stopRequested_.store(true);
        return;
      }
    }
  } catch (const std::exception&) {
    // Torn connection (EOF mid-message, send failure): drop the client.
  }
}

}  // namespace ute
