// TraceServer: the TCP front end of TraceService.
//
// One accept thread; one lightweight I/O thread per connection that
// decodes length-prefixed requests and hands the query work to the
// service's fixed worker pool. Responses go back in request order (the
// connection thread waits for its job), so the protocol needs no request
// ids. When the pool's bounded queue is full the server answers
// immediately with an kOverloaded error frame — explicit backpressure
// instead of unbounded buffering. A client can stop the server remotely
// with the kShutdown opcode (uteserve exposes this via `utequery
// shutdown`).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <thread>
#include <vector>

#include "server/tcp.h"
#include "server/trace_service.h"
#include "support/thread_annotations.h"

namespace ute {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral, see TraceServer::port()
  ServiceOptions service;
  /// A live trace to attach before the accept loop starts (utestream
  /// --serve). Not owned; must outlive the server. With a feed set the
  /// service may be constructed with zero SLOG paths.
  LiveFeed* liveFeed = nullptr;
  std::string liveName = "<live>";
};

class TraceServer {
 public:
  /// Loads the traces and starts listening + accepting immediately.
  TraceServer(const std::vector<std::string>& slogPaths,
              const ServerOptions& options = {});
  ~TraceServer();

  TraceServer(const TraceServer&) = delete;
  TraceServer& operator=(const TraceServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  TraceService& service() { return service_; }

  /// True once a client issued kShutdown (the owner should call stop()).
  bool stopRequested() const { return stopRequested_.load(); }

  /// Closes the listener, unblocks live connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void stop() UTE_EXCLUDES(connectionsMu_);

 private:
  struct Connection {
    TcpSocket socket;
    std::thread thread;
  };

  void acceptLoop() UTE_EXCLUDES(connectionsMu_);
  void serveConnection(Connection& conn);

  TraceService service_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopRequested_{false};
  std::thread acceptThread_;
  Mutex connectionsMu_;
  std::list<std::unique_ptr<Connection>> connections_
      UTE_GUARDED_BY(connectionsMu_);
};

}  // namespace ute
