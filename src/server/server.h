// TraceServer: the TCP front end of TraceService.
//
// The transport is the shared epoll Reactor (server/reactor.h): one
// non-blocking event-loop thread owns every connection's state machine,
// and this class is its protocol Handler. Query CPU work still runs on
// the service's fixed worker pool — onRequest() hands the decoded
// payload to trySubmit() and the worker posts the response back to the
// loop with Reactor::complete() (an eventfd wakeup). When the pool's
// bounded queue is full the server answers immediately with a
// kOverloaded error frame — explicit backpressure instead of unbounded
// buffering. Requests pipelined on one connection are answered strictly
// in order (the reactor dispatches one at a time), so the per-connection
// negotiated ConnectionContext needs no locking. A client can stop the
// server remotely with the kShutdown opcode (uteserve exposes this via
// `utequery shutdown`); stop() drains in-flight responses before
// closing (Reactor graceful shutdown).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "server/reactor.h"
#include "server/trace_service.h"
#include "support/thread_annotations.h"

namespace ute {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral, see TraceServer::port()
  ServiceOptions service;
  /// A live trace to attach before the reactor starts (utestream
  /// --serve). Not owned; must outlive the server. With a feed set the
  /// service may be constructed with zero SLOG paths.
  LiveFeed* liveFeed = nullptr;
  std::string liveName = "<live>";
  /// Reactor hardening knobs (see ReactorOptions; 0 = off). Embedded
  /// test servers keep the permissive defaults; the uteserve/utestream
  /// CLIs set real timeouts.
  int idleTimeoutMs = 0;
  int readTimeoutMs = 0;
  std::size_t maxPipeline = 64;
  int drainTimeoutMs = 5'000;
};

class TraceServer : private Reactor::Handler {
 public:
  /// Loads the traces and starts listening + accepting immediately.
  TraceServer(const std::vector<std::string>& slogPaths,
              const ServerOptions& options = {});
  ~TraceServer() override;

  TraceServer(const TraceServer&) = delete;
  TraceServer& operator=(const TraceServer&) = delete;

  std::uint16_t port() const { return reactor_->port(); }
  TraceService& service() { return service_; }
  Reactor::Stats reactorStats() const { return reactor_->stats(); }

  /// True once a client issued kShutdown (the owner should call stop()).
  bool stopRequested() const { return stopRequested_.load(); }

  /// Graceful stop: no new connections, in-flight responses drained
  /// (bounded by drainTimeoutMs), then the loop joins. Idempotent; also
  /// run by the destructor.
  void stop();

 private:
  void onRequest(Reactor::Request req,
                 std::vector<std::uint8_t> payload) override;
  std::vector<std::uint8_t> onConnError(Reactor::ConnId conn,
                                        Reactor::ConnError kind,
                                        const std::string& detail) override;
  void onClosed(Reactor::ConnId conn) override;

  /// Declared first so it is destroyed last: pool workers joined by
  /// ~TraceService may still post completions into it (dropped once the
  /// loop exited, but the object must be alive).
  std::unique_ptr<Reactor> reactor_;
  std::atomic<bool> stopRequested_{false};

  /// Per-connection negotiated hello state. The map is touched only on
  /// the reactor thread (onRequest/onClosed); each context is read and
  /// written by at most one worker at a time because the reactor
  /// serializes dispatch per connection.
  std::unordered_map<Reactor::ConnId, std::shared_ptr<ConnectionContext>>
      contexts_;

  TraceService service_;
};

}  // namespace ute
