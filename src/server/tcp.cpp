#include "server/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/protocol.h"
#include "support/bytes.h"
#include "support/errors.h"

namespace ute {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Request/response on one connection is strictly ping-pong, so Nagle
/// only adds delayed-ACK stalls; disable it on both ends.
void setNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpSocket::~TcpSocket() { close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpSocket TcpSocket::connectTo(const std::string& host, std::uint16_t port,
                               int timeoutMs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  TcpSocket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("bad host address" + netContext(host, port));
  }
  if (timeoutMs <= 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw IoError(std::string("connect failed: ") + std::strerror(errno) +
                    netContext(host, port));
    }
    setNoDelay(fd);
    return socket;
  }
  // Bounded connect: go non-blocking for the handshake, poll for
  // writability, read SO_ERROR for the verdict, then restore blocking
  // mode for the plain send/recv loops.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      throw IoError(std::string("connect failed: ") + std::strerror(errno) +
                    netContext(host, port));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeoutMs);
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      throw IoError("connect timed out after " + std::to_string(timeoutMs) +
                    "ms" + netContext(host, port));
    }
    if (ready < 0) throwErrno("poll");
    int soError = 0;
    socklen_t len = sizeof soError;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len);
    if (soError != 0) {
      throw IoError(std::string("connect failed: ") +
                    std::strerror(soError) + netContext(host, port));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  setNoDelay(fd);
  return socket;
}

void TcpSocket::sendAll(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpSocket::recvAll(std::span<std::uint8_t> data) {
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw IoError("recv timed out");
      }
      throwErrno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw IoError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpSocket::setRecvTimeout(int milliseconds) {
  timeval tv{};
  tv.tv_sec = milliseconds / 1000;
  tv.tv_usec = (milliseconds % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throwErrno("setsockopt SO_RCVTIMEO");
  }
}

void TcpSocket::shutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
}

TcpListener::~TcpListener() { close(); }

std::optional<TcpSocket> TcpListener::accept() {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return std::nullopt;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      setNoDelay(client);
      return TcpSocket(client);
    }
    if (errno == EINTR) continue;
    // EBADF/EINVAL after close(): orderly shutdown, not an error.
    return std::nullopt;
  }
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // wakes a blocked accept()
    ::close(fd);
  }
}

void sendMessage(TcpSocket& socket, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxMessageBytes) {
    throw UsageError("message exceeds kMaxMessageBytes");
  }
  // One send for prefix + payload: a response must never sit in the
  // kernel waiting for a second write (or an ACK) to complete a message.
  ByteWriter message;
  message.u32(static_cast<std::uint32_t>(payload.size()));
  message.bytes(payload);
  socket.sendAll(message.view());
}

std::optional<std::vector<std::uint8_t>> recvMessage(TcpSocket& socket) {
  std::uint8_t prefix[4];
  if (!socket.recvAll(prefix)) return std::nullopt;
  ByteReader r(prefix);
  const std::uint32_t length = r.u32();
  if (length > kMaxMessageBytes) {
    throw FormatError("message length " + std::to_string(length) +
                      " exceeds protocol maximum");
  }
  std::vector<std::uint8_t> payload(length);
  if (length > 0 && !socket.recvAll(payload)) {
    throw IoError("connection closed before message body");
  }
  return payload;
}

}  // namespace ute
