// Minimal RAII TCP wrappers (loopback-oriented) for the query service.
//
// Just enough POSIX socket surface for a length-prefixed message
// protocol: a listener bound to 127.0.0.1 (port 0 picks an ephemeral
// port, reported back for tests and port files), a connected socket with
// full-length send/recv loops, and message framing helpers that apply
// the u32-length prefix and the kMaxMessageBytes sanity cap.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ute {

class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port; throws IoError on failure. With
  /// `timeoutMs > 0` the connect itself is bounded: a peer that neither
  /// accepts nor refuses within the budget fails with "connect timed
  /// out" instead of blocking for the kernel's (minutes-long) SYN
  /// retry cycle. Every failure names the endpoint (netContext).
  static TcpSocket connectTo(const std::string& host, std::uint16_t port,
                             int timeoutMs = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data`; throws IoError on failure.
  void sendAll(std::span<const std::uint8_t> data);
  /// Reads exactly data.size() bytes. Returns false on clean EOF before
  /// the first byte; throws IoError on EOF mid-buffer or socket error.
  bool recvAll(std::span<std::uint8_t> data);

  /// Receive timeout (SO_RCVTIMEO): a recv blocked longer than this
  /// fails with IoError("recv timed out") instead of hanging forever —
  /// the ingest server's per-session liveness bound. 0 restores blocking
  /// reads.
  void setRecvTimeout(int milliseconds);

  /// Unblocks any reader/writer on this socket (e.g. from another
  /// thread during server stop).
  void shutdownBoth();
  void close();

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Raw listening fd for event-loop registration (-1 once closed).
  int fd() const { return fd_.load(); }

  /// Blocks for the next connection; nullopt once close() was called.
  std::optional<TcpSocket> accept();

  /// Thread-safe: wakes a blocked accept(), which then returns nullopt.
  void close();

 private:
  /// Atomic because close() races with a blocked accept() by design.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Writes `payload` as one length-prefixed message.
void sendMessage(TcpSocket& socket, std::span<const std::uint8_t> payload);
/// Reads one message; nullopt on clean EOF between messages. Throws
/// IoError on mid-message EOF and FormatError on an oversized length.
std::optional<std::vector<std::uint8_t>> recvMessage(TcpSocket& socket);

}  // namespace ute
