#include "server/trace_service.h"

#include <algorithm>
#include <map>

#include "support/errors.h"

namespace ute {

namespace {

std::uint64_t frameKey(std::uint32_t traceId, std::size_t frameIdx) {
  return (std::uint64_t{traceId} << 32) | static_cast<std::uint32_t>(frameIdx);
}

}  // namespace

TraceService::TraceService(const std::vector<std::string>& slogPaths,
                           const ServiceOptions& options)
    : options_(options),
      cache_(options.cacheBytes, options.cacheShards),
      pool_(options.workers, options.queueDepth) {
  if (slogPaths.empty() && !options.allowNoTraces) {
    throw UsageError("TraceService needs at least one SLOG file");
  }
  traces_.reserve(slogPaths.size());
  for (const std::string& path : slogPaths) {
    auto trace = std::make_unique<Trace>();
    trace->reader = std::make_unique<SlogReader>(path);
    traces_.push_back(std::move(trace));
  }
}

TraceService::~TraceService() { pool_.shutdown(); }

std::uint32_t TraceService::attachLiveFeed(const std::string& name,
                                           LiveFeed* feed) {
  if (feed == nullptr) throw UsageError("attachLiveFeed: null feed");
  auto trace = std::make_unique<Trace>();
  trace->feed = feed;
  trace->name = name;
  traces_.push_back(std::move(trace));
  return static_cast<std::uint32_t>(traces_.size() - 1);
}

std::uint32_t TraceService::traceCount() const {
  return static_cast<std::uint32_t>(traces_.size());
}

bool TraceService::isLive(std::uint32_t traceId) const {
  if (traceId >= traces_.size()) {
    throw UsageError("unknown trace id " + std::to_string(traceId));
  }
  return traces_[traceId]->feed != nullptr;
}

LiveFeed& TraceService::liveFeed(std::uint32_t traceId) const {
  if (!isLive(traceId)) {
    throw UsageError("trace " + std::to_string(traceId) + " is not live");
  }
  return *traces_[traceId]->feed;
}

const std::string& TraceService::traceName(std::uint32_t traceId) const {
  if (isLive(traceId)) return traces_[traceId]->name;
  return traces_[traceId]->reader->path();
}

const SlogReader& TraceService::trace(std::uint32_t traceId) const {
  if (traceId >= traces_.size()) {
    throw UsageError("unknown trace id " + std::to_string(traceId));
  }
  if (traces_[traceId]->feed != nullptr) {
    throw UsageError("live trace " + std::to_string(traceId) +
                     ": this query needs the finished file; follow the "
                     "run with TailFrames/TailMetrics instead");
  }
  return *traces_[traceId]->reader;
}

TraceService::Trace& TraceService::traceSlot(std::uint32_t traceId) {
  if (traceId >= traces_.size()) {
    throw UsageError("unknown trace id " + std::to_string(traceId));
  }
  if (traces_[traceId]->feed != nullptr) {
    throw UsageError("live trace " + std::to_string(traceId) +
                     ": this query needs the finished file; follow the "
                     "run with TailFrames/TailMetrics instead");
  }
  return *traces_[traceId];
}

FrameCache::FramePtr TraceService::frame(std::uint32_t traceId,
                                         std::size_t frameIdx) {
  Trace& slot = traceSlot(traceId);
  const SlogReader& reader = *slot.reader;
  if (frameIdx >= reader.frameIndex().size()) {
    throw UsageError("SLOG frame index out of range");
  }
  return cache_.getOrLoad(frameKey(traceId, frameIdx),
                          [&] { return reader.readFrame(frameIdx); });
}

std::optional<std::pair<std::size_t, std::size_t>> TraceService::frameSpan(
    const SlogReader& reader, Tick t0, Tick t1) const {
  const auto& index = reader.frameIndex();
  std::size_t first = index.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    // Half-open selection, matching buildSlogWindowView: a frame that
    // merely touches a window edge contributes nothing.
    if (index[i].timeEnd <= t0 || index[i].timeStart >= t1) continue;
    first = std::min(first, i);
    last = std::max(last, i);
  }
  if (first > last) return std::nullopt;
  return std::make_pair(first, last);
}

WindowResult TraceService::window(std::uint32_t traceId,
                                  const WindowQuery& query) {
  const SlogReader& reader = trace(traceId);
  if (query.t1 <= query.t0) {
    throw UsageError("window end must follow window start");
  }
  WindowResult result;
  result.t0 = std::max(query.t0, reader.totalStart());
  result.t1 = std::min(query.t1, reader.totalEnd());
  if (result.t1 <= result.t0) throw UsageError("window is outside the run");
  const auto span = frameSpan(reader, result.t0, result.t1);
  if (!span) throw UsageError("window is outside the run");

  const bool allStates = query.states.empty();
  const auto stateWanted = [&](std::uint32_t id) {
    return allStates || std::find(query.states.begin(), query.states.end(),
                                  id) != query.states.end();
  };

  for (std::size_t f = span->first; f <= span->second; ++f) {
    const FrameCache::FramePtr data = frame(traceId, f);
    for (const SlogInterval& r : data->intervals) {
      if (r.pseudo && f != span->first) continue;  // merged restatement
      if (!r.pseudo && (r.end() < result.t0 || r.start > result.t1)) continue;
      if (query.node && r.node != *query.node) continue;
      if (query.thread && r.thread != *query.thread) continue;
      if (!stateWanted(r.stateId)) continue;
      result.intervals.push_back(r);
    }
    for (const SlogArrow& a : data->arrows) {
      if (a.recvTime < result.t0 || a.sendTime > result.t1) continue;
      if (query.node && a.srcNode != *query.node && a.dstNode != *query.node)
        continue;
      if (query.thread && a.srcThread != *query.thread &&
          a.dstThread != *query.thread)
        continue;
      result.arrows.push_back(a);
    }
  }
  return result;
}

std::vector<SummaryEntry> TraceService::summary(std::uint32_t traceId,
                                                Tick t0, Tick t1) {
  const SlogReader& reader = trace(traceId);
  if (t1 <= t0) throw UsageError("window end must follow window start");
  t0 = std::max(t0, reader.totalStart());
  t1 = std::min(t1, reader.totalEnd());
  if (t1 <= t0) throw UsageError("window is outside the run");
  const auto span = frameSpan(reader, t0, t1);
  std::map<std::uint32_t, double> perState;
  if (span) {
    for (std::size_t f = span->first; f <= span->second; ++f) {
      const FrameCache::FramePtr data = frame(traceId, f);
      for (const SlogInterval& r : data->intervals) {
        if (r.pseudo) continue;
        const Tick lo = std::max(r.start, t0);
        const Tick hi = std::min(r.end(), t1);
        if (hi <= lo) continue;
        perState[r.stateId] += static_cast<double>(hi - lo);
      }
    }
  }
  std::vector<SummaryEntry> result;
  result.reserve(perState.size());
  for (const auto& [stateId, ns] : perState) result.push_back({stateId, ns});
  return result;
}

TraceService::MetricsBlob TraceService::metrics(std::uint32_t traceId,
                                                std::uint32_t bins) {
  if (isLive(traceId)) {
    // The live blob's shape is fixed by the feed's bin width; a bin
    // count cannot be honored, so any explicit request is refused and
    // the default (0) serves whatever is sealed so far.
    if (bins != 0) {
      throw UsageError("live trace " + std::to_string(traceId) +
                       ": bin count is fixed while the run is live");
    }
    LiveFeed::TailMetrics tail = liveFeed(traceId).metrics();
    if (tail.blob.empty()) {
      throw UsageError("live trace " + std::to_string(traceId) +
                       ": no metrics sealed yet");
    }
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::move(tail.blob));
  }
  Trace& slot = traceSlot(traceId);
  if (bins == 0) bins = kDefaultMetricsBins;
  if (bins > kMaxMetricsBins) {
    throw UsageError("metrics bins capped at " +
                     std::to_string(kMaxMetricsBins));
  }
  MutexLock lock(slot.metricsMu);
  const auto it = slot.metricsByBins.find(bins);
  if (it != slot.metricsByBins.end()) return it->second;

  MetricsOptions options;
  options.bins = bins;
  const MetricsStore store = computeMetrics(
      *slot.reader, options,
      [&](std::size_t frameIdx) { return frame(traceId, frameIdx); });
  auto blob =
      std::make_shared<const std::vector<std::uint8_t>>(store.encode());
  slot.metricsByBins.emplace(bins, blob);
  return blob;
}

LiveFeed::TailFrames TraceService::tailFrames(std::uint32_t traceId,
                                              std::uint64_t cursor,
                                              std::uint32_t maxFrames) {
  if (isLive(traceId)) return liveFeed(traceId).framesFrom(cursor, maxFrames);
  const SlogReader& reader = trace(traceId);
  const auto& index = reader.frameIndex();
  LiveFeed::TailFrames out;
  out.finished = true;
  out.watermark = reader.totalEnd();
  const std::uint64_t total = index.size();
  const std::uint64_t from = std::min<std::uint64_t>(cursor, total);
  const std::uint64_t to =
      maxFrames == 0 ? total : std::min<std::uint64_t>(total, from + maxFrames);
  out.frames.reserve(static_cast<std::size_t>(to - from));
  for (std::uint64_t i = from; i < to; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    out.frames.emplace_back(index[idx], frame(traceId, idx));
  }
  out.nextCursor = to;
  return out;
}

LiveFeed::TailMetrics TraceService::tailMetrics(std::uint32_t traceId) {
  if (isLive(traceId)) return liveFeed(traceId).metrics();
  LiveFeed::TailMetrics out;
  out.finished = true;
  const SlogReader& reader = trace(traceId);
  out.watermark = reader.totalEnd();
  const MetricsBlob blob = metrics(traceId, 0);
  out.blob = *blob;
  out.sealedBins = MetricsStore::decode(out.blob).bins();
  return out;
}

FrameAtResult TraceService::frameAt(std::uint32_t traceId, Tick t) {
  const SlogReader& reader = trace(traceId);
  const auto idx = reader.frameIndexFor(t);
  if (!idx) {
    throw UsageError("no frame contains t=" + std::to_string(t));
  }
  FrameAtResult result;
  result.frameIdx = *idx;
  result.entry = reader.frameIndex()[*idx];
  result.frame = frame(traceId, *idx);
  return result;
}

}  // namespace ute
