// TraceService: the in-process trace-query engine.
//
// Loads one or more SLOG files once (metadata, tables, preview) and then
// answers concurrent queries against them: preview, states, threads,
// frame-at(t), window(t0, t1) with thread/state filters, and per-state
// summary totals. Frames are decoded at most once through the sharded
// FrameCache, which stores the SlogFramePtr handles SlogReader::readFrame
// returns — so N clients querying the same window all share one frame in
// memory. Raw bytes come through the reader's ByteSource (mmap when
// available), so concurrent workers need no per-thread file handles.
//
// Query methods are thread-safe and synchronous. The embedded WorkerPool
// adds admission control on top: trySubmit() is how the TCP server
// bounds concurrent query CPU and sheds load explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "server/frame_cache.h"
#include "server/worker_pool.h"
#include "slog/slog_reader.h"
#include "stream/live_feed.h"
#include "support/thread_annotations.h"

namespace ute {

struct ServiceOptions {
  std::size_t cacheBytes = 64u << 20;
  std::size_t cacheShards = 8;
  std::size_t workers = 4;
  std::size_t queueDepth = 64;
  /// Permit construction with zero SLOG paths — for a service whose only
  /// trace will be a live feed attached right after (utestream --serve).
  bool allowNoTraces = false;
};

/// Bin count used when a GetMetrics request passes bins = 0.
inline constexpr std::uint32_t kDefaultMetricsBins = 240;
/// Upper bound a request may ask for (keeps one reply well under the
/// protocol's message cap and bounds the cached blob size).
inline constexpr std::uint32_t kMaxMetricsBins = 100000;

/// A window query: absolute tick range plus optional filters. Empty
/// `states` means every state passes.
struct WindowQuery {
  Tick t0 = 0;
  Tick t1 = 0;
  std::optional<NodeId> node;
  std::optional<LogicalThreadId> thread;
  std::vector<std::uint32_t> states;
};

/// Window result semantics (the contract tests and clients rely on):
///   - the query range is clamped to [totalStart, totalEnd];
///   - the frames consulted are exactly those with timeEnd > t0 and
///     timeStart < t1 (a frame merely touching an edge contributes
///     nothing);
///   - pseudo-intervals are merged: only the FIRST consulted frame's
///     restatements are returned (later frames' duplicates dropped);
///   - real intervals are returned unclipped when they overlap the
///     clamped range (end() >= t0 and start <= t1) and pass the filters;
///   - arrows are returned when recvTime >= t0 and sendTime <= t1; the
///     node/thread filters keep an arrow if either endpoint matches;
///     state filters do not apply to arrows.
/// Record order is frame order, then in-frame order — identical to a
/// single-threaded scan of the same frames with a bare SlogReader.
struct WindowResult {
  Tick t0 = 0;  ///< clamped
  Tick t1 = 0;
  std::vector<SlogInterval> intervals;
  std::vector<SlogArrow> arrows;
};

/// Per-state time in a window: durations clipped to [t0, t1] and summed
/// (pseudo-intervals have zero duration and contribute nothing). Sorted
/// by stateId; zero-total states are omitted.
struct SummaryEntry {
  std::uint32_t stateId = 0;
  double ns = 0;
};

struct FrameAtResult {
  std::size_t frameIdx = 0;
  SlogFrameIndexEntry entry;
  FrameCache::FramePtr frame;
};

class TraceService {
 public:
  /// Opens every path up front; throws (IoError/FormatError/
  /// CorruptFileError) if any file is unusable.
  TraceService(const std::vector<std::string>& slogPaths,
               const ServiceOptions& options = {});
  ~TraceService();

  TraceService(const TraceService&) = delete;
  TraceService& operator=(const TraceService&) = delete;

  /// Registers a live (still-being-written) trace backed by a LiveFeed
  /// (not owned; must outlive the service) and returns its trace id.
  /// Not thread-safe: attach before the first query arrives — the TCP
  /// server attaches in its constructor, before the accept loop starts.
  std::uint32_t attachLiveFeed(const std::string& name, LiveFeed* feed);

  std::uint32_t traceCount() const;
  bool isLive(std::uint32_t traceId) const;
  /// The feed behind a live trace; throws UsageError for file traces.
  LiveFeed& liveFeed(std::uint32_t traceId) const;
  /// The SLOG path of a file trace, or the live trace's display name.
  const std::string& traceName(std::uint32_t traceId) const;
  /// Metadata access (immutable after construction). Throws UsageError
  /// for an unknown id — and for a live trace, which has no reader; the
  /// "live trace" message prefix maps to a kBadRequest wire error.
  const SlogReader& trace(std::uint32_t traceId) const;

  /// Cached frame fetch (the unit the cache works in).
  FrameCache::FramePtr frame(std::uint32_t traceId, std::size_t frameIdx);

  WindowResult window(std::uint32_t traceId, const WindowQuery& query);
  std::vector<SummaryEntry> summary(std::uint32_t traceId, Tick t0, Tick t1);
  /// Throws UsageError when no frame contains `t`.
  FrameAtResult frameAt(std::uint32_t traceId, Tick t);

  /// Encoded .utm metrics for a trace, computed lazily on first request
  /// (frames flow through the frame cache, so the scan respects the
  /// cache byte budget) and memoized per (trace, bins). bins = 0 means
  /// kDefaultMetricsBins; values above kMaxMetricsBins throw UsageError.
  using MetricsBlob = std::shared_ptr<const std::vector<std::uint8_t>>;
  MetricsBlob metrics(std::uint32_t traceId, std::uint32_t bins = 0);

  /// Follow-the-cursor frame tailing (docs/STREAMING.md). For a live
  /// trace this pages through the feed's sealed frames; for a file trace
  /// it pages through the frame index (finished = true, watermark =
  /// totalEnd), so one client loop handles both. Frames are append-only,
  /// so resuming from the last returned cursor after a disconnect yields
  /// every frame exactly once.
  LiveFeed::TailFrames tailFrames(std::uint32_t traceId, std::uint64_t cursor,
                                  std::uint32_t maxFrames);
  /// The incrementally extended metrics blob of a live trace (bins below
  /// the watermark are final); for a file trace, the default-bins blob
  /// with every bin sealed.
  LiveFeed::TailMetrics tailMetrics(std::uint32_t traceId);

  FrameCache& cache() { return cache_; }
  const FrameCache& cache() const { return cache_; }
  WorkerPool& pool() { return pool_; }
  const ServiceOptions& options() const { return options_; }

  /// Admission-controlled execution (see WorkerPool::trySubmit).
  bool trySubmit(std::function<void()> job) {
    return pool_.trySubmit(std::move(job));
  }

 private:
  struct Trace {
    std::unique_ptr<SlogReader> reader;  ///< null for a live trace
    LiveFeed* feed = nullptr;            ///< not owned; null for files
    std::string name;                    ///< live display name
    /// Lazily computed encoded metrics stores, keyed by bin count. The
    /// mutex also serializes the (heavy) first computation per trace.
    Mutex metricsMu;
    std::map<std::uint32_t, MetricsBlob> metricsByBins
        UTE_GUARDED_BY(metricsMu);
  };

  /// Frame span [first, last] consulted for a clamped window; nullopt
  /// when no frame overlaps it.
  std::optional<std::pair<std::size_t, std::size_t>> frameSpan(
      const SlogReader& reader, Tick t0, Tick t1) const;

  Trace& traceSlot(std::uint32_t traceId);

  ServiceOptions options_;
  std::vector<std::unique_ptr<Trace>> traces_;
  FrameCache cache_;
  WorkerPool pool_;
};

}  // namespace ute
