#include "server/worker_pool.h"

#include <algorithm>

namespace ute {

WorkerPool::WorkerPool(std::size_t workers, std::size_t maxQueue)
    : maxQueue_(std::max<std::size_t>(1, maxQueue)) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::trySubmit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    if (stopping_ || queue_.size() >= maxQueue_) {
      ++stats_.rejected;
      return false;
    }
    queue_.push_back(std::move(job));
    ++stats_.accepted;
  }
  cv_.notifyOne();
  return true;
}

void WorkerPool::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.executed;
    }
    job();
  }
}

WorkerPool::Stats WorkerPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace ute
