// Fixed worker pool with a bounded queue and explicit backpressure.
//
// The trace-query service must stay responsive under overload: query CPU
// work runs on a fixed number of workers, pending work waits in a queue
// with a hard depth limit, and once the queue is full trySubmit() refuses
// immediately — the caller (the TCP server) turns that refusal into an
// "overloaded" error frame instead of queueing unboundedly and falling
// over later. Connection I/O threads stay outside the pool, so a slow
// client never occupies a query worker.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace ute {

class WorkerPool {
 public:
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  ///< refused because the queue was full
    std::uint64_t executed = 0;
  };

  /// Spawns `workers` threads; at most `maxQueue` jobs wait unstarted.
  WorkerPool(std::size_t workers, std::size_t maxQueue);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `job`, or returns false without blocking when the queue is
  /// at maxQueue (or the pool is shutting down).
  bool trySubmit(std::function<void()> job) UTE_EXCLUDES(mu_);

  /// Stops accepting work, drains jobs already queued, joins workers.
  void shutdown() UTE_EXCLUDES(mu_);

  Stats stats() const UTE_EXCLUDES(mu_);
  std::size_t workerCount() const { return threads_.size(); }
  std::size_t maxQueue() const { return maxQueue_; }

 private:
  void workerLoop() UTE_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ UTE_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  std::size_t maxQueue_;
  bool stopping_ UTE_GUARDED_BY(mu_) = false;
  Stats stats_ UTE_GUARDED_BY(mu_);
};

}  // namespace ute
