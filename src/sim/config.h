// Configuration of a simulated SMP cluster run.
#pragma once

#include <cstdint>
#include <vector>

#include "clock/clock_model.h"
#include "sim/program.h"
#include "support/types.h"
#include "trace/events.h"
#include "trace/writer.h"

namespace ute {

/// One SMP node: its processor count and the drift model of its local
/// crystal clock.
struct NodeConfig {
  int cpuCount = 1;
  LocalClockModel::Params clock;
};

/// One thread of a process: what it executes and how the interval-file
/// thread table categorizes it.
struct ThreadConfig {
  Program program;
  ThreadType type = ThreadType::kUser;
};

/// One MPI process (task). Its rank is its index in
/// SimulationConfig::processes.
struct ProcessConfig {
  NodeId node = 0;
  std::vector<ThreadConfig> threads;
};

struct SchedulerParams {
  /// Round-robin time slice (AIX default is 10 ms).
  Tick quantumNs = 10 * kMs;
  /// Context-switch cost charged before a dispatched thread makes progress.
  Tick dispatchCostNs = 2 * kUs;
};

/// The per-node daemon that periodically reads the switch-adapter global
/// clock together with the local clock and cuts a GlobalClock record
/// (Section 2.2).
struct ClockDaemonParams {
  Tick firstAtNs = 1 * kMs;
  Tick periodNs = 2 * kSec;
  /// Probability that the daemon is descheduled *between* the global and
  /// the local clock read, producing the outlier pairs the paper's
  /// Summary discusses; the merge utility must filter these.
  double outlierChance = 0.0;
  Tick outlierDelayNs = 500 * kUs;
  /// Section 5: "an atomic operation would totally eliminate such
  /// possibilities" — with an atomic paired read the daemon can never be
  /// descheduled between the two reads, so outlierChance is ignored.
  bool atomicRead = false;
};

/// Costs of the tracing library's user-level entry points, plus the
/// Section 5 extension activities (I/O, page faults).
struct SimCosts {
  Tick markerCallNs = 300;
  Tick traceControlNs = 300;
  /// Blocking I/O: latency plus per-byte transfer (a 2000-era local disk:
  /// ~5 ms seek, ~30 MB/s).
  Tick ioLatencyNs = 5 * kMs;
  double ioNsPerByte = 33.0;
  /// CPU time consumed inside the I/O call before it blocks (posting the
  /// request) — gives the call a non-empty begin piece, like MPI calls.
  Tick ioSetupNs = 2 * kUs;
  /// Each compute burst takes a page fault with this probability; the
  /// fault stalls the thread off-CPU for pageFaultServiceNs.
  double pageFaultChance = 0.0;
  Tick pageFaultServiceNs = 200 * kUs;
};

struct SimulationConfig {
  std::vector<NodeConfig> nodes;
  std::vector<ProcessConfig> processes;
  SchedulerParams scheduler;
  ClockDaemonParams clockDaemon;
  TraceOptions trace;
  SimCosts costs;
  std::uint64_t seed = 42;
  /// Hard stop guarding against deadlocked workloads.
  Tick maxSimTimeNs = 3600 * kSec;
};

}  // namespace ute
