#include "sim/engine.h"

namespace ute {

void Engine::scheduleAt(Tick t, Action action) {
  if (t < now_) {
    throw UsageError("Engine: cannot schedule an event in the past");
  }
  queue_.push({t, nextSeq_++, std::move(action)});
}

void Engine::run(Tick maxTime) {
  stop_ = false;
  while (!queue_.empty() && !stop_) {
    // Move the action out before popping so it can schedule new events.
    Scheduled ev = std::move(const_cast<Scheduled&>(queue_.top()));
    queue_.pop();
    if (ev.time > maxTime) {
      throw UsageError("Engine: simulation exceeded its time limit");
    }
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
}

}  // namespace ute
