// Discrete-event simulation core.
//
// A single min-heap of (time, sequence) ordered events; ties break in
// scheduling order, which makes whole-cluster runs bit-for-bit
// reproducible. Everything in the simulated cluster — dispatches, quantum
// expiries, message deliveries, clock-daemon ticks — is an event here.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/errors.h"
#include "support/types.h"

namespace ute {

class Engine {
 public:
  using Action = std::function<void()>;

  /// Current simulated true time, ns.
  Tick now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now()).
  void scheduleAt(Tick t, Action action);

  /// Schedules `action` `delay` ns from now.
  void scheduleAfter(Tick delay, Action action) {
    scheduleAt(now_ + delay, std::move(action));
  }

  /// Runs until the event queue drains, requestStop() is called, or
  /// `maxTime` is exceeded (guarding against runaway simulations).
  void run(Tick maxTime = ~Tick{0});

  /// Makes run() return after the current event completes. Remaining
  /// events stay queued (the caller is abandoning the simulation).
  void requestStop() { stop_ = true; }

  std::uint64_t eventsProcessed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Scheduled {
    Tick time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  bool stop_ = false;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace ute
