#include "sim/program.h"

#include "support/errors.h"

namespace ute {

bool isMpiOp(OpKind kind) {
  return kind >= OpKind::kMpiInit && kind <= OpKind::kMpiAlltoall;
}

std::string opKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCompute: return "compute";
    case OpKind::kSleep: return "sleep";
    case OpKind::kMarkerBegin: return "markerBegin";
    case OpKind::kMarkerEnd: return "markerEnd";
    case OpKind::kLoopBegin: return "loopBegin";
    case OpKind::kLoopEnd: return "loopEnd";
    case OpKind::kTraceOn: return "traceOn";
    case OpKind::kTraceOff: return "traceOff";
    case OpKind::kIoRead: return "ioRead";
    case OpKind::kIoWrite: return "ioWrite";
    case OpKind::kMpiInit: return "MPI_Init";
    case OpKind::kMpiFinalize: return "MPI_Finalize";
    case OpKind::kMpiSend: return "MPI_Send";
    case OpKind::kMpiRecv: return "MPI_Recv";
    case OpKind::kMpiIsend: return "MPI_Isend";
    case OpKind::kMpiIrecv: return "MPI_Irecv";
    case OpKind::kMpiWait: return "MPI_Wait";
    case OpKind::kMpiBarrier: return "MPI_Barrier";
    case OpKind::kMpiBcast: return "MPI_Bcast";
    case OpKind::kMpiReduce: return "MPI_Reduce";
    case OpKind::kMpiAllreduce: return "MPI_Allreduce";
    case OpKind::kMpiAlltoall: return "MPI_Alltoall";
  }
  return "?";
}

Op& ProgramBuilder::push(OpKind kind) {
  ops_.emplace_back();
  ops_.back().kind = kind;
  return ops_.back();
}

ProgramBuilder& ProgramBuilder::compute(Tick ns) {
  push(OpKind::kCompute).duration = ns;
  return *this;
}

ProgramBuilder& ProgramBuilder::sleep(Tick ns) {
  push(OpKind::kSleep).duration = ns;
  return *this;
}

ProgramBuilder& ProgramBuilder::markerBegin(const std::string& name) {
  push(OpKind::kMarkerBegin).marker = name;
  markerStack_.push_back(name);
  return *this;
}

ProgramBuilder& ProgramBuilder::markerEnd(const std::string& name) {
  if (markerStack_.empty() || markerStack_.back() != name) {
    throw UsageError("markerEnd('" + name + "') does not match open marker");
  }
  markerStack_.pop_back();
  push(OpKind::kMarkerEnd).marker = name;
  return *this;
}

ProgramBuilder& ProgramBuilder::loop(std::uint32_t count) {
  loopStack_.push_back(ops_.size());
  push(OpKind::kLoopBegin).count = count;
  return *this;
}

ProgramBuilder& ProgramBuilder::endLoop() {
  if (loopStack_.empty()) throw UsageError("endLoop without open loop");
  const std::size_t beginIdx = loopStack_.back();
  loopStack_.pop_back();
  Op& end = push(OpKind::kLoopEnd);
  end.match = static_cast<std::int32_t>(beginIdx);
  ops_[beginIdx].match = static_cast<std::int32_t>(ops_.size() - 1);
  return *this;
}

ProgramBuilder& ProgramBuilder::traceOn() {
  push(OpKind::kTraceOn);
  return *this;
}

ProgramBuilder& ProgramBuilder::traceOff() {
  push(OpKind::kTraceOff);
  return *this;
}

ProgramBuilder& ProgramBuilder::ioRead(std::uint32_t bytes) {
  push(OpKind::kIoRead).bytes = bytes;
  return *this;
}

ProgramBuilder& ProgramBuilder::ioWrite(std::uint32_t bytes) {
  push(OpKind::kIoWrite).bytes = bytes;
  return *this;
}

ProgramBuilder& ProgramBuilder::mpiInit() {
  push(OpKind::kMpiInit);
  return *this;
}

ProgramBuilder& ProgramBuilder::mpiFinalize() {
  push(OpKind::kMpiFinalize);
  return *this;
}

ProgramBuilder& ProgramBuilder::send(TaskId dest, std::int32_t tag,
                                     std::uint32_t bytes) {
  Op& op = push(OpKind::kMpiSend);
  op.peer = dest;
  op.tag = tag;
  op.bytes = bytes;
  return *this;
}

ProgramBuilder& ProgramBuilder::recv(TaskId src, std::int32_t tag) {
  Op& op = push(OpKind::kMpiRecv);
  op.peer = src;
  op.tag = tag;
  return *this;
}

std::int32_t ProgramBuilder::isend(TaskId dest, std::int32_t tag,
                                   std::uint32_t bytes) {
  Op& op = push(OpKind::kMpiIsend);
  op.peer = dest;
  op.tag = tag;
  op.bytes = bytes;
  op.reqSlot = nextReqSlot_++;
  return op.reqSlot;
}

std::int32_t ProgramBuilder::irecv(TaskId src, std::int32_t tag) {
  Op& op = push(OpKind::kMpiIrecv);
  op.peer = src;
  op.tag = tag;
  op.reqSlot = nextReqSlot_++;
  return op.reqSlot;
}

ProgramBuilder& ProgramBuilder::wait(std::int32_t reqSlot) {
  if (reqSlot < 0 || reqSlot >= nextReqSlot_) {
    throw UsageError("wait on unknown request slot");
  }
  push(OpKind::kMpiWait).reqSlot = reqSlot;
  return *this;
}

ProgramBuilder& ProgramBuilder::barrier() {
  push(OpKind::kMpiBarrier);
  return *this;
}

ProgramBuilder& ProgramBuilder::bcast(std::uint32_t bytes, TaskId root) {
  Op& op = push(OpKind::kMpiBcast);
  op.bytes = bytes;
  op.root = root;
  return *this;
}

ProgramBuilder& ProgramBuilder::reduce(std::uint32_t bytes, TaskId root) {
  Op& op = push(OpKind::kMpiReduce);
  op.bytes = bytes;
  op.root = root;
  return *this;
}

ProgramBuilder& ProgramBuilder::allreduce(std::uint32_t bytes) {
  push(OpKind::kMpiAllreduce).bytes = bytes;
  return *this;
}

ProgramBuilder& ProgramBuilder::alltoall(std::uint32_t bytes) {
  push(OpKind::kMpiAlltoall).bytes = bytes;
  return *this;
}

Program ProgramBuilder::build() {
  if (!loopStack_.empty()) throw UsageError("program has an unclosed loop");
  if (!markerStack_.empty()) {
    throw UsageError("program has an unclosed marker '" + markerStack_.back() +
                     "'");
  }
  return std::move(ops_);
}

std::uint64_t dynamicOpCount(const Program& program) {
  // Walk with an explicit loop stack, multiplying body counts.
  std::uint64_t total = 0;
  std::vector<std::uint64_t> multiplier{1};
  for (const Op& op : program) {
    if (op.kind == OpKind::kLoopBegin) {
      total += multiplier.back();  // the loop-begin op itself
      multiplier.push_back(multiplier.back() * op.count);
    } else if (op.kind == OpKind::kLoopEnd) {
      total += multiplier.back();  // each iteration's loop-end bookkeeping
      multiplier.pop_back();
    } else {
      total += multiplier.back();
    }
  }
  return total;
}

}  // namespace ute
