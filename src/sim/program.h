// Thread programs for the cluster simulator.
//
// A Program is a compact op list describing what one thread of one MPI
// process does: compute bursts, MPI calls, user-marker regions, sleeps,
// loops, and trace on/off control. Workload generators (src/workloads)
// assemble Programs via ProgramBuilder; the simulator interprets them with
// per-thread program counters and a loop stack, so a million-iteration
// loop costs two ops, not a million.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.h"

namespace ute {

enum class OpKind : std::uint8_t {
  kCompute,      ///< occupy the CPU for `duration` ns (preemptible)
  kSleep,        ///< leave the CPU for `duration` ns (timed block)
  kMarkerBegin,  ///< begin user-marker region `marker`
  kMarkerEnd,    ///< end user-marker region `marker`
  kLoopBegin,    ///< repeat the ops up to the matching kLoopEnd `count` times
  kLoopEnd,
  kTraceOn,      ///< enable tracing on this thread's node (Section 2.1)
  kTraceOff,
  kIoRead,       ///< blocking file read of `bytes` (off-CPU wait)
  kIoWrite,      ///< blocking file write of `bytes`
  // MPI calls; executed through the installed MpiService.
  kMpiInit,
  kMpiFinalize,
  kMpiSend,
  kMpiRecv,
  kMpiIsend,
  kMpiIrecv,
  kMpiWait,
  kMpiBarrier,
  kMpiBcast,
  kMpiReduce,
  kMpiAllreduce,
  kMpiAlltoall,
};

bool isMpiOp(OpKind kind);
std::string opKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kCompute;
  Tick duration = 0;          ///< kCompute / kSleep
  std::int32_t peer = -1;     ///< send dest / recv src (-1 = any source)
  std::int32_t tag = 0;
  std::uint32_t bytes = 0;    ///< message or collective payload size
  std::int32_t root = 0;      ///< collective root task
  std::int32_t reqSlot = -1;  ///< request slot for isend/irecv/wait
  std::uint32_t count = 0;    ///< kLoopBegin iteration count
  std::int32_t match = -1;    ///< kLoopBegin <-> kLoopEnd partner index
  std::string marker;         ///< kMarkerBegin / kMarkerEnd region name
};

using Program = std::vector<Op>;

/// Fluent builder that validates loop and marker nesting and resolves
/// loop partner indices. Throws UsageError on malformed structure.
class ProgramBuilder {
 public:
  ProgramBuilder& compute(Tick ns);
  ProgramBuilder& sleep(Tick ns);
  ProgramBuilder& markerBegin(const std::string& name);
  ProgramBuilder& markerEnd(const std::string& name);
  ProgramBuilder& loop(std::uint32_t count);
  ProgramBuilder& endLoop();
  ProgramBuilder& traceOn();
  ProgramBuilder& traceOff();
  ProgramBuilder& ioRead(std::uint32_t bytes);
  ProgramBuilder& ioWrite(std::uint32_t bytes);

  ProgramBuilder& mpiInit();
  ProgramBuilder& mpiFinalize();
  ProgramBuilder& send(TaskId dest, std::int32_t tag, std::uint32_t bytes);
  ProgramBuilder& recv(TaskId src, std::int32_t tag);
  /// Returns the request slot to pass to wait().
  std::int32_t isend(TaskId dest, std::int32_t tag, std::uint32_t bytes);
  std::int32_t irecv(TaskId src, std::int32_t tag);
  ProgramBuilder& wait(std::int32_t reqSlot);
  ProgramBuilder& barrier();
  ProgramBuilder& bcast(std::uint32_t bytes, TaskId root);
  ProgramBuilder& reduce(std::uint32_t bytes, TaskId root);
  ProgramBuilder& allreduce(std::uint32_t bytes);
  ProgramBuilder& alltoall(std::uint32_t bytes);

  /// Validates that all loops and markers are closed and returns the ops.
  Program build();

  /// Number of request slots the built program uses.
  std::int32_t requestSlots() const { return nextReqSlot_; }

 private:
  Op& push(OpKind kind);

  Program ops_;
  std::vector<std::size_t> loopStack_;
  std::vector<std::string> markerStack_;
  std::int32_t nextReqSlot_ = 0;
};

/// Counts the ops a program executes at runtime (loops expanded) —
/// used by workload generators to size runs for target event counts.
std::uint64_t dynamicOpCount(const Program& program);

}  // namespace ute
