#include "sim/simulation.h"

#include <algorithm>

#include "support/errors.h"

namespace ute {

namespace {
constexpr std::uint64_t kZeroStepLimit = 100'000'000;
}

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.nodes.empty()) throw UsageError("simulation needs nodes");
  nodes_.resize(config_.nodes.size());
  for (std::size_t n = 0; n < config_.nodes.size(); ++n) {
    NodeRt& node = nodes_[n];
    node.cfg = config_.nodes[n];
    if (node.cfg.cpuCount <= 0) {
      throw UsageError("node " + std::to_string(n) + " has no CPUs");
    }
    node.clock = LocalClockModel(node.cfg.clock);
    node.cpus.resize(static_cast<std::size_t>(node.cfg.cpuCount));
  }
  setupThreads();
  // Reserve the per-node logical thread id for the clock daemon after all
  // program threads, then open the trace sessions (which cut the NodeInfo
  // control record at local time 0).
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeRt& node = nodes_[n];
    node.daemonLtid = node.nextLtid++;
    node.session = std::make_unique<TraceSession>(
        config_.trace, static_cast<NodeId>(n), node.cfg.cpuCount,
        node.clock.read(0));
  }
}

Simulation::~Simulation() = default;

void Simulation::setEventSink(EventSink sink) {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!sink) {
      nodes_[n].session->setEventSink(nullptr);
      continue;
    }
    const NodeId node = static_cast<NodeId>(n);
    nodes_[n].session->setEventSink(
        [sink, node](const RawEvent& ev) { sink(node, ev); });
  }
}

void Simulation::setupThreads() {
  markerRegistries_.reserve(config_.processes.size());
  for (std::size_t p = 0; p < config_.processes.size(); ++p) {
    const ProcessConfig& proc = config_.processes[p];
    if (proc.node < 0 ||
        static_cast<std::size_t>(proc.node) >= nodes_.size()) {
      throw UsageError("process " + std::to_string(p) +
                       " placed on unknown node");
    }
    markerRegistries_.emplace_back(/*firstId=*/1);
    NodeRt& node = nodes_[static_cast<std::size_t>(proc.node)];
    for (const ThreadConfig& tc : proc.threads) {
      if (node.nextLtid >= kMaxThreadsPerNode) {
        throw UsageError("more than 512 threads on one node");
      }
      SimThread t;
      t.id = static_cast<int>(threads_.size());
      t.node = proc.node;
      t.processIndex = static_cast<int>(p);
      t.task = static_cast<TaskId>(p);
      t.ltid = node.nextLtid++;
      t.type = tc.type;
      t.program = &tc.program;
      threads_.push_back(std::move(t));
      ++node.liveThreads;
      ++liveTotal_;
    }
  }
  if (threads_.empty()) throw UsageError("simulation has no threads");
}

void Simulation::cutThreadInfoRecords() {
  for (const SimThread& t : threads_) {
    NodeRt& node = nodeOf(t);
    node.session->cut(
        EventType::kThreadInfo, 0, 0, t.ltid, localNow(node),
        payloadThreadInfo(t.ltid, 1000 + t.processIndex, 10000 + t.id,
                          t.task, t.type));
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeRt& node = nodes_[n];
    node.session->cut(
        EventType::kThreadInfo, 0, 0, node.daemonLtid, localNow(node),
        payloadThreadInfo(node.daemonLtid, 1, 10000 + 100000 * (1 + static_cast<int>(n)),
                          -1, ThreadType::kSystem));
  }
}

void Simulation::scheduleDaemonTick(NodeId nodeId, Tick at) {
  engine_.scheduleAt(at, [this, nodeId] {
    NodeRt& node = nodes_[static_cast<std::size_t>(nodeId)];
    if (node.liveThreads <= 0) return;
    const Tick global = engine_.now();
    Tick cutDelay = 0;
    if (!config_.clockDaemon.atomicRead &&
        config_.clockDaemon.outlierChance > 0 &&
        rng_.chance(config_.clockDaemon.outlierChance)) {
      // The daemon read the global clock, was descheduled, and only read
      // the local clock (and cut the record) after a delay.
      cutDelay = config_.clockDaemon.outlierDelayNs;
    }
    const auto cutRecord = [this, nodeId, global] {
      NodeRt& n = nodes_[static_cast<std::size_t>(nodeId)];
      const Tick local = localNow(n);
      n.session->cut(EventType::kGlobalClock, 0, 0, n.daemonLtid, local,
                     payloadGlobalClock(global, local));
    };
    if (cutDelay == 0) {
      cutRecord();
    } else {
      engine_.scheduleAfter(cutDelay, cutRecord);
    }
    scheduleDaemonTick(nodeId, engine_.now() + config_.clockDaemon.periodNs);
  });
}

void Simulation::run() {
  if (ran_) throw UsageError("Simulation::run called twice");
  ran_ = true;
  cutThreadInfoRecords();
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    // First global-clock record right at trace start: the merge utility
    // aligns the starting points of the per-node files with it.
    NodeRt& node = nodes_[n];
    const Tick local = localNow(node);
    node.session->cut(EventType::kGlobalClock, 0, 0, node.daemonLtid, local,
                      payloadGlobalClock(engine_.now(), local));
    scheduleDaemonTick(static_cast<NodeId>(n),
                       config_.clockDaemon.firstAtNs);
  }
  for (const SimThread& t : threads_) makeReady(t.id);
  engine_.run(config_.maxSimTimeNs);
  finishTime_ = engine_.now();
  for (SimThread& t : threads_) {
    if (t.state != ThreadState::kDone) {
      throw UsageError("simulation deadlock: thread " + std::to_string(t.id) +
                       " of task " + std::to_string(t.task) +
                       " never finished (blocked in " +
                       (t.pc < t.program->size()
                            ? opKindName((*t.program)[t.pc].kind)
                            : std::string("?")) +
                       ")");
    }
  }
  for (NodeRt& node : nodes_) {
    const Tick local = localNow(node);
    node.session->cut(EventType::kGlobalClock, 0, 0, node.daemonLtid, local,
                      payloadGlobalClock(engine_.now(), local));
    node.session->close();
  }
}

std::vector<std::string> Simulation::traceFilePaths() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    out.push_back(TraceSession::traceFilePath(config_.trace.filePrefix,
                                              static_cast<NodeId>(n)));
  }
  return out;
}

const TraceSessionStats& Simulation::sessionStats(NodeId node) const {
  return nodes_.at(static_cast<std::size_t>(node)).session->stats();
}

void Simulation::wake(int threadId, Tick notBefore) {
  const Tick at = std::max(engine_.now(), notBefore);
  engine_.scheduleAt(at, [this, threadId] { onWake(threadId); });
}

void Simulation::onWake(int threadId) {
  SimThread& t = thread(threadId);
  switch (t.state) {
    case ThreadState::kBlocked:
      makeReady(threadId);
      break;
    case ThreadState::kRunning:
      // Message arrived while the thread is still burning the CPU portion
      // of the call (or mid-activity after a sleep-race); remember it so
      // the call resumes without leaving the CPU.
      t.wakePending = true;
      break;
    case ThreadState::kReady:
    case ThreadState::kDone:
      break;  // spurious or duplicate wake; harmless
  }
}

void Simulation::cutEvent(const SimThread& t, EventType type,
                          std::uint8_t flags, const ByteWriter& payload) {
  NodeRt& node = nodes_[static_cast<std::size_t>(t.node)];
  node.session->cut(type, flags, t.cpu < 0 ? 0 : t.cpu, t.ltid,
                    localNow(node), payload);
}

bool Simulation::sameNode(TaskId a, TaskId b) const {
  const auto& procs = config_.processes;
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= procs.size() ||
      static_cast<std::size_t>(b) >= procs.size()) {
    return false;
  }
  return procs[static_cast<std::size_t>(a)].node ==
         procs[static_cast<std::size_t>(b)].node;
}

void Simulation::makeReady(int threadId) {
  SimThread& t = thread(threadId);
  t.state = ThreadState::kReady;
  NodeRt& node = nodeOf(t);
  node.readyQueue.push_back(threadId);
  tryDispatch(t.node);
}

void Simulation::tryDispatch(NodeId nodeId) {
  NodeRt& node = nodes_[static_cast<std::size_t>(nodeId)];
  while (!node.readyQueue.empty()) {
    // Least-recently-busy idle CPU: threads waking after a block tend to
    // land on a different processor, reproducing the thread migration the
    // processor-activity view (Figure 9) makes visible.
    int best = -1;
    for (std::size_t c = 0; c < node.cpus.size(); ++c) {
      if (node.cpus[c].running >= 0) continue;
      if (best < 0 || node.cpus[c].lastBusy <
                          node.cpus[static_cast<std::size_t>(best)].lastBusy) {
        best = static_cast<int>(c);
      }
    }
    if (best < 0) return;
    const int tid = node.readyQueue.front();
    node.readyQueue.pop_front();
    dispatchOn(nodeId, best, tid, /*prevLtid=*/-1);
  }
}

void Simulation::dispatchOn(NodeId nodeId, int cpuIdx, int threadId,
                            LogicalThreadId prevLtid, bool prevExited) {
  NodeRt& node = nodes_[static_cast<std::size_t>(nodeId)];
  Cpu& cpu = node.cpus[static_cast<std::size_t>(cpuIdx)];
  SimThread& t = thread(threadId);

  node.session->cut(EventType::kThreadDispatch, 0, cpuIdx, t.ltid,
                    localNow(node),
                    payloadThreadDispatch(prevLtid, t.ltid, prevExited));

  cpu.running = threadId;
  ++cpu.epoch;
  cpu.lastBusy = engine_.now();
  t.state = ThreadState::kRunning;
  t.cpu = cpuIdx;
  ++t.runEpoch;
  const std::uint64_t epoch = t.runEpoch;
  engine_.scheduleAfter(config_.scheduler.dispatchCostNs,
                        [this, threadId, epoch] { beginRun(threadId, epoch); });
  armQuantum(nodeId, cpuIdx);
}

void Simulation::armQuantum(NodeId nodeId, int cpuIdx) {
  NodeRt& node = nodes_[static_cast<std::size_t>(nodeId)];
  const std::uint64_t epoch = node.cpus[static_cast<std::size_t>(cpuIdx)].epoch;
  engine_.scheduleAfter(config_.scheduler.quantumNs, [this, nodeId, cpuIdx,
                                                      epoch] {
    onQuantumExpiry(nodeId, cpuIdx, epoch);
  });
}

void Simulation::onQuantumExpiry(NodeId nodeId, int cpuIdx,
                                 std::uint64_t epoch) {
  NodeRt& node = nodes_[static_cast<std::size_t>(nodeId)];
  Cpu& cpu = node.cpus[static_cast<std::size_t>(cpuIdx)];
  if (cpu.epoch != epoch || cpu.running < 0) return;  // stale
  if (node.readyQueue.empty()) {
    // Nobody waiting; let the thread keep the processor another quantum.
    engine_.scheduleAfter(config_.scheduler.quantumNs,
                          [this, nodeId, cpuIdx, epoch] {
                            onQuantumExpiry(nodeId, cpuIdx, epoch);
                          });
    return;
  }
  const int oldTid = cpu.running;
  SimThread& old = thread(oldTid);
  // Charge the partial burst and compute what is left of the activity.
  const Tick elapsed = engine_.now() - old.workStart;
  old.cpuTimeNs += elapsed;
  old.activityRemaining =
      old.activityRemaining > elapsed ? old.activityRemaining - elapsed : 1;
  ++old.runEpoch;  // invalidate its in-flight completion event
  old.state = ThreadState::kReady;
  old.cpu = -1;

  const int nextTid = node.readyQueue.front();
  node.readyQueue.pop_front();
  node.readyQueue.push_back(oldTid);
  cpu.running = -1;
  dispatchOn(nodeId, cpuIdx, nextTid, old.ltid);
}

void Simulation::beginRun(int threadId, std::uint64_t epoch) {
  SimThread& t = thread(threadId);
  if (t.runEpoch != epoch || t.state != ThreadState::kRunning) return;
  if (t.activity == ThreadActivity::kCallBlocked) {
    resumeCall(threadId);
    return;
  }
  if (t.activity == ThreadActivity::kIoBlocked) {
    // The I/O completed while blocked; cut the exit record on resume.
    const Op& op = (*t.program)[t.callOp];
    cutEvent(t, op.kind == OpKind::kIoRead ? EventType::kIoRead
                                           : EventType::kIoWrite,
             kFlagEnd, ByteWriter{});
    ++t.pc;
    t.activity = ThreadActivity::kNone;
    interpret(threadId);
    return;
  }
  if (t.activity != ThreadActivity::kNone && t.activityRemaining > 0) {
    scheduleCompletion(threadId);  // resume a preempted burst
    return;
  }
  t.activity = ThreadActivity::kNone;
  interpret(threadId);
}

void Simulation::scheduleCompletion(int threadId) {
  SimThread& t = thread(threadId);
  t.workStart = engine_.now();
  const std::uint64_t epoch = t.runEpoch;
  engine_.scheduleAfter(t.activityRemaining, [this, threadId, epoch] {
    onActivityDone(threadId, epoch);
  });
}

void Simulation::onActivityDone(int threadId, std::uint64_t epoch) {
  SimThread& t = thread(threadId);
  if (t.runEpoch != epoch || t.state != ThreadState::kRunning) return;
  t.cpuTimeNs += engine_.now() - t.workStart;
  t.activityRemaining = 0;

  switch (t.activity) {
    case ThreadActivity::kCompute:
    case ThreadActivity::kMarker:
    case ThreadActivity::kTraceCtl:
      t.activity = ThreadActivity::kNone;
      interpret(threadId);
      return;
    case ThreadActivity::kCallEnter: {
      if (t.callBlocks && !t.wakePending) {
        t.activity = ThreadActivity::kCallBlocked;
        blockThread(threadId);
        return;
      }
      if (t.callBlocks && t.wakePending) {
        t.wakePending = false;
        resumeCall(threadId);
        return;
      }
      // Non-blocking call: complete it on the spot.
      mpi_->onExit(t, (*t.program)[t.callOp]);
      ++t.pc;
      t.activity = ThreadActivity::kNone;
      interpret(threadId);
      return;
    }
    case ThreadActivity::kIoSetup: {
      const Op& op = (*t.program)[t.callOp];
      const Tick ioTime =
          config_.costs.ioLatencyNs +
          static_cast<Tick>(config_.costs.ioNsPerByte *
                            static_cast<double>(op.bytes));
      const Tick wakeAt = engine_.now() + ioTime;
      t.activity = ThreadActivity::kIoBlocked;
      blockThread(threadId);
      wake(threadId, wakeAt);
      return;
    }
    case ThreadActivity::kCallResume: {
      mpi_->onExit(t, (*t.program)[t.callOp]);
      ++t.pc;
      t.activity = ThreadActivity::kNone;
      interpret(threadId);
      return;
    }
    case ThreadActivity::kNone:
    case ThreadActivity::kCallBlocked:
    case ThreadActivity::kIoBlocked:
      throw UsageError("activity completion in invalid state");
  }
}

void Simulation::resumeCall(int threadId) {
  SimThread& t = thread(threadId);
  const Op& op = (*t.program)[t.callOp];
  const Tick cost = mpi_->onResume(t, op);
  if (cost > 0) {
    t.activity = ThreadActivity::kCallResume;
    t.activityRemaining = cost;
    scheduleCompletion(threadId);
    return;
  }
  mpi_->onExit(t, op);
  ++t.pc;
  t.activity = ThreadActivity::kNone;
  interpret(threadId);
}

void Simulation::interpret(int threadId) {
  SimThread& t = thread(threadId);
  NodeRt& node = nodeOf(t);
  for (;;) {
    if (++zeroStepGuard_ > kZeroStepLimit) {
      throw UsageError("program makes no progress (empty loop?)");
    }
    if (t.pc >= t.program->size()) {
      finishThread(threadId);
      return;
    }
    const Op& op = (*t.program)[t.pc];
    switch (op.kind) {
      case OpKind::kLoopBegin:
        if (op.count == 0) {
          t.pc = static_cast<std::size_t>(op.match) + 1;
        } else {
          t.loopStack.emplace_back(t.pc, op.count);
          ++t.pc;
        }
        continue;
      case OpKind::kLoopEnd: {
        auto& top = t.loopStack.back();
        if (--top.second > 0) {
          t.pc = top.first + 1;
        } else {
          t.loopStack.pop_back();
          ++t.pc;
        }
        continue;
      }
      case OpKind::kCompute: {
        if (op.duration == 0) {
          ++t.pc;
          continue;
        }
        zeroStepGuard_ = 0;
        // Section 5 extension: a compute burst may take a page fault,
        // stalling the thread off-CPU for the fault service time before
        // the burst runs.
        if (!t.faultedThisOp && config_.costs.pageFaultChance > 0 &&
            rng_.chance(config_.costs.pageFaultChance)) {
          t.faultedThisOp = true;
          const std::uint64_t addr =
              0x7f0000000000ULL + (rng_.next() & 0xffffff000ULL);
          ByteWriter payload;
          payload.u64(addr);
          cutEvent(t, EventType::kPageFault, 0, payload);
          const Tick wakeAt =
              engine_.now() + config_.costs.pageFaultServiceNs;
          t.activity = ThreadActivity::kNone;
          blockThread(threadId);
          wake(threadId, wakeAt);
          return;
        }
        t.faultedThisOp = false;
        t.activity = ThreadActivity::kCompute;
        t.activityRemaining = op.duration;
        ++t.pc;
        scheduleCompletion(threadId);
        return;
      }
      case OpKind::kSleep: {
        zeroStepGuard_ = 0;
        ++t.pc;
        t.activity = ThreadActivity::kNone;
        const Tick wakeAt = engine_.now() + op.duration;
        blockThread(threadId);
        wake(threadId, wakeAt);
        return;
      }
      case OpKind::kMarkerBegin:
      case OpKind::kMarkerEnd: {
        zeroStepGuard_ = 0;
        MarkerRegistry& reg =
            markerRegistries_[static_cast<std::size_t>(t.processIndex)];
        const std::size_t before = reg.entries().size();
        const std::uint32_t id = reg.define(op.marker);
        if (reg.entries().size() != before) {
          cutEvent(t, EventType::kMarkerDef, 0, payloadMarkerDef(id, op.marker));
        }
        const std::uint64_t instrAddr =
            (static_cast<std::uint64_t>(t.processIndex) << 32) |
            (static_cast<std::uint64_t>(t.pc) * 16 + 0x1000);
        const std::uint8_t flag =
            op.kind == OpKind::kMarkerBegin ? kFlagBegin : kFlagEnd;
        cutEvent(t, EventType::kUserMarker, flag,
                 payloadUserMarker(id, instrAddr));
        t.activity = ThreadActivity::kMarker;
        t.activityRemaining = std::max<Tick>(config_.costs.markerCallNs, 1);
        ++t.pc;
        scheduleCompletion(threadId);
        return;
      }
      case OpKind::kIoRead:
      case OpKind::kIoWrite: {
        zeroStepGuard_ = 0;
        ByteWriter payload;
        payload.u32(op.bytes);
        cutEvent(t, op.kind == OpKind::kIoRead ? EventType::kIoRead
                                               : EventType::kIoWrite,
                 kFlagBegin, payload);
        t.callOp = t.pc;
        // Post the request on the CPU first so the call gets a non-empty
        // begin piece, then block for the device time.
        t.activity = ThreadActivity::kIoSetup;
        t.activityRemaining = std::max<Tick>(config_.costs.ioSetupNs, 1);
        scheduleCompletion(threadId);
        return;
      }
      case OpKind::kTraceOn:
      case OpKind::kTraceOff: {
        zeroStepGuard_ = 0;
        if (op.kind == OpKind::kTraceOn) {
          node.session->traceOn();
        } else {
          node.session->traceOff();
        }
        t.activity = ThreadActivity::kTraceCtl;
        t.activityRemaining = std::max<Tick>(config_.costs.traceControlNs, 1);
        ++t.pc;
        scheduleCompletion(threadId);
        return;
      }
      default: {  // MPI ops
        zeroStepGuard_ = 0;
        if (mpi_ == nullptr) {
          throw UsageError("program uses MPI but no MpiService installed");
        }
        t.callOp = t.pc;
        t.wakePending = false;
        const MpiService::EnterResult r = mpi_->onEnter(t, op);
        t.callBlocks = r.blocks;
        t.activity = ThreadActivity::kCallEnter;
        t.activityRemaining = std::max<Tick>(r.cpuCost, 1);
        scheduleCompletion(threadId);
        return;
      }
    }
  }
}

void Simulation::blockThread(int threadId) {
  SimThread& t = thread(threadId);
  t.state = ThreadState::kBlocked;
  releaseCpu(threadId);
}

void Simulation::finishThread(int threadId) {
  SimThread& t = thread(threadId);
  t.state = ThreadState::kDone;
  --nodeOf(t).liveThreads;
  releaseCpu(threadId);
  // Once every thread has finished, nothing left in the queue matters
  // (daemon ticks, stale quantum expiries); end the run at this instant
  // so the trace ends with the last real activity.
  if (--liveTotal_ == 0) engine_.requestStop();
}

void Simulation::releaseCpu(int threadId) {
  SimThread& t = thread(threadId);
  ++t.runEpoch;
  if (t.cpu < 0) return;
  NodeRt& node = nodeOf(t);
  const int cpuIdx = t.cpu;
  Cpu& cpu = node.cpus[static_cast<std::size_t>(cpuIdx)];
  t.cpu = -1;
  ++cpu.epoch;
  cpu.lastBusy = engine_.now();
  cpu.running = -1;
  const bool exited = t.state == ThreadState::kDone;
  if (!node.readyQueue.empty()) {
    const int nextTid = node.readyQueue.front();
    node.readyQueue.pop_front();
    dispatchOn(t.node, cpuIdx, nextTid, t.ltid, exited);
  } else {
    // Processor goes idle; one dispatch record with new = -1.
    node.session->cut(EventType::kThreadDispatch, 0, cpuIdx, -1,
                      localNow(node),
                      payloadThreadDispatch(t.ltid, -1, exited));
  }
}

}  // namespace ute
