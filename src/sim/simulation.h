// The simulated SMP cluster: nodes, processors, threads, the preemptive
// scheduler, and the hooks that cut trace records for everything that
// happens. This is the substrate standing in for the paper's IBM SP
// running AIX: it produces the same kind of raw per-node trace files —
// thread dispatch events interleaved with MPI events, user markers and
// global-clock records — that the convert/merge/visualization pipeline
// consumes.
//
// MPI call semantics (matching, message timing, collectives) live in
// src/mpisim behind the MpiService interface so the scheduler stays
// independent of the message layer.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "clock/clock_model.h"
#include "sim/config.h"
#include "sim/engine.h"
#include "support/rng.h"
#include "trace/marker_registry.h"
#include "trace/writer.h"

namespace ute {

class Simulation;

enum class ThreadState : std::uint8_t {
  kReady,
  kRunning,
  kBlocked,
  kDone,
};

/// What a running thread is currently burning CPU on (or blocked in).
enum class ThreadActivity : std::uint8_t {
  kNone,         ///< needs the interpreter to fetch the next op
  kCompute,      ///< inside a compute burst
  kMarker,       ///< marker-library call overhead
  kTraceCtl,     ///< trace on/off call overhead
  kCallEnter,    ///< CPU portion of an MPI call before a possible block
  kCallBlocked,  ///< blocked inside an MPI call, waiting for wake()
  kCallResume,   ///< CPU portion of an MPI call after the wake
  kIoSetup,      ///< CPU portion of an I/O call before it blocks
  kIoBlocked,    ///< blocked in a file read/write (Section 5 extension)
};

/// Runtime state of one simulated thread. Public so the MPI service can
/// identify callers and stash per-call context via `id`.
struct SimThread {
  int id = -1;  ///< global thread index
  NodeId node = 0;
  int processIndex = 0;
  TaskId task = -1;
  LogicalThreadId ltid = -1;
  ThreadType type = ThreadType::kUser;
  const Program* program = nullptr;

  // Interpreter state.
  std::size_t pc = 0;
  std::vector<std::pair<std::size_t, std::uint32_t>> loopStack;
  std::size_t callOp = 0;  ///< op index of the MPI call in flight

  ThreadState state = ThreadState::kReady;
  ThreadActivity activity = ThreadActivity::kNone;
  Tick activityRemaining = 0;
  Tick workStart = 0;       ///< when the current CPU burst began
  bool callBlocks = false;  ///< MPI enter decided to block after its burst
  bool wakePending = false; ///< wake() arrived while still on the CPU
  bool faultedThisOp = false;  ///< current compute op already page-faulted
  std::uint64_t runEpoch = 0;  ///< invalidates in-flight completion events
  CpuId cpu = -1;

  Tick cpuTimeNs = 0;  ///< accumulated CPU occupancy (for tests)
};

/// Interface the MPI runtime (src/mpisim) implements. The simulator calls
/// these at well-defined points of an MPI op's lifetime; the service cuts
/// the MPI entry/exit trace records and performs matching, and wakes
/// blocked threads through Simulation::wake().
class MpiService {
 public:
  virtual ~MpiService() = default;

  struct EnterResult {
    Tick cpuCost = 0;   ///< CPU time consumed inside the call before
                        ///< returning or blocking
    bool blocks = false;
  };

  /// The thread has just entered the MPI call `op` on a CPU.
  virtual EnterResult onEnter(SimThread& thread, const Op& op) = 0;

  /// The thread was woken and re-dispatched; returns the remaining CPU
  /// cost (e.g. the receive-side copy) before the call exits.
  virtual Tick onResume(SimThread& thread, const Op& op) = 0;

  /// The call completes on the CPU right now; cut the exit record here.
  virtual void onExit(SimThread& thread, const Op& op) = 0;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Installs the MPI runtime. Required when any program contains MPI ops.
  void setMpiService(MpiService* service) { mpi_ = service; }

  /// Mirrors every node session's cut records to `sink` with the node id
  /// attached (TraceSession::setEventSink) — the live streaming ingest
  /// taps the simulator here. Install before run(); the payload span is
  /// only valid for the duration of each call.
  using EventSink = std::function<void(NodeId, const RawEvent&)>;
  void setEventSink(EventSink sink);

  /// Runs the whole simulation to completion and closes the trace files.
  void run();

  // --- accessors ---------------------------------------------------------
  Engine& engine() { return engine_; }
  const SimulationConfig& config() const { return config_; }
  int threadCount() const { return static_cast<int>(threads_.size()); }
  SimThread& thread(int id) { return threads_[static_cast<std::size_t>(id)]; }
  int taskCount() const { return static_cast<int>(config_.processes.size()); }
  /// Paths of the raw trace files, one per node, valid after run().
  std::vector<std::string> traceFilePaths() const;
  Tick finishTimeNs() const { return finishTime_; }
  const TraceSessionStats& sessionStats(NodeId node) const;

  // --- services for MpiService -------------------------------------------
  /// Makes a blocked thread runnable at `notBefore` (clamped to now).
  void wake(int threadId, Tick notBefore);
  /// Cuts a trace record attributed to `thread` at the current time, using
  /// the thread's node session and local clock.
  void cutEvent(const SimThread& thread, EventType type, std::uint8_t flags,
                const ByteWriter& payload);
  /// True when both tasks run on the same node (cheaper shared-memory
  /// message path).
  bool sameNode(TaskId a, TaskId b) const;

 private:
  struct Cpu {
    int running = -1;            ///< global thread id, -1 = idle
    std::uint64_t epoch = 0;     ///< invalidates stale quantum events
    Tick lastBusy = 0;           ///< for least-recently-used idle selection
    bool quantumArmed = false;
  };

  struct NodeRt {
    NodeConfig cfg;
    LocalClockModel clock;
    std::unique_ptr<TraceSession> session;
    std::vector<Cpu> cpus;
    std::deque<int> readyQueue;
    LogicalThreadId nextLtid = 0;
    LogicalThreadId daemonLtid = -1;
    int liveThreads = 0;
  };

  NodeRt& nodeOf(const SimThread& t) { return nodes_[static_cast<std::size_t>(t.node)]; }
  Tick localNow(NodeRt& node) const { return node.clock.read(engine_.now()); }

  void setupThreads();
  void cutThreadInfoRecords();
  void scheduleDaemonTick(NodeId node, Tick at);

  void makeReady(int threadId);
  void tryDispatch(NodeId node);
  void dispatchOn(NodeId node, int cpuIdx, int threadId,
                  LogicalThreadId prevLtid, bool prevExited = false);
  void armQuantum(NodeId node, int cpuIdx);
  void onQuantumExpiry(NodeId node, int cpuIdx, std::uint64_t epoch);
  void beginRun(int threadId, std::uint64_t epoch);
  void scheduleCompletion(int threadId);
  void onActivityDone(int threadId, std::uint64_t epoch);
  void interpret(int threadId);
  void blockThread(int threadId);
  void finishThread(int threadId);
  /// Releases the CPU the thread occupies and dispatches a successor (or
  /// leaves the CPU idle), cutting one dispatch record for the switch.
  void releaseCpu(int threadId);
  void onWake(int threadId);
  void resumeCall(int threadId);

  SimulationConfig config_;
  Engine engine_;
  std::vector<NodeRt> nodes_;
  std::vector<SimThread> threads_;
  std::vector<MarkerRegistry> markerRegistries_;  ///< one per process
  MpiService* mpi_ = nullptr;
  Rng rng_;
  int liveTotal_ = 0;
  Tick finishTime_ = 0;
  bool ran_ = false;
  std::uint64_t zeroStepGuard_ = 0;
};

}  // namespace ute
