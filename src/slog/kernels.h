// Width-agnostic columnar inner-loop kernels.
//
// The v2 columnar frame layout (slog_codec.h) exists so the hot loops —
// frame decode, `.utm` metric accumulation, preview-histogram binning —
// run over contiguous same-typed lanes instead of strided structs. The
// helpers here are deliberately plain C++: each is one tight loop with
// no cross-iteration dependence beyond a declared reduction, which is
// the shape clang and gcc autovectorize at -O2 for whatever SIMD width
// the target has (SSE/AVX/NEON/SVE) without a single intrinsic. Keep
// them branch-free inside the loop body; bench_io's decode sweep records
// the measured effect (see the vectorization note in BENCH_io.json).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ute::kernels {

/// OR-reduction over a u64 lane — validate a whole column's value range
/// with one vectorizable pass instead of a branch per element.
inline std::uint64_t laneOr(const std::uint64_t* lane, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= lane[i];
  return acc;
}

/// Sum-reduction over a u64 lane (wrapping; callers own overflow).
inline std::uint64_t laneSum(const std::uint64_t* lane, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += lane[i];
  return acc;
}

/// Clamped histogram bin: (t - origin) / width into [0, bins). Shared by
/// metric accumulation and preview binning so both agree on edge cases
/// (t at or before the origin lands in bin 0, the last bin absorbs
/// everything to the right of its start).
inline std::uint32_t binOf(std::uint64_t t, std::uint64_t origin,
                           std::uint64_t width, std::uint32_t bins) {
  if (t <= origin) return 0;
  const std::uint64_t b = (t - origin) / width;
  return b >= bins ? bins - 1 : static_cast<std::uint32_t>(b);
}

}  // namespace ute::kernels
