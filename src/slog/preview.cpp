#include "slog/preview.h"

#include <algorithm>

#include "support/errors.h"

namespace ute {

PreviewAccumulator::PreviewAccumulator(std::uint32_t bins,
                                       Tick initialBinWidth)
    : bins_(bins), binWidth_(initialBinWidth) {
  if (bins_ == 0) throw UsageError("preview needs at least one bin");
  if (binWidth_ == 0) binWidth_ = 1;
}

void PreviewAccumulator::ensureCovers(Tick t) {
  if (t <= origin_) return;
  while (origin_ + binWidth_ * bins_ < t) {
    // Double the bin width, merging bins pairwise.
    for (auto& [state, row] : perState_) {
      for (std::uint32_t i = 0; i < bins_ / 2; ++i) {
        row[i] = row[2 * i] + (2 * i + 1 < bins_ ? row[2 * i + 1] : 0.0);
      }
      std::fill(row.begin() + bins_ / 2, row.end(), 0.0);
    }
    binWidth_ *= 2;
  }
}

void PreviewAccumulator::add(std::uint32_t stateId, Tick start, Tick dura) {
  if (!haveOrigin_) {
    origin_ = start;
    haveOrigin_ = true;
  }
  if (start < origin_) start = origin_;  // clamp (should not happen)
  ensureCovers(start + dura);

  if (memoRow_ == nullptr || stateId != memoState_) {
    auto [it, inserted] = perState_.try_emplace(stateId);
    if (inserted) it->second.assign(bins_, 0.0);
    memoState_ = stateId;
    memoRow_ = &it->second;
  }
  std::vector<double>& row = *memoRow_;

  if (dura == 0) return;
  const Tick end = start + dura;
  const std::uint64_t bin0 = (start - origin_) / binWidth_;
  // Single-bin fast path — the common case, and bit-identical to the
  // loop below collapsing to one chunk (f64 adds must not be reordered:
  // preview bytes are compared verbatim across pipelines).
  if (bin0 < bins_ && end <= origin_ + (bin0 + 1) * binWidth_) {
    row[bin0] += static_cast<double>(dura);
    return;
  }
  // Spread [start, start+dura) over the bins it overlaps.
  Tick t = start;
  while (t < end) {
    const std::uint64_t bin = (t - origin_) / binWidth_;
    const Tick binEnd = origin_ + (bin + 1) * binWidth_;
    const Tick chunk = std::min(end, binEnd) - t;
    if (bin < bins_) row[bin] += static_cast<double>(chunk);
    t += chunk;
  }
}

SlogPreview PreviewAccumulator::snapshot(
    const std::vector<std::uint32_t>& stateOrder) const {
  SlogPreview p;
  p.origin = origin_;
  p.binWidth = binWidth_;
  p.bins = bins_;
  p.perStateBinTime.reserve(stateOrder.size());
  for (std::uint32_t id : stateOrder) {
    const auto it = perState_.find(id);
    if (it == perState_.end()) {
      p.perStateBinTime.emplace_back(bins_, 0.0);
    } else {
      p.perStateBinTime.push_back(it->second);
    }
  }
  return p;
}

SlogPreview rebinPreview(const SlogPreview& preview,
                         std::uint32_t targetBins) {
  if (targetBins == 0) throw UsageError("rebinPreview: zero target bins");
  SlogPreview out;
  out.origin = preview.origin;
  const Tick total = preview.binWidth * preview.bins;
  out.binWidth = (total + targetBins - 1) / targetBins;
  if (out.binWidth == 0) out.binWidth = 1;
  out.bins = targetBins;
  for (const auto& row : preview.perStateBinTime) {
    std::vector<double> newRow(targetBins, 0.0);
    for (std::uint32_t i = 0; i < preview.bins; ++i) {
      if (row[i] == 0.0) continue;
      // Spread source bin i proportionally over the target bins.
      const Tick srcStart = preview.binWidth * i;
      const Tick srcEnd = srcStart + preview.binWidth;
      Tick t = srcStart;
      while (t < srcEnd) {
        const std::uint64_t bin = std::min<std::uint64_t>(
            t / out.binWidth, targetBins - 1);
        const Tick binEnd = (bin + 1) * out.binWidth;
        const Tick chunk = std::min(srcEnd, binEnd) - t;
        newRow[bin] += row[i] * static_cast<double>(chunk) /
                       static_cast<double>(preview.binWidth);
        t += chunk;
      }
    }
    out.perStateBinTime.push_back(std::move(newRow));
  }
  return out;
}

}  // namespace ute
