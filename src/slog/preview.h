// Streaming preview accumulator.
//
// The total time range is unknown while the SLOG file is being built, so
// the accumulator starts with a fine bin width and doubles it (merging
// adjacent bins pairwise) whenever the run outgrows the binned range.
// Proportional allocation is exact under merging because bin contents are
// plain sums of overlap durations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "slog/slog_format.h"
#include "support/types.h"

namespace ute {

class PreviewAccumulator {
 public:
  explicit PreviewAccumulator(std::uint32_t bins = 240,
                              Tick initialBinWidth = kMs);

  /// Adds `dura` ns of state `stateId` starting at `start`, spread
  /// proportionally over the bins the interval overlaps.
  void add(std::uint32_t stateId, Tick start, Tick dura);

  /// Snapshot with rows ordered by `stateOrder` (ids absent from the
  /// accumulator produce zero rows).
  SlogPreview snapshot(const std::vector<std::uint32_t>& stateOrder) const;

 private:
  void ensureCovers(Tick t);

  std::uint32_t bins_;
  Tick origin_ = 0;
  bool haveOrigin_ = false;
  Tick binWidth_;
  std::map<std::uint32_t, std::vector<double>> perState_;
  /// One-entry row memo: merged records cluster by state, and std::map
  /// nodes are stable, so most add() calls skip the map lookup entirely.
  std::uint32_t memoState_ = 0;
  std::vector<double>* memoRow_ = nullptr;
};

/// Re-bins a preview to `targetBins` equal bins over its full range
/// (the viewer's "fixed number of time bins", e.g. the paper's 50).
SlogPreview rebinPreview(const SlogPreview& preview, std::uint32_t targetBins);

}  // namespace ute
