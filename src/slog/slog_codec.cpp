#include "slog/slog_codec.h"

#include <algorithm>
#include <array>

#include "slog/kernels.h"
#include "support/errors.h"

namespace ute {

const char* frameEncodingName(FrameEncoding encoding) {
  switch (encoding) {
    case FrameEncoding::kRow: return "row";
    case FrameEncoding::kColumnar: return "columnar";
  }
  return "?";
}

void putVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t getVarint(std::span<const std::uint8_t> data,
                        std::size_t& pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos >= data.size()) {
      throw FormatError("truncated varint at offset " + std::to_string(pos));
    }
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) {
      // The 10th byte carries bits 63..69; anything above bit 63 means
      // the encoding does not fit in u64.
      if (i == 9 && b > 1) {
        throw FormatError("over-long varint at offset " +
                          std::to_string(pos - 1));
      }
      return v;
    }
  }
  throw FormatError("varint longer than 10 bytes at offset " +
                    std::to_string(pos));
}

namespace {

/// Column ids. Interval columns are < 16, arrow columns >= 16, so a
/// column's record count (nIntervals vs nArrows) follows from its id and
/// future formats can add ids without breaking this reader.
enum : std::uint8_t {
  kColStateId = 0,
  kColFlags = 1,  ///< bebits in bits 0..7, pseudo in bit 8
  kColStart = 2,
  kColDura = 3,
  kColNode = 4,
  kColCpu = 5,
  kColThread = 6,
  kColSrcNode = 16,
  kColSrcThread = 17,
  kColSendTime = 18,
  kColDstNode = 19,
  kColDstThread = 20,
  kColRecvTime = 21,
  kColBytes = 22,
};

/// Column block payload encodings.
enum : std::uint8_t {
  kEncVarint = 1,  ///< one varint per record
  kEncDelta = 2,   ///< first value plain, then zigzag varint deltas
  kEncDict = 3,    ///< varint dict size, dict values, per-record indexes
};

/// Dictionaries only pay for themselves on genuinely small-cardinality
/// columns; past this many distinct values the scan stops early.
constexpr std::size_t kMaxDictValues = 64;

void encodePlainLane(const std::vector<std::uint64_t>& lane,
                     std::vector<std::uint8_t>& out) {
  for (std::uint64_t v : lane) putVarint(out, v);
}

void encodeDeltaLane(const std::vector<std::uint64_t>& lane,
                     std::vector<std::uint8_t>& out) {
  if (lane.empty()) return;
  putVarint(out, lane[0]);
  for (std::size_t i = 1; i < lane.size(); ++i) {
    putVarint(out, zigzagEncode(static_cast<std::int64_t>(lane[i] -
                                                          lane[i - 1])));
  }
}

/// Emits one column block: u8 id, u8 encoding, varint length, payload.
/// Non-time columns deterministically pick the smaller of plain-varint
/// and dictionary (dictionary in first-appearance order; plain wins ties).
void emitColumn(std::uint8_t id, bool isTime,
                const std::vector<std::uint64_t>& lane,
                std::vector<std::uint8_t>& out,
                std::vector<std::uint8_t>& scratch) {
  scratch.clear();
  std::uint8_t encoding = kEncVarint;
  if (isTime) {
    encoding = kEncDelta;
    encodeDeltaLane(lane, scratch);
  } else {
    encodePlainLane(lane, scratch);
    // Dictionary candidate: distinct values in first-appearance order.
    std::vector<std::uint64_t> dict;
    std::vector<std::uint32_t> indexes;
    indexes.reserve(lane.size());
    bool viable = true;
    for (std::uint64_t v : lane) {
      const auto it = std::find(dict.begin(), dict.end(), v);
      if (it == dict.end()) {
        if (dict.size() >= kMaxDictValues) {
          viable = false;
          break;
        }
        indexes.push_back(static_cast<std::uint32_t>(dict.size()));
        dict.push_back(v);
      } else {
        indexes.push_back(static_cast<std::uint32_t>(it - dict.begin()));
      }
    }
    if (viable && !lane.empty()) {
      std::vector<std::uint8_t> dictBytes;
      putVarint(dictBytes, dict.size());
      for (std::uint64_t v : dict) putVarint(dictBytes, v);
      for (std::uint32_t idx : indexes) putVarint(dictBytes, idx);
      if (dictBytes.size() < scratch.size()) {
        encoding = kEncDict;
        scratch.swap(dictBytes);
      }
    }
  }
  out.push_back(id);
  out.push_back(encoding);
  putVarint(out, scratch.size());
  out.insert(out.end(), scratch.begin(), scratch.end());
}

std::uint64_t packFlags(const SlogInterval& r) {
  return static_cast<std::uint64_t>(r.bebits) |
         (r.pseudo ? 0x100ull : 0ull);
}

}  // namespace

void encodeColumnarFrame(std::span<const SlogInterval> intervals,
                         std::span<const SlogArrow> arrows,
                         std::vector<std::uint8_t>& out) {
  putVarint(out, intervals.size());
  putVarint(out, arrows.size());

  std::vector<std::uint64_t> lane;
  std::vector<std::uint8_t> scratch;
  const auto column = [&](std::uint8_t id, bool isTime, auto&& get) {
    lane.clear();
    if (id < 16) {
      lane.reserve(intervals.size());
      for (const SlogInterval& r : intervals) lane.push_back(get(r));
    }
    emitColumn(id, isTime, lane, out, scratch);
  };
  const auto arrowColumn = [&](std::uint8_t id, bool isTime, auto&& get) {
    lane.clear();
    lane.reserve(arrows.size());
    for (const SlogArrow& a : arrows) lane.push_back(get(a));
    emitColumn(id, isTime, lane, out, scratch);
  };

  if (!intervals.empty()) {
    column(kColStateId, false,
           [](const SlogInterval& r) { return std::uint64_t{r.stateId}; });
    column(kColFlags, false, packFlags);
    column(kColStart, true,
           [](const SlogInterval& r) { return std::uint64_t{r.start}; });
    column(kColDura, false,
           [](const SlogInterval& r) { return std::uint64_t{r.dura}; });
    column(kColNode, false,
           [](const SlogInterval& r) { return zigzagEncode(r.node); });
    column(kColCpu, false,
           [](const SlogInterval& r) { return zigzagEncode(r.cpu); });
    column(kColThread, false,
           [](const SlogInterval& r) { return zigzagEncode(r.thread); });
  }
  if (!arrows.empty()) {
    arrowColumn(kColSrcNode, false,
                [](const SlogArrow& a) { return zigzagEncode(a.srcNode); });
    arrowColumn(kColSrcThread, false, [](const SlogArrow& a) {
      return zigzagEncode(a.srcThread);
    });
    arrowColumn(kColSendTime, true,
                [](const SlogArrow& a) { return std::uint64_t{a.sendTime}; });
    arrowColumn(kColDstNode, false,
                [](const SlogArrow& a) { return zigzagEncode(a.dstNode); });
    arrowColumn(kColDstThread, false, [](const SlogArrow& a) {
      return zigzagEncode(a.dstThread);
    });
    arrowColumn(kColRecvTime, true,
                [](const SlogArrow& a) { return std::uint64_t{a.recvTime}; });
    arrowColumn(kColBytes, false,
                [](const SlogArrow& a) { return std::uint64_t{a.bytes}; });
  }
}

namespace {

void decodeLane(std::span<const std::uint8_t> block, std::uint8_t encoding,
                std::size_t count, std::vector<std::uint64_t>& lane) {
  lane.resize(count);
  std::size_t pos = 0;
  switch (encoding) {
    case kEncVarint: {
      for (std::size_t i = 0; i < count; ++i) lane[i] = getVarint(block, pos);
      break;
    }
    case kEncDelta: {
      if (count > 0) {
        lane[0] = getVarint(block, pos);
        for (std::size_t i = 1; i < count; ++i) {
          lane[i] = lane[i - 1] +
                    static_cast<std::uint64_t>(
                        zigzagDecode(getVarint(block, pos)));
        }
      }
      break;
    }
    case kEncDict: {
      const std::uint64_t dictSize = getVarint(block, pos);
      // A dictionary can never usefully exceed the record count, and a
      // corrupt size must not drive a huge allocation.
      if (dictSize > count && dictSize > kMaxDictValues) {
        throw FormatError("columnar dictionary larger than the column");
      }
      std::vector<std::uint64_t> dict(static_cast<std::size_t>(dictSize));
      for (std::uint64_t& v : dict) v = getVarint(block, pos);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t idx = getVarint(block, pos);
        if (idx >= dictSize) {
          throw FormatError("columnar dictionary index out of range");
        }
        lane[i] = dict[static_cast<std::size_t>(idx)];
      }
      break;
    }
    default:
      throw FormatError("unknown column encoding " +
                        std::to_string(encoding));
  }
  if (pos != block.size()) {
    throw FormatError("column block has " +
                      std::to_string(block.size() - pos) +
                      " trailing bytes");
  }
}

}  // namespace

void decodeColumnarFrame(std::span<const std::uint8_t> payload,
                         SlogFrameData& out, const std::string& context) {
  const auto fail = [&context](const std::string& what) -> void {
    throw FormatError("corrupt columnar SLOG frame: " + what + context);
  };
  try {
    out.intervals.clear();
    out.arrows.clear();
    std::size_t pos = 0;
    const std::uint64_t nIntervals = getVarint(payload, pos);
    const std::uint64_t nArrows = getVarint(payload, pos);
    // Every present column spends at least one byte per record, so a
    // claimed record count beyond the payload size is corruption — and
    // must be rejected before it sizes any allocation.
    if (nIntervals > payload.size() || nArrows > payload.size()) {
      fail("record count exceeds payload size");
    }

    // Lanes indexed by column id; ids outside the known set are skipped
    // by their recorded length.
    std::array<std::vector<std::uint64_t>, 23> lanes;
    std::array<bool, 23> seen{};
    const auto known = [](std::uint8_t id) {
      return id <= kColThread || (id >= kColSrcNode && id <= kColBytes);
    };
    while (pos < payload.size()) {
      if (payload.size() - pos < 2) fail("truncated column header");
      const std::uint8_t id = payload[pos++];
      const std::uint8_t encoding = payload[pos++];
      const std::uint64_t len = getVarint(payload, pos);
      if (len > payload.size() - pos) fail("column block exceeds payload");
      const std::span<const std::uint8_t> block =
          payload.subspan(pos, static_cast<std::size_t>(len));
      pos += static_cast<std::size_t>(len);
      if (!known(id)) continue;
      if (seen[id]) fail("duplicate column " + std::to_string(id));
      const std::size_t count = static_cast<std::size_t>(
          id < 16 ? nIntervals : nArrows);
      decodeLane(block, encoding, count, lanes[id]);
      seen[id] = true;
    }

    if (nIntervals > 0) {
      for (std::uint8_t id = kColStateId; id <= kColThread; ++id) {
        if (!seen[id]) fail("missing interval column " + std::to_string(id));
      }
    }
    if (nArrows > 0) {
      for (std::uint8_t id = kColSrcNode; id <= kColBytes; ++id) {
        if (!seen[id]) fail("missing arrow column " + std::to_string(id));
      }
    }

    // Column-to-struct transpose: one tight loop per field over its lane
    // (the autovectorizable shape the columnar layout exists for).
    out.intervals.resize(static_cast<std::size_t>(nIntervals));
    if (nIntervals > 0) {
      SlogInterval* iv = out.intervals.data();
      const std::size_t n = out.intervals.size();
      if (kernels::laneOr(lanes[kColFlags].data(), n) & ~0x1ffull) {
        fail("interval flags column has unknown bits");
      }
      const std::uint64_t* lane = lanes[kColStateId].data();
      for (std::size_t i = 0; i < n; ++i) {
        iv[i].stateId = static_cast<std::uint32_t>(lane[i]);
      }
      lane = lanes[kColFlags].data();
      for (std::size_t i = 0; i < n; ++i) {
        iv[i].bebits = static_cast<std::uint8_t>(lane[i]);
        iv[i].pseudo = (lane[i] & 0x100) != 0;
      }
      lane = lanes[kColStart].data();
      for (std::size_t i = 0; i < n; ++i) iv[i].start = lane[i];
      lane = lanes[kColDura].data();
      for (std::size_t i = 0; i < n; ++i) iv[i].dura = lane[i];
      lane = lanes[kColNode].data();
      for (std::size_t i = 0; i < n; ++i) {
        iv[i].node = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
      lane = lanes[kColCpu].data();
      for (std::size_t i = 0; i < n; ++i) {
        iv[i].cpu = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
      lane = lanes[kColThread].data();
      for (std::size_t i = 0; i < n; ++i) {
        iv[i].thread = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
    }

    out.arrows.resize(static_cast<std::size_t>(nArrows));
    if (nArrows > 0) {
      SlogArrow* ar = out.arrows.data();
      const std::size_t n = out.arrows.size();
      const std::uint64_t* lane = lanes[kColSrcNode].data();
      for (std::size_t i = 0; i < n; ++i) {
        ar[i].srcNode = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
      lane = lanes[kColSrcThread].data();
      for (std::size_t i = 0; i < n; ++i) {
        ar[i].srcThread = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
      lane = lanes[kColSendTime].data();
      for (std::size_t i = 0; i < n; ++i) ar[i].sendTime = lane[i];
      lane = lanes[kColDstNode].data();
      for (std::size_t i = 0; i < n; ++i) {
        ar[i].dstNode = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
      lane = lanes[kColDstThread].data();
      for (std::size_t i = 0; i < n; ++i) {
        ar[i].dstThread = static_cast<std::int32_t>(zigzagDecode(lane[i]));
      }
      lane = lanes[kColRecvTime].data();
      for (std::size_t i = 0; i < n; ++i) ar[i].recvTime = lane[i];
      lane = lanes[kColBytes].data();
      for (std::size_t i = 0; i < n; ++i) {
        ar[i].bytes = static_cast<std::uint32_t>(lane[i]);
      }
    }
  } catch (const FormatError& e) {
    if (context.empty()) throw;
    std::string what = e.what();
    if (what.find(context) != std::string::npos) throw;
    throw FormatError(what + context);
  }
}

void encodeRowInterval(std::vector<std::uint8_t>& out,
                       const SlogInterval& r) {
  const auto le32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto le64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  out.push_back(0);  // kind: interval
  le32(r.stateId);
  out.push_back(r.bebits);
  out.push_back(r.pseudo ? 1 : 0);
  le64(r.start);
  le64(r.dura);
  le32(static_cast<std::uint32_t>(r.node));
  le32(static_cast<std::uint32_t>(r.cpu));
  le32(static_cast<std::uint32_t>(r.thread));
}

void encodeRowArrow(std::vector<std::uint8_t>& out, const SlogArrow& a) {
  const auto le32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto le64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  out.push_back(1);  // kind: arrow
  le32(static_cast<std::uint32_t>(a.srcNode));
  le32(static_cast<std::uint32_t>(a.srcThread));
  le64(a.sendTime);
  le32(static_cast<std::uint32_t>(a.dstNode));
  le32(static_cast<std::uint32_t>(a.dstThread));
  le64(a.recvTime);
  le32(a.bytes);
}

}  // namespace ute
