// SLOG frame codec: the row (v1) and columnar-compressed (v2) frame
// payload encodings, shared by the file writer/reader and the server
// wire protocol so there is exactly one implementation of each layout.
//
// v2 groups a frame's records field-by-field (column-major), encodes
// every column as LEB128 varints — timestamp columns as a running delta
// (zigzag, because frames are sealed in ascending *end*-time order, so
// start-time deltas can be negative), signed id columns as zigzag, and
// small-cardinality columns through an optional first-appearance-order
// dictionary — and wraps each column in a self-describing block header
// so readers can skip columns they do not know. See docs/FORMAT.md §4a
// for the normative byte layout.
//
// This header is also the project's only home for varint/zigzag
// primitives (enforced by tools/utelint.py codec-containment): every
// other layer encodes through encodeColumnarFrame()/decodeColumnarFrame().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "slog/slog_format.h"

namespace ute {

/// How a frame payload (on disk or on the wire) is laid out.
enum class FrameEncoding : std::uint8_t {
  kRow = 0,       ///< v1: interleaved fixed-width records, one kind byte each
  kColumnar = 1,  ///< v2: column blocks, delta/varint/dictionary compressed
};

const char* frameEncodingName(FrameEncoding encoding);

// --- varint / zigzag primitives (LEB128, little-endian 7-bit groups) -------

/// Appends `v` as 1..10 bytes, 7 payload bits per byte, MSB = continue.
void putVarint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Decodes one varint at `pos`, advancing it. Throws FormatError on a
/// truncated or over-long (> 10 byte) encoding.
std::uint64_t getVarint(std::span<const std::uint8_t> data, std::size_t& pos);

/// Maps signed values to unsigned so small magnitudes stay small:
/// 0,-1,1,-2,2,... -> 0,1,2,3,4,...  (all-unsigned arithmetic; UBSan-clean).
constexpr std::uint64_t zigzagEncode(std::int64_t v) {
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  return (u << 1) ^ (0 - (u >> 63));
}

constexpr std::int64_t zigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

// --- columnar (v2) frame payloads ------------------------------------------

/// Encodes one frame's records as a v2 columnar payload, appended to
/// `out`. Deterministic: the same records always produce the same bytes
/// (dictionary use is decided by a fixed size comparison, dictionary
/// order is first appearance).
void encodeColumnarFrame(std::span<const SlogInterval> intervals,
                         std::span<const SlogArrow> arrows,
                         std::vector<std::uint8_t>& out);

/// Decodes a v2 columnar payload into `out` (cleared first). Throws
/// FormatError on malformed input — truncated varints, bad dictionary
/// indexes, missing required columns, trailing bytes. `context` (e.g.
/// "path @offset") is appended to error messages when non-empty.
void decodeColumnarFrame(std::span<const std::uint8_t> payload,
                         SlogFrameData& out,
                         const std::string& context = std::string());

/// Row (v1) record payloads: the exact layout SLOG v1 frames and the v1
/// wire protocol use. Kept here so the writer, reader and protocol share
/// one implementation.
void encodeRowInterval(std::vector<std::uint8_t>& out, const SlogInterval& r);
void encodeRowArrow(std::vector<std::uint8_t>& out, const SlogArrow& a);

}  // namespace ute
