// SLOG ("scalable log") file format shared definitions (Section 4).
//
// SLOG answers the two problems a viewer of huge trace files faces:
// rapid access to any time interval (a frame index keyed by time — given
// a time it is easy to locate the frame containing it), and accurate
// portrayal near frame edges (pseudo-interval records restating the
// states and messages that cross into a frame from outside it). A
// preview histogram — state counters accumulated during SLOG
// construction with proportional allocation of durations into a fixed
// number of time bins — lets the viewer draw the whole run instantly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interval/file_writer.h"
#include "support/types.h"

namespace ute {

inline constexpr std::uint32_t kSlogMagic = 0x53455455;  // "UTES"
/// Current (default) file format version. v2 frames are columnar
/// compressed (slog_codec.h); v1 frames are row-major fixed width.
inline constexpr std::uint32_t kSlogVersion = 2;
/// Oldest version this build still reads and writes. v1 files remain
/// readable forever; `--slog-v1` keeps producing them.
inline constexpr std::uint32_t kSlogMinVersion = 1;

/// Visualization state ids: MPI states reuse their EventType value;
/// user-marker states get kMarkerStateBase + unified marker id (each
/// marker string is its own colored state, as in Jumpshot).
inline constexpr std::uint32_t kMarkerStateBase = 1000;

struct SlogStateDef {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t rgb = 0x888888;
};

struct SlogInterval {
  std::uint32_t stateId = 0;
  std::uint8_t bebits = 0b11;
  bool pseudo = false;  ///< restated at a frame start, not a real piece
  Tick start = 0;
  Tick dura = 0;
  NodeId node = 0;
  std::int32_t cpu = 0;
  LogicalThreadId thread = 0;

  Tick end() const { return start + dura; }
};

/// A matched point-to-point message, drawn as an arrow from the send
/// call's start to the receive call's end.
struct SlogArrow {
  NodeId srcNode = 0;
  LogicalThreadId srcThread = 0;
  Tick sendTime = 0;
  NodeId dstNode = 0;
  LogicalThreadId dstThread = 0;
  Tick recvTime = 0;
  std::uint32_t bytes = 0;
};

struct SlogFrameData {
  std::vector<SlogInterval> intervals;
  std::vector<SlogArrow> arrows;
};

/// The shared immutable frame handle the whole read side trades in: the
/// reader decodes a frame once into a SlogFramePtr, and the server
/// cache, metric passes, viewers and wire encoders all reference that
/// one decoded frame — never a private copy.
using SlogFramePtr = std::shared_ptr<const SlogFrameData>;

struct SlogFrameIndexEntry {
  std::uint64_t offset = 0;
  std::uint32_t sizeBytes = 0;  ///< encoded payload size; NOT records × width
  std::uint32_t records = 0;
  Tick timeStart = 0;  ///< frames tile the run's time without gaps
  Tick timeEnd = 0;
  /// Frame payload encoding tag (FrameEncoding): 0 = row (v1), 1 =
  /// columnar (v2). Stored per frame in v2 index entries; v1 files have
  /// 32-byte entries with no tag and every frame is row-encoded.
  std::uint32_t encoding = 0;
};

/// On-disk frame index entry sizes. A v2 entry is the v1 entry plus a
/// trailing u32 encoding tag, so the v1 prefix layout never moves.
inline constexpr std::uint32_t kSlogIndexEntryBytesV1 = 32;
inline constexpr std::uint32_t kSlogIndexEntryBytesV2 = 36;

/// The preview histogram: for each state, time spent per bin (ns),
/// durations allocated proportionally across the bins they overlap.
struct SlogPreview {
  Tick origin = 0;
  Tick binWidth = 0;
  std::uint32_t bins = 0;
  /// Parallel to the state definition table.
  std::vector<std::vector<double>> perStateBinTime;
};

}  // namespace ute
