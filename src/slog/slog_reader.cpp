#include "slog/slog_reader.h"

#include <algorithm>

#include "slog/slog_codec.h"
#include "support/errors.h"

namespace ute {

namespace {
constexpr std::uint32_t kSlogHeaderBytes = 64;
}

namespace {

/// Corrupt-file guard: frame offsets, table offsets and counts all come
/// from the file itself, so each is checked against the real byte count
/// before any read that would trust it.
void requireWithin(std::uint64_t offset, std::uint64_t bytes,
                   std::uint64_t fileSize, const std::string& path,
                   const char* what) {
  if (offset > fileSize || bytes > fileSize - offset) {
    throw CorruptFileError("corrupt SLOG file: " + std::string(what) + " [" +
                           std::to_string(offset) + ", +" +
                           std::to_string(bytes) + ") exceeds file size " +
                           std::to_string(fileSize) + ioContext(path, offset));
  }
}

}  // namespace

SlogReader::SlogReader(const std::string& path, ByteSource::Mode mode)
    : source_(path, mode) {
  const std::uint64_t fileSize = source_.size();
  requireWithin(0, kSlogHeaderBytes, fileSize, path, "header");
  const FrameBuf headerBytes = source_.fetch(0, kSlogHeaderBytes);
  ByteReader r = headerBytes.reader();
  if (r.u32() != kSlogMagic) throw FormatError("not a SLOG file: " + path);
  formatVersion_ = r.u32();
  if (formatVersion_ < kSlogMinVersion || formatVersion_ > kSlogVersion) {
    throw FormatError("unsupported SLOG version " +
                      std::to_string(formatVersion_) + " in " + path);
  }
  const std::uint32_t stateCount = r.u32();
  const std::uint32_t threadCount = r.u32();
  const std::uint32_t frameCount = r.u32();
  r.u32();  // records per frame (informational)
  totalStart_ = r.u64();
  totalEnd_ = r.u64();
  const std::uint64_t indexOffset = r.u64();
  const std::uint64_t stateOffset = r.u64();
  const std::uint64_t previewOffset = r.u64();

  requireWithin(kSlogHeaderBytes,
                std::uint64_t{threadCount} * kThreadEntryBytes, fileSize,
                path, "thread table");
  const std::uint32_t entryBytes = formatVersion_ >= 2
                                       ? kSlogIndexEntryBytesV2
                                       : kSlogIndexEntryBytesV1;
  requireWithin(indexOffset, std::uint64_t{frameCount} * entryBytes, fileSize,
                path, "frame index");
  if (stateOffset > previewOffset) {
    throw CorruptFileError(
        "corrupt SLOG file: state table offset follows preview offset" +
        ioContext(path, stateOffset));
  }
  requireWithin(stateOffset, previewOffset - stateOffset, fileSize, path,
                "state table");
  requireWithin(previewOffset, 0, fileSize, path, "preview");

  const FrameBuf tableBytes =
      source_.fetch(kSlogHeaderBytes, threadCount * kThreadEntryBytes);
  ByteReader tr = tableBytes.reader();
  threads_.reserve(threadCount);
  for (std::uint32_t i = 0; i < threadCount; ++i) {
    ThreadEntry t;
    t.task = tr.i32();
    t.pid = tr.i32();
    t.systemTid = tr.i32();
    t.node = tr.i32();
    t.ltid = tr.i32();
    t.type = static_cast<ThreadType>(tr.u8());
    threads_.push_back(t);
  }

  const FrameBuf indexBytes =
      source_.fetch(indexOffset, frameCount * entryBytes);
  ByteReader ir = indexBytes.reader();
  index_.reserve(frameCount);
  for (std::uint32_t i = 0; i < frameCount; ++i) {
    SlogFrameIndexEntry e;
    e.offset = ir.u64();
    e.sizeBytes = ir.u32();
    e.records = ir.u32();
    e.timeStart = ir.u64();
    e.timeEnd = ir.u64();
    // v1 entries carry no tag: every v1 frame is row-encoded.
    e.encoding = formatVersion_ >= 2 ? ir.u32() : 0;
    requireWithin(e.offset, e.sizeBytes, fileSize, path,
                  ("frame " + std::to_string(i) + " extent").c_str());
    if (e.offset < kSlogHeaderBytes || e.timeEnd < e.timeStart ||
        e.encoding >
            static_cast<std::uint32_t>(FrameEncoding::kColumnar)) {
      throw CorruptFileError("corrupt SLOG file: frame index entry " +
                             std::to_string(i) + " is inconsistent" +
                             ioContext(path, e.offset));
    }
    index_.push_back(e);
  }

  const FrameBuf stateBytes = source_.fetch(
      stateOffset, static_cast<std::size_t>(previewOffset - stateOffset));
  ByteReader sr = stateBytes.reader();
  states_.reserve(stateCount);
  for (std::uint32_t i = 0; i < stateCount; ++i) {
    SlogStateDef s;
    s.id = sr.u32();
    s.rgb = sr.u32();
    s.name = sr.lstring();
    states_.push_back(std::move(s));
  }

  const FrameBuf previewBytes = source_.fetch(
      previewOffset, static_cast<std::size_t>(fileSize - previewOffset));
  ByteReader pr = previewBytes.reader();
  preview_.origin = pr.u64();
  preview_.binWidth = pr.u64();
  preview_.bins = pr.u32();
  preview_.perStateBinTime.reserve(stateCount);
  for (std::uint32_t s = 0; s < stateCount; ++s) {
    std::vector<double> row(preview_.bins);
    for (std::uint32_t b = 0; b < preview_.bins; ++b) row[b] = pr.f64();
    preview_.perStateBinTime.push_back(std::move(row));
  }
}

std::string SlogReader::stateName(std::uint32_t stateId) const {
  for (const SlogStateDef& s : states_) {
    if (s.id == stateId) return s.name;
  }
  return "state" + std::to_string(stateId);
}

std::optional<std::size_t> SlogReader::frameIndexFor(Tick t) const {
  if (index_.empty()) return std::nullopt;
  // Frames tile the run: first frame whose timeEnd >= t, if it covers t.
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), t,
      [](const SlogFrameIndexEntry& e, Tick v) { return e.timeEnd < v; });
  if (it == index_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - index_.begin());
}

SlogFramePtr SlogReader::readFrame(std::size_t frameIdx) const {
  if (frameIdx >= index_.size()) {
    throw UsageError("SLOG frame index out of range");
  }
  const SlogFrameIndexEntry& entry = index_[frameIdx];
  // The extent was validated against the file size at open; fetch()
  // re-checks against the mapping bounds, so a file truncated after open
  // still fails typed instead of faulting.
  const FrameBuf bytes = source_.fetch(entry.offset, entry.sizeBytes);
  auto data = std::make_shared<SlogFrameData>();
  if (entry.encoding ==
      static_cast<std::uint32_t>(FrameEncoding::kColumnar)) {
    decodeColumnarFrame(bytes.bytes(), *data,
                        ioContext(path(), entry.offset));
    if (data->intervals.size() + data->arrows.size() != entry.records) {
      throw CorruptFileError(
          "corrupt SLOG file: frame record count mismatch" +
          ioContext(path(), entry.offset));
    }
    return data;
  }
  ByteReader r = bytes.reader();
  for (std::uint32_t i = 0; i < entry.records; ++i) {
    const std::uint8_t kind = r.u8();
    if (kind == 0) {
      SlogInterval rec;
      rec.stateId = r.u32();
      rec.bebits = r.u8();
      rec.pseudo = r.u8() != 0;
      rec.start = r.u64();
      rec.dura = r.u64();
      rec.node = r.i32();
      rec.cpu = r.i32();
      rec.thread = r.i32();
      data->intervals.push_back(rec);
    } else if (kind == 1) {
      SlogArrow a;
      a.srcNode = r.i32();
      a.srcThread = r.i32();
      a.sendTime = r.u64();
      a.dstNode = r.i32();
      a.dstThread = r.i32();
      a.recvTime = r.u64();
      a.bytes = r.u32();
      data->arrows.push_back(a);
    } else {
      throw FormatError("unknown SLOG record kind " + std::to_string(kind) +
                        ioContext(path(), entry.offset + r.pos() - 1));
    }
  }
  return data;
}

}  // namespace ute
