// SLOG reader: loads the header, state table, thread table, time-keyed
// frame index, and preview; reads individual frames on demand. The
// viewer's scalability property — locating and loading the frame for any
// chosen time without touching the rest of the file — lives in
// frameIndexFor() + readFrame().
//
// The reader sits on the zero-copy ByteSource layer: on the mmap path a
// frame read decodes straight out of the mapping with no intermediate
// byte copy, and on the stdio fallback the raw bytes come from a pooled
// buffer. All metadata (index, tables, preview) is immutable after
// construction, and every frame offset/size from the index is validated
// against the actual file size up front (a corrupt or truncated file
// throws CorruptFileError instead of decoding garbage).
//
// readFrame() is const and thread-safe — ByteSource needs no per-thread
// file handles — and returns a SlogFramePtr, the shared immutable frame
// handle every consumer (server cache, metrics, viewers) holds without
// copying. N threads can pull frames from one shared reader concurrently;
// this is the read path the trace-query service builds on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "slog/slog_format.h"
#include "support/byte_source.h"

namespace ute {

class SlogReader {
 public:
  explicit SlogReader(const std::string& path,
                      ByteSource::Mode mode = ByteSource::Mode::kAuto);

  Tick totalStart() const { return totalStart_; }
  Tick totalEnd() const { return totalEnd_; }
  /// SLOG format version of the open file (1 = row frames, 2 = columnar).
  std::uint32_t formatVersion() const { return formatVersion_; }
  const std::vector<SlogStateDef>& states() const { return states_; }
  const std::vector<ThreadEntry>& threads() const { return threads_; }
  const std::vector<SlogFrameIndexEntry>& frameIndex() const { return index_; }
  const SlogPreview& preview() const { return preview_; }

  /// Name of a state id (from the state table), or a placeholder.
  std::string stateName(std::uint32_t stateId) const;

  /// Binary search of the frame index: the frame whose time range
  /// contains `t`, or nullopt outside the run.
  std::optional<std::size_t> frameIndexFor(Tick t) const;

  /// Decodes one frame into a shared immutable handle. Thread-safe.
  SlogFramePtr readFrame(std::size_t frameIdx) const;

  const std::string& path() const { return source_.path(); }
  const ByteSource& source() const { return source_; }

 private:
  ByteSource source_;
  std::uint32_t formatVersion_ = kSlogVersion;
  Tick totalStart_ = 0;
  Tick totalEnd_ = 0;
  std::vector<SlogStateDef> states_;
  std::vector<ThreadEntry> threads_;
  std::vector<SlogFrameIndexEntry> index_;
  SlogPreview preview_;
};

}  // namespace ute
