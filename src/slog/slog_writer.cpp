#include "slog/slog_writer.h"

#include <algorithm>

#include "interval/standard_profile.h"
#include "slog/slog_codec.h"
#include "support/errors.h"

namespace ute {

namespace {

constexpr std::size_t kSlogHeaderBytes = 64;

/// Deterministic color palette (RGB), cycled over state indices.
constexpr std::uint32_t kPalette[] = {
    0x4c72b0, 0xdd8452, 0x55a868, 0xc44e52, 0x8172b3, 0x937860,
    0xda8bc3, 0x8c8c8c, 0xccb974, 0x64b5cd, 0x2f4b7c, 0xffa600,
};

}  // namespace

SlogWriter::SlogWriter(const std::string& path, const SlogOptions& options,
                       const Profile& profile,
                       std::vector<ThreadEntry> threads,
                       const std::map<std::uint32_t, std::string>& markers)
    : path_(path), options_(options), profile_(profile), file_(path),
      threads_(std::move(threads)), preview_(options.previewBins) {
  if (options_.recordsPerFrame == 0) options_.recordsPerFrame = 4096;
  if (options_.formatVersion < kSlogMinVersion ||
      options_.formatVersion > kSlogVersion) {
    throw UsageError("unsupported SLOG format version " +
                     std::to_string(options_.formatVersion));
  }

  // Pre-register every state deterministically: the Running default
  // state, each MPI routine, and one state per unified marker string.
  registerState(static_cast<std::uint32_t>(kRunningState), "Running");
  registerState(static_cast<std::uint32_t>(EventType::kIoRead), "IoRead");
  registerState(static_cast<std::uint32_t>(EventType::kIoWrite), "IoWrite");
  registerState(static_cast<std::uint32_t>(EventType::kPageFault),
                "PageFault");
  for (std::uint16_t e = static_cast<std::uint16_t>(EventType::kMpiInit);
       e <= static_cast<std::uint16_t>(EventType::kMpiLast); ++e) {
    registerState(e, eventTypeName(static_cast<EventType>(e)));
  }
  for (const auto& [id, name] : markers) {
    registerState(kMarkerStateBase + id, name);
  }

  // Header placeholder + thread table; patched in close().
  ByteWriter header;
  header.u32(kSlogMagic);
  header.u32(options_.formatVersion);
  header.u32(0);  // state count (patched)
  header.u32(static_cast<std::uint32_t>(threads_.size()));
  header.u32(0);  // frame count (patched)
  header.u32(options_.recordsPerFrame);
  header.u64(0);  // total start (patched)
  header.u64(0);  // total end (patched)
  header.u64(0);  // frame index offset (patched)
  header.u64(0);  // state table offset (patched)
  header.u64(0);  // preview offset (patched)
  if (header.size() != kSlogHeaderBytes) {
    throw UsageError("SLOG header layout drifted");
  }
  file_.write(header);

  ByteWriter table;
  for (const ThreadEntry& t : threads_) {
    table.i32(t.task);
    table.i32(t.pid);
    table.i32(t.systemTid);
    table.i32(t.node);
    table.i32(t.ltid);
    table.u8(static_cast<std::uint8_t>(t.type));
  }
  file_.write(table);
}

void SlogWriter::registerState(std::uint32_t id, const std::string& name) {
  if (stateIndex_.find(id) != stateIndex_.end()) return;
  SlogStateDef def;
  def.id = id;
  def.name = name;
  def.rgb = kPalette[states_.size() % std::size(kPalette)];
  stateIndex_.emplace(id, states_.size());
  states_.push_back(std::move(def));
}

SlogWriter::~SlogWriter() {
  try {
    close();
  } catch (...) {
  }
}

const FieldAccessor& SlogWriter::accessor(IntervalType type,
                                          const char* name) {
  const auto key = std::make_pair(type, std::string(name));
  auto it = accessors_.find(key);
  if (it == accessors_.end()) {
    it = accessors_
             .emplace(key, std::make_unique<FieldAccessor>(
                               profile_, type, kMergedFileMask, name))
             .first;
  }
  return *it->second;
}

std::uint32_t SlogWriter::stateIdFor(const RecordView& record) {
  const EventType event = record.eventType();
  if (event == EventType::kUserMarker) {
    const auto markerId =
        accessor(record.intervalType, kFieldMarkerId).get(record);
    return kMarkerStateBase + static_cast<std::uint32_t>(markerId.value_or(0));
  }
  return static_cast<std::uint32_t>(event);
}

void SlogWriter::addRecord(const RecordView& record) {
  if (closed_) throw UsageError("SlogWriter: addRecord after close");
  if (record.eventType() == kClockSyncState) return;

  const std::uint32_t stateId = stateIdFor(record);
  registerState(stateId, "state" + std::to_string(stateId));

  maybeStartFrame(record.start);

  SlogInterval interval;
  interval.stateId = stateId;
  interval.bebits = static_cast<std::uint8_t>(record.bebits());
  interval.pseudo = false;
  interval.start = record.start;
  interval.dura = record.dura;
  interval.node = record.node;
  interval.cpu = record.cpu;
  interval.thread = record.thread;
  appendInterval(interval);
  preview_.add(stateId, record.start, record.dura);
  minStart_ = std::min(minStart_, record.start);

  // Open-state bookkeeping for the pseudo-intervals of later frames.
  const Bebits bebits = record.bebits();
  const auto threadKey = std::make_pair(record.node, record.thread);
  if (bebits == Bebits::kBegin) {
    openStates_[threadKey].push_back(
        {stateId, record.node, record.cpu, record.thread});
  } else if (bebits == Bebits::kEnd) {
    auto& stack = openStates_[threadKey];
    if (!stack.empty()) stack.pop_back();
  }

  // Arrow matching via the per-message sequence numbers.
  const EventType event = record.eventType();
  if ((event == EventType::kMpiSend || event == EventType::kMpiIsend) &&
      isFirstPiece(bebits)) {
    const auto seqno = accessor(record.intervalType, kFieldSeqNo).get(record);
    const auto bytes =
        accessor(record.intervalType, kFieldMsgSizeSent).get(record);
    if (seqno && *seqno > 0) {
      pendingSends_[static_cast<std::uint32_t>(*seqno)] = {
          record.node, record.thread, record.start,
          static_cast<std::uint32_t>(bytes.value_or(0))};
    }
  } else if ((event == EventType::kMpiRecv || event == EventType::kMpiWait) &&
             isLastPiece(bebits)) {
    const auto seqno = accessor(record.intervalType, kFieldSeqNo).get(record);
    if (seqno && *seqno > 0) {
      const auto it = pendingSends_.find(static_cast<std::uint32_t>(*seqno));
      if (it != pendingSends_.end()) {
        SlogArrow arrow;
        arrow.srcNode = it->second.node;
        arrow.srcThread = it->second.thread;
        arrow.sendTime = it->second.sendTime;
        arrow.dstNode = record.node;
        arrow.dstThread = record.thread;
        arrow.recvTime = record.end();
        arrow.bytes = it->second.bytes;
        pendingSends_.erase(it);
        appendArrow(arrow);
      }
    }
  }

  maxEnd_ = std::max(maxEnd_, record.end());
  if (frameRecords_ >= options_.recordsPerFrame) finalizeFrame();
}

void SlogWriter::maybeStartFrame(Tick) {
  if (frameRecords_ != 0 || (index_.empty() && intervalsWritten_ == 0)) {
    return;
  }
  // First records of a new (non-initial) frame: restate the still-open
  // states as zero-duration pseudo-intervals at the frame boundary.
  const Tick boundary = frameTimeStart_;
  for (const auto& [key, stack] : openStates_) {
    for (const OpenState& s : stack) {
      SlogInterval pseudo;
      pseudo.stateId = s.stateId;
      pseudo.bebits = static_cast<std::uint8_t>(Bebits::kContinuation);
      pseudo.pseudo = true;
      pseudo.start = boundary;
      pseudo.dura = 0;
      pseudo.node = s.node;
      pseudo.cpu = s.cpu;
      pseudo.thread = s.thread;
      appendInterval(pseudo);
    }
  }
}

void SlogWriter::appendInterval(const SlogInterval& interval) {
  const bool columnar = options_.formatVersion >= 2;
  if (columnar || sealHook_) frameData_.intervals.push_back(interval);
  if (!columnar) encodeRowInterval(frameBytes_, interval);
  ++frameRecords_;
  ++intervalsWritten_;
}

void SlogWriter::appendArrow(const SlogArrow& arrow) {
  const bool columnar = options_.formatVersion >= 2;
  if (columnar || sealHook_) frameData_.arrows.push_back(arrow);
  if (!columnar) encodeRowArrow(frameBytes_, arrow);
  ++frameRecords_;
  ++arrowsWritten_;
}

void SlogWriter::finalizeFrame() {
  if (frameRecords_ == 0) return;
  const bool columnar = options_.formatVersion >= 2;
  if (columnar) {
    // The whole frame is in hand, so the columnar payload is encoded in
    // one pass at seal time (column grouping needs every record).
    frameBytes_.clear();
    encodeColumnarFrame(frameData_.intervals, frameData_.arrows,
                        frameBytes_);
  }
  SlogFrameIndexEntry entry;
  entry.offset = file_.tell();
  entry.sizeBytes = static_cast<std::uint32_t>(frameBytes_.size());
  entry.records = frameRecords_;
  entry.timeStart = frameTimeStart_;
  entry.timeEnd = std::max(maxEnd_, frameTimeStart_);
  entry.encoding = static_cast<std::uint32_t>(
      columnar ? FrameEncoding::kColumnar : FrameEncoding::kRow);
  file_.write(frameBytes_);
  index_.push_back(entry);
  if (sealHook_) {
    sealHook_(entry, std::make_shared<const SlogFrameData>(
                         std::move(frameData_)));
  }
  frameData_.intervals.clear();
  frameData_.arrows.clear();
  frameBytes_.clear();
  frameRecords_ = 0;
  frameTimeStart_ = entry.timeEnd;  // frames tile the run's time
}

void SlogWriter::close() {
  if (closed_) return;
  finalizeFrame();

  const std::uint64_t indexOffset = file_.tell();
  ByteWriter indexBytes;
  for (const SlogFrameIndexEntry& e : index_) {
    indexBytes.u64(e.offset);
    indexBytes.u32(e.sizeBytes);
    indexBytes.u32(e.records);
    indexBytes.u64(e.timeStart);
    indexBytes.u64(e.timeEnd);
    // v2 entries append the per-frame encoding tag after the v1 prefix.
    if (options_.formatVersion >= 2) indexBytes.u32(e.encoding);
  }
  file_.write(indexBytes);

  const std::uint64_t stateOffset = file_.tell();
  ByteWriter stateBytes;
  for (const SlogStateDef& s : states_) {
    stateBytes.u32(s.id);
    stateBytes.u32(s.rgb);
    stateBytes.lstring(s.name);
  }
  file_.write(stateBytes);

  const std::uint64_t previewOffset = file_.tell();
  std::vector<std::uint32_t> order;
  order.reserve(states_.size());
  for (const SlogStateDef& s : states_) order.push_back(s.id);
  const SlogPreview preview = preview_.snapshot(order);
  ByteWriter previewBytes;
  previewBytes.u64(preview.origin);
  previewBytes.u64(preview.binWidth);
  previewBytes.u32(preview.bins);
  for (const auto& row : preview.perStateBinTime) {
    for (double v : row) previewBytes.f64(v);
  }
  file_.write(previewBytes);

  ByteWriter patch1;
  patch1.u32(static_cast<std::uint32_t>(states_.size()));
  file_.writeAt(8, patch1.view());
  ByteWriter patch2;
  patch2.u32(static_cast<std::uint32_t>(index_.size()));
  file_.writeAt(16, patch2.view());
  ByteWriter patch3;
  patch3.u64(intervalsWritten_ == 0 ? 0 : minStart_);
  patch3.u64(maxEnd_);
  patch3.u64(indexOffset);
  patch3.u64(stateOffset);
  patch3.u64(previewOffset);
  file_.writeAt(24, patch3.view());

  file_.close();
  closed_ = true;
}

}  // namespace ute
