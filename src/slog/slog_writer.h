// SLOG writer: converts a stream of merged interval records into the
// frame-indexed, preview-carrying SLOG file Jumpshot-style viewers load
// (Section 4). Designed to be driven by the merge utility's record sink,
// so "slogmerge" produces the merged interval file and the SLOG file in
// one pass over the inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "interval/profile.h"
#include "interval/record.h"
#include "slog/preview.h"
#include "slog/slog_format.h"
#include "support/file_io.h"

namespace ute {

struct SlogOptions {
  std::uint32_t recordsPerFrame = 4096;
  std::uint32_t previewBins = 240;
  /// SLOG file format version to write: kSlogVersion (2, columnar
  /// compressed frames) by default, or kSlogMinVersion (1, row-major)
  /// for compatibility output (`--slog-v1`).
  std::uint32_t formatVersion = kSlogVersion;
};

class SlogWriter {
 public:
  SlogWriter(const std::string& path, const SlogOptions& options,
             const Profile& profile, std::vector<ThreadEntry> threads,
             const std::map<std::uint32_t, std::string>& markers);
  ~SlogWriter();

  /// Feeds one merged interval record (ascending end-time order).
  void addRecord(const RecordView& record);

  void close();

  /// Fired whenever a frame seals (its bytes hit the file and its index
  /// entry exists), with the decoded frame contents as the shared
  /// immutable handle the read side trades in. The live-ingest feed
  /// (src/stream) taps sealed frames here so TailFrames can serve them
  /// without reopening the growing file. Install before the first
  /// addRecord; frames written earlier are not replayed.
  using FrameSealHook =
      std::function<void(const SlogFrameIndexEntry&, SlogFramePtr)>;
  void setFrameSealHook(FrameSealHook hook) { sealHook_ = std::move(hook); }

  /// Registers a state definition (id -> name, palette color by
  /// registration order); ignored if `id` is already registered. The
  /// streaming ingest uses this for marker states defined after
  /// construction; addRecord() self-registers unknown ids with a
  /// placeholder name.
  void registerState(std::uint32_t id, const std::string& name);

  /// State and thread tables as they stand (states grow as markers and
  /// unknown ids register) — what a live query service serves while the
  /// file is still being written.
  const std::vector<SlogStateDef>& states() const { return states_; }
  const std::vector<ThreadEntry>& threads() const { return threads_; }

  std::uint64_t intervalsWritten() const { return intervalsWritten_; }
  std::uint64_t arrowsWritten() const { return arrowsWritten_; }

 private:
  struct OpenState {
    std::uint32_t stateId = 0;
    NodeId node = 0;
    std::int32_t cpu = 0;
    LogicalThreadId thread = 0;
  };
  struct PendingSend {
    NodeId node = 0;
    LogicalThreadId thread = 0;
    Tick sendTime = 0;
    std::uint32_t bytes = 0;
  };

  std::uint32_t stateIdFor(const RecordView& record);
  void appendInterval(const SlogInterval& interval);
  void appendArrow(const SlogArrow& arrow);
  void maybeStartFrame(Tick boundary);
  void finalizeFrame();
  const FieldAccessor& accessor(IntervalType type, const char* name);

  std::string path_;
  SlogOptions options_;
  const Profile& profile_;
  FileWriter file_;
  std::vector<ThreadEntry> threads_;

  std::vector<SlogStateDef> states_;
  std::map<std::uint32_t, std::size_t> stateIndex_;

  PreviewAccumulator preview_;

  std::vector<std::uint8_t> frameBytes_;
  /// Decoded frame contents. v2 encodes the whole frame column-major at
  /// seal time, so it always accumulates records here; v1 encodes rows
  /// incrementally into frameBytes_ and fills this only for a seal hook.
  SlogFrameData frameData_;
  FrameSealHook sealHook_;
  std::uint32_t frameRecords_ = 0;
  Tick frameTimeStart_ = 0;
  Tick maxEnd_ = 0;
  Tick minStart_ = ~Tick{0};
  std::vector<SlogFrameIndexEntry> index_;

  std::map<std::pair<NodeId, LogicalThreadId>, std::vector<OpenState>>
      openStates_;
  std::map<std::uint32_t, PendingSend> pendingSends_;
  std::map<std::pair<IntervalType, std::string>,
           std::unique_ptr<FieldAccessor>>
      accessors_;

  std::uint64_t intervalsWritten_ = 0;
  std::uint64_t arrowsWritten_ = 0;
  bool closed_ = false;
};

}  // namespace ute
