// SLOG writer: converts a stream of merged interval records into the
// frame-indexed, preview-carrying SLOG file Jumpshot-style viewers load
// (Section 4). Designed to be driven by the merge utility's record sink,
// so "slogmerge" produces the merged interval file and the SLOG file in
// one pass over the inputs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interval/profile.h"
#include "interval/record.h"
#include "slog/preview.h"
#include "slog/slog_format.h"
#include "support/file_io.h"

namespace ute {

struct SlogOptions {
  std::uint32_t recordsPerFrame = 4096;
  std::uint32_t previewBins = 240;
};

class SlogWriter {
 public:
  SlogWriter(const std::string& path, const SlogOptions& options,
             const Profile& profile, std::vector<ThreadEntry> threads,
             const std::map<std::uint32_t, std::string>& markers);
  ~SlogWriter();

  /// Feeds one merged interval record (ascending end-time order).
  void addRecord(const RecordView& record);

  void close();

  std::uint64_t intervalsWritten() const { return intervalsWritten_; }
  std::uint64_t arrowsWritten() const { return arrowsWritten_; }

 private:
  struct OpenState {
    std::uint32_t stateId = 0;
    NodeId node = 0;
    std::int32_t cpu = 0;
    LogicalThreadId thread = 0;
  };
  struct PendingSend {
    NodeId node = 0;
    LogicalThreadId thread = 0;
    Tick sendTime = 0;
    std::uint32_t bytes = 0;
  };

  std::uint32_t stateIdFor(const RecordView& record);
  void appendInterval(const SlogInterval& interval);
  void appendArrow(const SlogArrow& arrow);
  void maybeStartFrame(Tick boundary);
  void finalizeFrame();
  const FieldAccessor& accessor(IntervalType type, const char* name);

  std::string path_;
  SlogOptions options_;
  const Profile& profile_;
  FileWriter file_;
  std::vector<ThreadEntry> threads_;

  std::vector<SlogStateDef> states_;
  std::map<std::uint32_t, std::size_t> stateIndex_;

  PreviewAccumulator preview_;

  std::vector<std::uint8_t> frameBytes_;
  ByteWriter scratch_;  ///< reused per-record encode buffer
  std::uint32_t frameRecords_ = 0;
  Tick frameTimeStart_ = 0;
  Tick maxEnd_ = 0;
  Tick minStart_ = ~Tick{0};
  std::vector<SlogFrameIndexEntry> index_;

  std::map<std::pair<NodeId, LogicalThreadId>, std::vector<OpenState>>
      openStates_;
  std::map<std::uint32_t, PendingSend> pendingSends_;
  std::map<std::pair<IntervalType, std::string>,
           std::unique_ptr<FieldAccessor>>
      accessors_;

  std::uint64_t intervalsWritten_ = 0;
  std::uint64_t arrowsWritten_ = 0;
  bool closed_ = false;
};

}  // namespace ute
