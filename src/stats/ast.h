// Expression AST and table specifications for the statistics language.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ute {

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kNumber, kString, kField, kUnary, kBinary, kCall };
  Kind kind = Kind::kNumber;

  double number = 0.0;       // kNumber
  std::string text;          // kString literal / kField name / kCall callee
  UnOp unOp = UnOp::kNeg;    // kUnary
  BinOp binOp = BinOp::kAdd; // kBinary
  std::vector<ExprPtr> args; // operands / call arguments
};

/// How a y-expression's values are folded per group.
enum class AggKind { kAvg, kSum, kMin, kMax, kCount, kStddev };

struct XSpec {
  std::string label;
  ExprPtr expr;
};

struct YSpec {
  std::string label;
  ExprPtr expr;
  AggKind agg = AggKind::kSum;
};

/// One `table ...` clause: condition filters records, x-expressions are
/// the free variables, y-expressions the aggregated dependent values.
struct TableSpec {
  std::string name;
  ExprPtr condition;  ///< may be null (all records)
  std::vector<XSpec> xs;
  std::vector<YSpec> ys;
};

}  // namespace ute
