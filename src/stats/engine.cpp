#include "stats/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "interval/standard_profile.h"
#include "stats/parser.h"
#include "support/errors.h"
#include "support/text.h"

namespace ute {

namespace {

/// Expression values: numbers or strings.
struct Value {
  bool isStr = false;
  double num = 0.0;
  std::string str;

  static Value of(double v) { return {false, v, {}}; }
  static Value of(std::string s) { return {true, 0.0, std::move(s)}; }

  bool truthy() const { return isStr ? !str.empty() : num != 0.0; }

  bool operator<(const Value& o) const {
    if (isStr != o.isStr) return !isStr;  // numbers sort before strings
    return isStr ? str < o.str : num < o.num;
  }
  bool operator==(const Value& o) const {
    return isStr == o.isStr && (isStr ? str == o.str : num == o.num);
  }

  std::string render() const {
    if (isStr) return str;
    if (std::isfinite(num) && num == std::floor(num) &&
        std::abs(num) < 1e15) {
      return std::to_string(static_cast<long long>(num));
    }
    return fixed(num, 6);
  }
};

/// Per-run evaluation context shared by all records (possibly spanning
/// several interval files).
struct RunContext {
  const Profile* profile = nullptr;
  std::uint64_t mask = 0;
  Tick minStart = 0;
  Tick maxEnd = 0;
  /// Marker id -> string, merged over all input files.
  std::map<std::uint32_t, std::string> markers;
  /// (node, ltid) -> MPI task, from the thread tables.
  std::map<std::pair<NodeId, LogicalThreadId>, TaskId> taskOf;
  /// Cache of field accessors per (interval type, field name).
  std::map<std::pair<IntervalType, std::string>,
           std::unique_ptr<FieldAccessor>>
      accessors;

  const FieldAccessor& accessor(IntervalType type, const std::string& name) {
    const auto key = std::make_pair(type, name);
    auto it = accessors.find(key);
    if (it == accessors.end()) {
      it = accessors
               .emplace(key, std::make_unique<FieldAccessor>(*profile, type,
                                                             mask, name))
               .first;
    }
    return *it->second;
  }
};

std::optional<Value> evaluate(const Expr& e, RunContext& ctx,
                              const RecordView& rec);

std::optional<Value> evalField(const std::string& name, RunContext& ctx,
                               const RecordView& rec) {
  const double kNsToSec = 1e-9;
  if (name == "start") {
    return Value::of(static_cast<double>(rec.start - ctx.minStart) * kNsToSec);
  }
  if (name == "dura" || name == "duration") {
    return Value::of(static_cast<double>(rec.dura) * kNsToSec);
  }
  if (name == "end") {
    return Value::of(static_cast<double>(rec.end() - ctx.minStart) * kNsToSec);
  }
  if (name == "node") return Value::of(rec.node);
  if (name == "cpu") return Value::of(rec.cpu);
  if (name == "thread") return Value::of(rec.thread);
  if (name == "task") {
    const auto it = ctx.taskOf.find({rec.node, rec.thread});
    if (it == ctx.taskOf.end()) return std::nullopt;
    return Value::of(it->second);
  }
  if (name == "type") return Value::of(rec.intervalType);
  if (name == "eventtype") {
    return Value::of(static_cast<double>(rec.eventType()));
  }
  if (name == "bebits") {
    return Value::of(static_cast<double>(rec.bebits()));
  }
  if (name == "firstpiece") return Value::of(isFirstPiece(rec.bebits()));
  if (name == "lastpiece") return Value::of(isLastPiece(rec.bebits()));
  if (name == "state") {
    if (rec.eventType() == EventType::kUserMarker) {
      const auto markerId =
          ctx.accessor(rec.intervalType, kFieldMarkerId).get(rec);
      if (markerId) {
        const auto it =
            ctx.markers.find(static_cast<std::uint32_t>(*markerId));
        if (it != ctx.markers.end()) return Value::of(it->second);
      }
    }
    const RecordSpec* spec = ctx.profile->find(rec.intervalType);
    if (spec == nullptr) return std::nullopt;
    return Value::of(ctx.profile->recordName(*spec));
  }
  // Fall back to a profile field of this record type.
  const auto v = ctx.accessor(rec.intervalType, name).get(rec);
  if (!v) return std::nullopt;
  return Value::of(static_cast<double>(*v));
}

std::optional<Value> evalCall(const Expr& e, RunContext& ctx,
                              const RecordView& rec) {
  const auto arg = [&](std::size_t i) { return evaluate(*e.args[i], ctx, rec); };
  const auto wantArgs = [&](std::size_t n) {
    if (e.args.size() != n) {
      throw ParseError("function " + e.text + " expects " +
                       std::to_string(n) + " argument(s)");
    }
  };
  if (e.text == "timebin") {
    wantArgs(1);
    const auto n = arg(0);
    if (!n || n->isStr || n->num < 1) return std::nullopt;
    const auto bins = static_cast<double>(n->num);
    const double range = static_cast<double>(ctx.maxEnd - ctx.minStart);
    if (range <= 0) return Value::of(0.0);
    const double rel = static_cast<double>(rec.start - ctx.minStart);
    return Value::of(std::min(bins - 1, std::floor(rel * bins / range)));
  }
  if (e.text == "floor" || e.text == "ceil" || e.text == "abs") {
    wantArgs(1);
    const auto v = arg(0);
    if (!v || v->isStr) return std::nullopt;
    if (e.text == "floor") return Value::of(std::floor(v->num));
    if (e.text == "ceil") return Value::of(std::ceil(v->num));
    return Value::of(std::abs(v->num));
  }
  if (e.text == "min" || e.text == "max") {
    wantArgs(2);
    const auto a = arg(0);
    const auto b = arg(1);
    if (!a || !b || a->isStr || b->isStr) return std::nullopt;
    return Value::of(e.text == "min" ? std::min(a->num, b->num)
                                     : std::max(a->num, b->num));
  }
  throw ParseError("unknown function '" + e.text + "'");
}

std::optional<Value> evaluate(const Expr& e, RunContext& ctx,
                              const RecordView& rec) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return Value::of(e.number);
    case Expr::Kind::kString:
      return Value::of(e.text);
    case Expr::Kind::kField:
      return evalField(e.text, ctx, rec);
    case Expr::Kind::kCall:
      return evalCall(e, ctx, rec);
    case Expr::Kind::kUnary: {
      const auto v = evaluate(*e.args[0], ctx, rec);
      if (!v) return std::nullopt;
      if (e.unOp == UnOp::kNot) return Value::of(!v->truthy());
      if (v->isStr) return std::nullopt;
      return Value::of(-v->num);
    }
    case Expr::Kind::kBinary: {
      // Short-circuit logic first.
      if (e.binOp == BinOp::kAnd || e.binOp == BinOp::kOr) {
        const auto lhs = evaluate(*e.args[0], ctx, rec);
        if (!lhs) return std::nullopt;
        if (e.binOp == BinOp::kAnd && !lhs->truthy()) return Value::of(0.0);
        if (e.binOp == BinOp::kOr && lhs->truthy()) return Value::of(1.0);
        const auto rhs = evaluate(*e.args[1], ctx, rec);
        if (!rhs) return std::nullopt;
        return Value::of(rhs->truthy());
      }
      const auto lhs = evaluate(*e.args[0], ctx, rec);
      const auto rhs = evaluate(*e.args[1], ctx, rec);
      if (!lhs || !rhs) return std::nullopt;
      switch (e.binOp) {
        case BinOp::kEq: return Value::of(*lhs == *rhs);
        case BinOp::kNe: return Value::of(!(*lhs == *rhs));
        case BinOp::kLt: return Value::of(*lhs < *rhs);
        case BinOp::kGt: return Value::of(*rhs < *lhs);
        case BinOp::kLe: return Value::of(!(*rhs < *lhs));
        case BinOp::kGe: return Value::of(!(*lhs < *rhs));
        default:
          break;
      }
      if (lhs->isStr || rhs->isStr) return std::nullopt;
      switch (e.binOp) {
        case BinOp::kAdd: return Value::of(lhs->num + rhs->num);
        case BinOp::kSub: return Value::of(lhs->num - rhs->num);
        case BinOp::kMul: return Value::of(lhs->num * rhs->num);
        case BinOp::kDiv:
          return rhs->num == 0 ? std::nullopt
                               : std::optional(Value::of(lhs->num / rhs->num));
        case BinOp::kMod:
          return rhs->num == 0
                     ? std::nullopt
                     : std::optional(Value::of(std::fmod(lhs->num, rhs->num)));
        default:
          return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

/// Streaming aggregate of one y-expression within one group.
struct Aggregate {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sumSq = 0.0;
  double minV = std::numeric_limits<double>::infinity();
  double maxV = -std::numeric_limits<double>::infinity();

  void add(double v) {
    ++count;
    sum += v;
    sumSq += v * v;
    minV = std::min(minV, v);
    maxV = std::max(maxV, v);
  }

  double finalize(AggKind kind) const {
    switch (kind) {
      case AggKind::kAvg: return count == 0 ? 0.0 : sum / count;
      case AggKind::kSum: return sum;
      case AggKind::kMin: return count == 0 ? 0.0 : minV;
      case AggKind::kMax: return count == 0 ? 0.0 : maxV;
      case AggKind::kCount: return static_cast<double>(count);
      case AggKind::kStddev: {
        if (count == 0) return 0.0;
        const double n = static_cast<double>(count);
        const double variance = std::max(0.0, sumSq / n - (sum / n) * (sum / n));
        return std::sqrt(variance);
      }
    }
    return 0.0;
  }
};

}  // namespace

std::string StatsTable::tsv() const {
  std::string out;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i != 0) out += '\t';
    out += headers[i];
  }
  out += '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += '\t';
      out += row[i];
    }
    out += '\n';
  }
  return out;
}

const std::string& StatsTable::cell(std::size_t row,
                                    const std::string& header) const {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (headers[i] == header) return rows.at(row).at(i);
  }
  throw UsageError("no column '" + header + "' in table " + name);
}

std::vector<StatsTable> StatsEngine::run(const std::vector<TableSpec>& specs,
                                         IntervalFileReader& file) {
  return run(specs, std::vector<IntervalFileReader*>{&file});
}

std::vector<StatsTable> StatsEngine::run(
    const std::vector<TableSpec>& specs,
    std::vector<IntervalFileReader*> files) {
  if (files.empty()) throw UsageError("stats need at least one input file");
  RunContext ctx;
  ctx.profile = &profile_;
  ctx.mask = files.front()->header().fieldSelectionMask;
  ctx.minStart = ~Tick{0};
  ctx.maxEnd = 0;
  for (IntervalFileReader* file : files) {
    if (file->header().fieldSelectionMask != ctx.mask) {
      throw UsageError("stats inputs have differing field selection masks");
    }
    ctx.minStart = std::min(ctx.minStart, file->header().minStart);
    ctx.maxEnd = std::max(ctx.maxEnd, file->header().maxEnd);
    for (const ThreadEntry& t : file->threads()) {
      ctx.taskOf[{t.node, t.ltid}] = t.task;
    }
    for (const auto& [id, name] : file->markers()) {
      ctx.markers.emplace(id, name);
    }
  }

  // Group accumulators per table: x-value tuple -> per-y aggregates.
  std::vector<std::map<std::vector<Value>, std::vector<Aggregate>>> groups(
      specs.size());

  for (IntervalFileReader* file : files) {
  auto stream = file->records();
  RecordView rec;
  while (stream.next(rec)) {
    for (std::size_t t = 0; t < specs.size(); ++t) {
      const TableSpec& spec = specs[t];
      if (spec.condition) {
        const auto cond = evaluate(*spec.condition, ctx, rec);
        if (!cond || !cond->truthy()) continue;
      }
      std::vector<Value> key;
      key.reserve(spec.xs.size());
      bool ok = true;
      for (const XSpec& x : spec.xs) {
        auto v = evaluate(*x.expr, ctx, rec);
        if (!v) {
          ok = false;
          break;
        }
        key.push_back(std::move(*v));
      }
      if (!ok) continue;

      auto [it, inserted] = groups[t].try_emplace(std::move(key));
      if (inserted) it->second.resize(spec.ys.size());
      for (std::size_t y = 0; y < spec.ys.size(); ++y) {
        if (spec.ys[y].agg == AggKind::kCount) {
          it->second[y].add(0.0);
          continue;
        }
        const auto v = evaluate(*spec.ys[y].expr, ctx, rec);
        if (v && !v->isStr) it->second[y].add(v->num);
      }
    }
  }
  }

  std::vector<StatsTable> out;
  out.reserve(specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    const TableSpec& spec = specs[t];
    StatsTable table;
    table.name = spec.name;
    for (const XSpec& x : spec.xs) table.headers.push_back(x.label);
    for (const YSpec& y : spec.ys) table.headers.push_back(y.label);
    for (const auto& [key, aggs] : groups[t]) {
      std::vector<std::string> row;
      row.reserve(key.size() + aggs.size());
      for (const Value& v : key) row.push_back(v.render());
      for (std::size_t y = 0; y < aggs.size(); ++y) {
        row.push_back(Value::of(aggs[y].finalize(spec.ys[y].agg)).render());
      }
      table.rows.push_back(std::move(row));
    }
    out.push_back(std::move(table));
  }
  return out;
}

std::vector<StatsTable> StatsEngine::runProgram(const std::string& program,
                                                IntervalFileReader& file) {
  return run(parseStatsProgram(program), file);
}

std::vector<StatsTable> StatsEngine::runProgram(
    const std::string& program, std::vector<IntervalFileReader*> files) {
  return run(parseStatsProgram(program), std::move(files));
}

std::string predefinedTablesProgram() {
  return R"ute(
# Figure 6: per-node sum of "interesting" (non-Running, non-clock)
# interval durations over 50 equal time bins.
table name=interesting_by_node_bin
  condition=(state != "Running" && eventtype != 33 && eventtype != 6)
  x=("node", node)
  x=("bin", timebin(50))
  y=("sum(duration)", dura, sum)

# Calls per state, counted once per call via the bebits type information.
table name=calls_by_state
  condition=(firstpiece == 1 && eventtype != 33)
  x=("state", state)
  y=("calls", dura, count)

# Time per state across all pieces.
table name=time_by_state
  condition=(eventtype != 33)
  x=("state", state)
  y=("sum(duration)", dura, sum)
  y=("avg(duration)", dura, avg)
  y=("max(duration)", dura, max)

# Message bytes injected per task (Figure 5's total, broken out).
table name=bytes_sent_by_task
  condition=(firstpiece == 1)
  x=("task", task)
  y=("bytes", msgSizeSent, sum)

# MPI time per thread.
table name=mpi_time_by_thread
  condition=(state != "Running" && eventtype != 33 && eventtype != 6)
  x=("node", node)
  x=("thread", thread)
  y=("mpi_seconds", dura, sum)
)ute";
}

}  // namespace ute
