// Statistics generation engine (Section 3.2).
//
// Built on the interval API: it streams the records of one or more
// interval files, filters them with each table's condition expression,
// groups them by the x-expressions' values, and folds the y-expressions
// with their aggregators. Output is a tab-separated-value table, as in
// the paper.
//
// Record fields available to expressions:
//   start, dura, end        — seconds, relative to the run's start
//   node, cpu, thread, task — numeric identity of the interval
//   type, eventtype, bebits — numeric record typing
//   firstpiece, lastpiece   — 1 for begin/complete resp. end/complete
//   state                   — state name string ("Running", "MPI_Send",
//                             or the user-marker string)
//   <any profile field>     — e.g. msgSizeSent, seqNo, markerId
// Functions: timebin(n), floor(x), ceil(x), abs(x), min(a,b), max(a,b).
// A record that lacks a referenced field is skipped for that table.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "interval/file_reader.h"
#include "interval/profile.h"
#include "stats/ast.h"

namespace ute {

struct StatsTable {
  std::string name;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  std::string tsv() const;
  /// Cell lookup by header name for tests; throws on unknown header.
  const std::string& cell(std::size_t row, const std::string& header) const;
};

class StatsEngine {
 public:
  explicit StatsEngine(const Profile& profile) : profile_(profile) {}

  /// Runs parsed table specs over one or more interval files (the
  /// utility "reads one or more interval files", Section 3.2); groups
  /// aggregate across all of them and time bins span the union range.
  std::vector<StatsTable> run(const std::vector<TableSpec>& specs,
                              IntervalFileReader& file);
  std::vector<StatsTable> run(const std::vector<TableSpec>& specs,
                              std::vector<IntervalFileReader*> files);

  /// Parses `program` and runs it.
  std::vector<StatsTable> runProgram(const std::string& program,
                                     IntervalFileReader& file);
  std::vector<StatsTable> runProgram(const std::string& program,
                                     std::vector<IntervalFileReader*> files);

 private:
  const Profile& profile_;
};

/// The set of pre-defined tables generated when no user program is given.
/// Includes the per-node x 50-time-bin sum of "interesting" (non-Running)
/// interval durations that Figure 6 visualizes.
std::string predefinedTablesProgram();

}  // namespace ute
