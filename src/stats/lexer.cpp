#include "stats/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/errors.h"

namespace ute {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lexStatsProgram(std::string_view src) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto fail = [&](const std::string& what) {
    throw ParseError(what + " at offset " + std::to_string(i));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }

    Token t;
    t.offset = i;
    if (isIdentStart(c)) {
      std::size_t j = i;
      while (j < src.size() && isIdentChar(src[j])) ++j;
      t.kind = TokenKind::kIdent;
      t.text = std::string(src.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < src.size() &&
                std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const char* begin = src.data() + i;
      char* end = nullptr;
      t.kind = TokenKind::kNumber;
      t.number = std::strtod(begin, &end);
      if (end == begin) fail("bad number");
      t.text.assign(begin, static_cast<const char*>(end));
      i += static_cast<std::size_t>(end - begin);
    } else if (c == '"') {
      std::size_t j = i + 1;
      std::string value;
      while (j < src.size() && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < src.size()) ++j;
        value.push_back(src[j]);
        ++j;
      }
      if (j >= src.size()) fail("unterminated string");
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      i = j + 1;
    } else {
      t.kind = TokenKind::kSymbol;
      // Two-character operators first.
      const std::string_view rest = src.substr(i);
      for (const std::string_view op :
           {"<=", ">=", "==", "!=", "&&", "||"}) {
        if (rest.substr(0, 2) == op) {
          t.text = std::string(op);
          break;
        }
      }
      if (t.text.empty()) {
        if (std::string_view("=(),+-*/%<>!").find(c) ==
            std::string_view::npos) {
          fail(std::string("unexpected character '") + c + "'");
        }
        t.text = std::string(1, c);
      }
      i += t.text.size();
    }
    tokens.push_back(std::move(t));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = src.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace ute
