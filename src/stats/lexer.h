// Lexer for the statistics utility's declarative table language
// (Section 3.2). Example program, from the paper:
//
//   table name=sample
//     condition=(start < 2)
//     x=("node", node)
//     x=("processor", cpu)
//     y=("avg(duration)", dura, avg)
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ute {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  ///< punctuation: = ( ) , + - * / % < > <= >= == != && || !
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t offset = 0;  ///< position in the source, for error messages
};

/// Tokenizes a whole program; throws ParseError on malformed input.
std::vector<Token> lexStatsProgram(std::string_view source);

}  // namespace ute
