#include "stats/parser.h"

#include "stats/lexer.h"
#include "support/errors.h"

namespace ute {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source)
      : tokens_(lexStatsProgram(source)) {}

  std::vector<TableSpec> parseProgram() {
    std::vector<TableSpec> tables;
    while (!atEnd()) {
      expectIdent("table");
      tables.push_back(parseTable());
    }
    if (tables.empty()) throw ParseError("program contains no tables");
    return tables;
  }

  ExprPtr parseBareExpression() {
    ExprPtr e = parseExpr();
    if (!atEnd()) fail("trailing tokens after expression");
    return e;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool atEnd() const { return peek().kind == TokenKind::kEnd; }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what + " at offset " + std::to_string(peek().offset) +
                     (peek().kind == TokenKind::kEnd
                          ? " (end of input)"
                          : " (near '" + peek().text + "')"));
  }

  bool matchSymbol(std::string_view s) {
    if (peek().kind == TokenKind::kSymbol && peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expectSymbol(std::string_view s) {
    if (!matchSymbol(s)) fail("expected '" + std::string(s) + "'");
  }

  bool peekIdent(std::string_view s) const {
    return peek().kind == TokenKind::kIdent && peek().text == s;
  }

  void expectIdent(std::string_view s) {
    if (!peekIdent(s)) fail("expected '" + std::string(s) + "'");
    ++pos_;
  }

  std::string expectString() {
    if (peek().kind != TokenKind::kString) fail("expected a string literal");
    return advance().text;
  }

  TableSpec parseTable() {
    TableSpec table;
    while (!atEnd() && !peekIdent("table")) {
      const std::string key = peek().kind == TokenKind::kIdent
                                  ? advance().text
                                  : (fail("expected a key=value clause"), "");
      expectSymbol("=");
      if (key == "name") {
        if (peek().kind == TokenKind::kIdent ||
            peek().kind == TokenKind::kString) {
          table.name = advance().text;
        } else {
          fail("expected a table name");
        }
      } else if (key == "condition") {
        expectSymbol("(");
        table.condition = parseExpr();
        expectSymbol(")");
      } else if (key == "x") {
        expectSymbol("(");
        XSpec x;
        x.label = expectString();
        expectSymbol(",");
        x.expr = parseExpr();
        expectSymbol(")");
        table.xs.push_back(std::move(x));
      } else if (key == "y") {
        expectSymbol("(");
        YSpec y;
        y.label = expectString();
        expectSymbol(",");
        y.expr = parseExpr();
        expectSymbol(",");
        if (peek().kind != TokenKind::kIdent) fail("expected aggregator");
        const std::string agg = advance().text;
        if (agg == "avg") y.agg = AggKind::kAvg;
        else if (agg == "sum") y.agg = AggKind::kSum;
        else if (agg == "min") y.agg = AggKind::kMin;
        else if (agg == "max") y.agg = AggKind::kMax;
        else if (agg == "count") y.agg = AggKind::kCount;
        else if (agg == "stddev") y.agg = AggKind::kStddev;
        else fail("unknown aggregator '" + agg + "'");
        expectSymbol(")");
        table.ys.push_back(std::move(y));
      } else {
        fail("unknown table clause '" + key + "'");
      }
    }
    if (table.name.empty()) throw ParseError("table is missing name=");
    if (table.xs.empty()) throw ParseError("table '" + table.name +
                                           "' has no x= expressions");
    if (table.ys.empty()) throw ParseError("table '" + table.name +
                                           "' has no y= expressions");
    return table;
  }

  // Precedence climbing: or < and < comparison < additive < multiplicative
  // < unary < primary.
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr makeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->binOp = op;
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    return e;
  }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (matchSymbol("||")) {
      lhs = makeBinary(BinOp::kOr, std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseComparison();
    while (matchSymbol("&&")) {
      lhs = makeBinary(BinOp::kAnd, std::move(lhs), parseComparison());
    }
    return lhs;
  }

  ExprPtr parseComparison() {
    ExprPtr lhs = parseAdditive();
    for (;;) {
      BinOp op;
      if (matchSymbol("<=")) op = BinOp::kLe;
      else if (matchSymbol(">=")) op = BinOp::kGe;
      else if (matchSymbol("==")) op = BinOp::kEq;
      else if (matchSymbol("!=")) op = BinOp::kNe;
      else if (matchSymbol("<")) op = BinOp::kLt;
      else if (matchSymbol(">")) op = BinOp::kGt;
      else return lhs;
      lhs = makeBinary(op, std::move(lhs), parseAdditive());
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    for (;;) {
      if (matchSymbol("+")) {
        lhs = makeBinary(BinOp::kAdd, std::move(lhs), parseMultiplicative());
      } else if (matchSymbol("-")) {
        lhs = makeBinary(BinOp::kSub, std::move(lhs), parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    for (;;) {
      if (matchSymbol("*")) {
        lhs = makeBinary(BinOp::kMul, std::move(lhs), parseUnary());
      } else if (matchSymbol("/")) {
        lhs = makeBinary(BinOp::kDiv, std::move(lhs), parseUnary());
      } else if (matchSymbol("%")) {
        lhs = makeBinary(BinOp::kMod, std::move(lhs), parseUnary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseUnary() {
    if (matchSymbol("-")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->unOp = UnOp::kNeg;
      e->args.push_back(parseUnary());
      return e;
    }
    if (matchSymbol("!")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->unOp = UnOp::kNot;
      e->args.push_back(parseUnary());
      return e;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (matchSymbol("(")) {
      ExprPtr e = parseExpr();
      expectSymbol(")");
      return e;
    }
    auto e = std::make_unique<Expr>();
    if (peek().kind == TokenKind::kNumber) {
      e->kind = Expr::Kind::kNumber;
      e->number = advance().number;
      return e;
    }
    if (peek().kind == TokenKind::kString) {
      e->kind = Expr::Kind::kString;
      e->text = advance().text;
      return e;
    }
    if (peek().kind == TokenKind::kIdent) {
      const std::string name = advance().text;
      if (matchSymbol("(")) {
        e->kind = Expr::Kind::kCall;
        e->text = name;
        if (!matchSymbol(")")) {
          do {
            e->args.push_back(parseExpr());
          } while (matchSymbol(","));
          expectSymbol(")");
        }
        return e;
      }
      e->kind = Expr::Kind::kField;
      e->text = name;
      return e;
    }
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TableSpec> parseStatsProgram(std::string_view source) {
  return Parser(source).parseProgram();
}

ExprPtr parseStatsExpression(std::string_view source) {
  return Parser(source).parseBareExpression();
}

}  // namespace ute
