// Recursive-descent parser for the statistics table language.
#pragma once

#include <string_view>
#include <vector>

#include "stats/ast.h"

namespace ute {

/// Parses a whole program (one or more `table` clauses). Throws
/// ParseError with offsets on malformed input.
std::vector<TableSpec> parseStatsProgram(std::string_view source);

/// Parses a bare expression (used by tests and interactive filters).
ExprPtr parseStatsExpression(std::string_view source);

}  // namespace ute
