#include "stream/ingest_client.h"

#include <utility>

#include "stream/ingest_protocol.h"
#include "support/errors.h"

namespace ute {

IngestClient::IngestClient(const std::string& host, std::uint16_t port,
                           NodeId node, std::size_t maxBatchBytes)
    // Bounded connect (5s): an unreachable ingest endpoint fails fast
    // with the endpoint named instead of hanging in the SYN retry cycle.
    : socket_(TcpSocket::connectTo(host, port, 5000)),
      node_(node),
      maxBatchBytes_(maxBatchBytes == 0 ? 1 : maxBatchBytes) {
  roundTrip(encodeIngestHello(node));
}

void IngestClient::roundTrip(const ByteWriter& message) {
  if (closed_) throw UsageError("IngestClient: send after bye()");
  sendMessage(socket_, message.view());
  auto reply = recvMessage(socket_);
  if (!reply) {
    throw IoError("ingest server closed the connection mid-session");
  }
  std::string detail;
  const IngestStatus status = decodeIngestReply(*reply, &detail);
  if (status != IngestStatus::kOk) {
    std::string what = "ingest rejected: ";
    what += ingestStatusName(status);
    if (!detail.empty()) {
      what += ": ";
      what += detail;
    }
    throw IngestError(status, what);
  }
}

void IngestClient::sendThreads(const std::vector<ThreadEntry>& threads) {
  flush();
  roundTrip(encodeIngestThreads(threads));
}

void IngestClient::sendMarker(std::uint32_t id, const std::string& name) {
  flush();
  roundTrip(encodeIngestMarker(id, name));
}

void IngestClient::sendClockPairs(std::span<const TimestampPair> pairs,
                                  bool final) {
  flush();
  roundTrip(encodeIngestClockPairs(pairs, final));
}

void IngestClient::sendRecords(
    const std::vector<std::vector<std::uint8_t>>& bodies) {
  flush();
  if (bodies.empty()) return;
  roundTrip(encodeIngestRecords(bodies));
}

void IngestClient::queueRecord(std::span<const std::uint8_t> body) {
  batch_.emplace_back(body.begin(), body.end());
  batchBytes_ += body.size();
  if (batchBytes_ >= maxBatchBytes_) flush();
}

void IngestClient::flush() {
  if (batch_.empty()) return;
  std::vector<std::vector<std::uint8_t>> batch;
  batch.swap(batch_);
  batchBytes_ = 0;
  roundTrip(encodeIngestRecords(batch));
}

void IngestClient::bye() {
  flush();
  roundTrip(encodeIngestBye());
  closed_ = true;
  socket_.close();
}

}  // namespace ute
