// Producer-side ingest session: one TCP connection shipping one node's
// converted interval records to a utestream ingest server.
//
// Every send is a synchronous round trip — the method returns once the
// server acked the message, so a caller that keeps calling sendRecords()
// is automatically paced by the server's byte budget (backpressure is
// the ack being withheld, not an error). A nonzero status reply throws
// IngestError.
//
// queueRecord()/flush() batch small records into kRecords messages so
// the per-message round trip amortizes across a few hundred records.
//
// Thread-compatibility: confined to one thread (one producer per node).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "clock/sync.h"
#include "interval/file_writer.h"
#include "server/tcp.h"
#include "support/bytes.h"
#include "support/types.h"

namespace ute {

class IngestClient {
 public:
  /// Connects and completes the hello round trip for `node`.
  IngestClient(const std::string& host, std::uint16_t port, NodeId node,
               std::size_t maxBatchBytes = 256 << 10);

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  NodeId node() const { return node_; }

  void sendThreads(const std::vector<ThreadEntry>& threads);
  void sendMarker(std::uint32_t id, const std::string& name);
  void sendClockPairs(std::span<const TimestampPair> pairs, bool final);
  /// Ships one kRecords batch immediately (flushes queued records first).
  void sendRecords(const std::vector<std::vector<std::uint8_t>>& bodies);

  /// Appends one record body to the pending batch; ships the batch when
  /// it reaches maxBatchBytes.
  void queueRecord(std::span<const std::uint8_t> body);
  /// Ships the pending batch, if any.
  void flush();

  /// Flushes, sends kBye, waits for the ack, and closes the connection
  /// (a destructor without bye() is an abort on the server side).
  void bye();

 private:
  void roundTrip(const ByteWriter& message);

  TcpSocket socket_;
  NodeId node_ = 0;
  std::size_t maxBatchBytes_;
  std::vector<std::vector<std::uint8_t>> batch_;
  std::size_t batchBytes_ = 0;
  bool closed_ = false;
};

}  // namespace ute
