#include "stream/ingest_protocol.h"

#include "support/errors.h"

namespace ute {

namespace {

/// Decoding wrapper: any ByteReader underrun in `body` becomes a
/// structured kBadRequest instead of a raw FormatError, so the session
/// loop can answer the client before dropping it.
template <typename Fn>
auto decodeGuard(const char* what, Fn&& body) -> decltype(body()) {
  try {
    return body();
  } catch (const IngestError&) {
    throw;
  } catch (const std::exception& e) {
    throw IngestError(IngestStatus::kBadRequest,
                      std::string("malformed ") + what + ": " + e.what());
  }
}

void expectOp(ByteReader& r, IngestOp op, const char* what) {
  const auto got = static_cast<IngestOp>(r.u8());
  if (got != op) {
    throw IngestError(IngestStatus::kBadRequest,
                      std::string("expected ") + what + " message");
  }
}

}  // namespace

const char* ingestStatusName(IngestStatus status) {
  switch (status) {
    case IngestStatus::kOk: return "ok";
    case IngestStatus::kBadVersion: return "bad version";
    case IngestStatus::kBadRequest: return "bad request";
    case IngestStatus::kUnknownNode: return "unknown node";
    case IngestStatus::kShuttingDown: return "shutting down";
  }
  return "unknown status";
}

ByteWriter encodeIngestHello(NodeId node) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(IngestOp::kHello));
  w.u32(kIngestMagic);
  w.u16(kIngestVersion);
  w.i32(node);
  w.u8(0);  // flags, reserved
  return w;
}

ByteWriter encodeIngestThreads(const std::vector<ThreadEntry>& threads) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(IngestOp::kThreads));
  w.u32(static_cast<std::uint32_t>(threads.size()));
  for (const ThreadEntry& t : threads) {
    w.i32(t.task);
    w.i32(t.pid);
    w.i32(t.systemTid);
    w.i32(t.node);
    w.i32(t.ltid);
    w.u8(static_cast<std::uint8_t>(t.type));
  }
  return w;
}

ByteWriter encodeIngestMarker(std::uint32_t id, const std::string& name) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(IngestOp::kMarker));
  w.u32(id);
  w.lstring(name);
  return w;
}

ByteWriter encodeIngestClockPairs(std::span<const TimestampPair> pairs,
                                  bool final) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(IngestOp::kClockPairs));
  w.u8(final ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const TimestampPair& p : pairs) {
    w.u64(p.global);
    w.u64(p.local);
  }
  return w;
}

ByteWriter encodeIngestRecords(
    const std::vector<std::vector<std::uint8_t>>& bodies) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(IngestOp::kRecords));
  w.u32(static_cast<std::uint32_t>(bodies.size()));
  for (const auto& body : bodies) {
    w.u32(static_cast<std::uint32_t>(body.size()));
    w.bytes(body);
  }
  return w;
}

ByteWriter encodeIngestBye() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(IngestOp::kBye));
  return w;
}

IngestOp peekIngestOp(std::span<const std::uint8_t> payload) {
  if (payload.empty()) {
    throw IngestError(IngestStatus::kBadRequest, "empty message");
  }
  return static_cast<IngestOp>(payload[0]);
}

IngestHello decodeIngestHello(std::span<const std::uint8_t> payload) {
  return decodeGuard("hello", [&] {
    ByteReader r(payload);
    expectOp(r, IngestOp::kHello, "hello");
    IngestHello hello;
    hello.magic = r.u32();
    hello.version = r.u16();
    hello.node = r.i32();
    hello.flags = r.u8();
    if (hello.magic != kIngestMagic) {
      throw IngestError(IngestStatus::kBadVersion,
                        "not an ingest hello (bad magic)");
    }
    if (hello.version != kIngestVersion) {
      throw IngestError(IngestStatus::kBadVersion,
                        "protocol version " + std::to_string(hello.version) +
                            " unsupported (want " +
                            std::to_string(kIngestVersion) + ")");
    }
    return hello;
  });
}

std::vector<ThreadEntry> decodeIngestThreads(
    std::span<const std::uint8_t> payload) {
  return decodeGuard("thread table", [&] {
    ByteReader r(payload);
    expectOp(r, IngestOp::kThreads, "thread table");
    const std::uint32_t count = r.u32();
    std::vector<ThreadEntry> threads;
    threads.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ThreadEntry t;
      t.task = r.i32();
      t.pid = r.i32();
      t.systemTid = r.i32();
      t.node = r.i32();
      t.ltid = r.i32();
      t.type = static_cast<ThreadType>(r.u8());
      threads.push_back(t);
    }
    return threads;
  });
}

std::pair<std::uint32_t, std::string> decodeIngestMarker(
    std::span<const std::uint8_t> payload) {
  return decodeGuard("marker", [&] {
    ByteReader r(payload);
    expectOp(r, IngestOp::kMarker, "marker");
    const std::uint32_t id = r.u32();
    return std::make_pair(id, r.lstring());
  });
}

IngestClockPairs decodeIngestClockPairs(
    std::span<const std::uint8_t> payload) {
  return decodeGuard("clock pairs", [&] {
    ByteReader r(payload);
    expectOp(r, IngestOp::kClockPairs, "clock pairs");
    IngestClockPairs out;
    out.final = r.u8() != 0;
    const std::uint32_t count = r.u32();
    out.pairs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      TimestampPair p;
      p.global = r.u64();
      p.local = r.u64();
      out.pairs.push_back(p);
    }
    return out;
  });
}

std::vector<std::vector<std::uint8_t>> decodeIngestRecords(
    std::span<const std::uint8_t> payload) {
  return decodeGuard("record batch", [&] {
    ByteReader r(payload);
    expectOp(r, IngestOp::kRecords, "record batch");
    const std::uint32_t count = r.u32();
    std::vector<std::vector<std::uint8_t>> bodies;
    bodies.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t len = r.u32();
      if (len > r.remaining()) {
        throw IngestError(IngestStatus::kBadRequest,
                          "record length overruns the batch");
      }
      const auto bytes = r.bytes(len);
      bodies.emplace_back(bytes.begin(), bytes.end());
    }
    return bodies;
  });
}

std::vector<std::uint8_t> encodeIngestReply(IngestStatus status,
                                            const std::string& message) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  if (status != IngestStatus::kOk) w.lstring(message);
  const auto view = w.view();
  return {view.begin(), view.end()};
}

IngestStatus decodeIngestReply(std::span<const std::uint8_t> payload,
                               std::string* message) {
  ByteReader r(payload);
  const auto status = static_cast<IngestStatus>(r.u8());
  if (status != IngestStatus::kOk && message != nullptr) {
    *message = r.lstring();
  }
  return status;
}

}  // namespace ute
