// The live-ingest wire protocol: how a trace producer (a simulator
// node, or utetail following a growing raw-trace file) ships converted
// interval records to a utestream ingest server (docs/STREAMING.md).
//
// Framing is the same u32-length-prefixed scheme as the uteserve query
// protocol (server/tcp.h sendMessage/recvMessage); the payloads are
// disjoint — an ingest session starts with its own magic ("UTEG" vs the
// query protocol's "UTEQ"), so a client that dials the wrong port gets a
// structured kBadVersion reply, not silence.
//
// Every client message is answered with one status reply before the
// client sends the next — and the server acks a kRecords batch only
// after the merge thread has accepted it into its byte budget, so the
// ping-pong doubles as explicit backpressure: a producer can never run
// more than one unacknowledged batch ahead of the merge.
//
// Session lifecycle:
//
//   kHello -> kThreads -> {kMarker | kClockPairs | kRecords}* -> kBye
//
// Disconnecting without kBye is an abort: the merge seals the node's
// open states with synthesized end pieces (StreamMerger::abortInput).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "clock/sync.h"
#include "interval/file_writer.h"
#include "support/bytes.h"
#include "support/types.h"

namespace ute {

inline constexpr std::uint32_t kIngestMagic = 0x47455455;  // "UTEG"
inline constexpr std::uint16_t kIngestVersion = 1;

enum class IngestOp : std::uint8_t {
  kHello = 1,
  kThreads = 2,
  kMarker = 3,
  kClockPairs = 4,
  kRecords = 5,
  kBye = 6,
};

enum class IngestStatus : std::uint8_t {
  kOk = 0,
  kBadVersion = 1,    ///< hello magic/version mismatch
  kBadRequest = 2,    ///< unparseable payload, unknown op, op out of order
  kUnknownNode = 3,   ///< hello names a node the run does not expect
  kShuttingDown = 4,  ///< server is stopping; no more input accepted
};

const char* ingestStatusName(IngestStatus status);

/// A nonzero status reply decoded client-side becomes this exception.
class IngestError : public std::runtime_error {
 public:
  IngestError(IngestStatus status, const std::string& message)
      : std::runtime_error(std::string(ingestStatusName(status)) + ": " +
                           message),
        status_(status) {}
  IngestStatus status() const { return status_; }

 private:
  IngestStatus status_;
};

struct IngestHello {
  std::uint32_t magic = kIngestMagic;
  std::uint16_t version = kIngestVersion;
  NodeId node = 0;
  std::uint8_t flags = 0;  ///< reserved; must be zero
};

struct IngestClockPairs {
  /// true: `pairs` is the complete set — apply the exact batch fit and
  /// freeze it. false: feed the windowed online fit.
  bool final = false;
  std::vector<TimestampPair> pairs;
};

// --- producer-side encoding -------------------------------------------------

ByteWriter encodeIngestHello(NodeId node);
ByteWriter encodeIngestThreads(const std::vector<ThreadEntry>& threads);
ByteWriter encodeIngestMarker(std::uint32_t id, const std::string& name);
ByteWriter encodeIngestClockPairs(std::span<const TimestampPair> pairs,
                                  bool final);
/// `bodies` are raw interval-record bodies, ascending end order.
ByteWriter encodeIngestRecords(
    const std::vector<std::vector<std::uint8_t>>& bodies);
ByteWriter encodeIngestBye();

// --- server-side decoding ---------------------------------------------------
// Each checks the leading op byte; malformed payloads throw IngestError
// with kBadRequest (kBadVersion for a hello whose magic/version is off),
// which the session loop converts into a structured error reply.

IngestOp peekIngestOp(std::span<const std::uint8_t> payload);
IngestHello decodeIngestHello(std::span<const std::uint8_t> payload);
std::vector<ThreadEntry> decodeIngestThreads(
    std::span<const std::uint8_t> payload);
std::pair<std::uint32_t, std::string> decodeIngestMarker(
    std::span<const std::uint8_t> payload);
IngestClockPairs decodeIngestClockPairs(std::span<const std::uint8_t> payload);
std::vector<std::vector<std::uint8_t>> decodeIngestRecords(
    std::span<const std::uint8_t> payload);

// --- status replies ---------------------------------------------------------

std::vector<std::uint8_t> encodeIngestReply(IngestStatus status,
                                            const std::string& message = "");
/// Returns the status; fills `message` (may be null) from error frames.
IngestStatus decodeIngestReply(std::span<const std::uint8_t> payload,
                               std::string* message = nullptr);

}  // namespace ute
