#include "stream/ingest_server.h"

#include <exception>
#include <tuple>
#include <utility>

#include "support/errors.h"

namespace ute {

// --- ByteBudget -------------------------------------------------------------

bool ByteBudget::acquire(std::size_t n) {
  if (limit_ == 0) {  // unlimited
    MutexLock lock(mu_);
    return !closed_;
  }
  MutexLock lock(mu_);
  // An oversize batch (n > limit_) is admitted alone once the budget is
  // empty — blocking it forever would wedge the producer.
  while (!closed_ && used_ > 0 && used_ + n > limit_) cv_.wait(mu_);
  if (closed_) return false;
  used_ += n;
  return true;
}

void ByteBudget::release(std::size_t n) {
  if (limit_ == 0) return;
  MutexLock lock(mu_);
  used_ -= n > used_ ? used_ : n;
  cv_.notifyAll();
}

void ByteBudget::close() {
  MutexLock lock(mu_);
  closed_ = true;
  cv_.notifyAll();
}

// --- IngestServer -----------------------------------------------------------

IngestServer::IngestServer(const Profile& profile, IngestServerOptions options,
                           LiveFeed* feed)
    : profile_(profile),
      options_(std::move(options)),
      feed_(feed),
      channel_(options_.channelCapacity == 0 ? 64 : options_.channelCapacity) {
  if (options_.expectedNodes.empty()) {
    throw UsageError("ingest server needs at least one expected node");
  }
  if (options_.outPath.empty()) {
    throw UsageError("ingest server needs an output path");
  }
  merger_ = std::make_unique<StreamMerger>(profile_, options_.merge);
  for (std::size_t i = 0; i < options_.expectedNodes.size(); ++i) {
    merger_->addInput();
    budgets_.push_back(
        std::make_unique<ByteBudget>(options_.sessionBudgetBytes));
  }
  {
    MutexLock lock(mu_);
    claimed_.assign(options_.expectedNodes.size(), false);
  }
  mergeThread_ = std::thread(&IngestServer::mergeLoop, this);
  // One worker per expected node plus slack: every node can block on its
  // ByteBudget simultaneously without starving a stray connection's
  // (quick) error reply. Sized before the reactor exists — onRequest
  // needs the pool.
  const std::size_t inputs = options_.expectedNodes.size();
  pool_ = std::make_unique<WorkerPool>(inputs + 2, inputs * 4 + 64);
  ReactorOptions reactor;
  reactor.idleTimeoutMs = options_.sessionTimeoutMs;
  reactor.readTimeoutMs = options_.sessionTimeoutMs;
  // maxMessageBytes keeps its default: the ingest protocol shares the
  // 64 MiB framing cap with the query protocol (tcp.cpp recvMessage).
  Reactor::Handler& handler = *this;
  reactor_ = std::make_unique<Reactor>(options_.port, handler, reactor);
}

IngestServer::~IngestServer() { stop(); }

void IngestServer::stop() {
  {
    MutexLock lock(mu_);
    if (stopped_) {
      // A second caller still waits for the reactor below (idempotent
      // shutdown joins, or returns at once when already joined).
    }
    stopped_ = true;
  }
  // Unblock workers stuck in budget acquire / channel send so their
  // completions reach the reactor, then drain + join the loop. Sessions
  // still open at that point surface as aborts via onClosed.
  channel_.close();
  for (auto& budget : budgets_) budget->close();
  reactor_->shutdown();
  if (mergeThread_.joinable()) mergeThread_.join();
}

StreamMergeResult IngestServer::wait() {
  MutexLock lock(mu_);
  while (!done_) doneCv_.wait(mu_);
  if (!error_.empty()) throw FormatError(error_);
  return result_;
}

void IngestServer::markDone(StreamMergeResult result, std::string error) {
  MutexLock lock(mu_);
  result_ = std::move(result);
  error_ = std::move(error);
  done_ = true;
  doneCv_.notifyAll();
}

// --- reactor handler --------------------------------------------------------

std::size_t IngestServer::claimNode(NodeId node) {
  MutexLock lock(mu_);
  if (stopped_ || done_) {
    throw IngestError(IngestStatus::kShuttingDown, "run is over");
  }
  for (std::size_t i = 0; i < options_.expectedNodes.size(); ++i) {
    if (options_.expectedNodes[i] != node) continue;
    if (claimed_[i]) {
      throw IngestError(IngestStatus::kBadRequest,
                        "node " + std::to_string(node) +
                            " already has (or had) a session");
    }
    claimed_[i] = true;
    return i;
  }
  throw IngestError(
      IngestStatus::kUnknownNode,
      "node " + std::to_string(node) + " is not part of this run");
}

void IngestServer::onRequest(Reactor::Request req,
                             std::vector<std::uint8_t> payload) {
  auto [it, inserted] = sessions_.try_emplace(req.conn, nullptr);
  if (inserted) it->second = std::make_shared<Session>();
  std::shared_ptr<Session> session = it->second;

  auto body = std::make_shared<std::vector<std::uint8_t>>(std::move(payload));
  const bool accepted = pool_->trySubmit([this, req, session, body] {
    serviceMessage(req, *session, *body);
  });
  if (!accepted) {
    // The pool is sized so this only happens under a connection flood;
    // shed the stray with a structured reply (never a hung session).
    req.reactor->complete(req,
                          encodeIngestReply(IngestStatus::kShuttingDown,
                                            "ingest server overloaded"),
                          /*closeAfter=*/true);
  }
}

void IngestServer::serviceMessage(Reactor::Request req, Session& session,
                                  const std::vector<std::uint8_t>& msg) {
  std::vector<std::uint8_t> reply;
  bool fatal = false;
  try {
    try {
      const IngestOp op = peekIngestOp(msg);
      if (!session.input) {
        if (op != IngestOp::kHello) {
          throw IngestError(IngestStatus::kBadRequest,
                            "first message must be the ingest hello");
        }
        session.input = claimNode(decodeIngestHello(msg).node);
      } else {
        const std::size_t input = *session.input;
        switch (op) {
          case IngestOp::kHello:
            throw IngestError(IngestStatus::kBadRequest, "duplicate hello");
          case IngestOp::kThreads: {
            if (session.sawThreads) {
              throw IngestError(IngestStatus::kBadRequest,
                                "duplicate thread table");
            }
            SessionEvent ev;
            ev.kind = SessionEvent::Kind::kThreads;
            ev.input = input;
            ev.threads = decodeIngestThreads(msg);
            if (!channel_.send(std::move(ev))) {
              throw IngestError(IngestStatus::kShuttingDown,
                                "ingest is shutting down");
            }
            session.sawThreads = true;
            break;
          }
          case IngestOp::kMarker: {
            SessionEvent ev;
            ev.kind = SessionEvent::Kind::kMarker;
            ev.input = input;
            std::tie(ev.markerId, ev.markerName) = decodeIngestMarker(msg);
            if (!channel_.send(std::move(ev))) {
              throw IngestError(IngestStatus::kShuttingDown,
                                "ingest is shutting down");
            }
            break;
          }
          case IngestOp::kClockPairs: {
            SessionEvent ev;
            ev.kind = SessionEvent::Kind::kClockPairs;
            ev.input = input;
            ev.clockPairs = decodeIngestClockPairs(msg);
            if (!channel_.send(std::move(ev))) {
              throw IngestError(IngestStatus::kShuttingDown,
                                "ingest is shutting down");
            }
            break;
          }
          case IngestOp::kRecords: {
            if (!session.sawThreads) {
              throw IngestError(IngestStatus::kBadRequest,
                                "records before the thread table");
            }
            SessionEvent ev;
            ev.kind = SessionEvent::Kind::kRecords;
            ev.input = input;
            ev.records = decodeIngestRecords(msg);
            for (const auto& body : ev.records) ev.bytes += body.size();
            // The ack below happens only after both gates pass, which is
            // what makes the reply an explicit backpressure signal.
            if (!budgets_[input]->acquire(ev.bytes)) {
              throw IngestError(IngestStatus::kShuttingDown,
                                "ingest is shutting down");
            }
            const std::size_t bytes = ev.bytes;
            if (!channel_.send(std::move(ev))) {
              budgets_[input]->release(bytes);
              throw IngestError(IngestStatus::kShuttingDown,
                                "ingest is shutting down");
            }
            break;
          }
          case IngestOp::kBye: {
            SessionEvent ev;
            ev.kind = SessionEvent::Kind::kClose;
            ev.input = input;
            if (!channel_.send(std::move(ev))) {
              throw IngestError(IngestStatus::kShuttingDown,
                                "ingest is shutting down");
            }
            session.sawBye = true;
            break;
          }
          default:
            throw IngestError(IngestStatus::kBadRequest, "unknown ingest op");
        }
      }
      reply = encodeIngestReply(IngestStatus::kOk);
    } catch (const IngestError& e) {
      // Structured error reply before close — the client sees why, not a
      // bare EOF. The session is over either way.
      reply = encodeIngestReply(e.status(), e.what());
      fatal = true;
    }
  } catch (const std::exception&) {
    // Torn frame (decode failure outside the ingest-status taxonomy):
    // drop the client silently; onClosed synthesizes the abort.
    req.reactor->complete(req, nullptr, /*closeAfter=*/true);
    return;
  }
  // A session ends after its kBye ack (or a fatal reply) — the reactor
  // drains the reply first, then closes, then onClosed fires.
  req.reactor->complete(req, std::move(reply),
                        /*closeAfter=*/fatal || session.sawBye);
}

std::vector<std::uint8_t> IngestServer::onConnError(
    Reactor::ConnId /*conn*/, Reactor::ConnError /*kind*/,
    const std::string& /*detail*/) {
  // Framing violations and liveness timeouts are disconnects in the
  // ingest protocol (same as the old per-session recv timeout): no
  // reply; onClosed turns the claim into an abort.
  return {};
}

void IngestServer::onClosed(Reactor::ConnId conn) {
  const auto it = sessions_.find(conn);
  if (it == sessions_.end()) return;
  const std::shared_ptr<Session> session = it->second;
  sessions_.erase(it);
  if (session->input && !session->sawBye) {
    // Disconnect without kBye = abort. onClosed is only fired after the
    // session's last in-flight message completed, so this can never
    // overtake records still being admitted. The send may briefly block
    // on a full channel; the merge thread drains it independently, and a
    // closed channel (merge already over) returns false immediately.
    SessionEvent ev;
    ev.kind = SessionEvent::Kind::kAbort;
    ev.input = *session->input;
    // The merge thread drains the channel independently, and send() on
    // a closed channel (merge already over) returns false immediately.
    // utecheck: allow(blocking) — bounded wait: merge thread drains independently
    channel_.send(std::move(ev));
  }
}

// --- the merge thread -------------------------------------------------------

void IngestServer::openOutputs() {
  StreamMerger::RecordSink sink;
  if (!options_.slogPath.empty()) {
    sink = [this](const RecordView& record) { slog_->addRecord(record); };
  }
  merger_->openOutput(options_.outPath, std::move(sink));
  if (feed_) feed_->setThreads(merger_->threads());
  if (options_.slogPath.empty()) return;
  slog_ = std::make_unique<SlogWriter>(options_.slogPath, options_.slog,
                                       profile_, merger_->threads(),
                                       merger_->markers());
  if (feed_) {
    feed_->setStates(slog_->states());
    slog_->setFrameSealHook(
        [this](const SlogFrameIndexEntry& entry, SlogFramePtr frame) {
          feed_->onFrameSealed(entry, std::move(frame));
          // Marker states can register mid-run; keep the snapshot fresh.
          feed_->setStates(slog_->states());
        });
  }
}

void IngestServer::releaseBudgets(std::vector<std::size_t>& charge) {
  for (std::size_t i = 0; i < charge.size(); ++i) {
    const std::size_t buffered = merger_->bufferedBytes(i);
    if (charge[i] > buffered) {
      budgets_[i]->release(charge[i] - buffered);
      charge[i] = buffered;
    }
  }
}

void IngestServer::mergeLoop() {
  const std::size_t inputs = options_.expectedNodes.size();
  std::vector<std::size_t> charge(inputs, 0);
  std::size_t open = inputs;
  std::size_t tables = 0;
  try {
    while (auto ev = channel_.receive()) {
      const std::size_t i = ev->input;
      switch (ev->kind) {
        case SessionEvent::Kind::kThreads:
          merger_->setThreads(i, ev->threads);
          ++tables;
          break;
        case SessionEvent::Kind::kMarker:
          merger_->addMarker(ev->markerId, ev->markerName);
          if (slog_) {
            slog_->registerState(kMarkerStateBase + ev->markerId,
                                 ev->markerName);
          }
          break;
        case SessionEvent::Kind::kClockPairs:
          merger_->setClockPairs(i, ev->clockPairs.pairs,
                                 ev->clockPairs.final);
          break;
        case SessionEvent::Kind::kRecords:
          for (const auto& body : ev->records) merger_->addRecord(i, body);
          charge[i] += ev->bytes;
          break;
        case SessionEvent::Kind::kClose:
          merger_->closeInput(i);
          --open;
          break;
        case SessionEvent::Kind::kAbort:
          merger_->abortInput(i);
          --open;
          break;
      }
      if (!merger_->opened() && tables == inputs) openOutputs();
      if (merger_->opened()) {
        merger_->advance();
        releaseBudgets(charge);
        if (feed_) feed_->setWatermark(merger_->watermark());
      }
      if (open == 0) break;
    }
    if (open > 0) {
      // The channel closed under us (stop()): whatever is still open is
      // an abort, so the output closes cleanly.
      for (std::size_t i = 0; i < inputs; ++i) {
        if (merger_->inputOpen(i)) merger_->abortInput(i);
      }
    }
    if (!merger_->opened()) {
      if (tables == inputs) {
        openOutputs();
      } else {
        throw FormatError(
            "ingest ended before every node sent its thread table");
      }
    }
    StreamMergeResult result = merger_->finish();
    if (slog_) slog_->close();
    if (feed_) {
      const auto [start, end] = feed_->timeRange();
      feed_->finish(start, end);
    }
    markDone(std::move(result), "");
  } catch (const std::exception& e) {
    markDone(StreamMergeResult{}, e.what());
  }
  // Late or blocked sessions must not hang on a finished merge.
  channel_.close();
  for (auto& budget : budgets_) budget->close();
}

}  // namespace ute
