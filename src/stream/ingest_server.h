// The always-on ingest side of a streaming run: accepts one TCP session
// per expected node, feeds their records through the resumable
// StreamMerger on a single merge thread, and (optionally) publishes the
// growing result — merged .uti file, SLOG frames, live metrics — through
// a LiveFeed the query service can serve while the run is in flight
// (docs/STREAMING.md).
//
// Threads:
//   - the shared epoll Reactor (src/server/reactor.h) owns every
//     session's socket and state machine on one event-loop thread;
//   - a small worker pool (one slot per expected node plus slack) runs
//     the per-message protocol work, because admitting a kRecords batch
//     legitimately blocks on the session's ByteBudget; the reactor
//     dispatches one message per session at a time, so session state
//     needs no locking and acks stay in order;
//   - the single merge thread drains a bounded Channel<SessionEvent>,
//     drives the StreamMerger, and owns the output writers —
//     StreamMerger and SlogWriter stay single-threaded by construction.
//
// Backpressure: each session has its own ByteBudget. A kRecords batch is
// acked only after its bytes fit the session's budget and the event is
// queued; the budget is released as the merge consumes the session's
// buffered records. Budgets are per session, not global: one global
// budget deadlocks when a fast node fills it while the watermark waits
// on a slow node whose records would be the next to drain.
//
// Teardown: a session that disconnects without kBye is an abort — the
// merge synthesizes end pieces for the node's open states
// (StreamMerger::abortInput) so the merged output stays well-formed. The
// reactor fires onClosed only after the session's last in-flight message
// finished, so the abort event can never overtake records already being
// admitted. A node that aborted cannot reconnect: its closures are
// already in the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "interval/profile.h"
#include "server/reactor.h"
#include "server/worker_pool.h"
#include "slog/slog_writer.h"
#include "stream/ingest_protocol.h"
#include "stream/live_feed.h"
#include "stream/stream_merger.h"
#include "support/channel.h"
#include "support/thread_annotations.h"
#include "support/types.h"

namespace ute {

struct IngestServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Nodes the run expects, in input-index order; a hello naming any
  /// other node gets kUnknownNode.
  std::vector<NodeId> expectedNodes;
  std::string outPath;   ///< merged .uti output (required)
  std::string slogPath;  ///< SLOG output; empty = no SLOG, no live frames
  StreamMergeOptions merge;
  SlogOptions slog;
  /// Per-session cap on bytes buffered inside the merge (acquired at
  /// kRecords ack time, released as the merge drains the session's
  /// records). 0 = unlimited — required for simulator feeds whose online
  /// clock fit may only freeze at end of stream. A batch larger than the
  /// whole budget is admitted alone once the budget is empty.
  std::size_t sessionBudgetBytes = 8 << 20;
  /// Liveness bound per session: a session idle (no message) or stuck
  /// mid-frame this long is treated as a disconnect (abort). Sessions
  /// whose message is being serviced — e.g. blocked on the byte budget —
  /// are exempt. 0 = wait forever.
  int sessionTimeoutMs = 30'000;
  std::size_t channelCapacity = 64;
};

/// Blocking byte counter a session acquires against before queueing
/// records and the merge thread releases as they drain.
class ByteBudget {
 public:
  explicit ByteBudget(std::size_t limit) : limit_(limit) {}

  /// Blocks until `n` fits (or the budget is empty — an oversize batch
  /// is admitted alone). Returns false once close()d.
  bool acquire(std::size_t n) UTE_EXCLUDES(mu_);
  void release(std::size_t n) UTE_EXCLUDES(mu_);
  /// Unblocks every waiter; further acquires fail.
  void close() UTE_EXCLUDES(mu_);

 private:
  const std::size_t limit_;  ///< 0 = unlimited
  Mutex mu_;
  CondVar cv_;
  std::size_t used_ UTE_GUARDED_BY(mu_) = 0;
  bool closed_ UTE_GUARDED_BY(mu_) = false;
};

class IngestServer : private Reactor::Handler {
 public:
  /// Binds, spawns the merge thread and the reactor. `feed` (optional,
  /// not owned, must outlive the server) receives sealed frames, the
  /// watermark, and live metrics.
  IngestServer(const Profile& profile, IngestServerOptions options,
               LiveFeed* feed = nullptr);
  ~IngestServer() override;

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  std::uint16_t port() const { return reactor_->port(); }
  Reactor::Stats reactorStats() const { return reactor_->stats(); }

  /// Blocks until the merge finished (every expected node closed or the
  /// server was stopped). Rethrows a merge-side failure as FormatError.
  StreamMergeResult wait() UTE_EXCLUDES(mu_);

  /// Stops accepting, wakes every blocked session, drains the merge, and
  /// joins all threads. Sessions still open are treated as aborts.
  /// Idempotent from one thread; the destructor calls it.
  void stop();

 private:
  /// One decoded client message, forwarded worker -> merge thread.
  struct SessionEvent {
    enum class Kind : std::uint8_t {
      kThreads,
      kMarker,
      kClockPairs,
      kRecords,
      kClose,  ///< graceful kBye
      kAbort,  ///< disconnect / timeout / protocol violation
    };
    Kind kind = Kind::kAbort;
    std::size_t input = 0;
    std::vector<ThreadEntry> threads;
    std::uint32_t markerId = 0;
    std::string markerName;
    IngestClockPairs clockPairs;
    std::vector<std::vector<std::uint8_t>> records;
    std::size_t bytes = 0;  ///< budget charge carried by kRecords
  };

  /// Ingest-protocol progress of one connection. The map is reactor-
  /// thread confined; each Session object is shared with at most one
  /// worker at a time (the reactor serializes per-connection dispatch).
  struct Session {
    std::optional<std::size_t> input;
    bool sawThreads = false;
    bool sawBye = false;
  };

  void onRequest(Reactor::Request req,
                 std::vector<std::uint8_t> payload) override;
  std::vector<std::uint8_t> onConnError(Reactor::ConnId conn,
                                        Reactor::ConnError kind,
                                        const std::string& detail) override;
  void onClosed(Reactor::ConnId conn) override;

  /// Protocol work for one message; runs on the session pool because
  /// kRecords admission blocks on the ByteBudget.
  void serviceMessage(Reactor::Request req, Session& session,
                      const std::vector<std::uint8_t>& msg);

  void mergeLoop();
  /// Creates the output writers once every thread table arrived (merge
  /// thread only).
  void openOutputs();
  /// Returns drained budget charge to the sessions (merge thread only).
  void releaseBudgets(std::vector<std::size_t>& charge);
  std::size_t claimNode(NodeId node) UTE_EXCLUDES(mu_);
  void markDone(StreamMergeResult result, std::string error)
      UTE_EXCLUDES(mu_);

  const Profile& profile_;
  IngestServerOptions options_;
  LiveFeed* feed_ = nullptr;  ///< not owned; may be null
  Channel<SessionEvent> channel_;
  /// One budget per expected node; the objects are immortal for the
  /// server's lifetime, so workers index without a lock.
  std::vector<std::unique_ptr<ByteBudget>> budgets_;

  // Merge-thread-confined state (created in the constructor before the
  // thread starts; the destructor touches it only after the join).
  std::unique_ptr<StreamMerger> merger_;
  std::unique_ptr<SlogWriter> slog_;

  mutable Mutex mu_;
  CondVar doneCv_;
  std::vector<bool> claimed_ UTE_GUARDED_BY(mu_);
  bool stopped_ UTE_GUARDED_BY(mu_) = false;
  bool done_ UTE_GUARDED_BY(mu_) = false;
  std::string error_ UTE_GUARDED_BY(mu_);
  StreamMergeResult result_ UTE_GUARDED_BY(mu_);

  std::thread mergeThread_;

  /// Reactor-thread confined (see Session).
  std::unordered_map<Reactor::ConnId, std::shared_ptr<Session>> sessions_;

  /// Declaration order = teardown contract: pool_ (last) is destroyed
  /// first and joins its workers while reactor_ is still alive to absorb
  /// their complete() calls.
  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace ute
