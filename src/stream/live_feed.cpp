#include "stream/live_feed.h"

#include <algorithm>

#include "support/errors.h"

namespace ute {

LiveFeed::LiveFeed(LiveFeedOptions options) : options_(options) {
  if (options_.metricsBinWidth == 0) options_.metricsBinWidth = 1;
}

void LiveFeed::setThreads(std::vector<ThreadEntry> threads) {
  MutexLock lock(mu_);
  threads_ = std::move(threads);
}

void LiveFeed::setStates(std::vector<SlogStateDef> states) {
  MutexLock lock(mu_);
  states_ = std::move(states);
}

void LiveFeed::onFrameSealed(const SlogFrameIndexEntry& entry,
                             SlogFramePtr frame) {
  MutexLock lock(mu_);
  if (!frame) throw UsageError("LiveFeed: sealed frame without contents");
  if (!haveMetrics_) {
    // First frame: its start anchors both the time range and the
    // metrics origin.
    metrics_ =
        MetricsStore(entry.timeStart, options_.metricsBinWidth, threads_);
    haveMetrics_ = true;
  }
  if (!haveFrames_) {
    totalStart_ = entry.timeStart;
    haveFrames_ = true;
  }
  totalEnd_ = std::max(totalEnd_, entry.timeEnd);
  // Extend before accumulating: spread() clamps spill into the last
  // bin, so the grid must already cover the frame's far edge.
  metrics_.extendTo(entry.timeEnd);
  metrics_.addFrame(*frame);
  frames_.emplace_back(entry, std::move(frame));
}

void LiveFeed::setWatermark(Tick watermark) {
  MutexLock lock(mu_);
  watermark_ = std::max(watermark_, watermark);
}

void LiveFeed::finish(Tick totalStart, Tick totalEnd) {
  MutexLock lock(mu_);
  totalStart_ = totalStart;
  totalEnd_ = std::max(totalEnd_, totalEnd);
  watermark_ = std::max(watermark_, totalEnd_);
  finished_ = true;
}

LiveFeed::TailFrames LiveFeed::framesFrom(std::uint64_t cursor,
                                          std::uint32_t maxFrames) const {
  MutexLock lock(mu_);
  TailFrames out;
  out.finished = finished_;
  out.watermark = watermark_;
  const std::uint64_t total = frames_.size();
  const std::uint64_t from = std::min(cursor, total);
  const std::uint64_t to =
      maxFrames == 0 ? total : std::min(total, from + maxFrames);
  out.frames.assign(frames_.begin() + static_cast<std::ptrdiff_t>(from),
                    frames_.begin() + static_cast<std::ptrdiff_t>(to));
  out.nextCursor = to;
  return out;
}

LiveFeed::TailMetrics LiveFeed::metrics() const {
  MutexLock lock(mu_);
  TailMetrics out;
  out.finished = finished_;
  out.watermark = watermark_;
  if (haveMetrics_) {
    out.blob = metrics_.encode();
    if (finished_) {
      out.sealedBins = metrics_.bins();
    } else if (watermark_ > metrics_.origin()) {
      const Tick below = watermark_ - metrics_.origin();
      out.sealedBins = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          below / metrics_.binWidth(), metrics_.bins()));
    }
  }
  return out;
}

std::vector<ThreadEntry> LiveFeed::threads() const {
  MutexLock lock(mu_);
  return threads_;
}

std::vector<SlogStateDef> LiveFeed::states() const {
  MutexLock lock(mu_);
  return states_;
}

std::uint64_t LiveFeed::frameCount() const {
  MutexLock lock(mu_);
  return frames_.size();
}

bool LiveFeed::finished() const {
  MutexLock lock(mu_);
  return finished_;
}

Tick LiveFeed::watermark() const {
  MutexLock lock(mu_);
  return watermark_;
}

std::pair<Tick, Tick> LiveFeed::timeRange() const {
  MutexLock lock(mu_);
  return {totalStart_, totalEnd_};
}

}  // namespace ute
