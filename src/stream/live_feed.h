// The live query surface of a streaming run: everything the ingest
// server's merge thread has sealed so far, in a form the query service
// can serve while the run is still in flight (docs/STREAMING.md).
//
// The merge thread is the only writer: sealed SLOG frames arrive through
// SlogWriter's frame-seal hook, the watermark advances after each merge
// step, and finish() stamps the final time range. Server worker threads
// read concurrently: TailFrames pages through sealed frames by cursor
// (frames are append-only, so a client that resumes from its last cursor
// sees every frame exactly once across disconnects), and TailMetrics
// serves the incrementally extended .utm blob — fixed-width bins are
// appended as global time advances, and only the open tail bin (the one
// the watermark is still inside) can change value between polls.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/metrics.h"
#include "interval/file_writer.h"
#include "slog/slog_format.h"
#include "support/thread_annotations.h"
#include "support/types.h"

namespace ute {

struct LiveFeedOptions {
  /// Fixed metrics bin width (ns). A live run's end is unknown, so the
  /// batch rule "span / 240 bins" cannot apply; bins of this width are
  /// appended as the run grows.
  Tick metricsBinWidth = 1'000'000;
};

class LiveFeed {
 public:
  struct TailFrames {
    std::uint64_t nextCursor = 0;
    bool finished = false;
    Tick watermark = 0;
    std::vector<std::pair<SlogFrameIndexEntry, SlogFramePtr>> frames;
  };

  struct TailMetrics {
    bool finished = false;
    Tick watermark = 0;
    /// Bins strictly below the watermark: their cells are final, a
    /// polling client only needs to refresh from here on.
    std::uint32_t sealedBins = 0;
    /// The encoded .utm store (empty until the thread table is known).
    std::vector<std::uint8_t> blob;
  };

  explicit LiveFeed(LiveFeedOptions options = {});

  // --- writer side (the merge thread) ------------------------------------

  /// The merged thread table; required before the first sealed frame.
  void setThreads(std::vector<ThreadEntry> threads) UTE_EXCLUDES(mu_);
  /// Snapshot of the SLOG state table (grows as markers register).
  void setStates(std::vector<SlogStateDef> states) UTE_EXCLUDES(mu_);
  /// SlogWriter frame-seal hook target: appends the frame and folds it
  /// into the live metrics store.
  void onFrameSealed(const SlogFrameIndexEntry& entry, SlogFramePtr frame)
      UTE_EXCLUDES(mu_);
  void setWatermark(Tick watermark) UTE_EXCLUDES(mu_);
  /// Stamps the final time range; after this, tails report finished.
  void finish(Tick totalStart, Tick totalEnd) UTE_EXCLUDES(mu_);

  // --- reader side (server workers) ---------------------------------------

  /// Sealed frames [cursor, cursor + maxFrames); an out-of-range cursor
  /// yields an empty page at nextCursor == frameCount().
  TailFrames framesFrom(std::uint64_t cursor, std::uint32_t maxFrames) const
      UTE_EXCLUDES(mu_);
  TailMetrics metrics() const UTE_EXCLUDES(mu_);

  std::vector<ThreadEntry> threads() const UTE_EXCLUDES(mu_);
  std::vector<SlogStateDef> states() const UTE_EXCLUDES(mu_);
  std::uint64_t frameCount() const UTE_EXCLUDES(mu_);
  bool finished() const UTE_EXCLUDES(mu_);
  Tick watermark() const UTE_EXCLUDES(mu_);
  /// (totalStart, totalEnd): final after finish(), the sealed range
  /// (first frame start, last frame end) while live.
  std::pair<Tick, Tick> timeRange() const UTE_EXCLUDES(mu_);

 private:
  LiveFeedOptions options_;
  mutable Mutex mu_;
  std::vector<ThreadEntry> threads_ UTE_GUARDED_BY(mu_);
  std::vector<SlogStateDef> states_ UTE_GUARDED_BY(mu_);
  std::vector<std::pair<SlogFrameIndexEntry, SlogFramePtr>> frames_
      UTE_GUARDED_BY(mu_);
  /// Live store; shaped once the first frame seals (its start is the
  /// origin).
  MetricsStore metrics_ UTE_GUARDED_BY(mu_);
  bool haveMetrics_ UTE_GUARDED_BY(mu_) = false;
  bool finished_ UTE_GUARDED_BY(mu_) = false;
  Tick watermark_ UTE_GUARDED_BY(mu_) = 0;
  Tick totalStart_ UTE_GUARDED_BY(mu_) = 0;
  Tick totalEnd_ UTE_GUARDED_BY(mu_) = 0;
  bool haveFrames_ UTE_GUARDED_BY(mu_) = false;
};

}  // namespace ute
