#include "stream/online_fit.h"

#include <algorithm>
#include <cmath>

namespace ute {

ClockMap batchClockFit(std::vector<TimestampPair> pairs, SyncMethod method,
                       bool filterOutliers, double outlierTolerance) {
  if (filterOutliers && pairs.size() >= 3) {
    pairs = filterOutlierPairs(pairs, outlierTolerance);
  }
  return pairs.size() >= 2 ? ClockMap(pairs, method) : ClockMap::identity();
}

OnlineClockFit::OnlineClockFit(OnlineFitOptions options)
    : options_(options) {
  if (options_.window < 2) options_.window = 2;
  if (options_.convergenceRuns < 1) options_.convergenceRuns = 1;
}

void OnlineClockFit::addPair(const TimestampPair& pair) {
  if (frozen_) return;
  ++observed_;
  if (window_.size() >= options_.window) {
    // Keep the anchor (the batch fit's anchor too); age out the oldest
    // of the sliding tail.
    window_.erase(window_.begin() + 1);
  }
  window_.push_back(pair);
  refit();
}

void OnlineClockFit::setFinalPairs(std::span<const TimestampPair> pairs) {
  map_ = batchClockFit(std::vector<TimestampPair>(pairs.begin(), pairs.end()),
                       options_.method, options_.filterOutliers,
                       options_.outlierTolerance);
  observed_ = std::max(observed_, pairs.size());
  lastRatio_ = map_.ratio();
  frozen_ = true;
}

void OnlineClockFit::refit() {
  map_ = batchClockFit(window_, options_.method, options_.filterOutliers,
                       options_.outlierTolerance);
  const double ratio = map_.ratio();
  const double base = std::max(std::abs(lastRatio_), 1e-12);
  if (observed_ >= options_.minPairs &&
      std::abs(ratio - lastRatio_) <= options_.convergenceTolerance * base) {
    ++quietRuns_;
  } else {
    quietRuns_ = 0;
  }
  lastRatio_ = ratio;
}

bool OnlineClockFit::converged() const {
  if (frozen_) return true;
  return observed_ >= options_.minPairs &&
         quietRuns_ >= options_.convergenceRuns;
}

}  // namespace ute
