// Incremental per-node clock fitting for the streaming merge.
//
// The batch merger (src/merge/merger.cpp) sees every (global, local)
// timestamp pair of a node before it adjusts a single record. A live
// ingest session cannot wait for the run to finish, so OnlineClockFit
// maintains a *windowed* re-fit: each arriving pair updates a ClockMap
// built from the first pair ever seen (the anchor — the same anchor the
// batch fit uses) plus the most recent `window - 1` pairs. Once the
// fitted ratio stops moving (relative delta below `convergenceTolerance`
// for `convergenceRuns` consecutive updates) the fit is considered
// converged and may be frozen, after which records can be adjusted and
// emitted without the risk of the time base shifting under them.
//
// The batch-equivalence path: setFinalPairs() reproduces the exact
// outlier-filter + ClockMap construction of the batch merger, so a
// streamed run whose sources ship their full pair list up front produces
// byte-identical output (docs/STREAMING.md).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "clock/sync.h"

namespace ute {

struct OnlineFitOptions {
  SyncMethod method = SyncMethod::kRmsSegments;
  /// Drop daemon-descheduling outliers, as in MergeOptions.
  bool filterOutliers = true;
  double outlierTolerance = 5e-5;
  /// Pairs retained for the windowed re-fit (anchor + window-1 recent).
  std::size_t window = 64;
  /// No convergence verdict before this many pairs have been observed.
  std::size_t minPairs = 8;
  /// Relative ratio change per update counted as "quiet".
  double convergenceTolerance = 1e-7;
  /// Consecutive quiet updates required to declare convergence.
  int convergenceRuns = 4;
};

/// The exact clock fit of the batch merger's first pass: optional
/// outlier filtering (only with >= 3 pairs), then an anchored ClockMap
/// (identity with fewer than two pairs). Both IntervalMerger and
/// StreamMerger call this so the two pipelines cannot drift apart.
ClockMap batchClockFit(std::vector<TimestampPair> pairs, SyncMethod method,
                       bool filterOutliers, double outlierTolerance);

class OnlineClockFit {
 public:
  explicit OnlineClockFit(OnlineFitOptions options = {});

  /// Observes one (global, local) pair and re-fits the window. Ignored
  /// once the fit is frozen.
  void addPair(const TimestampPair& pair);

  /// Replaces the fit with the batch fit over the complete pair list and
  /// freezes it — the path a source takes when it knows all its global
  /// clock records up front (file replay).
  void setFinalPairs(std::span<const TimestampPair> pairs);

  /// Locks in the current windowed fit; addPair becomes a no-op.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// True once the windowed ratio has been stable long enough (see
  /// OnlineFitOptions). Frozen fits always report converged.
  bool converged() const;

  /// Pairs observed (not the window size).
  std::size_t pairCount() const { return observed_; }

  const ClockMap& map() const { return map_; }
  double ratio() const { return map_.ratio(); }

 private:
  void refit();

  OnlineFitOptions options_;
  std::vector<TimestampPair> window_;  ///< window_[0] is the pinned anchor
  std::size_t observed_ = 0;
  ClockMap map_ = ClockMap::identity();
  double lastRatio_ = 1.0;
  int quietRuns_ = 0;
  bool frozen_ = false;
};

}  // namespace ute
