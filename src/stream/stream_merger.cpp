#include "stream/stream_merger.h"

#include <algorithm>
#include <utility>

#include "interval/standard_profile.h"
#include "support/errors.h"
#include "trace/events.h"

namespace ute {

namespace {

constexpr Tick kSentinelEnd = ~Tick{0};

std::uint64_t leU64At(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

/// One input stream: clock fit, raw-record buffer, and a one-record
/// lookahead already adjusted onto the global time base (the streaming
/// twin of the batch merger's InputStream).
struct StreamMerger::Input {
  OnlineClockFit fit;
  std::vector<ThreadEntry> threadTable;
  std::set<std::pair<NodeId, LogicalThreadId>> excludedThreads;
  std::set<NodeId> nodes;  ///< nodes named by this input's thread table
  std::deque<std::vector<std::uint8_t>> pending;  ///< raw bodies, asc. end
  std::vector<std::uint8_t> body;  ///< adjusted current record
  RecordView view;
  bool ok = false;
  bool haveThreads = false;
  bool closed = false;
  bool aborted = false;
  bool closuresQueued = false;
  bool sawRecord = false;
  Tick frontierRaw = 0;  ///< raw (local) end of the last accepted record
  std::size_t bufferedBytes = 0;  ///< sum of pending body sizes

  explicit Input(const OnlineFitOptions& fitOptions) : fit(fitOptions) {}
};

StreamMerger::StreamMerger(const Profile& profile, StreamMergeOptions options)
    : profile_(profile), options_(options) {
  // The online-fit sub-options must agree with the merge-level clock
  // settings; the merge-level ones win.
  options_.onlineFit.method = options_.syncMethod;
  options_.onlineFit.filterOutliers = options_.filterOutliers;
  options_.onlineFit.outlierTolerance = options_.outlierTolerance;

  // Byte length of the "always" fields (those on every piece) per event
  // type, from the continuation specs — what a pseudo-interval copies.
  for (const auto& [type, spec] : profile_.specs()) {
    if (intervalBebits(type) != Bebits::kContinuation) continue;
    std::size_t len = 0;
    for (std::size_t i = 6; i < spec.fields.size(); ++i) {
      if (spec.fields[i].attr == 0) len += spec.fields[i].elemLen;
    }
    alwaysLen_[intervalEventType(type)] = len;
  }
}

StreamMerger::~StreamMerger() = default;

StreamMerger::Input& StreamMerger::input(std::size_t i) {
  if (i >= inputs_.size()) {
    throw UsageError("StreamMerger: unknown input index " + std::to_string(i));
  }
  return *inputs_[i];
}

const StreamMerger::Input& StreamMerger::input(std::size_t i) const {
  if (i >= inputs_.size()) {
    throw UsageError("StreamMerger: unknown input index " + std::to_string(i));
  }
  return *inputs_[i];
}

std::size_t StreamMerger::addInput() {
  if (writer_) {
    throw UsageError("StreamMerger: inputs must be added before openOutput()");
  }
  inputs_.push_back(std::make_unique<Input>(options_.onlineFit));
  return inputs_.size() - 1;
}

void StreamMerger::setThreads(std::size_t i,
                              const std::vector<ThreadEntry>& threads) {
  Input& in = input(i);
  if (in.haveThreads) {
    throw UsageError("StreamMerger: thread table already set for input " +
                     std::to_string(i));
  }
  if (writer_) {
    throw UsageError("StreamMerger: thread tables must be set before openOutput()");
  }
  in.threadTable = threads;
  for (const ThreadEntry& t : threads) {
    in.nodes.insert(t.node);
    if ((options_.threadTypeMask & StreamMergeOptions::threadTypeBit(t.type)) ==
        0) {
      in.excludedThreads.emplace(t.node, t.ltid);
    }
  }
  in.haveThreads = true;
}

void StreamMerger::addMarker(std::uint32_t id, const std::string& name) {
  const auto [it, inserted] = mergedMarkers_.emplace(id, name);
  if (!inserted && it->second != name) {
    throw FormatError("marker id " + std::to_string(id) +
                      " names two strings across inputs — run the "
                      "convert utility with a shared marker unifier");
  }
  if (inserted && writer_) writer_->addMarker(id, name);
}

void StreamMerger::setClockPairs(std::size_t i,
                                 std::span<const TimestampPair> pairs,
                                 bool final) {
  Input& in = input(i);
  if (final) {
    in.fit.setFinalPairs(pairs);
  } else {
    for (const TimestampPair& p : pairs) in.fit.addPair(p);
  }
}

void StreamMerger::addClockPair(std::size_t i, const TimestampPair& pair) {
  input(i).fit.addPair(pair);
}

void StreamMerger::addRecord(std::size_t i,
                             std::span<const std::uint8_t> body) {
  Input& in = input(i);
  if (in.closed) {
    throw UsageError("StreamMerger: record for closed input " +
                     std::to_string(i));
  }
  if (!in.haveThreads) {
    throw UsageError("StreamMerger: records before the thread table of "
                     "input " + std::to_string(i));
  }
  const RecordView v = RecordView::parse(body);
  ++result_.recordsIn;
  // Per-input records must arrive in ascending end order (the .uti
  // writer invariant the watermark rule depends on).
  if (in.sawRecord && v.end() < in.frontierRaw) {
    throw FormatError("streamed record out of order on input " +
                      std::to_string(i) + ": end " +
                      std::to_string(v.end()) + " after frontier " +
                      std::to_string(in.frontierRaw));
  }
  in.frontierRaw = v.end();
  in.sawRecord = true;

  if (v.eventType() == kClockSyncState) {
    if (body.size() < kCommonPrefixBytes + 8) {
      throw FormatError("short ClockSync record on streamed input " +
                        std::to_string(i));
    }
    TimestampPair p;
    p.local = v.start;
    p.global = leU64At(body, kCommonPrefixBytes);
    in.fit.addPair(p);
    if (!options_.keepClockRecords) return;
  }
  if (!in.excludedThreads.empty() &&
      in.excludedThreads.count({v.node, v.thread}) != 0) {
    return;
  }
  in.pending.emplace_back(body.begin(), body.end());
  bufferedBytes_ += body.size();
  in.bufferedBytes += body.size();
  dirty_.push_back(i);
}

void StreamMerger::closeInput(std::size_t i) {
  Input& in = input(i);
  if (in.closed) return;
  in.closed = true;
  if (!in.fit.frozen()) in.fit.freeze();
  dirty_.push_back(i);
}

void StreamMerger::abortInput(std::size_t i) {
  Input& in = input(i);
  if (in.closed) return;
  in.aborted = true;
  in.closed = true;
  if (!in.fit.frozen()) in.fit.freeze();
  dirty_.push_back(i);
}

bool StreamMerger::inputOpen(std::size_t i) const { return !input(i).closed; }

std::size_t StreamMerger::bufferedBytes(std::size_t i) const {
  return input(i).bufferedBytes;
}

bool StreamMerger::needsData(std::size_t i) const {
  const Input& in = input(i);
  return !in.closed && !in.ok && in.pending.empty();
}

/// Synthesizes zero-duration end pieces at the input's frontier for
/// every state still open on its nodes — the disconnect analogue of the
/// converter's end-of-trace thread sealing. The pieces are enqueued as
/// ordinary raw records so they flow through the normal adjust/emit
/// path (and pop the open-state stacks they close).
void StreamMerger::queueAbortClosures(Input& in) {
  in.closuresQueued = true;
  for (auto& [key, stack] : openStates_) {
    if (in.nodes.count(key.first) == 0) continue;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const OpenState& s = *it;
      ByteWriter extra;
      extra.bytes(s.alwaysBytes);
      // End-only fields, zero-padded exactly as the converter pads a
      // sealed thread: receive results for MpiRecv/MpiWait, the end
      // instruction address for user markers.
      if (s.type == EventType::kMpiRecv || s.type == EventType::kMpiWait) {
        extra.i32(-1);
        extra.i32(-1);
        extra.u32(0);
        extra.u32(0);
      } else if (s.type == EventType::kUserMarker) {
        extra.u64(0);
      }
      ByteWriter body = encodeRecordBody(
          makeIntervalType(s.type, Bebits::kEnd), in.frontierRaw,
          /*dura=*/0, s.cpu, s.node, s.thread, extra.view());
      in.pending.emplace_back(body.view().begin(), body.view().end());
      bufferedBytes_ += body.size();
      in.bufferedBytes += body.size();
      ++result_.abortClosures;
    }
  }
}

/// Loads the input's next buffered record into the adjusted lookahead —
/// the streaming twin of the batch InputStream::advance (filtering
/// already happened in addRecord).
void StreamMerger::loadNext(Input& in) {
  if (in.pending.empty() && in.aborted && !in.closuresQueued) {
    queueAbortClosures(in);
  }
  if (in.pending.empty()) {
    in.ok = false;
    return;
  }
  const std::vector<std::uint8_t> raw = std::move(in.pending.front());
  in.pending.pop_front();
  bufferedBytes_ -= raw.size();
  in.bufferedBytes -= raw.size();
  const RecordView rawView = RecordView::parse(raw);
  in.body.assign(raw.begin(), raw.end());
  // Map both endpoints through the (monotone) clock map and derive the
  // duration from them: mapping start and duration independently can
  // round equal end times to values 1 ns apart, breaking the merged
  // file's end-time ordering. The difference equals the paper's R*D up
  // to rounding.
  const Tick newStart = in.fit.map().toGlobal(rawView.start);
  const Tick newEnd = in.fit.map().toGlobal(rawView.end());
  patchRecordTimes(in.body, newStart, newEnd - newStart);
  // Merged files carry the pre-adjustment local start time (attr-1
  // field origStart, last in every spec).
  for (int i = 0; i < 8; ++i) {
    in.body.push_back(static_cast<std::uint8_t>(rawView.start >> (8 * i)));
  }
  in.view = RecordView::parse(in.body);
  in.ok = true;
}

void StreamMerger::openOutput(const std::string& outPath, RecordSink sink) {
  if (writer_) throw UsageError("StreamMerger: openOutput() called twice");
  if (inputs_.empty()) {
    throw UsageError("merge needs at least one input file");
  }
  // Cross-input duplicate check and merged table, in input-index order
  // so the output is independent of the order sessions connected.
  std::map<std::pair<NodeId, LogicalThreadId>, bool> seenThreads;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    Input& in = *inputs_[i];
    if (!in.haveThreads) {
      throw UsageError("StreamMerger: openOutput() before the thread table of "
                       "input " + std::to_string(i));
    }
    for (const ThreadEntry& t : in.threadTable) {
      if (seenThreads.emplace(std::make_pair(t.node, t.ltid), true).second ==
          false) {
        throw FormatError("thread (node " + std::to_string(t.node) +
                          ", ltid " + std::to_string(t.ltid) +
                          ") appears in more than one input file");
      }
      if (in.excludedThreads.count({t.node, t.ltid}) != 0) continue;
      mergedThreads_.push_back(t);
    }
  }

  IntervalFileOptions writerOptions;
  writerOptions.profileVersion = profile_.versionId();
  writerOptions.fieldSelectionMask = kMergedFileMask;
  writerOptions.merged = true;
  writerOptions.targetFrameBytes = options_.targetFrameBytes;
  writerOptions.framesPerDirectory = options_.framesPerDirectory;
  writer_ = std::make_unique<IntervalFileWriter>(outPath, writerOptions,
                                                 mergedThreads_);
  for (const auto& [id, name] : mergedMarkers_) writer_->addMarker(id, name);

  // Frame-start hook: zero-duration continuation pseudo-intervals for
  // every state open at the boundary (Section 3.3).
  writer_->setFrameStartHook(
      [this](Tick frameStart, std::vector<ByteWriter>& out) {
        for (const auto& [key, stack] : openStates_) {
          for (const OpenState& s : stack) {
            ByteWriter extra;
            extra.bytes(s.alwaysBytes);
            extra.u64(frameStart);  // origStart of a pseudo record: itself
            out.push_back(encodeRecordBody(
                makeIntervalType(s.type, Bebits::kContinuation), frameStart,
                /*dura=*/0, s.cpu, s.node, s.thread, extra.view()));
            ++result_.pseudoRecords;
          }
        }
      });
  sink_ = std::move(sink);
  result_.outputPath = outPath;
}

/// Writes the input's adjusted lookahead record and maintains the
/// per-thread open-state stacks — verbatim the batch merger's emit step.
void StreamMerger::emitCurrent(Input& in) {
  const RecordView& v = in.view;
  writer_->addRecord(v.body);
  ++result_.recordsOut;
  lastEmittedEnd_ = v.end();
  if (sink_) sink_(v);

  // ClockSync records are complete-only and never tracked.
  const Bebits bebits = v.bebits();
  if (bebits == Bebits::kBegin) {
    OpenState s;
    s.type = v.eventType();
    s.cpu = v.cpu;
    s.node = v.node;
    s.thread = v.thread;
    const auto lenIt = alwaysLen_.find(s.type);
    const std::size_t n = lenIt == alwaysLen_.end() ? 0 : lenIt->second;
    if (v.body.size() >= kCommonPrefixBytes + n) {
      s.alwaysBytes.assign(v.body.begin() + kCommonPrefixBytes,
                           v.body.begin() + kCommonPrefixBytes + n);
    }
    openStates_[{v.node, v.thread}].push_back(std::move(s));
  } else if (bebits == Bebits::kEnd) {
    auto& stack = openStates_[{v.node, v.thread}];
    if (stack.empty() || stack.back().type != v.eventType()) {
      throw FormatError("end piece without a matching begin piece "
                        "(node " + std::to_string(v.node) + ", thread " +
                        std::to_string(v.thread) + ")");
    }
    stack.pop_back();
  }
  loadNext(in);
}

bool StreamMerger::fitsFrozen() {
  bool all = true;
  for (auto& in : inputs_) {
    if (!in->fit.frozen() && in->fit.converged()) in->fit.freeze();
    if (!in->fit.frozen()) all = false;
  }
  return all;
}

std::pair<Tick, std::size_t> StreamMerger::keyOf(std::size_t i) const {
  const Input& in = *inputs_[i];
  if (in.ok) return {in.view.end(), i};
  if (!in.pending.empty()) {
    // Buffered but not yet loaded (between addRecord and the next
    // advance): key by the head record so watermark() stays exact.
    const RecordView head = RecordView::parse(in.pending.front());
    return {in.fit.map().toGlobal(head.end()), i};
  }
  if (in.closed && (!in.aborted || in.closuresQueued)) {
    return {kSentinelEnd, inputs_.size()};
  }
  // Open (or not yet drained) with no lookahead: stall at the frontier —
  // a lower bound on anything this input can still produce. An input
  // that has never shipped a record pins the watermark at zero.
  if (!in.sawRecord) return {0, i};
  return {in.fit.map().toGlobal(in.frontierRaw), i};
}

void StreamMerger::buildTree() {
  std::vector<std::pair<Tick, std::size_t>> keys;
  keys.reserve(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (!inputs_[i]->ok) loadNext(*inputs_[i]);
    keys.push_back(keyOf(i));
  }
  tree_ = std::make_unique<LoserTree<std::pair<Tick, std::size_t>>>(
      std::move(keys), std::pair<Tick, std::size_t>{kSentinelEnd,
                                                    inputs_.size()});
}

void StreamMerger::advance() {
  if (!writer_) throw UsageError("StreamMerger: advance() before openOutput()");
  if (finished_) return;
  // Hold everything back until every input's time base is pinned: a
  // record adjusted through a still-moving fit could be emitted out of
  // order relative to records adjusted after the next re-fit.
  if (!fitsFrozen()) return;
  if (!ratiosRecorded_) {
    for (const auto& in : inputs_) result_.ratios.push_back(in->fit.ratio());
    ratiosRecorded_ = true;
  }

  if (options_.useNaiveMerge || inputs_.size() == 1) {
    dirty_.clear();
    for (;;) {
      for (auto& in : inputs_) {
        if (!in->ok) loadNext(*in);
      }
      // Min by (end, index) over record and stall keys — the same order
      // the batch naive scan produces, plus the watermark stall.
      std::optional<std::pair<Tick, std::size_t>> best;
      for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const auto key = keyOf(i);
        if (key.second >= inputs_.size()) continue;  // exhausted
        if (!best || key < *best) best = key;
      }
      if (!best) return;                         // all drained and closed
      if (!inputs_[best->second]->ok) return;    // stalled: watermark barrier
      emitCurrent(*inputs_[best->second]);
    }
  }

  if (!tree_ || !dirty_.empty()) {
    // A loser tree can only be replayed from the winning leaf
    // (LoserTree::update's contract — the stored losers along that one
    // path are exactly the winner's candidate set), but newly arrived
    // records move arbitrary leaves, so rebuild the whole tournament.
    // O(#inputs), dwarfed by the per-record work the tree then does.
    buildTree();
    dirty_.clear();
  }
  while (!tree_->exhausted()) {
    const std::size_t i = tree_->min();
    Input& in = *inputs_[i];
    if (!in.ok) return;  // stalled: watermark barrier
    emitCurrent(in);
    tree_->update(i, keyOf(i));
  }
}

StreamMergeResult StreamMerger::finish() {
  if (!writer_) throw UsageError("StreamMerger: finish() before openOutput()");
  if (finished_) return result_;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (!inputs_[i]->closed) {
      throw UsageError("StreamMerger: finish() with input " +
                       std::to_string(i) + " still open");
    }
  }
  advance();
  writer_->close();
  finished_ = true;
  return result_;
}

Tick StreamMerger::watermark() const {
  Tick wm = kSentinelEnd;
  bool sawOpen = false;
  // The all-exhausted fallback must stay monotone against the stall keys
  // reported while inputs were live. Frontiers can run ahead of the last
  // emitted record (dropped ClockSync records advance them without ever
  // being written), so cover the furthest frontier, not just the output.
  Tick drained = lastEmittedEnd_;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const Input& in = *inputs_[i];
    if (!in.fit.frozen()) return 0;
    const auto key = keyOf(i);
    if (key.second >= inputs_.size()) {  // exhausted
      if (in.sawRecord) {
        drained = std::max(drained, in.fit.map().toGlobal(in.frontierRaw));
      }
      continue;
    }
    sawOpen = true;
    wm = std::min(wm, key.first);
  }
  return sawOpen ? wm : drained;
}

const OnlineClockFit& StreamMerger::clockFit(std::size_t i) const {
  return input(i).fit;
}

}  // namespace ute
