// The resumable incremental merge — the batch merger's one-shot pass
// (src/merge/merger.cpp) recast as a state machine that can be fed
// records as they arrive over the network and asked to emit whatever is
// safe so far.
//
// The state machine per input:
//
//   addInput -> setThreads -> {addClockPair | setClockPairs}*
//            -> addRecord* -> closeInput | abortInput
//
// and globally: openOutput() once every input has its thread table, then any
// number of advance() calls, then finish() once every input is closed.
//
// Emission rule (the watermark): a buffered record is emitted only when
// its globally-adjusted end time is provably the minimum of everything
// any input can still produce. An input that is open but has no buffered
// records blocks emission past its *frontier* — the adjusted end of the
// last record it shipped (records arrive in ascending end order per
// input, so the frontier is a lower bound on its future). Ties are
// broken by input index, exactly like the batch tournament tree, which
// is what makes a fully-fed StreamMerger reproduce the batch output
// byte for byte (docs/STREAMING.md).
//
// No emission happens until every input's clock fit is frozen — either
// the batch fit via setClockPairs(final=true), or the windowed online
// fit (src/stream/online_fit.h) once it converges or the input closes.
//
// abortInput() models a node disconnecting mid-run: once its buffered
// records drain, zero-duration end pieces are synthesized at its
// frontier for every state still open on its threads, mirroring the
// converter's end-of-trace sealing, so viewers never see intervals that
// extend to infinity.
//
// Thread-compatibility: a StreamMerger is confined to one thread (the
// ingest server drives it from its single merge thread); it holds no
// locks of its own.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "clock/sync.h"
#include "interval/file_writer.h"
#include "interval/profile.h"
#include "interval/record.h"
#include "merge/tournament_tree.h"
#include "stream/online_fit.h"

namespace ute {

struct StreamMergeOptions {
  SyncMethod syncMethod = SyncMethod::kRmsSegments;
  /// Thread categories to merge; bit per ThreadType (as MergeOptions).
  std::uint8_t threadTypeMask = 0x7;
  static std::uint8_t threadTypeBit(ThreadType t) {
    return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(t));
  }
  bool filterOutliers = true;
  double outlierTolerance = 5e-5;
  bool keepClockRecords = false;
  std::size_t targetFrameBytes = 32 << 10;
  int framesPerDirectory = 64;
  /// Ablation switch: O(k) scan instead of the loser tree.
  bool useNaiveMerge = false;
  /// Online (non-final) clock fitting; method/filter settings above take
  /// precedence over the copies inside.
  OnlineFitOptions onlineFit;
};

struct StreamMergeResult {
  std::string outputPath;
  std::uint64_t recordsIn = 0;   ///< records offered through addRecord()
  std::uint64_t recordsOut = 0;  ///< records written (incl. abort closures)
  std::uint64_t pseudoRecords = 0;   ///< frame-start continuation pseudos
  std::uint64_t abortClosures = 0;   ///< synthesized end pieces (disconnects)
  /// Per input, in index order: the frozen global-to-local clock ratio.
  std::vector<double> ratios;
};

class StreamMerger {
 public:
  using RecordSink = std::function<void(const RecordView&)>;

  StreamMerger(const Profile& profile, StreamMergeOptions options = {});
  ~StreamMerger();

  StreamMerger(const StreamMerger&) = delete;
  StreamMerger& operator=(const StreamMerger&) = delete;

  /// Registers one input stream (a node's record feed); returns its
  /// index. All inputs must be added before openOutput().
  std::size_t addInput();
  std::size_t inputCount() const { return inputs_.size(); }

  /// The input's thread table; required before its first addRecord().
  /// Cross-input duplicate checking happens at openOutput().
  void setThreads(std::size_t input, const std::vector<ThreadEntry>& threads);

  /// Registers a marker; conflicting names for one id throw FormatError.
  /// May be called before or after openOutput() (tables are file trailers).
  void addMarker(std::uint32_t id, const std::string& name);

  /// Clock pairs for an input. final=true applies the exact batch fit
  /// over `pairs` and freezes it; final=false streams them into the
  /// online windowed fit.
  void setClockPairs(std::size_t input, std::span<const TimestampPair> pairs,
                     bool final);
  void addClockPair(std::size_t input, const TimestampPair& pair);

  /// Buffers one record (an unadjusted interval-record body, as stored
  /// in a per-node .uti file). Records must arrive in ascending end
  /// order per input; ClockSync records feed the online fit and are
  /// dropped unless keepClockRecords; records of threads excluded by the
  /// type mask are dropped.
  void addRecord(std::size_t input, std::span<const std::uint8_t> body);

  /// Marks the input complete (graceful end of its stream). Freezes a
  /// still-open clock fit.
  void closeInput(std::size_t input);

  /// Marks the input torn down mid-run: after its buffered records
  /// drain, synthesized end pieces close every state still open on its
  /// threads.
  void abortInput(std::size_t input);

  bool inputOpen(std::size_t input) const;

  /// True when the input is open and the merge has consumed everything
  /// it buffered — the driver's cue to feed (or close) it.
  bool needsData(std::size_t input) const;

  /// Creates the merged output file. Requires >= 1 input, every input's
  /// thread table, and performs the cross-input duplicate-thread check.
  void openOutput(const std::string& outPath, RecordSink sink = nullptr);
  bool opened() const { return writer_ != nullptr; }

  /// Emits every record that is safe under the watermark rule. A no-op
  /// until openOutput() and until every input's fit is frozen (fits that have
  /// converged are frozen here).
  void advance();

  /// Closes the output; requires every input closed (advance() is run
  /// internally to drain). Returns the final counters.
  StreamMergeResult finish();

  /// The global time below which the merged output is complete: nothing
  /// with an earlier adjusted end can still arrive. 0 until every fit is
  /// frozen.
  Tick watermark() const;

  /// Raw bytes buffered across inputs and not yet emitted — the quantity
  /// the ingest server's byte budget tracks.
  std::size_t bufferedBytes() const { return bufferedBytes_; }
  /// Same, for one input (the ingest server releases each session's
  /// budget charge as its records drain).
  std::size_t bufferedBytes(std::size_t input) const;

  /// Merged thread table in input-index order (valid after openOutput()).
  const std::vector<ThreadEntry>& threads() const { return mergedThreads_; }
  const std::map<std::uint32_t, std::string>& markers() const {
    return mergedMarkers_;
  }

  /// The input's clock fit (ratio() is meaningful once frozen).
  const OnlineClockFit& clockFit(std::size_t input) const;

  std::uint64_t recordsOut() const { return result_.recordsOut; }

 private:
  struct Input;

  /// Open-state tracking for frame-start pseudo-intervals (Section 3.3)
  /// and for abort-closure synthesis.
  struct OpenState {
    EventType type = kRunningState;
    std::int32_t cpu = 0;
    NodeId node = 0;
    LogicalThreadId thread = 0;
    std::vector<std::uint8_t> alwaysBytes;
  };

  Input& input(std::size_t i);
  const Input& input(std::size_t i) const;
  void loadNext(Input& in);
  void queueAbortClosures(Input& in);
  void emitCurrent(Input& in);
  bool fitsFrozen();
  std::pair<Tick, std::size_t> keyOf(std::size_t i) const;
  void buildTree();
  void drainLoop();

  const Profile& profile_;
  StreamMergeOptions options_;
  /// Always-fields byte length per event type (what a pseudo-interval
  /// must copy), from the profile's continuation specs.
  std::map<EventType, std::size_t> alwaysLen_;

  std::vector<std::unique_ptr<Input>> inputs_;
  std::vector<ThreadEntry> mergedThreads_;
  std::map<std::uint32_t, std::string> mergedMarkers_;
  std::map<std::pair<NodeId, LogicalThreadId>, std::vector<OpenState>>
      openStates_;

  std::unique_ptr<IntervalFileWriter> writer_;
  RecordSink sink_;
  std::unique_ptr<LoserTree<std::pair<Tick, std::size_t>>> tree_;
  std::vector<std::size_t> dirty_;  ///< inputs whose tree key may have moved
  bool ratiosRecorded_ = false;
  bool finished_ = false;
  Tick lastEmittedEnd_ = 0;
  std::size_t bufferedBytes_ = 0;
  StreamMergeResult result_;
};

}  // namespace ute
