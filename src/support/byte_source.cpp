#include "support/byte_source.h"

#include <algorithm>
#include <cstdlib>

#include "support/errors.h"
#include "support/file_io.h"

namespace ute {

namespace {

/// A pooled buffer wrapped so the last FrameBuf referencing it returns
/// the storage to its pool instead of freeing it.
struct PooledBuffer {
  PooledBuffer(std::shared_ptr<BufferPool> p, std::vector<std::uint8_t> b)
      : pool(std::move(p)), bytes(std::move(b)) {}
  ~PooledBuffer() { pool->release(std::move(bytes)); }
  std::shared_ptr<BufferPool> pool;
  std::vector<std::uint8_t> bytes;
};

bool mmapDisabledByEnv() {
  const char* v = std::getenv("UTE_NO_MMAP");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

FrameBuf FrameBuf::copyOf(std::span<const std::uint8_t> bytes) {
  auto owned = std::make_shared<const std::vector<std::uint8_t>>(
      bytes.begin(), bytes.end());
  const std::span<const std::uint8_t> view(*owned);
  return FrameBuf(std::move(owned), view);
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t n) {
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      std::vector<std::uint8_t> buf = std::move(free_.back());
      free_.pop_back();
      ++stats_.reused;
      buf.resize(n);
      return buf;
    }
    ++stats_.allocated;
  }
  return std::vector<std::uint8_t>(n);
}

void BufferPool::release(std::vector<std::uint8_t> buf) {
  MutexLock lock(mu_);
  if (free_.size() < maxFree_) free_.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

ByteSource::ByteSource(const std::string& path, Mode mode) : path_(path) {
  if (mode == Mode::kAuto && mmapDisabledByEnv()) mode = Mode::kStream;
  if (mode != Mode::kStream) {
    map_ = MappedFile::tryMap(path);  // throws IoError if unopenable
    if (map_ != nullptr) {
      size_ = map_->size();
      return;
    }
    if (mode == Mode::kMmap) {
      throw IoError("mmap failed" + ioContext(path));
    }
  }
  file_ = std::make_unique<FileReader>(path);
  size_ = file_->size();
  pool_ = std::make_shared<BufferPool>();
}

ByteSource::~ByteSource() = default;

void ByteSource::requireWithin(std::uint64_t offset, std::size_t n) const {
  if (offset > size_ || n > size_ - offset) {
    throw FormatError("read of " + std::to_string(n) +
                      " bytes exceeds file size " + std::to_string(size_) +
                      ioContext(path_, offset));
  }
}

FrameBuf ByteSource::fetch(std::uint64_t offset, std::size_t n) const {
  requireWithin(offset, n);
  if (map_ != nullptr) {
    return FrameBuf(map_, map_->bytes().subspan(
                              static_cast<std::size_t>(offset), n));
  }
  std::vector<std::uint8_t> buf = pool_->acquire(n);
  {
    MutexLock lock(mu_);
    file_->seek(offset);
    file_->readExact(buf);
  }
  auto owner = std::make_shared<const PooledBuffer>(pool_, std::move(buf));
  const std::span<const std::uint8_t> view(owner->bytes);
  return FrameBuf(std::move(owner), view);
}

std::size_t ByteSource::readAt(std::uint64_t offset,
                               std::span<std::uint8_t> out) const {
  if (offset >= size_ || out.empty()) return 0;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(out.size(), size_ - offset));
  if (map_ != nullptr) {
    std::copy_n(map_->bytes().data() + offset, n, out.data());
    return n;
  }
  MutexLock lock(mu_);
  file_->seek(offset);
  return file_->readSome(out.subspan(0, n));
}

void ByteSource::advise(MappedFile::Hint hint) const {
  if (map_ != nullptr) map_->advise(hint);
}

void ByteSource::advise(std::uint64_t offset, std::uint64_t length,
                        MappedFile::Hint hint) const {
  if (map_ != nullptr) map_->advise(offset, length, hint);
}

BufferPool::Stats ByteSource::poolStats() const {
  return pool_ != nullptr ? pool_->stats() : BufferPool::Stats{};
}

}  // namespace ute
