// The unified zero-copy input layer every reader sits on.
//
// Three pieces, from the bottom up:
//
//   FrameBuf    — an immutable, cheaply shareable view of a byte range
//                 plus whatever owns those bytes (a MappedFile, a pooled
//                 buffer, a heap vector). Copying a FrameBuf never copies
//                 the bytes; the last copy to die releases the owner.
//   BufferPool  — recycles read buffers for the non-mmap path, so a
//                 streaming scan reuses a handful of allocations instead
//                 of mallocing one per frame.
//   ByteSource  — a read-only file exposed as bounds-checked fetch()es.
//                 Backed by an mmap (fetch = pointer arithmetic, zero
//                 copies, no locks) with a graceful stdio fallback
//                 (fetch = one pooled read under a mutex). Thread-safe
//                 on both paths, so one ByteSource serves any number of
//                 concurrent readers — this is what removed the
//                 per-worker file-handle pools from the server and the
//                 metrics engine.
//
// Ownership rule: a FrameBuf keeps its backing storage (including the
// whole mapping) alive, so holding frames of a closed/destroyed reader
// is safe; conversely, holding many FrameBufs of a huge non-mapped file
// pins their buffers — callers that retain frames long-term (the server
// cache) decode them into their own structures instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/mapped_file.h"
#include "support/thread_annotations.h"

namespace ute {

class FileReader;

/// Immutable shared view of a byte range; see file comment.
class FrameBuf {
 public:
  FrameBuf() = default;
  FrameBuf(std::shared_ptr<const void> owner,
           std::span<const std::uint8_t> bytes)
      : owner_(std::move(owner)), bytes_(bytes) {}

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  /// A bounds-checked decoder over the bytes (does not extend lifetime —
  /// keep the FrameBuf alive while reading).
  ByteReader reader() const { return ByteReader(bytes_); }

  /// A FrameBuf that owns a private copy of `bytes` (tests, small tables).
  static FrameBuf copyOf(std::span<const std::uint8_t> bytes);

 private:
  std::shared_ptr<const void> owner_;
  std::span<const std::uint8_t> bytes_;
};

/// Thread-safe free list of byte buffers for the non-mmap read path.
class BufferPool {
 public:
  /// `maxFree` bounds how many idle buffers the pool retains.
  explicit BufferPool(std::size_t maxFree = 8) : maxFree_(maxFree) {}

  /// A buffer with size() == n (capacity reused from a released buffer
  /// when one is available).
  std::vector<std::uint8_t> acquire(std::size_t n) UTE_EXCLUDES(mu_);
  void release(std::vector<std::uint8_t> buf) UTE_EXCLUDES(mu_);

  struct Stats {
    std::uint64_t reused = 0;     ///< acquires served from the free list
    std::uint64_t allocated = 0;  ///< acquires that had to allocate
  };
  Stats stats() const UTE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::vector<std::uint8_t>> free_ UTE_GUARDED_BY(mu_);
  std::size_t maxFree_;
  Stats stats_ UTE_GUARDED_BY(mu_);
};

/// Read-only random-access byte source; see file comment.
class ByteSource {
 public:
  enum class Mode {
    kAuto,    ///< mmap, falling back to stdio (honors UTE_NO_MMAP=1)
    kMmap,    ///< mmap or throw IoError
    kStream,  ///< stdio + BufferPool (the fallback path, forced)
  };

  explicit ByteSource(const std::string& path, Mode mode = Mode::kAuto);
  ~ByteSource();

  ByteSource(const ByteSource&) = delete;
  ByteSource& operator=(const ByteSource&) = delete;

  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  bool mapped() const { return map_ != nullptr; }

  /// The bytes [offset, offset+n). Zero-copy when mapped (the FrameBuf
  /// pins the mapping); one pooled read otherwise. Throws FormatError
  /// with path+offset context when the range exceeds the file.
  FrameBuf fetch(std::uint64_t offset, std::size_t n) const;

  /// The whole file (zero-copy when mapped).
  FrameBuf whole() const { return fetch(0, static_cast<std::size_t>(size_)); }

  /// Copies up to out.size() bytes at `offset` into `out`, returning the
  /// count actually read (0 at end of file) — the streaming-reader
  /// refill primitive. Never throws on short reads.
  std::size_t readAt(std::uint64_t offset, std::span<std::uint8_t> out) const;

  /// Page-cache advice; a no-op on the stdio path.
  void advise(MappedFile::Hint hint) const;
  void advise(std::uint64_t offset, std::uint64_t length,
              MappedFile::Hint hint) const;

  /// Buffer-reuse counters of the fallback path (zeros when mapped).
  BufferPool::Stats poolStats() const;

 private:
  void requireWithin(std::uint64_t offset, std::size_t n) const;

  std::string path_;
  std::uint64_t size_ = 0;
  std::shared_ptr<const MappedFile> map_;  ///< null on the stdio path
  /// Fallback state: one stdio handle serialized by mu_ (the handle
  /// pointer itself is set once in the constructor), buffers pooled.
  mutable Mutex mu_;
  std::unique_ptr<FileReader> file_ UTE_PT_GUARDED_BY(mu_);
  std::shared_ptr<BufferPool> pool_;
};

}  // namespace ute
