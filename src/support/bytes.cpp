#include "support/bytes.h"

#include <limits>

namespace ute {

void ByteWriter::lstring(std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw UsageError("lstring: string longer than 65535 bytes");
  }
  u16(static_cast<std::uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::patchU32(std::size_t pos, std::uint32_t v) {
  if (pos + 4 > buf_.size()) {
    throw UsageError("patchU32: position out of range");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    buf_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void ByteWriter::patchU64(std::size_t pos, std::uint64_t v) {
  if (pos + 8 > buf_.size()) {
    throw UsageError("patchU64: position out of range");
  }
  for (std::size_t i = 0; i < 8; ++i) {
    buf_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::string ByteReader::lstring() {
  const std::uint16_t n = u16();
  const auto raw = bytes(n);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

}  // namespace ute
