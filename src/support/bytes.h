// Little-endian byte-buffer encoding and decoding.
//
// Every on-disk format in this project (raw trace, profile, interval file,
// SLOG) is defined in terms of little-endian fixed-width integers; these two
// classes are the single implementation of that encoding. ByteWriter appends
// to a growable buffer, ByteReader consumes a read-only span with bounds
// checking (a short read throws FormatError rather than reading garbage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/errors.h"

namespace ute {

/// Appends little-endian scalars to an in-memory buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { putLe(v); }
  void u32(std::uint32_t v) { putLe(v); }
  void u64(std::uint64_t v) { putLe(v); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Writes a u16 length followed by the raw characters (no terminator).
  void lstring(std::string_view s);

  /// Overwrites previously written bytes in place (for offset back-patching).
  void patchU32(std::size_t pos, std::uint32_t v);
  void patchU64(std::size_t pos, std::uint64_t v);

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  void clear() { buf_.clear(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void putLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Consumes little-endian scalars from a span; throws FormatError on
/// over-read so malformed files fail loudly instead of decoding noise.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return takeLe<std::uint8_t>(); }
  std::uint16_t u16() { return takeLe<std::uint16_t>(); }
  std::uint32_t u32() { return takeLe<std::uint32_t>(); }
  std::uint64_t u64() { return takeLe<std::uint64_t>(); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Counterpart of ByteWriter::lstring.
  std::string lstring();

  std::span<const std::uint8_t> bytes(std::size_t n);
  void skip(std::size_t n);

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T takeLe() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw FormatError("ByteReader: truncated input (need " +
                        std::to_string(n) + " bytes at offset " +
                        std::to_string(pos_) + " of " +
                        std::to_string(data_.size()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ute
