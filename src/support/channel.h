// Bounded MPMC channel: the hand-off primitive of the parallel pipeline.
//
// A fixed-capacity FIFO connecting any number of producers to any number
// of consumers. send() blocks while the channel is full (backpressure:
// a fast producer cannot run arbitrarily far ahead of its consumer, which
// is what keeps the frame prefetcher "double-buffered" rather than
// "reads the whole file into memory"), receive() blocks while it is
// empty. close() wakes everyone: pending sends return false, receives
// drain what is queued and then return nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ute {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns false (dropping `value`) once closed.
  bool send(T value) {
    std::unique_lock lock(mu_);
    sendCv_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    recvCv_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mu_);
    recvCv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v(std::move(queue_.front()));
    queue_.pop_front();
    sendCv_.notify_one();
    return v;
  }

  /// Idempotent. Unblocks all senders and receivers; queued items remain
  /// receivable.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    sendCv_.notify_all();
    recvCv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable sendCv_;
  std::condition_variable recvCv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace ute
