// Bounded MPMC channel: the hand-off primitive of the parallel pipeline.
//
// A fixed-capacity FIFO connecting any number of producers to any number
// of consumers. send() blocks while the channel is full (backpressure:
// a fast producer cannot run arbitrarily far ahead of its consumer, which
// is what keeps the frame prefetcher "double-buffered" rather than
// "reads the whole file into memory"), receive() blocks while it is
// empty. close() wakes everyone: pending sends return false, receives
// drain what is queued and then return nullopt.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "support/thread_annotations.h"

namespace ute {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns false (dropping `value`) once closed.
  bool send(T value) UTE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (queue_.size() >= capacity_ && !closed_) sendCv_.wait(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(value));
    recvCv_.notifyOne();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> receive() UTE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (queue_.empty() && !closed_) recvCv_.wait(mu_);
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v(std::move(queue_.front()));
    queue_.pop_front();
    sendCv_.notifyOne();
    return v;
  }

  /// Idempotent. Unblocks all senders and receivers; queued items remain
  /// receivable.
  void close() UTE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    sendCv_.notifyAll();
    recvCv_.notifyAll();
  }

  bool closed() const UTE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar sendCv_;
  CondVar recvCv_;
  std::deque<T> queue_ UTE_GUARDED_BY(mu_);
  bool closed_ UTE_GUARDED_BY(mu_) = false;
};

}  // namespace ute
