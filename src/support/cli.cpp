#include "support/cli.h"

#include <algorithm>

#include "support/errors.h"
#include "support/text.h"

namespace ute {

CliParser::CliParser(int argc, const char* const* argv,
                     const std::vector<std::string>& valueOptions) {
  auto takesValue = [&](const std::string& name) {
    return std::find(valueOptions.begin(), valueOptions.end(), name) !=
           valueOptions.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (takesValue(arg)) {
      if (i + 1 >= argc) {
        throw UsageError("option --" + arg + " requires a value");
      }
      values_[arg] = argv[++i];
    } else {
      flags_[arg] = true;
    }
  }
}

bool CliParser::hasFlag(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::optional<std::string> CliParser::value(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliParser::valueOr(const std::string& name,
                               const std::string& dflt) const {
  return value(name).value_or(dflt);
}

std::uint64_t CliParser::valueOr(const std::string& name,
                                 std::uint64_t dflt) const {
  const auto v = value(name);
  return v ? parseU64(*v) : dflt;
}

double CliParser::valueOr(const std::string& name, double dflt) const {
  const auto v = value(name);
  return v ? parseF64(*v) : dflt;
}

}  // namespace ute
