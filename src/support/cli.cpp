#include "support/cli.h"

#include <algorithm>

#include "support/errors.h"
#include "support/text.h"

namespace ute {

CliParser::CliParser(int argc, const char* const* argv,
                     const std::vector<std::string>& valueOptions) {
  auto takesValue = [&](const std::string& name) {
    return std::find(valueOptions.begin(), valueOptions.end(), name) !=
           valueOptions.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (takesValue(arg)) {
      if (i + 1 >= argc) {
        throw UsageError("option --" + arg + " requires a value");
      }
      values_[arg] = argv[++i];
    } else {
      flags_[arg] = true;
    }
  }
}

Endpoint parseEndpoint(const std::string& text, const std::string& what) {
  Endpoint ep;
  std::string portText = text;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    if (colon == 0) throw UsageError(what + ": empty host in '" + text + "'");
    ep.host = text.substr(0, colon);
    portText = text.substr(colon + 1);
  }
  if (portText.empty()) {
    throw UsageError(what + ": missing port in '" + text + "'");
  }
  const std::uint64_t port = parseU64(portText);
  if (port == 0 || port > 65535) {
    throw UsageError(what + ": port " + portText + " out of range");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::optional<Endpoint> CliParser::endpoint() const {
  // --router is the federation spelling of --connect: same address
  // syntax, but it names a uterouter front door instead of a single
  // backend. The wire protocol is identical, so tools treat both alike.
  if (const auto router = value("router")) {
    return parseEndpoint(*router, "--router");
  }
  if (const auto connect = value("connect")) {
    return parseEndpoint(*connect, "--connect");
  }
  const auto port = value("port");
  if (!port) return std::nullopt;
  Endpoint ep = parseEndpoint(*port, "--port");
  if (const auto host = value("host")) ep.host = *host;
  return ep;
}

std::uint32_t CliParser::traceId() const {
  return static_cast<std::uint32_t>(valueOr("trace", std::uint64_t{0}));
}

bool CliParser::hasFlag(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::optional<std::string> CliParser::value(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliParser::valueOr(const std::string& name,
                               const std::string& dflt) const {
  return value(name).value_or(dflt);
}

std::uint64_t CliParser::valueOr(const std::string& name,
                                 std::uint64_t dflt) const {
  const auto v = value(name);
  return v ? parseU64(*v) : dflt;
}

double CliParser::valueOr(const std::string& name, double dflt) const {
  const auto v = value(name);
  return v ? parseF64(*v) : dflt;
}

}  // namespace ute
