// Minimal command-line option parser shared by the tools/ executables.
//
// Syntax accepted: --name value, --name=value, bare --flag, and positional
// arguments. Unknown options are an error so typos fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ute {

/// A parsed server address. The tools that can talk to a uteserve
/// (utequery, uteview, utemetrics) all accept the same spellings and
/// share this struct instead of each splitting host:port by hand.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "HOST:PORT" or a bare "PORT" (host defaults to 127.0.0.1).
/// Throws UsageError naming `what` on an empty host, a missing port, or
/// a port outside [1, 65535].
Endpoint parseEndpoint(const std::string& text,
                       const std::string& what = "endpoint");

class CliParser {
 public:
  /// `spec` lists the option names that take a value; names absent from it
  /// are treated as boolean flags when seen.
  CliParser(int argc, const char* const* argv,
            const std::vector<std::string>& valueOptions);

  bool hasFlag(const std::string& name) const;
  std::optional<std::string> value(const std::string& name) const;
  std::string valueOr(const std::string& name, const std::string& dflt) const;
  std::uint64_t valueOr(const std::string& name, std::uint64_t dflt) const;
  double valueOr(const std::string& name, double dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// The shared server-address convention: --router HOST:PORT (a
  /// uterouter front door), else --connect HOST:PORT (or a bare port),
  /// else the --host/--port pair. nullopt when no address was given;
  /// throws UsageError on a malformed one. Callers listing value
  /// options must include "router", "connect", "host" and "port".
  std::optional<Endpoint> endpoint() const;

  /// The shared --trace N trace-selection option (default trace 0).
  std::uint32_t traceId() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ute
