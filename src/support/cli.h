// Minimal command-line option parser shared by the tools/ executables.
//
// Syntax accepted: --name value, --name=value, bare --flag, and positional
// arguments. Unknown options are an error so typos fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ute {

class CliParser {
 public:
  /// `spec` lists the option names that take a value; names absent from it
  /// are treated as boolean flags when seen.
  CliParser(int argc, const char* const* argv,
            const std::vector<std::string>& valueOptions);

  bool hasFlag(const std::string& name) const;
  std::optional<std::string> value(const std::string& name) const;
  std::string valueOr(const std::string& name, const std::string& dflt) const;
  std::uint64_t valueOr(const std::string& name, std::uint64_t dflt) const;
  double valueOr(const std::string& name, double dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ute
