// Exception types used across the framework. The C++ API reports failures
// by throwing; the paper-style C API in interval/ute_api.h catches these at
// the boundary and converts them to the paper's error-code conventions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ute {

/// Failure to read from or write to the filesystem.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// A file (raw trace, profile, interval, SLOG) whose bytes do not follow
/// the format they claim to follow.
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// A file that carries the right magic/version but whose internal
/// offsets, sizes or counts point outside the bytes actually present
/// (truncation, bit rot, a hostile file). Distinguished from plain
/// FormatError so long-running services can keep serving other files
/// and report precisely which input is damaged.
class CorruptFileError : public FormatError {
 public:
  explicit CorruptFileError(const std::string& what) : FormatError(what) {}
};

/// A syntax or semantic error in a statistics-language program.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// An API precondition violated by the caller (bad argument, wrong state).
class UsageError : public std::logic_error {
 public:
  explicit UsageError(const std::string& what) : std::logic_error(what) {}
};

/// Uniform location suffix for I/O and format errors, so every reader
/// reports *which* file and *where* in it the failure happened:
///   throw CorruptFileError("frame extent exceeds file size" +
///                          ioContext(path, offset));
inline std::string ioContext(const std::string& path) {
  return " in '" + path + "'";
}
inline std::string ioContext(const std::string& path, std::uint64_t offset) {
  return " in '" + path + "' at byte " + std::to_string(offset);
}

/// The network counterpart of ioContext: socket errors name *which peer*
/// the way file errors name which file, so "connection refused" from a
/// tool or the federation router always carries the endpoint:
///   throw IoError("connect failed: ..." + netContext(host, port));
inline std::string netContext(const std::string& host, std::uint16_t port) {
  return " at endpoint '" + host + ":" + std::to_string(port) + "'";
}

}  // namespace ute
