#include "support/file_io.h"

#include <cerrno>
#include <climits>
#include <cstring>

namespace ute {

namespace {

[[noreturn]] void throwErrno(const std::string& op, const std::string& path) {
  throw IoError(op + " failed" + ioContext(path) + ": " +
                std::strerror(errno));
}

/// fseek takes a long; a (corrupt) 64-bit offset above LONG_MAX would
/// otherwise wrap negative and seek somewhere plausible instead of
/// failing loudly.
void requireSeekable(std::uint64_t offset, const std::string& path) {
  if (offset > static_cast<std::uint64_t>(LONG_MAX)) {
    throw IoError("seek offset " + std::to_string(offset) +
                  " exceeds the platform file-offset range" +
                  ioContext(path, offset));
  }
}

/// stdio's default buffer (typically 4-8 KiB) turns frame-sized transfers
/// into many small write()/read() syscalls; a 256 KiB buffer batches them.
constexpr std::size_t kStdioBufferBytes = 256 << 10;

}  // namespace

FileWriter::FileWriter(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) throwErrno("open for write", path);
  iobuf_.resize(kStdioBufferBytes);
  std::setvbuf(f_, iobuf_.data(), _IOFBF, iobuf_.size());
}

FileWriter::~FileWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void FileWriter::write(std::span<const std::uint8_t> data) {
  if (f_ == nullptr) throw UsageError("FileWriter: write after close");
  if (data.empty()) return;
  if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
    throwErrno("write", path_);
  }
}

std::uint64_t FileWriter::tell() const {
  if (f_ == nullptr) throw UsageError("FileWriter: tell after close");
  const long pos = std::ftell(f_);
  if (pos < 0) throwErrno("tell", path_);
  return static_cast<std::uint64_t>(pos);
}

void FileWriter::seek(std::uint64_t offset) {
  if (f_ == nullptr) throw UsageError("FileWriter: seek after close");
  requireSeekable(offset, path_);
  if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
    throwErrno("seek", path_);
  }
}

void FileWriter::writeAt(std::uint64_t offset,
                         std::span<const std::uint8_t> data) {
  const std::uint64_t back = tell();
  seek(offset);
  write(data);
  seek(back);
}

void FileWriter::flush() {
  if (f_ != nullptr && std::fflush(f_) != 0) throwErrno("flush", path_);
}

void FileWriter::close() {
  if (f_ == nullptr) return;
  const int rc = std::fclose(f_);
  f_ = nullptr;
  if (rc != 0) throwErrno("close", path_);
}

FileReader::FileReader(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) throwErrno("open for read", path);
  iobuf_.resize(kStdioBufferBytes);
  std::setvbuf(f_, iobuf_.data(), _IOFBF, iobuf_.size());
  if (std::fseek(f_, 0, SEEK_END) != 0) throwErrno("seek", path);
  const long end = std::ftell(f_);
  if (end < 0) throwErrno("tell", path);
  size_ = static_cast<std::uint64_t>(end);
  if (std::fseek(f_, 0, SEEK_SET) != 0) throwErrno("seek", path);
}

FileReader::~FileReader() {
  if (f_ != nullptr) std::fclose(f_);
}

void FileReader::readExact(std::span<std::uint8_t> data) {
  const std::uint64_t pos = tell();
  if (readSome(data) != data.size()) {
    throw FormatError("unexpected end of file" + ioContext(path_, pos));
  }
}

std::vector<std::uint8_t> FileReader::read(std::size_t n) {
  // Guard before allocating: corrupted headers can claim absurd sizes.
  const std::uint64_t pos = tell();
  if (pos > size_ || n > size_ - pos) {
    throw FormatError("read of " + std::to_string(n) +
                      " bytes exceeds file size " + std::to_string(size_) +
                      ioContext(path_, pos));
  }
  std::vector<std::uint8_t> out(n);
  readExact(out);
  return out;
}

std::size_t FileReader::readSome(std::span<std::uint8_t> data) {
  if (data.empty()) return 0;
  const std::size_t got = std::fread(data.data(), 1, data.size(), f_);
  if (got != data.size() && std::ferror(f_) != 0) throwErrno("read", path_);
  return got;
}

std::uint64_t FileReader::tell() const {
  const long pos = std::ftell(f_);
  if (pos < 0) throwErrno("tell", path_);
  return static_cast<std::uint64_t>(pos);
}

void FileReader::seek(std::uint64_t offset) {
  requireSeekable(offset, path_);
  if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
    throwErrno("seek", path_);
  }
}

std::vector<std::uint8_t> readWholeFile(const std::string& path) {
  FileReader r(path);
  return r.read(static_cast<std::size_t>(r.size()));
}

void writeWholeFile(const std::string& path,
                    std::span<const std::uint8_t> data) {
  FileWriter w(path);
  w.write(data);
  w.close();
}

void writeWholeFile(const std::string& path, const std::string& text) {
  writeWholeFile(path,
                 std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()));
}

}  // namespace ute
