// Buffered binary file I/O with random access.
//
// The interval and SLOG writers need to back-patch directory link offsets
// after the frames they index have been written, and the readers need to
// jump directly to a frame offset obtained from a directory entry, so both
// classes expose seek/tell in addition to streaming reads and writes. They
// are thin RAII wrappers over std::FILE (unbuffered syscalls would dominate
// the utility benchmarks on the small records these formats use).
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/errors.h"

namespace ute {

/// Write-only binary file. Throws IoError on any failure.
class FileWriter {
 public:
  explicit FileWriter(const std::string& path);
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void write(std::span<const std::uint8_t> data);
  void write(const ByteWriter& w) { write(w.view()); }

  std::uint64_t tell() const;
  void seek(std::uint64_t offset);

  /// Seeks to `offset`, writes `data`, then returns to the previous
  /// position — used for back-patching directory links.
  void writeAt(std::uint64_t offset, std::span<const std::uint8_t> data);

  void flush();
  /// Flushes and closes; subsequent writes are a usage error. The
  /// destructor also closes, but calling close() lets errors surface.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::vector<char> iobuf_;  ///< large stdio buffer (batched write())
};

/// Read-only binary file with random access. Throws IoError / FormatError.
class FileReader {
 public:
  explicit FileReader(const std::string& path);
  ~FileReader();

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  /// Reads exactly data.size() bytes; throws FormatError on short read.
  void readExact(std::span<std::uint8_t> data);
  std::vector<std::uint8_t> read(std::size_t n);

  /// Reads up to data.size() bytes, returning the count (0 at EOF).
  std::size_t readSome(std::span<std::uint8_t> data);

  std::uint64_t tell() const;
  void seek(std::uint64_t offset);
  std::uint64_t size() const { return size_; }
  bool atEnd() const { return tell() >= size_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t size_ = 0;
  std::vector<char> iobuf_;  ///< large stdio buffer (batched read())
};

/// Reads a whole file into memory (for small files such as profiles).
std::vector<std::uint8_t> readWholeFile(const std::string& path);

/// Writes a buffer as the entire contents of a file.
void writeWholeFile(const std::string& path,
                    std::span<const std::uint8_t> data);
void writeWholeFile(const std::string& path, const std::string& text);

}  // namespace ute
