#include "support/mapped_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/errors.h"

namespace ute {

namespace {

int adviceOf(MappedFile::Hint hint) {
  switch (hint) {
    case MappedFile::Hint::kSequential: return MADV_SEQUENTIAL;
    case MappedFile::Hint::kRandom: return MADV_RANDOM;
    case MappedFile::Hint::kWillNeed: return MADV_WILLNEED;
    case MappedFile::Hint::kNormal: break;
  }
  return MADV_NORMAL;
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::tryMap(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("open for read failed" + ioContext(path) + ": " +
                  std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("stat failed" + ioContext(path) + ": " +
                  std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);

  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      // Not an error: pipes, some network filesystems and exhausted
      // address space all land here; the caller falls back to stdio.
      ::close(fd);
      return nullptr;
    }
  }
  // The mapping keeps the file alive; the descriptor is no longer needed.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(
      new MappedFile(path, addr, size));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

void MappedFile::advise(Hint hint) const { advise(0, size_, hint); }

void MappedFile::advise(std::uint64_t offset, std::uint64_t length,
                        Hint hint) const {
  if (addr_ == nullptr || length == 0 || offset >= size_) return;
  length = std::min<std::uint64_t>(length, size_ - offset);
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t lo = offset / page * page;
  const std::uint64_t hi = offset + length;
  // Advisory only; ignore failures.
  ::madvise(static_cast<char*>(addr_) + lo, static_cast<std::size_t>(hi - lo),
            adviceOf(hint));
}

}  // namespace ute
