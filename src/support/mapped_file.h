// Read-only memory-mapped file with RAII unmapping and madvise hints.
//
// The interval and SLOG formats were designed so every tool touches only
// the bytes it needs (directory entries, one frame at a time); mapping
// the file lets those reads be pointer arithmetic instead of
// seek+read+copy. MappedFile is the low-level primitive: it maps the
// whole file PROT_READ and hands out std::span views. ByteSource
// (support/byte_source.h) layers the graceful stdio fallback and the
// shared-buffer semantics the readers consume; most code should use it
// rather than MappedFile directly.
//
// A MappedFile is immutable after construction, so concurrent readers
// need no synchronization — this is what makes SlogReader::readFrame and
// the trace-query service lock-free on the hot read path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace ute {

class MappedFile {
 public:
  /// Page-cache advice forwarded to madvise(2); a no-op on failure (the
  /// hints are performance-only and never affect correctness).
  enum class Hint {
    kNormal,
    kSequential,  ///< aggressive readahead (full scans)
    kRandom,      ///< disable readahead (frame-at-a-time access)
    kWillNeed,    ///< fault pages in ahead of use (prefetch)
  };

  /// Maps `path` read-only, or returns nullptr when the file cannot be
  /// mapped (mmap unsupported by the filesystem, out of address space) —
  /// the caller then falls back to stdio. Throws IoError when the file
  /// cannot even be opened or stat'ed, so "file does not exist" reports
  /// identically on both paths.
  static std::shared_ptr<const MappedFile> tryMap(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::uint8_t> bytes() const {
    return {static_cast<const std::uint8_t*>(addr_), size_};
  }
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Advice for the whole mapping.
  void advise(Hint hint) const;
  /// Advice for a byte range (rounded outward to page boundaries).
  void advise(std::uint64_t offset, std::uint64_t length, Hint hint) const;

 private:
  MappedFile(std::string path, void* addr, std::size_t size)
      : path_(std::move(path)), addr_(addr), size_(size) {}

  std::string path_;
  void* addr_ = nullptr;  ///< nullptr only for empty files
  std::size_t size_ = 0;
};

}  // namespace ute
