// Deterministic pseudo-random number generation.
//
// The cluster simulator and the workload generators must be reproducible
// run-to-run (tests assert on exact event streams), so everything random in
// this project draws from this xoshiro256** generator seeded explicitly —
// never from std::random_device or the wall clock.
#pragma once

#include <cstdint>

namespace ute {

/// xoshiro256** seeded via SplitMix64. Header-only for inlining in the
/// simulator's hot loop.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes of state.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * unit(); }

  bool chance(double p) { return unit() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ute
