// Sharded byte-budgeted LRU cache of shared immutable values.
//
// Extracted from the server's FrameCache so every hot-set tier in the
// tree — decoded SLOG frames in uteserve, proxied reply payloads in
// uterouter — is the same implementation with the same locking
// discipline. The cache is sharded: each shard owns its own mutex, LRU
// list, byte budget slice and counters, so concurrent readers touching
// different keys do not serialize on one lock. Values are
// shared_ptr<const V>: an entry can be evicted while callers still hold
// (and keep using) it.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "support/thread_annotations.h"

namespace ute {

/// Aggregated over all shards. hits+misses counts lookups; evictions
/// counts entries dropped to stay within the byte budget.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t entries = 0;
};

template <typename V>
class ShardedCache {
 public:
  using ValuePtr = std::shared_ptr<const V>;
  /// What a loader returns: the shared immutable handle plus its budget
  /// charge (the cache never guesses a value's size).
  struct Loaded {
    ValuePtr value;
    std::size_t bytes = 0;
  };
  using Stats = CacheStats;

  /// `byteBudget` is split evenly across `shards` (each shard evicts
  /// independently once its slice is full).
  ShardedCache(std::size_t byteBudget, std::size_t shards)
      : byteBudget_(byteBudget),
        shardCount_(shards < 1 ? 1 : shards),
        shardBudget_(byteBudget_ / shardCount_ < 1
                         ? 1
                         : byteBudget_ / shardCount_),
        shards_(std::make_unique<Shard[]>(shardCount_)) {}

  /// Returns the cached value for `key`, or obtains it via `loader` on a
  /// miss. The loader returns the shared handle directly (no copy into
  /// the cache) and runs outside the shard lock, so a slow load never
  /// blocks hits on other keys in the same shard; if two threads miss on
  /// the same key at once, both load and the first insert wins — every
  /// caller then holds the same single value.
  ValuePtr getOrLoad(std::uint64_t key,
                     const std::function<Loaded()>& loader) {
    Shard& shard = shardFor(key);
    {
      MutexLock lock(shard.mu);
      const auto it = shard.byKey.find(key);
      if (it != shard.byKey.end()) {
        ++shard.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return it->second->value;
      }
      ++shard.misses;
    }
    Loaded loaded = loader();
    return insertOrReuse(shard, key, std::move(loaded));
  }

  /// Hit-or-nullptr probe (counts toward hits/misses).
  ValuePtr lookup(std::uint64_t key) {
    Shard& shard = shardFor(key);
    MutexLock lock(shard.mu);
    const auto it = shard.byKey.find(key);
    if (it == shard.byKey.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts (or refreshes) an already-loaded value. Returns the cached
  /// handle — the existing one when another thread won an insert race.
  ValuePtr insert(std::uint64_t key, ValuePtr value, std::size_t bytes) {
    Shard& shard = shardFor(key);
    return insertOrReuse(shard, key, Loaded{std::move(value), bytes});
  }

  Stats stats() const {
    Stats total;
    for (std::size_t s = 0; s < shardCount_; ++s) {
      const Shard& shard = shards_[s];
      MutexLock lock(shard.mu);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.evictions += shard.evictions;
      total.bytes += shard.bytes;
      total.entries += shard.lru.size();
    }
    return total;
  }

  void clear() {
    for (std::size_t s = 0; s < shardCount_; ++s) {
      Shard& shard = shards_[s];
      MutexLock lock(shard.mu);
      shard.lru.clear();
      shard.byKey.clear();
      shard.bytes = 0;
    }
  }

  std::size_t byteBudget() const { return byteBudget_; }
  std::size_t shardCount() const { return shardCount_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    ValuePtr value;
    std::size_t bytes = 0;
  };
  /// Front of `lru` is most recently used. Each shard is its own
  /// capability: two threads touching different shards never share a
  /// lock, and the analysis checks every field access against the
  /// owning shard's mutex.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru UTE_GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
        byKey UTE_GUARDED_BY(mu);
    std::size_t bytes UTE_GUARDED_BY(mu) = 0;
    std::uint64_t hits UTE_GUARDED_BY(mu) = 0;
    std::uint64_t misses UTE_GUARDED_BY(mu) = 0;
    std::uint64_t evictions UTE_GUARDED_BY(mu) = 0;
  };

  /// splitmix64: keys are often sequential composites ((traceId << 32) |
  /// frameIdx), so neighboring keys differ only in low bits; mixing
  /// spreads them across shards.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  Shard& shardFor(std::uint64_t key) {
    return shards_[mix(key) % shardCount_];
  }

  ValuePtr insertOrReuse(Shard& shard, std::uint64_t key, Loaded loaded) {
    MutexLock lock(shard.mu);
    const auto it = shard.byKey.find(key);
    if (it != shard.byKey.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->value;
    }
    shard.lru.push_front(Entry{key, loaded.value, loaded.bytes});
    shard.byKey.emplace(key, shard.lru.begin());
    shard.bytes += loaded.bytes;
    evictOver(shard);
    return loaded.value;
  }

  void evictOver(Shard& shard) UTE_REQUIRES(shard.mu) {
    // The most recent entry survives even when it alone exceeds the
    // shard budget (evicting what was just inserted would make oversized
    // values uncacheable and the cache would thrash on them).
    while (shard.bytes > shardBudget_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.byKey.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  std::size_t byteBudget_;
  std::size_t shardCount_;
  std::size_t shardBudget_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace ute
