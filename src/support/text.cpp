#include "support/text.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/errors.h"

namespace ute {

std::vector<std::string> splitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trimString(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string withCommas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::uint64_t parseU64(std::string_view s) {
  const std::string str(trimString(s));
  if (str.empty()) throw ParseError("expected integer, got empty string");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(str.c_str(), &end, 10);
  if (errno != 0 || end != str.c_str() + str.size()) {
    throw ParseError("expected integer, got '" + str + "'");
  }
  return v;
}

double parseF64(std::string_view s) {
  const std::string str(trimString(s));
  if (str.empty()) throw ParseError("expected number, got empty string");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(str.c_str(), &end);
  if (errno != 0 || end != str.c_str() + str.size()) {
    throw ParseError("expected number, got '" + str + "'");
  }
  return v;
}

}  // namespace ute
