// Small string helpers shared by the CLI tools, the statistics language
// front end, and the renderers. Kept deliberately minimal; no locale use.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ute {

std::vector<std::string> splitString(std::string_view s, char sep);
std::string_view trimString(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);

/// Renders n with thousands separators, e.g. 11216936 -> "11,216,936".
std::string withCommas(std::uint64_t n);

/// Fixed-point decimal with `digits` places (printf "%.*f").
std::string fixed(double v, int digits);

/// Parses a non-negative integer; throws ParseError with context on junk.
std::uint64_t parseU64(std::string_view s);
double parseF64(std::string_view s);

}  // namespace ute
