// Clang thread-safety annotations and the annotated lock primitives every
// concurrent UTE class is built on.
//
// The locking invariants of the pipeline (which field is protected by
// which mutex, which helper must be called with a shard lock held) used
// to live in comments, checkable only by TSan stress runs that depend on
// scheduling luck. These macros turn those comments into declarations
// Clang's -Wthread-safety analysis proves at compile time; under
// -Werror=thread-safety (the default for thread-safety-capable compilers,
// see UTE_THREAD_SAFETY in the top-level CMakeLists) a lock-discipline
// violation is a build break, not a flaky test.
//
// Conventions (enforced by tools/utelint.py):
//   - every mutex in src/ is a ute::Mutex, never a raw std::mutex — raw
//     mutexes are invisible to the analysis;
//   - data a mutex protects is declared UTE_GUARDED_BY(mu) right next to
//     the mutex;
//   - a private helper that expects its caller to hold a lock says so
//     with UTE_REQUIRES(mu) instead of a "called with mu held" comment;
//   - condition waits go through ute::CondVar::wait(mu) inside an
//     explicit `while (!predicate)` loop — predicate lambdas are analyzed
//     as separate functions and would defeat GUARDED_BY checking.
//
// On compilers without the capability attributes (GCC) every macro
// expands to nothing and Mutex/MutexLock/CondVar behave exactly like
// std::mutex / std::lock_guard / std::condition_variable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define UTE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef UTE_THREAD_ANNOTATION
#define UTE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define UTE_CAPABILITY(x) UTE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define UTE_SCOPED_CAPABILITY UTE_THREAD_ANNOTATION(scoped_lockable)

/// Field `x` may only be touched while holding the named mutex(es).
#define UTE_GUARDED_BY(x) UTE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* is protected (the pointer itself is not).
#define UTE_PT_GUARDED_BY(x) UTE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: caller holds the mutex(es) for the whole call.
#define UTE_REQUIRES(...) \
  UTE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define UTE_ACQUIRE(...) \
  UTE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es) the caller held on entry.
#define UTE_RELEASE(...) \
  UTE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the mutex(es) held (deadlock guard).
#define UTE_EXCLUDES(...) UTE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a lock-ordering edge between two mutexes.
#define UTE_ACQUIRED_BEFORE(...) \
  UTE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define UTE_ACQUIRED_AFTER(...) \
  UTE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define UTE_RETURN_CAPABILITY(x) UTE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use must carry a comment justifying why the
/// analysis cannot see the invariant; utelint counts these.
#define UTE_NO_THREAD_SAFETY_ANALYSIS \
  UTE_THREAD_ANNOTATION(no_thread_safety_analysis)

/// The function may erase/clear elements of the named member
/// container(s), invalidating pointers, references, and iterators other
/// code obtained from them. Consumed lexically by `utecheck`'s
/// re-entrant-invalidation rule (docs/STATIC_ANALYSIS.md); expands to
/// nothing for every compiler. Prefer annotating the choke point every
/// mutation funnels through (e.g. Reactor::finalizeConn) — callers
/// inherit the effect through the call graph.
#define UTE_MAY_INVALIDATE(...)

namespace ute {

class CondVar;

/// std::mutex made visible to the analysis. lock()/unlock() are annotated
/// so Clang tracks the capability through both manual and RAII use; the
/// capability-free escape hatches of std::mutex (try_lock) are
/// deliberately not exposed — no UTE code needs them.
class UTE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() UTE_ACQUIRE() { mu_.lock(); }
  void unlock() UTE_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a ute::Mutex — the annotated counterpart of
/// std::lock_guard. Scoped: the analysis knows the capability is held
/// from construction to end of scope.
class UTE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) UTE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() UTE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with ute::Mutex. wait() requires the lock
/// held (it is released during the block and reacquired before return,
/// which the analysis models as "held throughout" — the standard
/// condition-variable contract). There is intentionally no predicate
/// overload: a predicate lambda is analyzed as a separate function that
/// does not hold the mutex, so guarded reads inside it would warn; the
/// explicit loop
///     while (!condition) cv.wait(mu);
/// keeps the guarded reads in the annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires.
  void wait(Mutex& mu) UTE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the unique_lock's ownership claim without unlocking — the
    // caller's MutexLock still owns the capability.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Bounded wait (same adopt/release protocol as wait()); returns after
  /// `timeout` even without a notify — for deadline-polling loops.
  template <typename Rep, typename Period>
  void waitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      UTE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait_for(native, timeout);
    native.release();
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ute
