#include "support/thread_pool.h"

#include <algorithm>
#include <exception>

#include "support/errors.h"

namespace ute {

ThreadPool::ThreadPool(std::size_t workers, std::size_t queueCapacity)
    : jobs_(queueCapacity == 0 ? std::max<std::size_t>(1, workers) * 2
                               : queueCapacity) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    if (shutdown_) throw UsageError("ThreadPool: submit after shutdown");
    ++pending_;
  }
  if (!jobs_.send(std::move(job))) {
    // Closed between the check and the send: undo the accounting.
    MutexLock lock(mu_);
    --pending_;
    idleCv_.notifyAll();
    throw UsageError("ThreadPool: submit after shutdown");
  }
}

void ThreadPool::wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) idleCv_.wait(mu_);
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  jobs_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::workerLoop() {
  while (auto job = jobs_.receive()) {
    (*job)();
    MutexLock lock(mu_);
    if (--pending_ == 0) idleCv_.notifyAll();
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  Mutex errMu;
  std::exception_ptr firstError;
  for (std::size_t i = 0; i < n; ++i) {
    submit([&, i] {
      {
        MutexLock lock(errMu);
        if (firstError) return;
      }
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(errMu);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  wait();
  if (firstError) std::rethrow_exception(firstError);
}

std::size_t effectiveJobs(int jobs) {
  if (jobs > 0) return static_cast<std::size_t>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallelFor(std::size_t jobs, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(jobs, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  pool.parallelFor(n, fn);
}

}  // namespace ute
