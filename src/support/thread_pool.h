// Fixed-size thread pool for the offline utilities (convert / merge).
//
// Unlike the server's WorkerPool (which refuses work when its queue is
// full so a loaded service degrades predictably), this pool is built for
// batch throughput: submit() blocks on a bounded channel, so a producer
// enumerating thousands of work items is throttled to what the workers
// can absorb instead of materializing the whole backlog.
//
// parallelFor() is the pattern every pipeline stage actually needs: run
// fn(0..n-1) on up to `jobs` workers, wait for all of them, and rethrow
// the first exception. With jobs <= 1 it degenerates to a plain loop, so
// the sequential reference path shares this code exactly.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "support/channel.h"
#include "support/thread_annotations.h"

namespace ute {

class ThreadPool {
 public:
  /// Spawns `workers` threads. At most `queueCapacity` jobs wait
  /// unstarted (0 = 2x workers); further submits block.
  explicit ThreadPool(std::size_t workers, std::size_t queueCapacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job`, blocking while the queue is full. Throws UsageError
  /// after shutdown().
  void submit(std::function<void()> job) UTE_EXCLUDES(mu_);

  /// Blocks until every job submitted so far has finished executing.
  void wait() UTE_EXCLUDES(mu_);

  /// Stops accepting work, drains jobs already queued, joins workers.
  /// Called by the destructor; calling it earlier surfaces errors.
  void shutdown() UTE_EXCLUDES(mu_);

  /// Runs fn(0..n-1) across the pool's workers, waits for completion,
  /// and rethrows the first exception any call threw. Remaining indices
  /// are skipped (not cancelled mid-call) once a call has thrown.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t workerCount() const { return threads_.size(); }

 private:
  void workerLoop() UTE_EXCLUDES(mu_);

  Channel<std::function<void()>> jobs_;
  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar idleCv_;
  /// Submitted but not yet finished.
  std::size_t pending_ UTE_GUARDED_BY(mu_) = 0;
  bool shutdown_ UTE_GUARDED_BY(mu_) = false;
};

/// Maps a --jobs style argument to a worker count: values <= 0 mean "one
/// per hardware thread" (at least 1).
std::size_t effectiveJobs(int jobs);

/// One-shot parallel loop: runs fn(0..n-1) on up to `jobs` threads and
/// rethrows the first exception. jobs <= 1 (or n <= 1) runs inline on the
/// calling thread — the deterministic sequential reference path.
void parallelFor(std::size_t jobs, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace ute
