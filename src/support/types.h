// Fundamental scalar types shared by every module of the UTE framework.
#pragma once

#include <cstdint>

namespace ute {

/// A point in (or span of) time, in nanoseconds. Which clock the value is
/// relative to (simulated true time, a node's local crystal, or the switch
/// adapter's global clock) is a property of the variable, not the type;
/// APIs document which domain they expect.
using Tick = std::uint64_t;

/// Signed time difference in nanoseconds (e.g. clock discrepancies).
using TickDelta = std::int64_t;

/// Cluster-wide node index, 0-based.
using NodeId = std::int32_t;

/// Processor index within one SMP node, 0-based.
using CpuId = std::int32_t;

/// Logical thread id, 0-based *per node* (the paper allows up to 512
/// relevant threads per node; combined with the node id this names more
/// than 2 million threads per trace).
using LogicalThreadId = std::int32_t;

/// MPI task (rank) id, cluster-wide.
using TaskId = std::int32_t;

inline constexpr std::int32_t kMaxThreadsPerNode = 512;

/// One simulated microsecond/millisecond/second expressed in Ticks.
inline constexpr Tick kUs = 1000;
inline constexpr Tick kMs = 1000 * kUs;
inline constexpr Tick kSec = 1000 * kMs;

}  // namespace ute
