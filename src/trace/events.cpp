#include "trace/events.h"

namespace ute {

EventClass eventClassOf(EventType t) {
  switch (t) {
    case EventType::kThreadDispatch:
      return EventClass::kDispatch;
    case EventType::kGlobalClock:
      return EventClass::kClock;
    case EventType::kIoRead:
    case EventType::kIoWrite:
    case EventType::kPageFault:
      return EventClass::kIo;
    case EventType::kMarkerDef:
    case EventType::kUserMarker:
      return EventClass::kMarker;
    default:
      return isMpiEvent(t) ? EventClass::kMpi : EventClass::kControl;
  }
}

std::string eventTypeName(EventType t) {
  switch (t) {
    case EventType::kInvalid: return "Invalid";
    case EventType::kTimestampWrap: return "TimestampWrap";
    case EventType::kThreadDispatch: return "ThreadDispatch";
    case EventType::kThreadInfo: return "ThreadInfo";
    case EventType::kGlobalClock: return "GlobalClock";
    case EventType::kMarkerDef: return "MarkerDef";
    case EventType::kUserMarker: return "UserMarker";
    case EventType::kNodeInfo: return "NodeInfo";
    case EventType::kIoRead: return "IoRead";
    case EventType::kIoWrite: return "IoWrite";
    case EventType::kPageFault: return "PageFault";
    case EventType::kMpiInit: return "MPI_Init";
    case EventType::kMpiFinalize: return "MPI_Finalize";
    case EventType::kMpiSend: return "MPI_Send";
    case EventType::kMpiRecv: return "MPI_Recv";
    case EventType::kMpiIsend: return "MPI_Isend";
    case EventType::kMpiIrecv: return "MPI_Irecv";
    case EventType::kMpiWait: return "MPI_Wait";
    case EventType::kMpiBarrier: return "MPI_Barrier";
    case EventType::kMpiBcast: return "MPI_Bcast";
    case EventType::kMpiReduce: return "MPI_Reduce";
    case EventType::kMpiAllreduce: return "MPI_Allreduce";
    case EventType::kMpiAlltoall: return "MPI_Alltoall";
  }
  return "Unknown(" + std::to_string(static_cast<int>(t)) + ")";
}

std::string threadTypeName(ThreadType t) {
  switch (t) {
    case ThreadType::kMpi: return "MPI";
    case ThreadType::kUser: return "user";
    case ThreadType::kSystem: return "system";
  }
  return "?";
}

}  // namespace ute
