// Event catalog and hookword encoding for the raw (AIX-style) trace files.
//
// The native trace facility the paper builds on captures a single
// time-stamped stream per node: system events (thread dispatch), MPI
// events cut by the PMPI wrapper library, user markers, and the periodic
// global-clock records used later for synchronization. Each record starts
// with a one-word "hookword" identifying the event type and the record
// length, followed by a one-word (32-bit) timestamp — the reader
// reconstructs full 64-bit local time from periodic timestamp-wrap
// records, mirroring the real facility's layout constraint.
#pragma once

#include <cstdint>
#include <string>

#include "support/types.h"

namespace ute {

/// Raw-trace event types. Values are stable on-disk identifiers.
enum class EventType : std::uint16_t {
  kInvalid = 0,

  // --- system events -----------------------------------------------------
  kTimestampWrap = 1,   ///< payload: u32 new high word of local time
  kThreadDispatch = 2,  ///< payload: i32 old, i32 new (-1 = idle), u32 old-exited
  kThreadInfo = 3,      ///< payload: ltid, pid, system tid, MPI task, type
  kGlobalClock = 4,     ///< payload: u64 global ns, u64 local ns
  kMarkerDef = 5,       ///< payload: u32 marker id, length-prefixed string
  kUserMarker = 6,      ///< payload: u32 marker id, u64 instruction address
  kNodeInfo = 7,        ///< payload: i32 node id, i32 cpu count

  // --- additional system activities (the paper's Section 5 extension:
  // "Future extensions with additional system activities, such as I/O,
  // page miss ... may result in even better tools") -------------------
  kIoRead = 8,     ///< payload: u32 bytes (begin); exit: none
  kIoWrite = 9,    ///< payload: u32 bytes (begin); exit: none
  kPageFault = 10, ///< payload: u64 faulting address (point event)

  // --- MPI events (one event type per routine, as in the paper) ----------
  kMpiInit = 64,
  kMpiFinalize = 65,
  kMpiSend = 66,      ///< entry payload: dest, tag, bytes, seqno, comm
  kMpiRecv = 67,      ///< entry: src, tag, comm; exit: src, tag, bytes, seqno
  kMpiIsend = 68,     ///< entry payload: dest, tag, bytes, seqno, comm, req
  kMpiIrecv = 69,     ///< entry payload: src, tag, comm, req
  kMpiWait = 70,      ///< entry payload: req; exit (recv): src,tag,bytes,seqno
  kMpiBarrier = 71,   ///< entry payload: comm
  kMpiBcast = 72,     ///< entry payload: bytes, root, comm
  kMpiReduce = 73,    ///< entry payload: bytes, root, comm
  kMpiAllreduce = 74, ///< entry payload: bytes, comm
  kMpiAlltoall = 75,  ///< entry payload: bytes, comm

  kMpiLast = kMpiAlltoall,
};

inline bool isMpiEvent(EventType t) {
  return t >= EventType::kMpiInit && t <= EventType::kMpiLast;
}

/// Record flags (hookword bits 23..16).
enum RecordFlags : std::uint8_t {
  kFlagBegin = 0x1,  ///< entry of an MPI call / begin of a user marker
  kFlagEnd = 0x2,    ///< exit of an MPI call / end of a user marker
};

/// Event classes for the trace-enable mask (TraceOptions::enabledClasses).
enum class EventClass : std::uint32_t {
  kControl = 0,   ///< wrap records, node/thread info — always on
  kDispatch = 1,  ///< thread dispatch events
  kMpi = 2,       ///< MPI entry/exit events
  kMarker = 3,    ///< user markers and marker definitions
  kClock = 4,     ///< global clock records
  kIo = 5,        ///< I/O calls and page faults (Section 5 extension)
};

/// True for the blocking I/O call events that form begin/end intervals.
inline bool isIoEvent(EventType t) {
  return t == EventType::kIoRead || t == EventType::kIoWrite;
}

EventClass eventClassOf(EventType t);

/// Human-readable names for dumps, statistics and visualization legends.
std::string eventTypeName(EventType t);

/// The thread categories of the interval-file thread table (Section 2.3.3):
/// MPI threads, user-defined threads, and system threads.
enum class ThreadType : std::uint8_t {
  kMpi = 0,
  kUser = 1,
  kSystem = 2,
};

std::string threadTypeName(ThreadType t);

// --- hookword layout -------------------------------------------------------
// bits 31..16: event type; bits 15..8: flags; bits 7..0: payload length.
// Payload length 255 means the true length follows the hookword's context
// word as a u16 (records longer than 254 bytes, e.g. marker definitions).

inline constexpr std::uint8_t kExtendedLength = 0xff;

inline std::uint32_t makeHookword(EventType type, std::uint8_t flags,
                                  std::uint8_t payloadLen) {
  return (static_cast<std::uint32_t>(type) << 16) |
         (static_cast<std::uint32_t>(flags) << 8) | payloadLen;
}

inline EventType hookwordType(std::uint32_t hw) {
  return static_cast<EventType>(hw >> 16);
}
inline std::uint8_t hookwordFlags(std::uint32_t hw) {
  return static_cast<std::uint8_t>((hw >> 8) & 0xff);
}
inline std::uint8_t hookwordLength(std::uint32_t hw) {
  return static_cast<std::uint8_t>(hw & 0xff);
}

// --- context word ------------------------------------------------------
// bits 31..16: cpu id; bits 15..0: logical thread id (0xffff = none/idle).

inline std::uint32_t makeContext(CpuId cpu, LogicalThreadId ltid) {
  const auto tid16 =
      ltid < 0 ? 0xffffu : static_cast<std::uint32_t>(ltid) & 0xffffu;
  return (static_cast<std::uint32_t>(cpu) << 16) | tid16;
}

inline CpuId contextCpu(std::uint32_t ctx) {
  return static_cast<CpuId>(ctx >> 16);
}
inline LogicalThreadId contextThread(std::uint32_t ctx) {
  const std::uint32_t tid16 = ctx & 0xffffu;
  return tid16 == 0xffffu ? -1 : static_cast<LogicalThreadId>(tid16);
}

}  // namespace ute
