#include "trace/marker_registry.h"

namespace ute {

std::uint32_t MarkerRegistry::define(const std::string& name) {
  const auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const std::uint32_t id = nextId_++;
  byName_.emplace(name, id);
  byId_.emplace(id, entries_.size());
  entries_.emplace_back(id, name);
  return id;
}

const std::string* MarkerRegistry::lookup(std::uint32_t id) const {
  const auto it = byId_.find(id);
  if (it == byId_.end()) return nullptr;
  return &entries_[it->second].second;
}

}  // namespace ute
