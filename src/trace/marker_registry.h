// Task-local user-marker registry (Sections 2.2 / 3.1).
//
// A user defines a marker with a string; the tracing library hands back an
// identifier *without any cross-task communication*, so the same string may
// map to different identifiers in different tasks (the calling sequence of
// marker-creation calls can differ). The convert utility later re-assigns
// one unique identifier per distinct string — this class is the
// low-overhead, task-local half of that contract.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ute {

class MarkerRegistry {
 public:
  /// Returns the identifier for `name`, defining it on first use.
  /// Identifiers are dense, starting at `firstId` (tasks may be given
  /// different bases to make the cross-task collision the paper describes
  /// reliably observable in tests).
  std::uint32_t define(const std::string& name);

  explicit MarkerRegistry(std::uint32_t firstId = 1) : nextId_(firstId) {}

  /// nullptr when the id is unknown.
  const std::string* lookup(std::uint32_t id) const;

  /// All (id, name) pairs in definition order.
  const std::vector<std::pair<std::uint32_t, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::uint32_t nextId_;
  std::unordered_map<std::string, std::uint32_t> byName_;
  std::unordered_map<std::uint32_t, std::size_t> byId_;
  std::vector<std::pair<std::uint32_t, std::string>> entries_;
};

}  // namespace ute
