#include "trace/reader.h"

#include <cstring>

#include "support/errors.h"
#include "support/mapped_file.h"

namespace ute {

namespace {
constexpr std::uint32_t kRawMagic = 0x52455455;  // "UTER"
constexpr std::uint32_t kRawVersion = 1;

std::uint32_t leU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

TraceFileReader::TraceFileReader(const std::string& path,
                                 std::size_t chunkBytes)
    : source_(path) {
  if (source_.mapped()) {
    // Decode straight from the mapping; conversion walks the file once.
    source_.advise(MappedFile::Hint::kSequential);
    whole_ = source_.whole();
    base_ = whole_.data();
    filled_ = whole_.size();
  } else {
    buf_.resize(chunkBytes < 1 << 16 ? 1 << 16 : chunkBytes);
    base_ = buf_.data();
  }
  if (!ensure(16)) {
    throw FormatError("raw trace file too short" + ioContext(source_.path()));
  }
  ByteReader header(std::span(cur(), 16));
  if (header.u32() != kRawMagic) {
    throw FormatError("not a raw trace file: " + source_.path());
  }
  if (header.u32() != kRawVersion) {
    throw FormatError("unsupported raw trace version in " + source_.path());
  }
  node_ = header.i32();
  cpuCount_ = header.i32();
  pos_ += 16;
}

bool TraceFileReader::ensure(std::size_t n) {
  if (filled_ - pos_ >= n) return true;
  if (source_.mapped()) return false;  // the mapping is the whole file
  // Compact the unconsumed tail to the front, then refill.
  const std::size_t tail = filled_ - pos_;
  if (tail > 0 && pos_ > 0) std::memmove(buf_.data(), buf_.data() + pos_, tail);
  pos_ = 0;
  filled_ = tail;
  while (filled_ < n) {
    const std::size_t got = source_.readAt(
        fileOffset_, std::span(buf_.data() + filled_, buf_.size() - filled_));
    if (got == 0) return filled_ >= n;
    fileOffset_ += got;
    filled_ += got;
  }
  return true;
}

std::optional<RawEvent> TraceFileReader::next() {
  for (;;) {
    if (!ensure(12)) {
      if (filled_ - pos_ != 0) {
        throw FormatError("truncated record at end of file" +
                          ioContext(source_.path(), recordOffset()));
      }
      return std::nullopt;
    }
    const std::uint32_t hw = leU32(cur());
    const std::uint32_t tsLow = leU32(cur() + 4);
    const std::uint32_t ctx = leU32(cur() + 8);

    std::size_t headerLen = 12;
    std::size_t payloadLen = hookwordLength(hw);
    if (payloadLen == kExtendedLength) {
      if (!ensure(14)) {
        throw FormatError("truncated record" +
                          ioContext(source_.path(), recordOffset()));
      }
      payloadLen = static_cast<std::size_t>(cur()[12]) |
                   (static_cast<std::size_t>(cur()[13]) << 8);
      headerLen = 14;
    }
    if (!ensure(headerLen + payloadLen)) {
      throw FormatError("truncated payload" +
                        ioContext(source_.path(), recordOffset()));
    }

    RawEvent ev;
    ev.type = hookwordType(hw);
    ev.flags = hookwordFlags(hw);
    ev.cpu = contextCpu(ctx);
    ev.ltid = contextThread(ctx);
    ev.payload = std::span(cur() + headerLen, payloadLen);
    pos_ += headerLen + payloadLen;

    if (ev.type == EventType::kTimestampWrap) {
      ByteReader r(ev.payload);
      highWord_ = r.u32();
      lastLow_ = tsLow;
      continue;  // internal record; not surfaced
    }
    lastLow_ = tsLow;
    ev.localTs = (highWord_ << 32) | tsLow;
    ++eventsRead_;
    return ev;
  }
}

}  // namespace ute
