#include "trace/reader.h"

#include <cstring>

#include "support/errors.h"

namespace ute {

namespace {
constexpr std::uint32_t kRawMagic = 0x52455455;  // "UTER"
constexpr std::uint32_t kRawVersion = 1;

std::uint32_t leU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

TraceFileReader::TraceFileReader(const std::string& path,
                                 std::size_t chunkBytes)
    : file_(path), buf_(chunkBytes < 1 << 16 ? 1 << 16 : chunkBytes) {
  if (!ensure(16)) throw FormatError("raw trace file too short: " + path);
  ByteReader header(std::span(buf_.data() + pos_, 16));
  if (header.u32() != kRawMagic) {
    throw FormatError("not a raw trace file: " + path);
  }
  if (header.u32() != kRawVersion) {
    throw FormatError("unsupported raw trace version in " + path);
  }
  node_ = header.i32();
  cpuCount_ = header.i32();
  pos_ += 16;
}

bool TraceFileReader::ensure(std::size_t n) {
  if (filled_ - pos_ >= n) return true;
  // Compact the unconsumed tail to the front, then refill.
  const std::size_t tail = filled_ - pos_;
  if (tail > 0 && pos_ > 0) std::memmove(buf_.data(), buf_.data() + pos_, tail);
  pos_ = 0;
  filled_ = tail;
  while (filled_ < n) {
    const std::size_t got = file_.readSome(
        std::span(buf_.data() + filled_, buf_.size() - filled_));
    if (got == 0) return filled_ >= n;
    filled_ += got;
  }
  return true;
}

std::optional<RawEvent> TraceFileReader::next() {
  for (;;) {
    if (!ensure(12)) {
      if (filled_ - pos_ != 0) {
        throw FormatError("truncated record at end of " + file_.path());
      }
      return std::nullopt;
    }
    const std::uint32_t hw = leU32(buf_.data() + pos_);
    const std::uint32_t tsLow = leU32(buf_.data() + pos_ + 4);
    const std::uint32_t ctx = leU32(buf_.data() + pos_ + 8);

    std::size_t headerLen = 12;
    std::size_t payloadLen = hookwordLength(hw);
    if (payloadLen == kExtendedLength) {
      if (!ensure(14)) throw FormatError("truncated record in " + file_.path());
      payloadLen = static_cast<std::size_t>(buf_[pos_ + 12]) |
                   (static_cast<std::size_t>(buf_[pos_ + 13]) << 8);
      headerLen = 14;
    }
    if (!ensure(headerLen + payloadLen)) {
      throw FormatError("truncated payload in " + file_.path());
    }

    RawEvent ev;
    ev.type = hookwordType(hw);
    ev.flags = hookwordFlags(hw);
    ev.cpu = contextCpu(ctx);
    ev.ltid = contextThread(ctx);
    ev.payload = std::span(buf_.data() + pos_ + headerLen, payloadLen);
    pos_ += headerLen + payloadLen;

    if (ev.type == EventType::kTimestampWrap) {
      ByteReader r(ev.payload);
      highWord_ = r.u32();
      lastLow_ = tsLow;
      continue;  // internal record; not surfaced
    }
    lastLow_ = tsLow;
    ev.localTs = (highWord_ << 32) | tsLow;
    ++eventsRead_;
    return ev;
  }
}

}  // namespace ute
