// Streaming reader for raw per-node trace files.
//
// Reconstructs full 64-bit local timestamps from the 32-bit on-disk
// timestamp words plus TimestampWrap records, and decodes hookword /
// context words back into typed events.
//
// Decoding runs over the ByteSource layer: when the file maps, records
// are decoded in place from the mapping (no refill buffer, no copy — the
// payload spans point straight into the file's pages); on the stdio
// fallback the reader streams through a bounded refill buffer, so
// converting multi-hundred-megabyte trace files (Table 1 runs up to
// 11.2 M raw events) never requires holding the file in memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/byte_source.h"
#include "support/bytes.h"
#include "support/types.h"
#include "trace/events.h"

namespace ute {

/// One decoded raw trace event. `payload` points into the file mapping
/// (valid for the reader's lifetime) or into the reader's refill buffer
/// (invalidated by the next call to next()); treat it as next()-scoped.
struct RawEvent {
  EventType type = EventType::kInvalid;
  std::uint8_t flags = 0;
  CpuId cpu = 0;
  LogicalThreadId ltid = -1;
  Tick localTs = 0;  ///< reconstructed full 64-bit local time, ns
  std::span<const std::uint8_t> payload;

  ByteReader payloadReader() const { return ByteReader(payload); }
};

class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path,
                           std::size_t chunkBytes = 1 << 20);

  NodeId node() const { return node_; }
  int cpuCount() const { return cpuCount_; }

  /// Decodes the next event, or nullopt at end of file. TimestampWrap
  /// records are consumed internally (their effect is the reconstructed
  /// 64-bit timestamps) and not surfaced.
  std::optional<RawEvent> next();

  std::uint64_t eventsRead() const { return eventsRead_; }

 private:
  bool ensure(std::size_t n);
  const std::uint8_t* cur() const { return base_ + pos_; }
  /// Absolute file offset of the byte at cur() (for error context).
  std::uint64_t recordOffset() const {
    return source_.mapped() ? pos_ : fileOffset_ - (filled_ - pos_);
  }

  ByteSource source_;
  FrameBuf whole_;                 ///< the mapping (mmap path only)
  std::vector<std::uint8_t> buf_;  ///< refill buffer (stdio path only)
  const std::uint8_t* base_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t fileOffset_ = 0;  ///< next refill position (stdio path)
  NodeId node_ = -1;
  int cpuCount_ = 0;
  std::uint64_t highWord_ = 0;
  std::uint32_t lastLow_ = 0;
  std::uint64_t eventsRead_ = 0;
};

}  // namespace ute
