// Streaming reader for raw per-node trace files.
//
// Reconstructs full 64-bit local timestamps from the 32-bit on-disk
// timestamp words plus TimestampWrap records, and decodes hookword /
// context words back into typed events. The reader streams through a
// bounded refill buffer so converting multi-hundred-megabyte trace files
// (Table 1 runs up to 11.2 M raw events) does not require holding the
// file in memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/file_io.h"
#include "support/types.h"
#include "trace/events.h"

namespace ute {

/// One decoded raw trace event. `payload` points into the reader's refill
/// buffer and is invalidated by the next call to next().
struct RawEvent {
  EventType type = EventType::kInvalid;
  std::uint8_t flags = 0;
  CpuId cpu = 0;
  LogicalThreadId ltid = -1;
  Tick localTs = 0;  ///< reconstructed full 64-bit local time, ns
  std::span<const std::uint8_t> payload;

  ByteReader payloadReader() const { return ByteReader(payload); }
};

class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path,
                           std::size_t chunkBytes = 1 << 20);

  NodeId node() const { return node_; }
  int cpuCount() const { return cpuCount_; }

  /// Decodes the next event, or nullopt at end of file. TimestampWrap
  /// records are consumed internally (their effect is the reconstructed
  /// 64-bit timestamps) and not surfaced.
  std::optional<RawEvent> next();

  std::uint64_t eventsRead() const { return eventsRead_; }

 private:
  bool ensure(std::size_t n);

  FileReader file_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  NodeId node_ = -1;
  int cpuCount_ = 0;
  std::uint64_t highWord_ = 0;
  std::uint32_t lastLow_ = 0;
  std::uint64_t eventsRead_ = 0;
};

}  // namespace ute
