#include "trace/writer.h"

#include "support/errors.h"

namespace ute {

namespace {
constexpr std::uint32_t kRawMagic = 0x52455455;  // "UTER" little-endian
constexpr std::uint32_t kRawVersion = 1;
}  // namespace

std::string TraceSession::traceFilePath(const std::string& prefix,
                                        NodeId node) {
  return prefix + "." + std::to_string(node) + ".utr";
}

TraceSession::TraceSession(const TraceOptions& options, NodeId node,
                           int cpuCount, Tick initialLocalTs)
    : options_(options),
      node_(node),
      filePath_(traceFilePath(options.filePrefix, node)),
      file_(filePath_),
      tracingEnabled_(options.startEnabled) {
  if (options_.bufferSizeBytes < 4096) options_.bufferSizeBytes = 4096;
  buffer_.reserve(options_.bufferSizeBytes);

  ByteWriter header;
  header.u32(kRawMagic);
  header.u32(kRawVersion);
  header.i32(node);
  header.i32(cpuCount);
  file_.write(header);
  stats_.bytesWritten += header.size();

  // The node-info record is a control record: always cut, so readers know
  // the topology even when tracing proper starts later.
  cut(EventType::kNodeInfo, 0, 0, -1, initialLocalTs,
      payloadNodeInfo(node, cpuCount));
}

TraceSession::~TraceSession() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() surfaces errors.
  }
}

bool TraceSession::classEnabled(EventType type) const {
  const EventClass c = eventClassOf(type);
  if (c == EventClass::kControl) return true;
  if (!tracingEnabled_) return false;
  return (options_.enabledClasses & TraceOptions::classBit(c)) != 0;
}

void TraceSession::cut(EventType type, std::uint8_t flags, CpuId cpu,
                       LogicalThreadId ltid, Tick localTs,
                       std::span<const std::uint8_t> payload) {
  if (closed_) throw UsageError("TraceSession: cut after close");
  // Part one of the paper's record cost: the enablement test.
  if (!classEnabled(type)) {
    ++stats_.eventsSuppressed;
    return;
  }
  if (localTs < lastLocalTs_) {
    throw UsageError("TraceSession: local timestamps must be non-decreasing");
  }
  lastLocalTs_ = localTs;

  // The live-ingest mirror fires before the wrap/buffer bookkeeping:
  // the sink sees full 64-bit time, so wrap records (skipped below via
  // the type test) would be redundant on that path.
  if (sink_ && type != EventType::kTimestampWrap) {
    RawEvent ev;
    ev.type = type;
    ev.flags = flags;
    ev.cpu = cpu;
    ev.ltid = ltid;
    ev.localTs = localTs;
    ev.payload = payload;
    sink_(ev);
  }

  // The on-disk timestamp is one 32-bit word; emit a wrap record whenever
  // the high word advances so readers can rebuild 64-bit time.
  const auto highWord = static_cast<std::uint32_t>(localTs >> 32);
  if (highWord != lastHighWord_) {
    lastHighWord_ = highWord;
    if (type != EventType::kTimestampWrap) {
      ByteWriter wrap;
      wrap.u32(highWord);
      ++stats_.wrapRecords;
      // Recurse once; the wrap record itself never needs another wrap.
      // Wrap records are transparent bookkeeping: readers consume them
      // silently, so they are not counted in eventsCut.
      cut(EventType::kTimestampWrap, 0, cpu, ltid, localTs, wrap.view());
      --stats_.eventsCut;
    }
  }

  // Part two: the buffer insertion.
  const bool extended = payload.size() > 254;
  if (payload.size() > 0xffff) {
    throw UsageError("TraceSession: payload longer than 65535 bytes");
  }
  const std::size_t recordSize =
      4 /*hookword*/ + 4 /*timestamp*/ + 4 /*context*/ +
      (extended ? 2 : 0) + payload.size();
  if (buffer_.size() + recordSize > options_.bufferSizeBytes) flushBuffer();

  const std::uint32_t hw = makeHookword(
      type, flags,
      extended ? kExtendedLength : static_cast<std::uint8_t>(payload.size()));
  const auto tsLow = static_cast<std::uint32_t>(localTs & 0xffffffffu);
  const std::uint32_t ctx = makeContext(cpu, ltid);
  const std::uint32_t words[3] = {hw, tsLow, ctx};
  for (std::uint32_t w : words) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  if (extended) {
    const auto n = static_cast<std::uint16_t>(payload.size());
    buffer_.push_back(static_cast<std::uint8_t>(n & 0xff));
    buffer_.push_back(static_cast<std::uint8_t>(n >> 8));
  }
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  ++stats_.eventsCut;
}

void TraceSession::flushBuffer() {
  if (buffer_.empty()) return;
  file_.write(buffer_);
  stats_.bytesWritten += buffer_.size();
  ++stats_.bufferFlushes;
  buffer_.clear();
}

void TraceSession::close() {
  if (closed_) return;
  flushBuffer();
  file_.close();
  closed_ = true;
}

ByteWriter payloadThreadDispatch(LogicalThreadId oldTid,
                                 LogicalThreadId newTid, bool oldExited) {
  ByteWriter w;
  w.i32(oldTid);
  w.i32(newTid);
  w.u32(oldExited ? 1 : 0);
  return w;
}

ByteWriter payloadThreadInfo(LogicalThreadId ltid, std::int32_t pid,
                             std::int32_t systemTid, TaskId mpiTask,
                             ThreadType type) {
  ByteWriter w;
  w.i32(ltid);
  w.i32(pid);
  w.i32(systemTid);
  w.i32(mpiTask);
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

ByteWriter payloadGlobalClock(Tick globalNs, Tick localNs) {
  ByteWriter w;
  w.u64(globalNs);
  w.u64(localNs);
  return w;
}

ByteWriter payloadMarkerDef(std::uint32_t markerId, std::string_view name) {
  ByteWriter w;
  w.u32(markerId);
  w.lstring(name);
  return w;
}

ByteWriter payloadUserMarker(std::uint32_t markerId,
                             std::uint64_t instrAddr) {
  ByteWriter w;
  w.u32(markerId);
  w.u64(instrAddr);
  return w;
}

ByteWriter payloadNodeInfo(NodeId node, std::int32_t cpuCount) {
  ByteWriter w;
  w.i32(node);
  w.i32(cpuCount);
  return w;
}

ByteWriter payloadMpiSend(TaskId dest, std::int32_t tag, std::uint32_t bytes,
                          std::uint32_t seqno, std::int32_t comm) {
  ByteWriter w;
  w.i32(dest);
  w.i32(tag);
  w.u32(bytes);
  w.u32(seqno);
  w.i32(comm);
  return w;
}

ByteWriter payloadMpiRecvEntry(TaskId src, std::int32_t tag,
                               std::int32_t comm) {
  ByteWriter w;
  w.i32(src);
  w.i32(tag);
  w.i32(comm);
  return w;
}

ByteWriter payloadMpiRecvExit(TaskId src, std::int32_t tag,
                              std::uint32_t bytes, std::uint32_t seqno) {
  ByteWriter w;
  w.i32(src);
  w.i32(tag);
  w.u32(bytes);
  w.u32(seqno);
  return w;
}

ByteWriter payloadMpiCollective(std::uint32_t bytes, TaskId root,
                                std::int32_t comm) {
  ByteWriter w;
  w.u32(bytes);
  w.i32(root);
  w.i32(comm);
  return w;
}

}  // namespace ute
