// Per-node trace session: the tracing-library side of the unified tracing
// facility (Section 2.1).
//
// Each SMP node owns one TraceSession. Instrumentation points "cut" trace
// records into a fixed-size in-memory trace buffer; full buffers are
// flushed to the node's raw trace file. Options control the file name
// prefix, buffer size, which event classes are enabled, and whether
// tracing starts immediately or is turned on later (to trace only a
// portion of the run, substantially reducing trace volume).
//
// The record layout mirrors the paper's cost analysis: a one-word
// hookword, a one-word (32-bit) timestamp, one context word, then payload
// words. Full 64-bit local time is recoverable because the session cuts a
// TimestampWrap record whenever the high 32 bits of local time change.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/bytes.h"
#include "support/file_io.h"
#include "support/types.h"
#include "trace/events.h"
#include "trace/reader.h"

namespace ute {

struct TraceOptions {
  /// Raw trace files are named "<prefix>.<node>.utr".
  std::string filePrefix = "trace";
  /// In-memory trace buffer size; full buffers flush to disk.
  std::size_t bufferSizeBytes = 1 << 20;
  /// Bitmask over EventClass values; kControl is implicitly always on.
  std::uint32_t enabledClasses = ~0u;
  /// If false, nothing but control records is cut until traceOn().
  bool startEnabled = true;

  static std::uint32_t classBit(EventClass c) {
    return 1u << static_cast<std::uint32_t>(c);
  }
};

/// Statistics a session keeps about itself (exposed for tests and the
/// trace-cost benchmark).
struct TraceSessionStats {
  std::uint64_t eventsCut = 0;
  std::uint64_t eventsSuppressed = 0;  // disabled class or tracing off
  std::uint64_t bytesWritten = 0;
  std::uint64_t bufferFlushes = 0;
  std::uint64_t wrapRecords = 0;
};

class TraceSession {
 public:
  /// Opens "<prefix>.<node>.utr" and writes the file header. The
  /// NodeInfo control record is cut at `initialLocalTs` (the node's
  /// local clock reading at trace start).
  TraceSession(const TraceOptions& options, NodeId node, int cpuCount,
               Tick initialLocalTs = 0);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Cuts one record. `localTs` is the node-local clock reading in ns and
  /// must be non-decreasing across calls. Payload is already encoded
  /// little-endian by the caller (see payload helpers below).
  void cut(EventType type, std::uint8_t flags, CpuId cpu,
           LogicalThreadId ltid, Tick localTs,
           std::span<const std::uint8_t> payload);

  /// Convenience overload for payload built in a ByteWriter.
  void cut(EventType type, std::uint8_t flags, CpuId cpu,
           LogicalThreadId ltid, Tick localTs, const ByteWriter& payload) {
    cut(type, flags, cpu, ltid, localTs, payload.view());
  }

  /// Mirrors every record that passes the enablement test to `sink` as
  /// a decoded RawEvent, in cut order — the live streaming ingest hook
  /// (src/stream). TimestampWrap bookkeeping records are not mirrored
  /// (the sink's localTs is already full 64-bit time, exactly like
  /// TraceFileReader's reconstruction). The payload span is only valid
  /// for the duration of the call.
  using EventSink = std::function<void(const RawEvent&)>;
  void setEventSink(EventSink sink) { sink_ = std::move(sink); }

  /// Delayed-start / section tracing control (Section 2.1).
  void traceOn() { tracingEnabled_ = true; }
  void traceOff() { tracingEnabled_ = false; }
  bool tracingEnabled() const { return tracingEnabled_; }

  /// Flushes the buffer and closes the file; called by the destructor if
  /// not called explicitly.
  void close();

  const std::string& filePath() const { return filePath_; }
  NodeId node() const { return node_; }
  const TraceSessionStats& stats() const { return stats_; }

  static std::string traceFilePath(const std::string& prefix, NodeId node);

 private:
  void flushBuffer();
  bool classEnabled(EventType type) const;

  TraceOptions options_;
  NodeId node_;
  std::string filePath_;
  FileWriter file_;
  std::vector<std::uint8_t> buffer_;
  bool tracingEnabled_ = true;
  bool closed_ = false;
  std::uint32_t lastHighWord_ = 0;
  Tick lastLocalTs_ = 0;
  EventSink sink_;
  TraceSessionStats stats_;
};

// --- payload builders --------------------------------------------------
// Encoders for each event type's payload, shared by the simulator-side
// instrumentation and by tests that craft records directly.

/// `oldExited` marks the descheduled thread as terminated (rather than
/// preempted or blocked) so the converter can seal its open states.
ByteWriter payloadThreadDispatch(LogicalThreadId oldTid,
                                 LogicalThreadId newTid,
                                 bool oldExited = false);
ByteWriter payloadThreadInfo(LogicalThreadId ltid, std::int32_t pid,
                             std::int32_t systemTid, TaskId mpiTask,
                             ThreadType type);
ByteWriter payloadGlobalClock(Tick globalNs, Tick localNs);
ByteWriter payloadMarkerDef(std::uint32_t markerId, std::string_view name);
ByteWriter payloadUserMarker(std::uint32_t markerId, std::uint64_t instrAddr);
ByteWriter payloadNodeInfo(NodeId node, std::int32_t cpuCount);
ByteWriter payloadMpiSend(TaskId dest, std::int32_t tag, std::uint32_t bytes,
                          std::uint32_t seqno, std::int32_t comm);
ByteWriter payloadMpiRecvEntry(TaskId src, std::int32_t tag,
                               std::int32_t comm);
ByteWriter payloadMpiRecvExit(TaskId src, std::int32_t tag,
                              std::uint32_t bytes, std::uint32_t seqno);
ByteWriter payloadMpiCollective(std::uint32_t bytes, TaskId root,
                                std::int32_t comm);

}  // namespace ute
