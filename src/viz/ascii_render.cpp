#include "viz/ascii_render.h"

#include <algorithm>
#include <cmath>

#include "slog/preview.h"
#include "support/text.h"

namespace ute {

namespace {

char glyphFor(const std::string& name) {
  if (name.empty()) return '#';
  if (name == "Running") return 'r';
  if (startsWith(name, "MPI_")) {
    // Initial of the routine: S(end), R(ecv), B(arrier/cast), A(llreduce)...
    return name.size() > 4 ? name[4] : 'M';
  }
  return static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
}

}  // namespace

std::string renderAscii(const TimeSpaceModel& model,
                        const AsciiOptions& options) {
  const int cols = std::max(options.columns, 10);
  const double tMin = static_cast<double>(model.minTime);
  const double tMax =
      static_cast<double>(std::max(model.maxTime, model.minTime + 1));
  const double span = tMax - tMin;

  std::size_t labelWidth = 0;
  for (const VizTimeline& row : model.rows) {
    labelWidth = std::max(labelWidth, row.label.size());
  }

  std::string out = model.title + " (" + viewKindName(model.kind) + ")\n";
  for (const VizTimeline& row : model.rows) {
    std::string line(static_cast<std::size_t>(cols), '.');
    std::vector<std::uint8_t> depth(static_cast<std::size_t>(cols), 0);
    std::vector<bool> used(static_cast<std::size_t>(cols), false);
    for (const VizSegment& seg : row.segments) {
      const int c0 = static_cast<int>((static_cast<double>(seg.start) - tMin) /
                                      span * cols);
      int c1 = static_cast<int>(
          std::ceil((static_cast<double>(seg.end) - tMin) / span * cols));
      if (c1 <= c0) c1 = c0 + 1;
      const auto legendIt = model.legend.find(seg.colorKey);
      const char glyph = legendIt != model.legend.end()
                             ? glyphFor(legendIt->second.first)
                             : '#';
      for (int c = std::max(c0, 0); c < std::min(c1, cols); ++c) {
        const auto idx = static_cast<std::size_t>(c);
        if (!used[idx] || seg.depth >= depth[idx]) {
          line[idx] = glyph;
          used[idx] = true;
          depth[idx] = seg.depth;
        }
      }
    }
    out += row.label;
    out.append(labelWidth - row.label.size(), ' ');
    out += " |" + line + "|\n";
  }

  if (options.legend && !model.legend.empty()) {
    out += "legend:";
    for (const auto& [key, entry] : model.legend) {
      out += " ";
      out.push_back(glyphFor(entry.first));
      out += "=" + entry.first;
    }
    out += "\n";
  }
  return out;
}

std::string renderPreviewAscii(const SlogPreview& preview,
                               const std::vector<SlogStateDef>& states,
                               std::uint32_t bins) {
  const SlogPreview p = rebinPreview(preview, bins);
  double maxV = 1.0;
  for (const auto& row : p.perStateBinTime) {
    for (double v : row) maxV = std::max(maxV, v);
  }
  std::size_t labelWidth = 0;
  for (const SlogStateDef& s : states) {
    labelWidth = std::max(labelWidth, s.name.size());
  }
  std::string out;
  for (std::size_t s = 0; s < p.perStateBinTime.size(); ++s) {
    out += states[s].name;
    out.append(labelWidth - states[s].name.size(), ' ');
    out += " |";
    for (std::uint32_t b = 0; b < p.bins; ++b) {
      const double v = p.perStateBinTime[s][b];
      if (v <= 0) {
        out += ' ';
      } else {
        const int level = std::min(9, static_cast<int>(v / maxV * 9.0) + 1);
        out += static_cast<char>('0' + level);
      }
    }
    out += "|\n";
  }
  return out;
}

}  // namespace ute
