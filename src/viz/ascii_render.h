// Plain-text rendering of time-space diagrams — one character column per
// time slice, one line per timeline. Used by the CLI tools for terminal
// output and by the test suite, which asserts on the drawn picture
// (idle threads, CPU migration, state layering) instead of on pixels.
#pragma once

#include <string>

#include "slog/slog_format.h"
#include "viz/timeline_model.h"

namespace ute {

struct AsciiOptions {
  int columns = 100;
  bool legend = true;
};

/// Each timeline becomes "label |XXXX....|" where each column shows the
/// initial of the state occupying most of that time slice ('.' = no
/// activity). Deeper-nested segments win ties.
std::string renderAscii(const TimeSpaceModel& model,
                        const AsciiOptions& options = {});

/// Preview as rows of per-state bin intensity (0-9 scaled).
std::string renderPreviewAscii(const SlogPreview& preview,
                               const std::vector<SlogStateDef>& states,
                               std::uint32_t bins = 50);

}  // namespace ute
