#include "viz/metrics_view.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "support/text.h"

namespace ute {

namespace {

/// Heatmap cells rebin as numerator/denominator pairs so fractions stay
/// fractions when several bins collapse into one display column.
struct CellParts {
  double num = 0;
  double den = 0;  ///< 0 for absolute metrics (cell = num)
};

CellParts cellParts(const MetricsStore& store, MetricKind kind,
                    std::uint32_t bin, std::uint32_t task) {
  switch (kind) {
    case MetricKind::kBusy:
      return {static_cast<double>(
                  store.timeNs(StateClass::kBusy, bin, task)), 0};
    case MetricKind::kMpi:
      return {static_cast<double>(
                  store.timeNs(StateClass::kMpi, bin, task)), 0};
    case MetricKind::kIo:
      return {static_cast<double>(
                  store.timeNs(StateClass::kIo, bin, task)), 0};
    case MetricKind::kMarker:
      return {static_cast<double>(
                  store.timeNs(StateClass::kMarker, bin, task)), 0};
    case MetricKind::kIdle:
      return {static_cast<double>(store.idleNs(bin, task)), 0};
    case MetricKind::kCommFraction: {
      const Tick lo = std::min(store.binStart(bin), store.binEnd(bin));
      const double wall =
          static_cast<double>(store.binEnd(bin) - lo) *
          store.threadsPerTask()[task];
      return {static_cast<double>(
                  store.timeNs(StateClass::kMpi, bin, task)),
              wall};
    }
    case MetricKind::kLateSender:
      return {static_cast<double>(store.lateSenderNs(bin, task)), 0};
    case MetricKind::kSendBytes:
      return {static_cast<double>(store.sendBytes(bin, task)), 0};
    case MetricKind::kRecvBytes:
      return {static_cast<double>(store.recvBytes(bin, task)), 0};
  }
  return {};
}

bool isFractionKind(MetricKind kind) {
  return kind == MetricKind::kCommFraction;
}

/// The display grid: `columns` x taskCount cell values, each column
/// aggregating a contiguous run of store bins.
std::vector<std::vector<double>> displayGrid(const MetricsStore& store,
                                             MetricKind kind,
                                             std::uint32_t columns) {
  columns = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(columns, store.bins()));
  std::vector<std::vector<double>> grid(
      store.taskCount(), std::vector<double>(columns, 0.0));
  for (std::uint32_t k = 0; k < store.taskCount(); ++k) {
    for (std::uint32_t c = 0; c < columns; ++c) {
      const std::uint32_t lo = store.bins() * c / columns;
      const std::uint32_t hi = store.bins() * (c + 1) / columns;
      CellParts total;
      for (std::uint32_t b = lo; b < hi; ++b) {
        const CellParts p = cellParts(store, kind, b, k);
        total.num += p.num;
        total.den += p.den;
      }
      grid[k][c] = isFractionKind(kind)
                       ? (total.den > 0 ? total.num / total.den : 0.0)
                       : total.num;
    }
  }
  return grid;
}

double gridMax(const std::vector<std::vector<double>>& grid) {
  double maxV = 0;
  for (const auto& row : grid) {
    for (double v : row) maxV = std::max(maxV, v);
  }
  return maxV;
}

std::string formatCellValue(MetricKind kind, double v) {
  if (isFractionKind(kind)) return fixed(v * 100.0, 1) + "%";
  if (kind == MetricKind::kSendBytes || kind == MetricKind::kRecvBytes) {
    return withCommas(static_cast<std::uint64_t>(v)) + " B";
  }
  return fixed(v / 1e6, 3) + "ms";
}

/// Run-wide peaks of the derived series, shared by both footers.
void derivedPeaks(const MetricsStore& store, double& peakComm,
                  double& peakImbalance) {
  peakComm = 0;
  peakImbalance = 0;
  for (std::uint32_t b = 0; b < store.bins(); ++b) {
    peakComm = std::max(peakComm, store.commFraction(b));
    peakImbalance = std::max(peakImbalance, store.loadImbalance(b));
  }
}

}  // namespace

const char* metricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kBusy: return "busy";
    case MetricKind::kMpi: return "mpi";
    case MetricKind::kIo: return "io";
    case MetricKind::kMarker: return "marker";
    case MetricKind::kIdle: return "idle";
    case MetricKind::kCommFraction: return "commfrac";
    case MetricKind::kLateSender: return "latesender";
    case MetricKind::kSendBytes: return "sendbytes";
    case MetricKind::kRecvBytes: return "recvbytes";
  }
  return "?";
}

std::optional<MetricKind> parseMetricKind(std::string_view name) {
  for (MetricKind kind :
       {MetricKind::kBusy, MetricKind::kMpi, MetricKind::kIo,
        MetricKind::kMarker, MetricKind::kIdle, MetricKind::kCommFraction,
        MetricKind::kLateSender, MetricKind::kSendBytes,
        MetricKind::kRecvBytes}) {
    if (name == metricKindName(kind)) return kind;
  }
  return std::nullopt;
}

double metricCell(const MetricsStore& store, MetricKind kind,
                  std::uint32_t bin, std::uint32_t task) {
  const CellParts p = cellParts(store, kind, bin, task);
  if (isFractionKind(kind)) return p.den > 0 ? p.num / p.den : 0.0;
  return p.num;
}

std::string renderMetricsHeatmapAscii(const MetricsStore& store,
                                      MetricKind kind, int columns) {
  const auto grid = displayGrid(
      store, kind, static_cast<std::uint32_t>(std::max(columns, 1)));
  const double maxV = gridMax(grid);
  const double spanSec =
      static_cast<double>(store.totalEnd() - store.origin()) / 1e9;

  std::string out = "metric " + std::string(metricKindName(kind)) + ": " +
                    std::to_string(store.bins()) + " bins of " +
                    fixed(static_cast<double>(store.binWidth()) / 1e6, 3) +
                    "ms over " + fixed(spanSec, 6) + "s\n";
  std::size_t labelWidth = 0;
  for (TaskId task : store.tasks()) {
    labelWidth = std::max(labelWidth,
                          ("task " + std::to_string(task)).size());
  }
  for (std::uint32_t k = 0; k < store.taskCount(); ++k) {
    const std::string label = "task " + std::to_string(store.tasks()[k]);
    out += label;
    out.append(labelWidth - label.size(), ' ');
    out += " |";
    for (double v : grid[k]) {
      if (v <= 0 || maxV <= 0) {
        out += ' ';
      } else {
        const int level =
            std::min(9, static_cast<int>(v / maxV * 9.0) + 1);
        out += static_cast<char>('0' + level);
      }
    }
    out += "|\n";
  }
  double peakComm = 0;
  double peakImbalance = 0;
  derivedPeaks(store, peakComm, peakImbalance);
  out += "scale: 9 = " + formatCellValue(kind, maxV) +
         " per cell; peak commfrac " + fixed(peakComm * 100.0, 1) +
         "%, peak imbalance " + fixed(peakImbalance, 3) + "\n";
  return out;
}

std::string renderMetricsHeatmapSvg(const MetricsStore& store,
                                    MetricKind kind,
                                    const SvgOptions& options) {
  const int chartLeft = options.labelWidth;
  const int chartWidth = options.width - chartLeft - 10;
  const std::uint32_t columns = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(store.bins(),
                                 static_cast<std::uint32_t>(chartWidth / 3)));
  const auto grid = displayGrid(store, kind, columns);
  const double maxV = gridMax(grid);

  const int topMargin = 28;
  const int stripHeight = 40;  // derived commfrac/imbalance series
  const int axisHeight = 24;
  const int rows = static_cast<int>(store.taskCount());
  const int height = topMargin + rows * options.rowHeight + stripHeight +
                     axisHeight + 16;

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(options.width) + "\" height=\"" +
                    std::to_string(height) + "\">\n";
  svg += "<rect width=\"" + std::to_string(options.width) + "\" height=\"" +
         std::to_string(height) + "\" fill=\"#ffffff\"/>\n";
  svg += "<text x=\"8\" y=\"18\" font-family=\"sans-serif\" "
         "font-size=\"13\" font-weight=\"bold\">metrics heatmap: " +
         std::string(metricKindName(kind)) + " (max " +
         formatCellValue(kind, maxV) + "/cell)</text>\n";

  const double cellW = static_cast<double>(chartWidth) / columns;
  for (int k = 0; k < rows; ++k) {
    const double y =
        topMargin + static_cast<double>(k) * options.rowHeight;
    svg += "<text x=\"4\" y=\"" + fixed(y + options.rowHeight * 0.7, 1) +
           "\" font-family=\"sans-serif\" font-size=\"10\">task " +
           std::to_string(store.tasks()[static_cast<std::size_t>(k)]) +
           "</text>\n";
    for (std::uint32_t c = 0; c < columns; ++c) {
      const double v =
          maxV > 0 ? grid[static_cast<std::size_t>(k)][c] / maxV : 0;
      // White (cold) to the palette's deep blue (hot).
      const int rr = static_cast<int>(255 - v * (255 - 0x2f));
      const int gg = static_cast<int>(255 - v * (255 - 0x4b));
      const int bb = static_cast<int>(255 - v * (255 - 0x7c));
      char fill[8];
      std::snprintf(fill, sizeof fill, "#%02x%02x%02x", rr, gg, bb);
      svg += "<rect x=\"" + fixed(chartLeft + c * cellW, 2) + "\" y=\"" +
             fixed(y, 2) + "\" width=\"" + fixed(cellW + 0.3, 2) +
             "\" height=\"" + std::to_string(options.rowHeight - 2) +
             "\" fill=\"" + fill + "\"/>\n";
    }
  }

  // Derived series strip: communication fraction (filled) and load
  // imbalance (line), both on a 0..1 scale.
  const double stripTop = topMargin + rows * options.rowHeight + 8;
  svg += "<text x=\"4\" y=\"" + fixed(stripTop + 10, 1) +
         "\" font-family=\"sans-serif\" font-size=\"9\">commfrac/"
         "imbalance</text>\n";
  std::string line;
  for (std::uint32_t c = 0; c < columns; ++c) {
    const std::uint32_t lo = store.bins() * c / columns;
    const std::uint32_t hi = store.bins() * (c + 1) / columns;
    double comm = 0;
    double imbalance = 0;
    for (std::uint32_t b = lo; b < hi; ++b) {
      comm = std::max(comm, store.commFraction(b));
      imbalance = std::max(imbalance, store.loadImbalance(b));
    }
    const double x = chartLeft + c * cellW;
    svg += "<rect x=\"" + fixed(x, 2) + "\" y=\"" +
           fixed(stripTop + (1 - comm) * (stripHeight - 8), 2) +
           "\" width=\"" + fixed(cellW + 0.3, 2) + "\" height=\"" +
           fixed(comm * (stripHeight - 8), 2) +
           "\" fill=\"#dd8452\" fill-opacity=\"0.7\"/>\n";
    line += (c == 0 ? "M" : "L") + fixed(x + cellW / 2, 1) + " " +
            fixed(stripTop + (1 - imbalance) * (stripHeight - 8), 1) + " ";
  }
  svg += "<path d=\"" + line +
         "\" stroke=\"#c44e52\" fill=\"none\" stroke-width=\"1.2\"/>\n";

  // Time axis (seconds since the run start).
  const double axisY = stripTop + stripHeight + 4;
  const double spanSec =
      static_cast<double>(store.totalEnd() - store.origin()) / 1e9;
  for (int i = 0; i <= 10; ++i) {
    const double frac = i / 10.0;
    const double x = chartLeft + frac * chartWidth;
    svg += "<line x1=\"" + fixed(x, 1) + "\" y1=\"" + fixed(axisY - 8, 1) +
           "\" x2=\"" + fixed(x, 1) + "\" y2=\"" + fixed(axisY - 2, 1) +
           "\" stroke=\"#888\"/>\n";
    svg += "<text x=\"" + fixed(x - 12, 1) + "\" y=\"" +
           fixed(axisY + 10, 1) +
           "\" font-family=\"sans-serif\" font-size=\"9\">" +
           fixed(frac * spanSec, 4) + "s</text>\n";
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace ute
