// Heatmap rendering of the time-resolved metrics store (src/analysis):
// time on the x axis, one row per MPI task, metric value as intensity.
// This is the aggregate-driven companion of the time-space diagrams —
// it draws a whole run from the binned sums, never from raw events, so
// it stays cheap no matter how large the trace behind the store was
// (and it renders identically from a local .utm file or a GetMetrics
// server reply, which carry the same bytes).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "analysis/metrics.h"
#include "viz/svg_render.h"

namespace ute {

/// What a heatmap cell (bin x task) shows.
enum class MetricKind {
  kBusy,          ///< Running time (ns)
  kMpi,           ///< MPI time (ns)
  kIo,            ///< I/O + page-fault time (ns)
  kMarker,        ///< user-marker time (ns)
  kIdle,          ///< derived idle time (ns)
  kCommFraction,  ///< MPI time / task wall time, 0..1
  kLateSender,    ///< late-sender wait time (ns)
  kSendBytes,     ///< message bytes sent
  kRecvBytes,     ///< message bytes received
};

const char* metricKindName(MetricKind kind);
/// Parses the CLI spelling ("busy", "mpi", "io", "marker", "idle",
/// "commfrac", "latesender", "sendbytes", "recvbytes").
std::optional<MetricKind> parseMetricKind(std::string_view name);

/// Per-bin value of a metric for one task, as the heatmaps see it.
double metricCell(const MetricsStore& store, MetricKind kind,
                  std::uint32_t bin, std::uint32_t task);

/// Terminal heatmap: one line per task, `columns` time columns, cell
/// intensity scaled 0-9 against the hottest cell; a footer reports the
/// scale and the run-wide derived series (peak communication fraction
/// and load imbalance).
std::string renderMetricsHeatmapAscii(const MetricsStore& store,
                                      MetricKind kind, int columns = 100);

/// Standalone SVG heatmap of the same grid, with a time axis in seconds
/// and the derived communication-fraction / load-imbalance series drawn
/// as a strip under the task rows.
std::string renderMetricsHeatmapSvg(const MetricsStore& store,
                                    MetricKind kind,
                                    const SvgOptions& options = {});

}  // namespace ute
