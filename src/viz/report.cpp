#include "viz/report.h"

#include "analysis/metrics.h"
#include "interval/file_reader.h"
#include "slog/slog_reader.h"
#include "stats/engine.h"
#include "support/text.h"
#include "viz/metrics_view.h"
#include "viz/svg_render.h"
#include "viz/timeline_model.h"

namespace ute {

namespace {

std::string escapeHtml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string tableHtml(const StatsTable& table) {
  std::string out = "<h3>" + escapeHtml(table.name) + "</h3>\n<table>\n<tr>";
  for (const std::string& h : table.headers) {
    out += "<th>" + escapeHtml(h) + "</th>";
  }
  out += "</tr>\n";
  // Large tables (e.g. 50-bin sweeps) are capped for readability.
  const std::size_t maxRows = 60;
  for (std::size_t i = 0; i < table.rows.size() && i < maxRows; ++i) {
    out += "<tr>";
    for (const std::string& cell : table.rows[i]) {
      out += "<td>" + escapeHtml(cell) + "</td>";
    }
    out += "</tr>\n";
  }
  if (table.rows.size() > maxRows) {
    out += "<tr><td colspan=\"" + std::to_string(table.headers.size()) +
           "\">… " + std::to_string(table.rows.size() - maxRows) +
           " more rows</td></tr>\n";
  }
  out += "</table>\n";
  return out;
}

}  // namespace

std::string buildHtmlReport(const std::string& mergedPath,
                            const Profile& profile,
                            const ReportOptions& options) {
  std::string html =
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>" +
      escapeHtml(options.title) +
      "</title>\n<style>\n"
      "body { font-family: sans-serif; margin: 2em; max-width: " +
      std::to_string(options.svgWidth + 60) +
      "px; }\n"
      "table { border-collapse: collapse; margin: 0.5em 0 1.5em; }\n"
      "th, td { border: 1px solid #ccc; padding: 2px 8px; font-size: 13px;"
      " text-align: right; }\n"
      "th { background: #f0f0f0; }\n"
      "h2 { border-bottom: 1px solid #ddd; padding-bottom: 4px; }\n"
      "</style>\n</head>\n<body>\n<h1>" +
      escapeHtml(options.title) + "</h1>\n";

  IntervalFileReader merged(mergedPath);
  merged.checkProfile(profile);
  const IntervalFileHeader& h = merged.header();
  html += "<p>" + escapeHtml(mergedPath) + " — " +
          withCommas(h.totalRecords) + " interval records, " +
          std::to_string(h.threadCount) + " threads, " +
          std::to_string(merged.markers().size()) + " markers, time span " +
          fixed(static_cast<double>(h.maxEnd - h.minStart) / 1e9, 3) +
          " s</p>\n";

  SvgOptions svg;
  svg.width = options.svgWidth;

  if (!options.slogPath.empty()) {
    SlogReader slog(options.slogPath);
    html += "<h2>Preview</h2>\n";
    html += renderPreviewSvg(slog.preview(), slog.states(), 50, svg);

    if (options.metricsBins > 0) {
      MetricsOptions metricsOptions;
      metricsOptions.bins = options.metricsBins;
      const MetricsStore metrics = computeMetrics(slog, metricsOptions);
      html += "<h2>Time-resolved metrics</h2>\n";
      for (MetricKind kind : {MetricKind::kBusy, MetricKind::kMpi,
                              MetricKind::kCommFraction}) {
        html += "<h3>" + std::string(metricKindName(kind)) + "</h3>\n" +
                renderMetricsHeatmapSvg(metrics, kind, svg);
      }
    }
  }

  const auto addView = [&](ViewKind kind, bool connect,
                           const std::string& heading) {
    IntervalFileReader reader(mergedPath);
    ViewOptions view;
    view.kind = kind;
    view.connectPieces = connect;
    const TimeSpaceModel model = buildView(reader, profile, view);
    html += "<h2>" + heading + "</h2>\n" + renderSvg(model, svg);
  };
  if (options.threadActivity) {
    addView(ViewKind::kThreadActivity, true, "Thread activity");
  }
  if (options.processorActivity) {
    addView(ViewKind::kProcessorActivity, false, "Processor activity");
  }
  if (options.stateActivity) {
    addView(ViewKind::kStateActivity, false, "State activity");
  }

  html += "<h2>Statistics</h2>\n";
  StatsEngine engine(profile);
  IntervalFileReader statsReader(mergedPath);
  const auto tables = engine.runProgram(
      options.statsProgram.empty() ? predefinedTablesProgram()
                                   : options.statsProgram,
      statsReader);
  for (const StatsTable& table : tables) html += tableHtml(table);

  html += "</body>\n</html>\n";
  return html;
}

}  // namespace ute
