// Self-contained HTML performance report: one page combining the run
// summary, the SLOG preview, the time-space diagrams, and the
// statistics tables — everything the paper's framework produces, in a
// form a user can mail around. Built entirely from the merged interval
// file (and optionally the SLOG file for the preview).
#pragma once

#include <optional>
#include <string>

#include "interval/profile.h"

namespace ute {

struct ReportOptions {
  std::string title = "UTE performance report";
  /// SLOG file for the preview section; empty = omit the preview.
  std::string slogPath;
  /// Which views to include.
  bool threadActivity = true;
  bool processorActivity = true;
  bool stateActivity = true;
  /// Statistics program; empty = the pre-defined tables.
  std::string statsProgram;
  /// Metrics heatmaps (needs slogPath); 0 bins = skip the section.
  std::uint32_t metricsBins = 240;
  int svgWidth = 1100;
};

/// Renders the report for a merged interval file. Throws on unreadable
/// inputs.
std::string buildHtmlReport(const std::string& mergedPath,
                            const Profile& profile,
                            const ReportOptions& options = {});

}  // namespace ute
