#include "viz/stats_viewer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/errors.h"
#include "support/text.h"

namespace ute {

namespace {

struct Grid {
  std::vector<std::string> xs;  ///< sorted distinct x values
  std::vector<std::string> ys;  ///< sorted distinct y values
  std::map<std::pair<std::size_t, std::size_t>, double> cells;  ///< (y,x)->v
  double maxValue = 0.0;
};

std::size_t columnIndex(const StatsTable& table, const std::string& name) {
  for (std::size_t i = 0; i < table.headers.size(); ++i) {
    if (table.headers[i] == name) return i;
  }
  throw UsageError("stats viewer: no column '" + name + "' in table " +
                   table.name);
}

/// Numeric-aware ordering so bin "10" sorts after bin "9".
bool valueLess(const std::string& a, const std::string& b) {
  try {
    return parseF64(a) < parseF64(b);
  } catch (const ParseError&) {
    return a < b;
  }
}

Grid buildGrid(const StatsTable& table, const std::string& xCol,
               const std::string& yCol, const std::string& valueCol) {
  const std::size_t xi = columnIndex(table, xCol);
  const std::size_t yi = columnIndex(table, yCol);
  const std::size_t vi = columnIndex(table, valueCol);

  std::set<std::string, decltype(&valueLess)> xSet(&valueLess);
  std::set<std::string, decltype(&valueLess)> ySet(&valueLess);
  for (const auto& row : table.rows) {
    xSet.insert(row[xi]);
    ySet.insert(row[yi]);
  }
  Grid grid;
  grid.xs.assign(xSet.begin(), xSet.end());
  grid.ys.assign(ySet.begin(), ySet.end());

  // When the x values are all small non-negative integers (e.g. time
  // bins), fill the gaps so empty bins render as blank columns instead
  // of silently disappearing.
  bool integers = !grid.xs.empty();
  long lo = 0, hi = 0;
  for (std::size_t i = 0; integers && i < grid.xs.size(); ++i) {
    try {
      const double v = parseF64(grid.xs[i]);
      if (v != std::floor(v) || v < 0 || v > 10000) {
        integers = false;
        break;
      }
      const long iv = static_cast<long>(v);
      if (i == 0) lo = hi = iv;
      lo = std::min(lo, iv);
      hi = std::max(hi, iv);
    } catch (const ParseError&) {
      integers = false;
    }
  }
  if (integers && hi - lo + 1 > static_cast<long>(grid.xs.size())) {
    grid.xs.clear();
    for (long v = lo; v <= hi; ++v) grid.xs.push_back(std::to_string(v));
  }

  const auto indexOf = [](const std::vector<std::string>& values,
                          const std::string& v) {
    return static_cast<std::size_t>(
        std::find(values.begin(), values.end(), v) - values.begin());
  };
  for (const auto& row : table.rows) {
    double v = 0.0;
    try {
      v = parseF64(row[vi]);
    } catch (const ParseError&) {
      continue;
    }
    grid.cells[{indexOf(grid.ys, row[yi]), indexOf(grid.xs, row[xi])}] = v;
    grid.maxValue = std::max(grid.maxValue, v);
  }
  if (grid.maxValue <= 0) grid.maxValue = 1.0;
  return grid;
}

}  // namespace

std::string renderStatsHeatmapSvg(const StatsTable& table,
                                  const std::string& xCol,
                                  const std::string& yCol,
                                  const std::string& valueCol, int width) {
  const Grid grid = buildGrid(table, xCol, yCol, valueCol);
  const int labelWidth = 70;
  const int cellH = 22;
  const int top = 28;
  const int height = top + static_cast<int>(grid.ys.size()) * cellH + 30;
  const double cellW =
      static_cast<double>(width - labelWidth - 10) /
      static_cast<double>(std::max<std::size_t>(grid.xs.size(), 1));

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width) + "\" height=\"" +
                    std::to_string(height) + "\">\n";
  svg += "<rect width=\"" + std::to_string(width) + "\" height=\"" +
         std::to_string(height) + "\" fill=\"#ffffff\"/>\n";
  svg += "<text x=\"8\" y=\"18\" font-family=\"sans-serif\" font-size=\"13\" "
         "font-weight=\"bold\">" + table.name + ": " + valueCol + " by (" +
         xCol + ", " + yCol + ")</text>\n";

  for (std::size_t y = 0; y < grid.ys.size(); ++y) {
    svg += "<text x=\"4\" y=\"" +
           fixed(top + y * cellH + cellH * 0.7, 1) +
           "\" font-family=\"sans-serif\" font-size=\"10\">" + yCol + "=" +
           grid.ys[y] + "</text>\n";
    for (std::size_t x = 0; x < grid.xs.size(); ++x) {
      const auto it = grid.cells.find({y, x});
      const double v = it == grid.cells.end() ? 0.0 : it->second;
      const int shade =
          255 - static_cast<int>(std::round(v / grid.maxValue * 200.0));
      char color[8];
      std::snprintf(color, sizeof color, "#%02x%02xff", shade, shade);
      svg += "<rect x=\"" + fixed(labelWidth + x * cellW, 1) + "\" y=\"" +
             std::to_string(top + y * cellH) + "\" width=\"" +
             fixed(std::max(cellW - 1, 1.0), 1) + "\" height=\"" +
             std::to_string(cellH - 2) + "\" fill=\"" + color + "\"/>\n";
    }
  }
  svg += "<text x=\"" + std::to_string(labelWidth) + "\" y=\"" +
         std::to_string(height - 8) +
         "\" font-family=\"sans-serif\" font-size=\"10\">" + xCol + " →  (max " +
         fixed(grid.maxValue, 3) + ")</text>\n";
  svg += "</svg>\n";
  return svg;
}

std::string renderStatsHeatmapAscii(const StatsTable& table,
                                    const std::string& xCol,
                                    const std::string& yCol,
                                    const std::string& valueCol) {
  const Grid grid = buildGrid(table, xCol, yCol, valueCol);
  std::size_t labelWidth = 0;
  for (const auto& y : grid.ys) labelWidth = std::max(labelWidth, y.size());

  std::string out = table.name + ": " + valueCol + " by (" + xCol + ", " +
                    yCol + ")\n";
  for (std::size_t y = 0; y < grid.ys.size(); ++y) {
    out += grid.ys[y];
    out.append(labelWidth - grid.ys[y].size(), ' ');
    out += " |";
    for (std::size_t x = 0; x < grid.xs.size(); ++x) {
      const auto it = grid.cells.find({y, x});
      const double v = it == grid.cells.end() ? 0.0 : it->second;
      if (v <= 0) {
        out += ' ';
      } else {
        out += static_cast<char>(
            '0' + std::min(9, static_cast<int>(v / grid.maxValue * 9.0) + 1));
      }
    }
    out += "|\n";
  }
  return out;
}

}  // namespace ute
