// Statistics viewer (Section 3.2, Figure 6): renders the statistics
// utility's tables graphically. The paper's figure shows, per node, the
// summed duration of interesting intervals across 50 time bins of the
// run; the heatmap/stacked-bars here carry the same information.
#pragma once

#include <string>

#include "stats/engine.h"

namespace ute {

/// Renders a (xCol, yCol) -> valueCol table as an SVG heatmap: one row
/// per distinct yCol value, one column per distinct xCol value, cell
/// intensity proportional to valueCol.
std::string renderStatsHeatmapSvg(const StatsTable& table,
                                  const std::string& xCol,
                                  const std::string& yCol,
                                  const std::string& valueCol,
                                  int width = 1000);

/// Text version for terminals and tests (0-9 intensities).
std::string renderStatsHeatmapAscii(const StatsTable& table,
                                    const std::string& xCol,
                                    const std::string& yCol,
                                    const std::string& valueCol);

}  // namespace ute
