#include "viz/svg_render.h"

#include <algorithm>
#include <cmath>

#include "slog/preview.h"
#include "support/text.h"

namespace ute {

namespace {

std::string rgbHex(std::uint32_t rgb) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%06x", rgb & 0xffffff);
  return buf;
}

std::string escapeXml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void rect(std::string& svg, double x, double y, double w, double h,
          const std::string& fill, const std::string& extra = "") {
  svg += "<rect x=\"" + fixed(x, 2) + "\" y=\"" + fixed(y, 2) + "\" width=\"" +
         fixed(std::max(w, 0.5), 2) + "\" height=\"" + fixed(h, 2) +
         "\" fill=\"" + fill + "\"" + extra + "/>\n";
}

void text(std::string& svg, double x, double y, const std::string& s,
          int size = 11, const std::string& extra = "") {
  svg += "<text x=\"" + fixed(x, 1) + "\" y=\"" + fixed(y, 1) +
         "\" font-family=\"sans-serif\" font-size=\"" + std::to_string(size) +
         "\"" + extra + ">" + escapeXml(s) + "</text>\n";
}

}  // namespace

std::string renderSvg(const TimeSpaceModel& model, const SvgOptions& options) {
  const int chartLeft = options.labelWidth;
  const int chartWidth = options.width - chartLeft - 10;
  const int topMargin = 28;
  const int axisHeight = 24;
  const int legendRows =
      options.legend
          ? static_cast<int>((model.legend.size() + 4) / 5)
          : 0;
  const int legendHeight = legendRows * 18 + (legendRows > 0 ? 8 : 0);
  const int height = topMargin +
                     static_cast<int>(model.rows.size()) * options.rowHeight +
                     axisHeight + legendHeight + 8;

  const double tMin = static_cast<double>(model.minTime);
  const double tMax = static_cast<double>(std::max(model.maxTime,
                                                   model.minTime + 1));
  const auto xOf = [&](Tick t) {
    return chartLeft + (static_cast<double>(t) - tMin) / (tMax - tMin) *
                           chartWidth;
  };

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(options.width) + "\" height=\"" +
                    std::to_string(height) + "\">\n";
  rect(svg, 0, 0, options.width, height, "#ffffff");
  text(svg, 8, 18, model.title + " (" + viewKindName(model.kind) + ")", 13,
       " font-weight=\"bold\"");

  // Row backgrounds, labels and segments.
  for (std::size_t r = 0; r < model.rows.size(); ++r) {
    const double y = topMargin + static_cast<double>(r) * options.rowHeight;
    rect(svg, chartLeft, y, chartWidth, options.rowHeight - 2,
         r % 2 == 0 ? "#f4f4f4" : "#ececec");
    text(svg, 4, y + options.rowHeight * 0.7, model.rows[r].label, 10);
    for (const VizSegment& seg : model.rows[r].segments) {
      const double x0 = xOf(seg.start);
      const double x1 = xOf(seg.end);
      const double inset = std::min<double>(seg.depth * 3.0,
                                            options.rowHeight / 3.0);
      const auto legendIt = model.legend.find(seg.colorKey);
      const std::uint32_t rgb =
          legendIt != model.legend.end() ? legendIt->second.second : 0x888888;
      rect(svg, x0, y + 1 + inset, x1 - x0, options.rowHeight - 4 - 2 * inset,
           rgbHex(rgb),
           seg.pseudo ? " stroke=\"#333\" stroke-dasharray=\"2,2\"" : "");
    }
  }

  // Message arrows.
  for (const VizArrow& a : model.arrows) {
    const double x0 = xOf(a.fromTime);
    const double x1 = xOf(a.toTime);
    const double y0 = topMargin + (a.fromRow + 0.5) * options.rowHeight;
    const double y1 = topMargin + (a.toRow + 0.5) * options.rowHeight;
    svg += "<line x1=\"" + fixed(x0, 1) + "\" y1=\"" + fixed(y0, 1) +
           "\" x2=\"" + fixed(x1, 1) + "\" y2=\"" + fixed(y1, 1) +
           "\" stroke=\"#222\" stroke-width=\"1\"/>\n";
    svg += "<circle cx=\"" + fixed(x1, 1) + "\" cy=\"" + fixed(y1, 1) +
           "\" r=\"2.2\" fill=\"#222\"/>\n";
  }

  // Time axis (seconds).
  const double axisY =
      topMargin + static_cast<double>(model.rows.size()) * options.rowHeight +
      14;
  for (int i = 0; i <= 10; ++i) {
    const double frac = i / 10.0;
    const double x = chartLeft + frac * chartWidth;
    const double tSec = (tMin + frac * (tMax - tMin)) / 1e9;
    svg += "<line x1=\"" + fixed(x, 1) + "\" y1=\"" + fixed(axisY - 10, 1) +
           "\" x2=\"" + fixed(x, 1) + "\" y2=\"" + fixed(axisY - 4, 1) +
           "\" stroke=\"#666\"/>\n";
    text(svg, x - 12, axisY + 8, fixed(tSec, 3) + "s", 9);
  }

  // Legend.
  if (options.legend) {
    double lx = chartLeft;
    double ly = axisY + 24;
    int col = 0;
    for (const auto& [key, entry] : model.legend) {
      rect(svg, lx, ly - 9, 10, 10, rgbHex(entry.second));
      text(svg, lx + 14, ly, entry.first, 10);
      lx += chartWidth / 5.0;
      if (++col % 5 == 0) {
        lx = chartLeft;
        ly += 18;
      }
    }
  }

  svg += "</svg>\n";
  return svg;
}

std::string renderPreviewSvg(const SlogPreview& preview,
                             const std::vector<SlogStateDef>& states,
                             std::uint32_t bins, const SvgOptions& options) {
  const SlogPreview p = rebinPreview(preview, bins);
  const int chartLeft = options.labelWidth;
  const int chartWidth = options.width - chartLeft - 10;
  const int chartHeight = 180;
  const int legendRows = static_cast<int>((states.size() + 4) / 5);
  const int height = 28 + chartHeight + 30 + legendRows * 18 + 8;

  // Column totals scale the stacked bars.
  double maxTotal = 1.0;
  for (std::uint32_t b = 0; b < p.bins; ++b) {
    double total = 0;
    for (const auto& row : p.perStateBinTime) total += row[b];
    maxTotal = std::max(maxTotal, total);
  }

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(options.width) + "\" height=\"" +
                    std::to_string(height) + "\">\n";
  rect(svg, 0, 0, options.width, height, "#ffffff");
  text(svg, 8, 18, "preview: state time per bin", 13, " font-weight=\"bold\"");

  const double binW = static_cast<double>(chartWidth) / p.bins;
  for (std::uint32_t b = 0; b < p.bins; ++b) {
    double y = 28.0 + chartHeight;
    for (std::size_t s = 0; s < p.perStateBinTime.size(); ++s) {
      const double v = p.perStateBinTime[s][b];
      if (v <= 0) continue;
      const double h = v / maxTotal * chartHeight;
      y -= h;
      rect(svg, chartLeft + b * binW, y, binW - 0.5, h,
           rgbHex(states[s].rgb));
    }
  }

  const double axisY = 28.0 + chartHeight + 14;
  const double totalSec =
      static_cast<double>(p.binWidth) * p.bins / 1e9;
  for (int i = 0; i <= 10; ++i) {
    const double frac = i / 10.0;
    text(svg, chartLeft + frac * chartWidth - 12, axisY + 6,
         fixed(frac * totalSec, 1) + "s", 9);
  }

  double lx = chartLeft;
  double ly = axisY + 28;
  int col = 0;
  for (const SlogStateDef& s : states) {
    rect(svg, lx, ly - 9, 10, 10, rgbHex(s.rgb));
    text(svg, lx + 14, ly, s.name, 10);
    lx += chartWidth / 5.0;
    if (++col % 5 == 0) {
      lx = chartLeft;
      ly += 18;
    }
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace ute
