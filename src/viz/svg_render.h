// Self-contained SVG rendering of time-space diagrams and previews — the
// Jumpshot display surface of this reproduction (the data model is
// identical; the widget toolkit is SVG instead of Java Swing).
#pragma once

#include <string>

#include "slog/slog_format.h"
#include "viz/timeline_model.h"

namespace ute {

struct SvgOptions {
  int width = 1200;
  int rowHeight = 22;
  int labelWidth = 90;
  bool legend = true;
};

/// Renders a time-space diagram (any of the four views, or a SLOG frame
/// view) as a standalone SVG document.
std::string renderSvg(const TimeSpaceModel& model, const SvgOptions& options = {});

/// Renders the whole-run preview (Figure 7's summary window): stacked
/// per-state time histograms over the run, rebinned to `bins` columns.
std::string renderPreviewSvg(const SlogPreview& preview,
                             const std::vector<SlogStateDef>& states,
                             std::uint32_t bins = 50,
                             const SvgOptions& options = {});

}  // namespace ute
