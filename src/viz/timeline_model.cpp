#include "viz/timeline_model.h"

#include <algorithm>
#include <memory>

#include "interval/standard_profile.h"
#include "slog/slog_format.h"
#include "support/errors.h"

namespace ute {

namespace {

constexpr std::uint32_t kVizPalette[] = {
    0x4c72b0, 0xdd8452, 0x55a868, 0xc44e52, 0x8172b3, 0x937860,
    0xda8bc3, 0x8c8c8c, 0xccb974, 0x64b5cd, 0x2f4b7c, 0xffa600,
    0x7a5195, 0xef5675, 0x488f31, 0xde425b,
};

std::uint32_t rgbFor(std::uint32_t colorKey) {
  return kVizPalette[colorKey % std::size(kVizPalette)];
}

/// Sortable timeline key: (node, id).
using RowKey = std::pair<NodeId, std::int32_t>;

struct ModelBuilder {
  TimeSpaceModel model;
  std::map<RowKey, std::size_t> rowIndex;

  std::size_t row(RowKey key, const std::string& label) {
    const auto it = rowIndex.find(key);
    if (it != rowIndex.end()) return it->second;
    VizTimeline t;
    t.label = label;
    t.node = key.first;
    t.id = key.second;
    rowIndex.emplace(key, model.rows.size());
    model.rows.push_back(std::move(t));
    return model.rows.size() - 1;
  }

  void legend(std::uint32_t colorKey, const std::string& name) {
    model.legend.try_emplace(colorKey, name, rgbFor(colorKey));
  }
};

std::string threadLabel(NodeId node, std::int32_t ltid) {
  return "n" + std::to_string(node) + ".t" + std::to_string(ltid);
}
std::string cpuLabel(NodeId node, std::int32_t cpu) {
  return "n" + std::to_string(node) + ".cpu" + std::to_string(cpu);
}

}  // namespace

std::string viewKindName(ViewKind kind) {
  switch (kind) {
    case ViewKind::kThreadActivity: return "thread-activity";
    case ViewKind::kProcessorActivity: return "processor-activity";
    case ViewKind::kThreadProcessor: return "thread-processor";
    case ViewKind::kProcessorThread: return "processor-thread";
    case ViewKind::kStateActivity: return "state-activity";
  }
  return "?";
}

TimeSpaceModel buildView(IntervalFileReader& file, const Profile& profile,
                         const ViewOptions& options) {
  ModelBuilder b;
  b.model.kind = options.kind;
  b.model.title = viewKindName(options.kind);
  const Tick fileMin = file.header().minStart;
  const Tick fileMax = file.header().maxEnd;
  b.model.minTime = options.window ? options.window->first : fileMin;
  b.model.maxTime = options.window ? options.window->second : fileMax;

  const bool threadRows = options.kind == ViewKind::kThreadActivity ||
                          options.kind == ViewKind::kThreadProcessor;

  // Identify system threads and pre-create rows so idle threads and
  // processors still show as (empty) timelines.
  std::map<RowKey, bool> isSystemThread;
  for (const ThreadEntry& t : file.threads()) {
    isSystemThread[{t.node, t.ltid}] = t.type == ThreadType::kSystem;
    if (threadRows &&
        (options.includeSystemThreads || t.type != ThreadType::kSystem)) {
      b.row({t.node, t.ltid}, threadLabel(t.node, t.ltid));
    }
  }
  if (!threadRows) {
    for (const auto& [node, count] : options.cpuCountHint) {
      for (int c = 0; c < count; ++c) b.row({node, c}, cpuLabel(node, c));
    }
  }

  const std::uint64_t mask = file.header().fieldSelectionMask;
  std::map<std::pair<IntervalType, std::string>,
           std::unique_ptr<FieldAccessor>>
      accessors;
  const auto accessor = [&](IntervalType type,
                            const char* name) -> const FieldAccessor& {
    const auto key = std::make_pair(type, std::string(name));
    auto it = accessors.find(key);
    if (it == accessors.end()) {
      it = accessors
               .emplace(key, std::make_unique<FieldAccessor>(profile, type,
                                                             mask, name))
               .first;
    }
    return *it->second;
  };

  const auto stateIdOf = [&](const RecordView& rec) -> std::uint32_t {
    if (rec.eventType() == EventType::kUserMarker) {
      const auto id = accessor(rec.intervalType, kFieldMarkerId).get(rec);
      return kMarkerStateBase + static_cast<std::uint32_t>(id.value_or(0));
    }
    return static_cast<std::uint32_t>(rec.eventType());
  };
  const auto stateNameOf = [&](const RecordView& rec) -> std::string {
    if (rec.eventType() == EventType::kUserMarker) {
      const auto id = accessor(rec.intervalType, kFieldMarkerId).get(rec);
      const auto& markers = file.markers();
      const auto it = markers.find(static_cast<std::uint32_t>(id.value_or(0)));
      if (it != markers.end()) return it->second;
      return "marker" + std::to_string(id.value_or(0));
    }
    const RecordSpec* spec = profile.find(rec.intervalType);
    return spec != nullptr ? profile.recordName(*spec)
                           : eventTypeName(rec.eventType());
  };

  // Connected thread-activity view: per-thread stacks of open states.
  struct OpenEntry {
    std::uint32_t stateId = 0;
    Tick start = 0;
  };
  std::map<RowKey, std::vector<OpenEntry>> openStacks;

  // Arrow matching state (sequence numbers).
  struct PendingSend {
    RowKey key;
    Tick time = 0;
    std::uint32_t bytes = 0;
  };
  std::map<std::uint32_t, PendingSend> pendingSends;
  struct RawArrow {
    RowKey from;
    RowKey to;
    Tick t0 = 0, t1 = 0;
    std::uint32_t bytes = 0;
  };
  std::vector<RawArrow> rawArrows;

  auto stream = file.records();
  RecordView rec;
  while (stream.next(rec)) {
    if (rec.eventType() == kClockSyncState) continue;
    const RowKey threadKey{rec.node, rec.thread};
    if (threadRows && !options.includeSystemThreads) {
      const auto sysIt = isSystemThread.find(threadKey);
      if (sysIt != isSystemThread.end() && sysIt->second) continue;
    }
    if (options.window &&
        (rec.end() < options.window->first ||
         rec.start > options.window->second)) {
      // Still track nesting so connected segments spanning the window
      // open/close correctly.
      if (options.kind == ViewKind::kThreadActivity && options.connectPieces) {
        if (rec.bebits() == Bebits::kBegin) {
          openStacks[threadKey].push_back({stateIdOf(rec), rec.start});
        } else if (rec.bebits() == Bebits::kEnd) {
          auto& stack = openStacks[threadKey];
          if (!stack.empty()) stack.pop_back();
        }
      }
      continue;
    }

    const Tick clipStart =
        options.window ? std::max(rec.start, options.window->first)
                       : rec.start;
    const Tick clipEnd =
        options.window ? std::min(rec.end(), options.window->second)
                       : rec.end();

    switch (options.kind) {
      case ViewKind::kThreadActivity: {
        const std::uint32_t stateId = stateIdOf(rec);
        if (options.connectPieces) {
          auto& stack = openStacks[threadKey];
          const std::size_t rowIdx =
              b.row(threadKey, threadLabel(rec.node, rec.thread));
          if (rec.bebits() == Bebits::kBegin) {
            stack.push_back({stateId, clipStart});
          } else if (rec.bebits() == Bebits::kEnd) {
            Tick segStart = b.model.minTime;
            if (!stack.empty()) {
              segStart = stack.back().start;
              stack.pop_back();
            }
            b.legend(stateId, stateNameOf(rec));
            b.model.rows[rowIdx].segments.push_back(
                {stateId, segStart, clipEnd,
                 static_cast<std::uint8_t>(stack.size()), false});
          } else if (rec.bebits() == Bebits::kComplete) {
            b.legend(stateId, stateNameOf(rec));
            b.model.rows[rowIdx].segments.push_back(
                {stateId, clipStart, clipEnd,
                 static_cast<std::uint8_t>(stack.size()), false});
          }
          // Continuation pieces carry no new extent in connected mode.
        } else {
          if (rec.dura == 0 && rec.bebits() == Bebits::kContinuation) {
            break;  // frame-start pseudo-interval; pieces are all present
          }
          b.legend(stateId, stateNameOf(rec));
          const std::size_t rowIdx =
              b.row(threadKey, threadLabel(rec.node, rec.thread));
          b.model.rows[rowIdx].segments.push_back(
              {stateId, clipStart, clipEnd, 0, false});
        }
        break;
      }
      case ViewKind::kProcessorActivity: {
        if (rec.dura == 0 && rec.bebits() == Bebits::kContinuation) break;
        const std::uint32_t stateId = stateIdOf(rec);
        b.legend(stateId, stateNameOf(rec));
        const std::size_t rowIdx =
            b.row({rec.node, rec.cpu}, cpuLabel(rec.node, rec.cpu));
        b.model.rows[rowIdx].segments.push_back(
            {stateId, clipStart, clipEnd, 0, false});
        break;
      }
      case ViewKind::kThreadProcessor: {
        if (rec.dura == 0 && rec.bebits() == Bebits::kContinuation) break;
        const auto colorKey = static_cast<std::uint32_t>(
            rec.node * 64 + rec.cpu);
        b.legend(colorKey, cpuLabel(rec.node, rec.cpu));
        const std::size_t rowIdx =
            b.row(threadKey, threadLabel(rec.node, rec.thread));
        b.model.rows[rowIdx].segments.push_back(
            {colorKey, clipStart, clipEnd, 0, false});
        break;
      }
      case ViewKind::kProcessorThread: {
        if (rec.dura == 0 && rec.bebits() == Bebits::kContinuation) break;
        const auto colorKey = static_cast<std::uint32_t>(
            rec.node * kMaxThreadsPerNode + rec.thread);
        b.legend(colorKey, threadLabel(rec.node, rec.thread));
        const std::size_t rowIdx =
            b.row({rec.node, rec.cpu}, cpuLabel(rec.node, rec.cpu));
        b.model.rows[rowIdx].segments.push_back(
            {colorKey, clipStart, clipEnd, 0, false});
        break;
      }
      case ViewKind::kStateActivity: {
        if (rec.dura == 0 && rec.bebits() == Bebits::kContinuation) break;
        // One row per state; pieces of every thread land on that row,
        // colored by the thread they belong to.
        const std::uint32_t stateId = stateIdOf(rec);
        const auto colorKey = static_cast<std::uint32_t>(
            rec.node * kMaxThreadsPerNode + rec.thread);
        b.legend(colorKey, threadLabel(rec.node, rec.thread));
        const std::size_t rowIdx =
            b.row({-1, static_cast<std::int32_t>(stateId)},
                  stateNameOf(rec));
        b.model.rows[rowIdx].segments.push_back(
            {colorKey, clipStart, clipEnd, 0, false});
        break;
      }
    }

    // Arrow matching (thread views only; drawn between thread rows).
    if (options.arrows && threadRows) {
      const EventType event = rec.eventType();
      const Bebits bebits = rec.bebits();
      if ((event == EventType::kMpiSend || event == EventType::kMpiIsend) &&
          isFirstPiece(bebits)) {
        const auto seqno = accessor(rec.intervalType, kFieldSeqNo).get(rec);
        const auto bytes =
            accessor(rec.intervalType, kFieldMsgSizeSent).get(rec);
        if (seqno && *seqno > 0) {
          pendingSends[static_cast<std::uint32_t>(*seqno)] = {
              threadKey, rec.start,
              static_cast<std::uint32_t>(bytes.value_or(0))};
        }
      } else if ((event == EventType::kMpiRecv ||
                  event == EventType::kMpiWait) &&
                 isLastPiece(bebits)) {
        const auto seqno = accessor(rec.intervalType, kFieldSeqNo).get(rec);
        if (seqno && *seqno > 0) {
          const auto it =
              pendingSends.find(static_cast<std::uint32_t>(*seqno));
          if (it != pendingSends.end()) {
            rawArrows.push_back({it->second.key, threadKey, it->second.time,
                                 rec.end(), it->second.bytes});
            pendingSends.erase(it);
          }
        }
      }
    }
  }

  // Close connected states still open at the right edge.
  if (options.kind == ViewKind::kThreadActivity && options.connectPieces) {
    for (auto& [key, stack] : openStacks) {
      if (stack.empty()) continue;
      const std::size_t rowIdx =
          b.row(key, threadLabel(key.first, key.second));
      for (std::size_t depth = 0; depth < stack.size(); ++depth) {
        b.model.rows[rowIdx].segments.push_back(
            {stack[depth].stateId, std::max(stack[depth].start,
                                            b.model.minTime),
             b.model.maxTime, static_cast<std::uint8_t>(depth), false});
      }
    }
  }

  for (const RawArrow& a : rawArrows) {
    const auto fromIt = b.rowIndex.find(a.from);
    const auto toIt = b.rowIndex.find(a.to);
    if (fromIt == b.rowIndex.end() || toIt == b.rowIndex.end()) continue;
    b.model.arrows.push_back(
        {fromIt->second, toIt->second, a.t0, a.t1, a.bytes});
  }

  // Draw outer (shallower) segments first within each row.
  for (VizTimeline& row : b.model.rows) {
    std::stable_sort(row.segments.begin(), row.segments.end(),
                     [](const VizSegment& x, const VizSegment& y) {
                       return x.depth < y.depth;
                     });
  }
  return std::move(b.model);
}

namespace {

/// Shared assembly for frame and window views: consumes the records of
/// frames [firstFrame, lastFrame] and renders the states of the time
/// range [t0, t1], using the first frame's pseudo-intervals for states
/// crossing in from the left.
TimeSpaceModel assembleSlogView(const SlogReader& slog, std::size_t firstFrame,
                                std::size_t lastFrame, Tick t0, Tick t1,
                                std::string title);

}  // namespace

TimeSpaceModel buildSlogFrameView(const SlogReader& slog, std::size_t frameIdx) {
  const SlogFrameIndexEntry& entry = slog.frameIndex().at(frameIdx);
  return assembleSlogView(slog, frameIdx, frameIdx, entry.timeStart,
                          entry.timeEnd,
                          "frame " + std::to_string(frameIdx));
}

TimeSpaceModel buildSlogWindowView(const SlogReader& slog, Tick t0, Tick t1) {
  if (t1 <= t0) throw UsageError("window end must follow window start");
  const auto& index = slog.frameIndex();
  if (index.empty()) throw UsageError("SLOG file has no frames");
  // Clamp the window to the run and locate the frame range it spans.
  t0 = std::max(t0, slog.totalStart());
  t1 = std::min(t1, slog.totalEnd());
  std::size_t first = index.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    // Half-open selection: a frame that merely touches the window edge
    // contributes nothing (states spanning in are restated by the first
    // selected frame's pseudo-intervals).
    if (index[i].timeEnd <= t0 || index[i].timeStart >= t1) continue;
    first = std::min(first, i);
    last = std::max(last, i);
  }
  if (first > last) throw UsageError("window is outside the run");
  return assembleSlogView(slog, first, last, t0, t1, "window view");
}

namespace {

TimeSpaceModel assembleSlogView(const SlogReader& slog, std::size_t firstFrame,
                                std::size_t lastFrame, Tick t0, Tick t1,
                                std::string title) {
  ModelBuilder b;
  b.model.kind = ViewKind::kThreadActivity;
  b.model.title = std::move(title);
  b.model.minTime = t0;
  b.model.maxTime = t1;

  for (const ThreadEntry& t : slog.threads()) {
    if (t.type == ThreadType::kSystem) continue;
    b.row({t.node, t.ltid}, threadLabel(t.node, t.ltid));
  }

  // Connected assembly: pseudo continuations restate states open at the
  // first frame's start; begin/complete/end pieces within the frames do
  // the rest. Segments are clipped to the requested window.
  struct OpenEntry {
    std::uint32_t stateId = 0;
    Tick start = 0;
    bool pseudo = false;
  };
  std::map<RowKey, std::vector<OpenEntry>> stacks;
  const auto clip = [&](Tick v) { return std::clamp(v, t0, t1); };

  for (std::size_t f = firstFrame; f <= lastFrame; ++f) {
    const SlogFramePtr frame = slog.readFrame(f);
    for (const SlogInterval& r : frame->intervals) {
      // Later frames restate their own pseudo-intervals; only the first
      // frame's matter (the stacks carry the rest forward).
      if (r.pseudo && f != firstFrame) continue;
      const RowKey key{r.node, r.thread};
      const std::size_t rowIdx = b.row(key, threadLabel(r.node, r.thread));
      auto& stack = stacks[key];
      const auto bebits = static_cast<Bebits>(r.bebits);
      b.legend(r.stateId, slog.stateName(r.stateId));
      if (r.pseudo) {
        stack.push_back({r.stateId, t0, true});
      } else if (bebits == Bebits::kBegin) {
        stack.push_back({r.stateId, r.start, false});
      } else if (bebits == Bebits::kEnd) {
        Tick segStart = t0;
        bool pseudo = false;
        if (!stack.empty()) {
          segStart = stack.back().start;
          pseudo = stack.back().pseudo;
          stack.pop_back();
        }
        if (r.end() >= t0 && segStart <= t1) {
          b.model.rows[rowIdx].segments.push_back(
              {r.stateId, clip(segStart), clip(r.end()),
               static_cast<std::uint8_t>(stack.size()), pseudo});
        }
      } else if (bebits == Bebits::kComplete) {
        if (r.end() >= t0 && r.start <= t1) {
          b.model.rows[rowIdx].segments.push_back(
              {r.stateId, clip(r.start), clip(r.end()),
               static_cast<std::uint8_t>(stack.size()), false});
        }
      }
    }
    for (const SlogArrow& a : frame->arrows) {
      const auto fromIt = b.rowIndex.find({a.srcNode, a.srcThread});
      const auto toIt = b.rowIndex.find({a.dstNode, a.dstThread});
      if (fromIt == b.rowIndex.end() || toIt == b.rowIndex.end()) continue;
      if (a.recvTime < t0 || a.sendTime > t1) continue;
      b.model.arrows.push_back(
          {fromIt->second, toIt->second, clip(a.sendTime), clip(a.recvTime),
           a.bytes});
    }
  }
  // States still open at the right edge extend to it.
  for (auto& [key, stack] : stacks) {
    const std::size_t rowIdx = b.row(key, threadLabel(key.first, key.second));
    for (std::size_t depth = 0; depth < stack.size(); ++depth) {
      if (stack[depth].start > t1) continue;
      b.model.rows[rowIdx].segments.push_back(
          {stack[depth].stateId, clip(stack[depth].start), t1,
           static_cast<std::uint8_t>(depth), stack[depth].pseudo});
    }
  }
  for (VizTimeline& row : b.model.rows) {
    std::stable_sort(row.segments.begin(), row.segments.end(),
                     [](const VizSegment& x, const VizSegment& y) {
                       return x.depth < y.depth;
                     });
  }
  return std::move(b.model);
}

}  // namespace

}  // namespace ute
