// Time-space diagram models (Section 1.2).
//
// Because every interval record carries a node ID, a processor ID, a
// thread ID and a record type, multiple time-space diagrams can be
// derived from the same interval file:
//   - thread-activity:    one timeline per thread, colored by state
//                         (pieces as stored, or connected/nested states)
//   - processor-activity: one timeline per processor, colored by state
//                         (necessarily pieces: threads migrate)
//   - thread-processor:   one timeline per thread, colored by processor
//   - processor-thread:   one timeline per processor, colored by thread
//   - state-activity:     one timeline per record type, colored by thread
// plus the frame view built from a SLOG frame (preview + frame display,
// Figure 7). The renderers (SVG, ASCII) consume the same model.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "interval/file_reader.h"
#include "interval/profile.h"
#include "slog/slog_reader.h"
#include "support/types.h"

namespace ute {

enum class ViewKind {
  kThreadActivity,
  kProcessorActivity,
  kThreadProcessor,
  kProcessorThread,
  /// Record type as the y-axis discriminator (Section 1.2's "other
  /// possible views"): one timeline per state, colored by thread.
  kStateActivity,
};

std::string viewKindName(ViewKind kind);

/// One colored bar on a timeline. `colorKey` selects the legend entry:
/// a state id for activity views, a processor id for thread-processor,
/// a thread id for processor-thread.
struct VizSegment {
  std::uint32_t colorKey = 0;
  Tick start = 0;
  Tick end = 0;
  std::uint8_t depth = 0;  ///< nesting depth (connected thread view)
  bool pseudo = false;
};

struct VizTimeline {
  std::string label;
  NodeId node = 0;
  std::int32_t id = 0;  ///< thread or cpu, depending on the view
  std::vector<VizSegment> segments;
};

struct VizArrow {
  std::size_t fromRow = 0;
  std::size_t toRow = 0;
  Tick fromTime = 0;
  Tick toTime = 0;
  std::uint32_t bytes = 0;
};

struct TimeSpaceModel {
  std::string title;
  ViewKind kind = ViewKind::kThreadActivity;
  Tick minTime = 0;
  Tick maxTime = 0;
  std::vector<VizTimeline> rows;
  std::vector<VizArrow> arrows;
  /// Legend: colorKey -> (name, rgb).
  std::map<std::uint32_t, std::pair<std::string, std::uint32_t>> legend;
};

struct ViewOptions {
  ViewKind kind = ViewKind::kThreadActivity;
  /// Thread-activity only: connect begin/continuation/end pieces into one
  /// nested state bar instead of drawing the stored pieces.
  bool connectPieces = false;
  /// Restrict to a time window (model still labels full-file extent).
  std::optional<std::pair<Tick, Tick>> window;
  /// Show system threads (the clock daemon) in thread views.
  bool includeSystemThreads = false;
  /// Draw message arrows (thread views).
  bool arrows = true;
  /// Processor views: known CPU counts per node, so never-used (fully
  /// idle) processors still get a timeline.
  std::map<NodeId, int> cpuCountHint;
};

/// Builds a time-space diagram from a (typically merged) interval file.
TimeSpaceModel buildView(IntervalFileReader& file, const Profile& profile,
                         const ViewOptions& options);

/// Builds a thread-activity view of one SLOG frame — the Figure 7 "frame
/// display": pseudo-intervals complete the picture at the frame edges
/// without reading any other part of the file.
TimeSpaceModel buildSlogFrameView(const SlogReader& slog, std::size_t frameIdx);

/// Builds a thread-activity view of an arbitrary time window, reading
/// only the frames the window intersects (located via the frame index).
/// The first frame's pseudo-intervals complete states entering the
/// window; segments are clipped to [t0, t1].
TimeSpaceModel buildSlogWindowView(const SlogReader& slog, Tick t0, Tick t1);

}  // namespace ute
