#include "workloads/pipeline.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>

#include <unistd.h>

#include "interval/standard_profile.h"
#include "mpisim/mpi_runtime.h"
#include "sim/simulation.h"

namespace ute {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::string makeScratchDir(const std::string& hint) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "ute";
  fs::create_directories(base);
  // One directory per hint *and process*: concurrently running test
  // processes (ctest -j) must never wipe each other's files. Within one
  // process the path is deterministic and wiped on reuse. Directories
  // left by processes that have since exited are reclaimed here so the
  // temp space stays bounded across runs.
  const std::string prefix = hint + ".";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(base, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const long pid = std::strtol(name.c_str() + prefix.size(), nullptr, 10);
    if (pid > 0 && pid != static_cast<long>(getpid()) &&
        kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH) {
      std::error_code ignored;
      fs::remove_all(entry.path(), ignored);
    }
  }
  const fs::path dir = base / (prefix + std::to_string(getpid()));
  std::error_code ignored;
  fs::remove_all(dir, ignored);
  fs::create_directories(dir);
  return dir.string();
}

PipelineResult runPipeline(SimulationConfig config,
                           const PipelineOptions& options) {
  namespace fs = std::filesystem;
  fs::create_directories(options.dir);
  const std::string base =
      (fs::path(options.dir) / options.name).string();

  PipelineResult result;

  // --- stage 1: trace generation (the simulated run) ---------------------
  config.trace.filePrefix = base;
  auto t0 = std::chrono::steady_clock::now();
  {
    Simulation sim(std::move(config));
    MpiRuntime mpi(sim);
    sim.setMpiService(&mpi);
    sim.run();
    result.mpiStats = mpi.stats();
    result.rawFiles = sim.traceFilePaths();
    result.simulatedNs = sim.finishTimeNs();
    for (NodeId n = 0;
         static_cast<std::size_t>(n) < sim.config().nodes.size(); ++n) {
      result.rawEvents += sim.sessionStats(n).eventsCut;
    }
  }
  result.simSeconds = secondsSince(t0);

  // --- stage 2: convert (one interval file per node) ----------------------
  result.profileFile =
      (fs::path(options.dir) / kStandardProfileFileName).string();
  ensureStandardProfileFile(result.profileFile);

  t0 = std::chrono::steady_clock::now();
  const std::vector<ConvertResult> converted =
      convertRun(result.rawFiles, base, options.convert);
  result.convertSeconds = secondsSince(t0);
  for (const ConvertResult& c : converted) {
    result.intervalFiles.push_back(c.outputPath);
    result.intervalRecords += c.intervalRecords;
  }

  // --- stage 3: merge (+ SLOG in the same pass) ---------------------------
  const Profile profile = makeStandardProfile();
  result.mergedFile = base + ".merged.uti";
  t0 = std::chrono::steady_clock::now();
  IntervalMerger merger(result.intervalFiles, profile, options.merge);
  if (options.writeSlog) {
    result.slogFile = base + ".slog";
    // The SLOG writer needs the merged thread table and markers; collect
    // them from the inputs the same way the merger does.
    std::vector<ThreadEntry> threads;
    std::map<std::uint32_t, std::string> markers;
    for (const std::string& path : result.intervalFiles) {
      IntervalFileReader reader(path);
      const auto& t = reader.threads();
      threads.insert(threads.end(), t.begin(), t.end());
      for (const auto& [id, name] : reader.markers()) {
        markers.emplace(id, name);
      }
    }
    SlogWriter slog(result.slogFile, options.slog, profile, threads, markers);
    result.merge = merger.mergeTo(
        result.mergedFile,
        [&slog](const RecordView& record) { slog.addRecord(record); });
    slog.close();
    result.slogIntervals = slog.intervalsWritten();
    result.slogArrows = slog.arrowsWritten();
  } else {
    result.merge = merger.mergeTo(result.mergedFile);
  }
  result.mergeSeconds = secondsSince(t0);
  return result;
}

}  // namespace ute
