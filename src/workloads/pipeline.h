// End-to-end pipeline driver: Figure 2 in code.
//
//   simulate (trace generation) -> raw per-node trace files
//   -> convert (event matching, interval pieces, marker unification)
//   -> merge (clock adjustment, k-way merge, pseudo-intervals)
//   -> optional SLOG emission in the same pass (slogmerge)
//
// Examples, benchmarks and integration tests all drive runs through this
// one entry point; each stage is also timed so Table 1's utility speeds
// come from the same code path users run.
#pragma once

#include <string>
#include <vector>

#include "convert/converter.h"
#include "merge/merger.h"
#include "mpisim/mpi_runtime.h"
#include "sim/config.h"
#include "slog/slog_writer.h"

namespace ute {

struct PipelineOptions {
  /// Directory all files are written into (created if missing).
  std::string dir = ".";
  /// Base name for the produced files.
  std::string name = "run";
  bool writeSlog = true;
  ConvertOptions convert;
  MergeOptions merge;
  SlogOptions slog;
};

struct PipelineResult {
  std::vector<std::string> rawFiles;
  std::vector<std::string> intervalFiles;
  std::string mergedFile;
  std::string slogFile;     ///< empty unless writeSlog
  std::string profileFile;  ///< the standard description profile
  std::uint64_t rawEvents = 0;
  std::uint64_t intervalRecords = 0;
  /// Ground truth from the MPI runtime, for cross-checking analyses
  /// (e.g. Figure 5's total bytes sent must equal mpiStats.bytesSent).
  MpiRuntimeStats mpiStats;
  MergeResult merge;
  std::uint64_t slogIntervals = 0;
  std::uint64_t slogArrows = 0;
  double simSeconds = 0;
  double convertSeconds = 0;
  double mergeSeconds = 0;  ///< includes SLOG emission when enabled
  Tick simulatedNs = 0;
};

/// Runs the full pipeline. The trace file prefix inside `config` is
/// overridden to place raw files in options.dir.
PipelineResult runPipeline(SimulationConfig config,
                           const PipelineOptions& options);

/// Creates (and returns) a fresh scratch directory under the system temp
/// directory, e.g. for tests and examples.
std::string makeScratchDir(const std::string& hint);

}  // namespace ute
